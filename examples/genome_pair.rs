//! Whole-chromosome-pair alignment: run a catalog benchmark (default
//! `C1_1,1`, C. elegans chr1 vs C. briggsae chr1 at 1/500 scale) through
//! the full FastZ pipeline and report the paper's per-pair statistics:
//! the Table 2 length-bin distribution, the Figure 8 phase breakdown,
//! and the modeled speedup on all three paper GPUs.
//!
//! ```sh
//! cargo run --release --example genome_pair [-- PAIR_LABEL]
//! ```

use fastz::align::{sequential_gapped, DriverConfig};
use fastz::core::{run_fastz, FastZConfig};
use fastz::genome::{evolve::generate_pair, find_pair, Scale, Scoring};
use fastz::gpu_sim::{CpuModel, DeviceSpec};
use fastz::seed::{Workload, WorkloadParams};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "C1_1,1".into());
    let entry = find_pair(&label).unwrap_or_else(|| {
        eprintln!("unknown catalog pair {label}; try C1_1,1 or A1_X,X");
        std::process::exit(2);
    });
    println!(
        "benchmark {}: {} vs {} (real {} / {} bp, synthetic at 1/{} scale)",
        entry.label,
        entry.target_desc,
        entry.query_desc,
        entry.target_bp,
        entry.query_bp,
        Scale::TEST.divisor
    );

    let pair = generate_pair(&entry.pair_params(Scale::TEST));
    let workload = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
    println!("{} seeds after filtering", workload.len());

    let scoring = Scoring::bench_scaled();
    let seq = sequential_gapped(
        &pair.target,
        &pair.query,
        &workload.anchors,
        workload.shape.span(),
        &DriverConfig::gapped(scoring.clone()),
    );
    let seq_model = CpuModel::ryzen_3950x().sequential_time(seq.stats.total_cells);
    println!(
        "sequential LASTZ: {} alignments, modeled {:.3} s on a Ryzen 3950X core",
        seq.alignments.len(),
        seq_model
    );

    let cfg = FastZConfig::new(scoring, DeviceSpec::rtx3080_ampere());
    let report = run_fastz(
        &pair.target,
        &pair.query,
        &workload.anchors,
        workload.shape.span(),
        &cfg,
    );

    println!("\nTable 2 row (alignment-length distribution per seed):");
    let b = &report.bin_counts;
    println!(
        "  eager(≤16): {}  bin1(≤512): {}  bin2(≤2k): {}  bin3(≤8k): {}  bin4(≤32k): {}",
        b.eager, b.bins[0], b.bins[1], b.bins[2], b.bins[3]
    );
    println!(
        "  eager fraction {:.1}% (paper: 75-80%)",
        100.0 * b.eager_fraction()
    );

    println!("\nFigure 8 phase breakdown (Ampere):");
    print!("{}", report.timeline);

    println!("\nFigure 7 speedups over sequential LASTZ:");
    for dev in [
        DeviceSpec::titan_x_pascal(),
        DeviceSpec::qv100_volta(),
        DeviceSpec::rtx3080_ampere(),
    ] {
        let t = report.retime(&dev, cfg.flags.streams).total();
        println!("  {:<8} {:>8.2}x", dev.arch, seq_model / t);
    }

    println!(
        "\nFastZ found {} alignments ({} sequential alignments reproduced)",
        report.alignments.len(),
        seq.alignments
            .iter()
            .filter(|a| report.alignments.contains(a))
            .count()
    );
}
