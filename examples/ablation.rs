//! Ablation explorer: walk the Figure 9 optimization staircase on a
//! small synthetic pair and watch how each of FastZ's five ideas changes
//! the measured work and the modeled time.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use fastz::align::{sequential_gapped, DriverConfig};
use fastz::core::{run_fastz, FastZConfig, OptFlags};
use fastz::genome::{evolve::generate_pair, PairParams, Scoring};
use fastz::gpu_sim::{CpuModel, DeviceSpec};
use fastz::seed::{Workload, WorkloadParams};

fn main() {
    let pair = generate_pair(&PairParams {
        target_len: 30_000,
        query_len: 30_000,
        segments: 60,
        ..PairParams::small_demo("ablation", 77)
    });
    let workload = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
    let span = workload.shape.span();
    let scoring = Scoring::bench_scaled();
    let device = DeviceSpec::rtx3080_ampere();

    let seq = sequential_gapped(
        &pair.target,
        &pair.query,
        &workload.anchors,
        span,
        &DriverConfig::gapped(scoring.clone()),
    );
    let seq_s = CpuModel::ryzen_3950x().sequential_time(seq.stats.total_cells);
    println!(
        "{} seeds; sequential LASTZ modeled {:.4} s\n",
        workload.len(),
        seq_s
    );
    println!(
        "{:<22} {:>9} {:>12} {:>12} {:>10} {:>9}",
        "configuration", "eager", "insp steps", "DRAM MB", "time (ms)", "speedup"
    );

    let mut reference: Option<Vec<fastz::align::Alignment>> = None;
    for (label, flags) in OptFlags::figure9_progression() {
        let cfg = FastZConfig {
            flags,
            ..FastZConfig::new(scoring.clone(), device.clone())
        };
        let report = run_fastz(&pair.target, &pair.query, &workload.anchors, span, &cfg);
        let dram_mb = (report.stats.inspector.total.global_bytes()
            + report.stats.executor.total.global_bytes()) as f64
            / 1e6;
        println!(
            "{:<22} {:>9} {:>12} {:>12.1} {:>10.3} {:>8.1}x",
            label,
            report.stats.eager_resolved,
            report.stats.inspector.total.steps,
            dram_mb,
            report.modeled_time_s * 1e3,
            seq_s / report.modeled_time_s
        );
        // Every configuration must produce identical alignments — the
        // optimizations change performance, never results.
        match &reference {
            None => reference = Some(report.alignments),
            Some(r) => assert_eq!(r, &report.alignments, "{label} changed the alignments!"),
        }
    }
    println!("\nall configurations produced identical alignments ✓");
}
