//! Cross-genus (dissimilar) alignment: reproduce §5.4's observation that
//! FastZ speeds up *more* on dissimilar genomes, because without long
//! alignments almost everything resolves in the fast inspector.
//!
//! ```sh
//! cargo run --release --example cross_genus
//! ```

use fastz::align::{sequential_gapped, DriverConfig};
use fastz::core::{run_fastz, FastZConfig};
use fastz::genome::{evolve::generate_pair, find_pair, Scale, Scoring};
use fastz::gpu_sim::{CpuModel, DeviceSpec};
use fastz::seed::{Workload, WorkloadParams};

fn run(label: &str) -> (f64, f64, usize, usize) {
    let entry = find_pair(label).expect("catalog pair");
    // Bench scale: the within-genus pair needs its long (bin-3/4)
    // alignments for the contrast to appear; anchors are capped to keep
    // the single-threaded simulation quick.
    let pair = generate_pair(&entry.pair_params(Scale::BENCH));
    let workload = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 2_500,
            ..WorkloadParams::default()
        },
    );
    let scoring = Scoring::bench_scaled();
    let seq = sequential_gapped(
        &pair.target,
        &pair.query,
        &workload.anchors,
        workload.shape.span(),
        &DriverConfig::gapped(scoring.clone()),
    );
    let seq_s = CpuModel::ryzen_3950x().sequential_time(seq.stats.total_cells);
    let cfg = FastZConfig::new(scoring, DeviceSpec::rtx3080_ampere());
    let report = run_fastz(
        &pair.target,
        &pair.query,
        &workload.anchors,
        workload.shape.span(),
        &cfg,
    );
    (
        seq_s / report.modeled_time_s,
        report.timeline.fraction("inspector"),
        report.bin_counts.bins[2] + report.bin_counts.bins[3],
        report.alignments.len(),
    )
}

fn main() {
    println!("within-genus C1_1,1 vs cross-genus CA_1,X (Ampere, 1/100 scale)\n");
    let (s_within, insp_within, big_within, n_within) = run("C1_1,1");
    let (s_cross, insp_cross, big_cross, n_cross) = run("CA_1,X");

    println!("                     within (C1_1,1)   cross (CA_1,X)");
    println!("speedup                  {s_within:>8.1}x        {s_cross:>8.1}x");
    println!(
        "inspector share          {:>8.1}%        {:>8.1}%",
        100.0 * insp_within,
        100.0 * insp_cross
    );
    println!("bin3+bin4 alignments     {big_within:>9}        {big_cross:>9}");
    println!("alignments found         {n_within:>9}        {n_cross:>9}");

    assert_eq!(
        big_cross, 0,
        "cross-genus pairs must have no large-bin alignments (§5.4)"
    );
    assert!(
        big_within > 0,
        "the within-genus pair should have long alignments"
    );
    println!(
        "\ncross-genus speedup is {:.2}x the within-genus one (paper: 137/111 ≈ 1.23x)",
        s_cross / s_within
    );
}
