//! Quickstart: align two small synthetic sequences end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic genome pair, finds seeds, runs both the sequential
//! LASTZ reference and the FastZ GPU pipeline, and prints the alignments
//! both engines agree on.

use fastz::align::{sequential_gapped, DriverConfig};
use fastz::core::{run_fastz, FastZConfig};
use fastz::genome::{evolve::generate_pair, PairParams, Scoring};
use fastz::gpu_sim::DeviceSpec;
use fastz::seed::{Workload, WorkloadParams};

fn main() {
    // 1. A synthetic pair: two ~40 kbp "chromosomes" sharing planted
    //    homologous segments (see fastz_genome::evolve for the model).
    let pair = generate_pair(&PairParams {
        target_len: 40_000,
        query_len: 40_000,
        segments: 80,
        ..PairParams::small_demo("quickstart", 2024)
    });
    println!(
        "generated {} ({} bp) vs {} ({} bp), {} planted homologies",
        pair.target.name(),
        pair.target.len(),
        pair.query.name(),
        pair.query.len(),
        pair.truth.len()
    );

    // 2. Seeds: LASTZ's 12-of-19 spaced seed, filtered.
    let workload = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
    println!(
        "seeding: {} raw anchors -> {} after filtering",
        workload.raw_anchors,
        workload.len()
    );

    // 3. Sequential gapped LASTZ (the paper's baseline).
    let scoring = Scoring::bench_scaled();
    let lastz = sequential_gapped(
        &pair.target,
        &pair.query,
        &workload.anchors,
        workload.shape.span(),
        &DriverConfig::gapped(scoring.clone()),
    );
    println!(
        "sequential LASTZ: {} alignments, {} DP cells, {:?}",
        lastz.alignments.len(),
        lastz.stats.total_cells,
        lastz.stats.wall_time
    );

    // 4. FastZ on the simulated RTX 3080.
    let cfg = FastZConfig::new(scoring, DeviceSpec::rtx3080_ampere());
    let fastz = run_fastz(
        &pair.target,
        &pair.query,
        &workload.anchors,
        workload.shape.span(),
        &cfg,
    );
    println!(
        "FastZ: {} alignments, modeled {:.3} ms on {}, {} of {} extensions eager-resolved",
        fastz.alignments.len(),
        fastz.modeled_time_s * 1e3,
        cfg.device.name,
        fastz.stats.eager_resolved,
        fastz.stats.problems
    );

    // 5. Agreement check (the paper's drop-in-replacement claim).
    let agreed = lastz
        .alignments
        .iter()
        .filter(|a| fastz.alignments.contains(a))
        .count();
    println!(
        "agreement: {agreed}/{} sequential alignments reproduced exactly by FastZ",
        lastz.alignments.len()
    );

    // 6. Show the top alignments.
    let mut top: Vec<_> = fastz.alignments.iter().collect();
    top.sort_by_key(|a| -a.score);
    println!("\ntop alignments:");
    for a in top.iter().take(5) {
        println!("  {a}");
    }
}
