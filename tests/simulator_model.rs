//! Integration tests of the timing model's qualitative laws — the
//! properties the paper's evaluation depends on, checked across crates.

use fastz::core::{baseline_total_time, run_fastz, FastZConfig, OptFlags};
use fastz::genome::{evolve::generate_pair, PairParams, Scoring};
use fastz::gpu_sim::{
    occupancy, time_kernel, time_stream_pipeline, BlockResources, CpuModel, DeviceSpec, KernelSpec,
    WarpTask,
};
use fastz::seed::{Workload, WorkloadParams};

fn small_run(flags: OptFlags, device: DeviceSpec) -> fastz::core::FastZReport {
    let pair = generate_pair(&PairParams {
        target_len: 15_000,
        query_len: 15_000,
        segments: 30,
        ..PairParams::small_demo("sim", 404)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 250,
            ..WorkloadParams::default()
        },
    );
    run_fastz(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &FastZConfig {
            flags,
            ..FastZConfig::new(Scoring::bench_scaled(), device)
        },
    )
}

#[test]
fn newer_gpus_are_modeled_faster() {
    let report = small_run(OptFlags::fastz(), DeviceSpec::rtx3080_ampere());
    let pascal = report.retime(&DeviceSpec::titan_x_pascal(), 32).total();
    let volta = report.retime(&DeviceSpec::qv100_volta(), 32).total();
    let ampere = report.retime(&DeviceSpec::rtx3080_ampere(), 32).total();
    assert!(pascal > volta, "pascal {pascal} !> volta {volta}");
    assert!(volta >= ampere, "volta {volta} !>= ampere {ampere}");
}

#[test]
fn cyclic_buffers_cut_modeled_dram_traffic_by_an_order_of_magnitude() {
    let with = small_run(OptFlags::with_cyclic(), DeviceSpec::rtx3080_ampere());
    let without = small_run(OptFlags::base(), DeviceSpec::rtx3080_ampere());
    let bytes_with = with.stats.inspector.total.global_bytes();
    let bytes_without = without.stats.inspector.total.global_bytes();
    // §3.2: boundary-lane-only spills eliminate ≥ 96 % of score traffic.
    assert!(
        bytes_without as f64 / bytes_with as f64 > 10.0,
        "traffic only dropped from {bytes_without} to {bytes_with}"
    );
}

#[test]
fn eager_traceback_eliminates_most_executor_runs() {
    let with = small_run(OptFlags::with_eager(), DeviceSpec::rtx3080_ampere());
    let without = small_run(OptFlags::with_cyclic(), DeviceSpec::rtx3080_ampere());
    assert_eq!(without.stats.eager_resolved, 0);
    assert!(
        with.stats.eager_resolved * 2 > with.stats.problems,
        "eager resolved only {}/{}",
        with.stats.eager_resolved,
        with.stats.problems
    );
    assert!(with.stats.executor.tasks < without.stats.executor.tasks);
}

#[test]
fn trimming_reduces_executor_cells() {
    let trimmed = small_run(OptFlags::fastz(), DeviceSpec::rtx3080_ampere());
    let untrimmed = small_run(OptFlags::with_eager(), DeviceSpec::rtx3080_ampere());
    assert!(
        trimmed.stats.executor.total.cells < untrimmed.stats.executor.total.cells,
        "trimmed {} !< untrimmed {}",
        trimmed.stats.executor.total.cells,
        untrimmed.stats.executor.total.cells
    );
}

#[test]
fn multicore_model_sits_between_sequential_and_fastz_at_scale() {
    let cpu = CpuModel::ryzen_3950x();
    let cells: u64 = 10_000_000_000;
    let seq = cpu.sequential_time(cells);
    let multi = cpu.multicore_time(&vec![cells / 32; 32]);
    let speedup = seq / multi;
    assert!((17.0..23.0).contains(&speedup), "multicore {speedup:.1}x");
}

#[test]
fn feng_baseline_is_a_slowdown_on_small_search_spaces() {
    let stats: Vec<fastz::align::ExtensionStats> = (0..100)
        .map(|_| fastz::align::ExtensionStats {
            cells: 20_000,
            rows: 120,
            max_cols: 200,
        })
        .collect();
    let dev = DeviceSpec::rtx3080_ampere();
    let gpu = baseline_total_time(&dev, &stats);
    let cpu = CpuModel::ryzen_3950x().sequential_time(100 * 20_000);
    let speedup = cpu / gpu;
    assert!(
        speedup < 1.0,
        "baseline should be a slowdown, got {speedup:.2}x"
    );
    assert!(
        speedup > 0.2,
        "baseline unrealistically slow: {speedup:.2}x"
    );
}

#[test]
fn stream_overlap_beats_serialized_launches_on_skewed_kernels() {
    let dev = DeviceSpec::rtx3080_ampere();
    let mut kernels = Vec::new();
    for _ in 0..8 {
        let mut tasks = vec![
            WarpTask {
                cycles: 5_000.0,
                dram_bytes: 0.0
            };
            512
        ];
        tasks.push(WarpTask {
            cycles: 5e6,
            dram_bytes: 0.0,
        });
        kernels.push(KernelSpec::new(
            "k",
            tasks,
            BlockResources::fastz_inspector(),
        ));
    }
    let single = time_stream_pipeline(&dev, &kernels, 1);
    let multi = time_stream_pipeline(&dev, &kernels, 32);
    assert!(
        single.time_s / multi.time_s > 1.5,
        "stream gain {:.2}",
        single.time_s / multi.time_s
    );
}

#[test]
fn occupancy_feeds_kernel_timing() {
    let dev = DeviceSpec::rtx3080_ampere();
    let res = BlockResources::fastz_inspector();
    let occ = occupancy(&dev, &res);
    assert!(occ.warps_per_sm >= 8);
    let spec = KernelSpec::new(
        "k",
        vec![
            WarpTask {
                cycles: 1_000.0,
                dram_bytes: 64.0
            };
            4096
        ],
        res,
    );
    let t = time_kernel(&dev, &spec);
    assert!(t.time_s > 0.0);
    assert!(t.compute_s > 0.0);
    assert!(t.memory_s > 0.0);
}
