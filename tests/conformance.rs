//! Tier-1 hook for the differential conformance suite: a scaled-down
//! fuzz run through all four engines (scalar exact, scalar
//! conservative, warp, pipeline) checked against the dense DP oracle.
//! The full 500-pair acceptance run lives behind the `conformance` CLI
//! (`cargo run -p fastz-conformance -- --pairs 500 --seed 42`).

use fastz_conformance::{run_suite, SuiteConfig};

#[test]
fn engines_agree_on_a_small_fuzz_corpus() {
    let suite = run_suite(&SuiteConfig {
        pairs: 16,
        seed: 42,
        // Cap the fixed bin-boundary sweep at the 2048-extent cases so
        // tier-1 stays fast; the CLI acceptance run covers the rest.
        max_extent: 2048,
        pipeline_workloads: 1,
        corrupt_warp_match: 0,
        // The fault drill runs in tier-1 via crates/core/tests/resilience.rs
        // and at full scale in CI's fault-injection job.
        fault_seed: None,
        // The sanitizer drill runs in tier-1 via the fastz-conformance
        // crate's own tests and at full scale in CI's sanitize job.
        sanitize: false,
        // The run_case_on path plus the per-case backend-identity drill
        // exercise the SIMD backend regardless of this setting.
        backend: fastz_core::WavefrontBackend::default(),
        // The cross-algorithm drill runs in tier-1 via the
        // fastz-conformance crate's own suite tests and at 500 pairs in
        // CI's bitvector job.
        bitvector: false,
    });
    assert!(
        suite.is_clean(),
        "conformance divergences: {:#?}",
        suite.divergences
    );
}

#[test]
fn conformance_detects_a_corrupted_engine() {
    let suite = run_suite(&SuiteConfig {
        pairs: 6,
        seed: 42,
        max_extent: 0,
        pipeline_workloads: 0,
        corrupt_warp_match: 1,
        fault_seed: None,
        sanitize: false,
        backend: fastz_core::WavefrontBackend::default(),
        bitvector: false,
    });
    assert!(
        !suite.is_clean(),
        "a corrupted warp scoring matrix must produce divergences"
    );
    assert!(suite
        .divergences
        .iter()
        .any(|d| d.first_divergent_cell.is_some()));
}
