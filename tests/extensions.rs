//! Integration tests for the extension features built on top of the
//! paper's core: chaining, both-strand alignment, seed masking, and
//! output formats, exercised together on synthetic workloads.

use fastz::align::{
    all_chains, best_chain, sequential_gapped, sequential_gapped_both_strands, summarize,
    write_general, write_maf, ChainPenalties, DriverConfig, Strand,
};
use fastz::genome::evolve::{generate_pair, random_sequence, PairParams};
use fastz::genome::{Scoring, Sequence};
use fastz::seed::{
    find_anchors, find_anchors_masked, SeedIndex, SeedShape, WordMask, Workload, WorkloadParams,
};

fn demo_pair() -> fastz::genome::GenomePair {
    generate_pair(&PairParams {
        target_len: 20_000,
        query_len: 20_000,
        segments: 40,
        ..PairParams::small_demo("ext", 909)
    })
}

#[test]
fn chaining_links_colinear_segment_alignments() {
    let pair = demo_pair();
    let wl = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
    let report = sequential_gapped(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &DriverConfig::gapped(Scoring::bench_scaled()),
    );
    assert!(report.alignments.len() >= 3);

    let chain = best_chain(&report.alignments, &ChainPenalties::default()).unwrap();
    // The mosaic is collinear by construction: the best chain should link
    // several planted segments.
    assert!(
        chain.members.len() >= 2,
        "chain linked only {} members",
        chain.members.len()
    );
    // Members are strictly colinear.
    for w in chain.members.windows(2) {
        let a = &report.alignments[w[0]];
        let b = &report.alignments[w[1]];
        assert!(a.target_end <= b.target_start);
        assert!(a.query_end <= b.query_start);
    }
    // Greedy multi-chain extraction partitions without duplicates.
    let chains = all_chains(&report.alignments, &ChainPenalties::default());
    let mut seen = std::collections::HashSet::new();
    for c in &chains {
        for &m in &c.members {
            assert!(seen.insert(m), "alignment {m} in two chains");
        }
    }
    assert!(chains[0].score >= chains.last().unwrap().score);
}

#[test]
fn both_strands_and_formats_work_together() {
    // Forward homology from the mosaic pair...
    let pair = demo_pair();
    let report = sequential_gapped_both_strands(
        &pair.target,
        &pair.query,
        &WorkloadParams::default(),
        &DriverConfig::gapped(Scoring::bench_scaled()),
    );
    assert!(!report.forward.alignments.is_empty());
    let plus = report
        .alignments
        .iter()
        .filter(|a| a.strand == Strand::Forward)
        .count();
    assert_eq!(plus, report.forward.alignments.len());

    // ... render both formats and sanity-check the output.
    let mut maf = Vec::new();
    write_maf(
        &mut maf,
        &report.forward.alignments,
        &pair.target,
        &pair.query,
    )
    .unwrap();
    let maf = String::from_utf8(maf).unwrap();
    assert!(maf.starts_with("##maf"));
    assert_eq!(
        maf.matches("a score=").count(),
        report.forward.alignments.len()
    );

    let mut gen = Vec::new();
    write_general(
        &mut gen,
        &report.forward.alignments,
        &pair.target,
        &pair.query,
    )
    .unwrap();
    let gen = String::from_utf8(gen).unwrap();
    assert_eq!(gen.lines().count(), report.forward.alignments.len() + 1);

    // Summary statistics agree with the alignment set.
    let s = summarize(&report.forward.alignments);
    assert_eq!(s.count, report.forward.alignments.len());
    assert!(s.max_score >= Scoring::bench_scaled().gapped_threshold);
}

#[test]
fn masking_suppresses_a_planted_repeat_family() {
    // Target and query share a high-copy repeat plus one genuine homology.
    let mut t_codes = random_sequence("t", 8_000, 0.5, 31).codes().to_vec();
    let mut q_codes = random_sequence("q", 8_000, 0.5, 32).codes().to_vec();
    let unit = random_sequence("u", 40, 0.5, 33).codes().to_vec();
    for k in 0..30 {
        let at = 100 + k * 250;
        t_codes[at..at + 40].copy_from_slice(&unit);
        q_codes[at + 37..at + 77].copy_from_slice(&unit);
    }
    let gene = random_sequence("g", 300, 0.5, 34).codes().to_vec();
    t_codes[7_500..7_800].copy_from_slice(&gene);
    q_codes[7_500..7_800].copy_from_slice(&gene);
    let target = Sequence::from_codes("t", t_codes);
    let query = Sequence::from_codes("q", q_codes);

    let shape = SeedShape::lastz_12of19();
    let index = SeedIndex::build(&target, shape.clone());
    let mask = WordMask::build(&target, &shape, 8);
    assert!(mask.masked_words() > 0);

    let unmasked = find_anchors(&index, &query);
    let masked = find_anchors_masked(&index, &query, &mask);
    // The repeat family dominates the raw anchors; masking removes the
    // quadratic blow-up…
    assert!(
        masked.len() * 5 < unmasked.len(),
        "masking removed too little: {} -> {}",
        unmasked.len(),
        masked.len()
    );
    // …but keeps the genuine single-copy homology.
    assert!(
        masked
            .iter()
            .any(|a| a.target_pos >= 7_500 && a.target_pos < 7_800),
        "masking lost the single-copy gene anchors"
    );
}

#[test]
fn multi_gpu_integration_with_heterogeneous_fleet() {
    use fastz::core::{run_fastz_multi_gpu, FastZConfig, Partition};
    use fastz::gpu_sim::DeviceSpec;

    let pair = demo_pair();
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 250,
            ..WorkloadParams::default()
        },
    );
    let cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    let fleet = vec![
        DeviceSpec::rtx3080_ampere(),
        DeviceSpec::qv100_volta(),
        DeviceSpec::titan_x_pascal(),
    ];
    let multi = run_fastz_multi_gpu(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
        &fleet,
        Partition::Strided,
    );
    assert!(!multi.alignments.is_empty());
    assert_eq!(multi.per_device.len(), 3);
    // The straggler must be the slowest modeled device's share.
    let slowest = multi
        .per_device
        .iter()
        .map(|r| r.modeled_time_s)
        .fold(0.0f64, f64::max);
    assert!(multi.modeled_time_s >= slowest);
    for a in &multi.alignments {
        assert!(a.is_consistent(&pair.target, &pair.query));
    }
}
