//! Cross-crate integration: the FastZ pipeline against the sequential
//! LASTZ reference on catalog workloads — the paper's drop-in-replacement
//! guarantee ("identical (or occasionally longer) alignments", §3.4).

use fastz::align::{sequential_gapped, DriverConfig};
use fastz::core::{run_fastz, FastZConfig, OptFlags};
use fastz::genome::{evolve::generate_pair, find_pair, Scale, Scoring};
use fastz::gpu_sim::DeviceSpec;
use fastz::seed::{Workload, WorkloadParams};

struct Setup {
    target: fastz::genome::Sequence,
    query: fastz::genome::Sequence,
    anchors: Vec<fastz::seed::Anchor>,
    span: usize,
}

fn setup(label: &str, max_anchors: usize) -> Setup {
    let entry = find_pair(label).expect("catalog pair");
    let pair = generate_pair(&entry.pair_params(Scale::TEST));
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors,
            ..WorkloadParams::default()
        },
    );
    Setup {
        target: pair.target,
        query: pair.query,
        span: wl.shape.span(),
        anchors: wl.anchors,
    }
}

#[test]
fn fastz_covers_every_sequential_alignment() {
    let s = setup("C1_3,3", 500);
    let scoring = Scoring::bench_scaled();
    let seq = sequential_gapped(
        &s.target,
        &s.query,
        &s.anchors,
        s.span,
        &DriverConfig {
            work_reduction: false,
            ..DriverConfig::gapped(scoring.clone())
        },
    );
    let fz = run_fastz(
        &s.target,
        &s.query,
        &s.anchors,
        s.span,
        &FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere()),
    );
    assert!(!seq.alignments.is_empty(), "reference found nothing");
    for a in &seq.alignments {
        let covered = fz.alignments.iter().any(|f| {
            f.target_start <= a.target_start
                && f.target_end >= a.target_end
                && f.query_start <= a.query_start
                && f.query_end >= a.query_end
                && f.score >= a.score
        });
        assert!(covered, "FastZ lost sequential alignment {a}");
    }
    // Identical in the overwhelming majority of cases.
    let identical = seq
        .alignments
        .iter()
        .filter(|a| fz.alignments.contains(a))
        .count();
    assert!(
        identical * 10 >= seq.alignments.len() * 9,
        "only {identical}/{} identical",
        seq.alignments.len()
    );
}

#[test]
fn fastz_alignments_are_valid_and_rescore() {
    let s = setup("A1_X,X", 400);
    let scoring = Scoring::bench_scaled();
    let fz = run_fastz(
        &s.target,
        &s.query,
        &s.anchors,
        s.span,
        &FastZConfig::new(scoring.clone(), DeviceSpec::qv100_volta()),
    );
    assert!(!fz.alignments.is_empty());
    for a in &fz.alignments {
        assert!(a.is_consistent(&s.target, &s.query), "{a}");
        assert_eq!(a.rescore(&s.target, &s.query, &scoring), a.score, "{a}");
        assert!(a.score >= scoring.gapped_threshold);
    }
}

#[test]
fn bin_counts_partition_the_seed_set() {
    let s = setup("C1_4,4", 400);
    let fz = run_fastz(
        &s.target,
        &s.query,
        &s.anchors,
        s.span,
        &FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere()),
    );
    assert_eq!(fz.bin_counts.total(), s.anchors.len());
    assert_eq!(
        fz.stats.eager_resolved + fz.stats.executor_problems,
        fz.stats.problems
    );
    assert_eq!(fz.stats.problems, 2 * s.anchors.len());
}

#[test]
fn cross_genus_pair_has_no_large_bins() {
    let s = setup("CD_1,2R", 400);
    let fz = run_fastz(
        &s.target,
        &s.query,
        &s.anchors,
        s.span,
        &FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere()),
    );
    assert_eq!(fz.bin_counts.bins[2], 0, "cross-genus bin3 not empty");
    assert_eq!(fz.bin_counts.bins[3], 0, "cross-genus bin4 not empty");
    assert!(fz.bin_counts.eager_fraction() > 0.5);
}

#[test]
fn ablation_configurations_preserve_results_and_order_timing() {
    let s = setup("D1_2R,2", 300);
    let scoring = Scoring::bench_scaled();
    let mut times = Vec::new();
    let mut reference: Option<Vec<fastz::align::Alignment>> = None;
    for (label, flags) in OptFlags::figure9_progression() {
        let fz = run_fastz(
            &s.target,
            &s.query,
            &s.anchors,
            s.span,
            &FastZConfig {
                flags,
                ..FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere())
            },
        );
        times.push((label, fz.modeled_time_s));
        match &reference {
            None => reference = Some(fz.alignments),
            Some(r) => assert_eq!(r, &fz.alignments, "{label} changed alignments"),
        }
    }
    // Full FastZ (index 3) must beat the base configuration (index 0).
    assert!(
        times[3].1 < times[0].1,
        "FastZ {:?} not faster than base {:?}",
        times[3],
        times[0]
    );
}

#[test]
fn retime_is_consistent_with_the_run_device() {
    let s = setup("A2_X,X", 300);
    let cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    let fz = run_fastz(&s.target, &s.query, &s.anchors, s.span, &cfg);
    let retimed = fz.retime(&DeviceSpec::rtx3080_ampere(), cfg.flags.streams);
    assert!(
        (retimed.total() - fz.modeled_time_s).abs() < 1e-12,
        "retime on the same device diverged: {} vs {}",
        retimed.total(),
        fz.modeled_time_s
    );
    // A slower device must not be faster.
    let pascal = fz.retime(&DeviceSpec::titan_x_pascal(), cfg.flags.streams);
    assert!(pascal.total() >= fz.modeled_time_s);
}
