//! Property-based tests (proptest) over the DP engines and core data
//! structures: invariants that must hold for *any* input, not just the
//! curated unit-test cases.

use fastz::align::ydrop::{ydrop_extend, PruneMode};
use fastz::align::EditOp;
use fastz::core::{classify, warp_extend, BinClass, OptFlags, WarpConfig, BIN_BOUNDS, EAGER_BOUND};
use fastz::genome::{GapPenalties, Scoring, SubstMatrix};
use fastz::gpu_sim::SharedMem;
use proptest::prelude::*;

fn scoring(ydrop: i32) -> Scoring {
    Scoring {
        subst: SubstMatrix::match_mismatch(10, -15),
        gaps: GapPenalties::new(30, 5),
        ydrop,
        xdrop: 40,
        hsp_threshold: 50,
        gapped_threshold: 50,
    }
}

/// Re-scores an edit script against raw code slices.
fn rescore_ops(t: &[u8], q: &[u8], ops: &[EditOp], sc: &Scoring) -> (usize, usize, i32) {
    let (mut ti, mut qi, mut score) = (0usize, 0usize, 0i32);
    for op in ops {
        match *op {
            EditOp::Diag(k) => {
                for _ in 0..k {
                    score += sc.subst.score(t[ti], q[qi]);
                    ti += 1;
                    qi += 1;
                }
            }
            EditOp::GapQ(k) => {
                score -= sc.gaps.gap_cost(k as usize);
                ti += k as usize;
            }
            EditOp::GapT(k) => {
                score -= sc.gaps.gap_cost(k as usize);
                qi += k as usize;
            }
        }
    }
    (ti, qi, score)
}

/// Strategy: a pair of related sequences (mutated copy) of modest size.
fn related_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        proptest::collection::vec(0u8..4, 10..200),
        proptest::collection::vec(0u32..100, 0..20),
        any::<u64>(),
    )
        .prop_map(|(t, muts, _seed)| {
            let mut q = t.clone();
            for (k, m) in muts.iter().enumerate() {
                let pos = (*m as usize * (k + 7)) % q.len().max(1);
                if q.is_empty() {
                    break;
                }
                match m % 5 {
                    0..=2 => q[pos] = (q[pos] + 1 + (m % 3) as u8) % 4, // substitution
                    3 => {
                        q.insert(pos, (m % 4) as u8); // insertion
                    }
                    _ => {
                        q.remove(pos); // deletion
                    }
                }
            }
            (t, q)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The scalar engine's traceback must re-score exactly to the
    /// reported best score, and end at the reported best cell.
    #[test]
    fn scalar_traceback_rescoring((t, q) in related_pair()) {
        let sc = scoring(120);
        for mode in [PruneMode::Exact, PruneMode::Conservative] {
            let r = ydrop_extend(&t, &q, &sc, mode, true);
            let ops = r.ops.clone().unwrap();
            let (ti, qi, score) = rescore_ops(&t, &q, &ops, &sc);
            prop_assert_eq!(ti, r.best_j);
            prop_assert_eq!(qi, r.best_i);
            prop_assert_eq!(score, r.best_score);
            prop_assert!(r.best_score >= 0);
        }
    }

    /// Conservative pruning explores a superset: score and cell count
    /// dominate the exact engine's.
    #[test]
    fn conservative_dominates_exact((t, q) in related_pair()) {
        let sc = scoring(120);
        let exact = ydrop_extend(&t, &q, &sc, PruneMode::Exact, false);
        let cons = ydrop_extend(&t, &q, &sc, PruneMode::Conservative, false);
        prop_assert!(cons.best_score >= exact.best_score);
        prop_assert!(cons.stats.cells >= exact.stats.cells);
    }

    /// A larger y-drop can only explore more and score at least as well.
    #[test]
    fn ydrop_monotonicity((t, q) in related_pair(), y1 in 50i32..150, dy in 1i32..200) {
        let small = ydrop_extend(&t, &q, &scoring(y1), PruneMode::Exact, false);
        let large = ydrop_extend(&t, &q, &scoring(y1 + dy), PruneMode::Exact, false);
        prop_assert!(large.best_score >= small.best_score);
        prop_assert!(large.stats.cells >= small.stats.cells);
    }

    /// The warp engine never scores below the exact scalar engine and its
    /// eager traceback (when produced) re-scores to the reported best.
    #[test]
    fn warp_engine_dominates_and_rescans((t, q) in related_pair()) {
        let sc = scoring(120);
        let exact = ydrop_extend(&t, &q, &sc, PruneMode::Exact, false);
        let mut shared = SharedMem::new(96 * 1024);
        let warp = warp_extend(&t, &q, &sc, &WarpConfig::inspector(&OptFlags::fastz()), &mut shared);
        prop_assert!(
            warp.best_score >= exact.best_score,
            "warp {} < exact {}", warp.best_score, exact.best_score
        );
        if let Some(ops) = &warp.eager_ops {
            let (ti, qi, score) = rescore_ops(&t, &q, ops, &sc);
            prop_assert_eq!(ti, warp.best_j);
            prop_assert_eq!(qi, warp.best_i);
            prop_assert_eq!(score, warp.best_score);
            prop_assert!(warp.best_i <= 16 && warp.best_j <= 16);
        }
    }

    /// Executor (trimmed to the inspector's optimum) reproduces the same
    /// optimum and a valid full traceback.
    #[test]
    fn executor_reproduces_inspector_optimum((t, q) in related_pair()) {
        let sc = scoring(120);
        let mut shared = SharedMem::new(96 * 1024);
        let insp = warp_extend(&t, &q, &sc, &WarpConfig::inspector(&OptFlags::fastz()), &mut shared);
        shared.clear();
        let exec_cfg = WarpConfig::executor(&OptFlags::fastz(), insp.best_i, insp.best_j);
        let exec = warp_extend(&t, &q, &sc, &exec_cfg, &mut shared);
        prop_assert_eq!(exec.best_score, insp.best_score);
        prop_assert_eq!((exec.best_i, exec.best_j), (insp.best_i, insp.best_j));
        let ops = exec.ops.unwrap();
        let (ti, qi, score) = rescore_ops(&t, &q, &ops, &sc);
        prop_assert_eq!((ti, qi), (exec.best_j, exec.best_i));
        prop_assert_eq!(score, exec.best_score);
    }

    /// Binning is total and consistent with its bounds.
    #[test]
    fn binning_partitions_all_extents(extent in 0usize..200_000) {
        match classify(extent) {
            BinClass::Eager => prop_assert!(extent <= EAGER_BOUND),
            BinClass::Bin(i) => {
                prop_assert!(i < BIN_BOUNDS.len());
                prop_assert!(extent <= BIN_BOUNDS[i]);
                if i > 0 {
                    prop_assert!(extent > BIN_BOUNDS[i - 1]);
                } else {
                    prop_assert!(extent > EAGER_BOUND);
                }
            }
            BinClass::Overflow => prop_assert!(extent > BIN_BOUNDS[BIN_BOUNDS.len() - 1]),
        }
    }

    /// Strand symmetry: extending (t, q) scores the same as extending the
    /// base-complemented pair (HOXD70 and the test matrix are symmetric
    /// under complement).
    #[test]
    fn complement_symmetry((t, q) in related_pair()) {
        let sc = scoring(120);
        let fwd = ydrop_extend(&t, &q, &sc, PruneMode::Exact, false);
        let tc: Vec<u8> = t.iter().map(|&b| 3 - b).collect();
        let qc: Vec<u8> = q.iter().map(|&b| 3 - b).collect();
        let comp = ydrop_extend(&tc, &qc, &sc, PruneMode::Exact, false);
        prop_assert_eq!(fwd.best_score, comp.best_score);
        prop_assert_eq!((fwd.best_i, fwd.best_j), (comp.best_i, comp.best_j));
    }
}
