#!/bin/sh
# Regenerates every table/figure of the paper at bench scale.
# Results land in results_*.txt at the repository root.
set -x
cd "$(dirname "$0")"
cargo run -q --release -p fastz-bench --bin table1 > results_table1.txt 2>&1
cargo run -q --release -p fastz-bench --bin evalall > results_evalall.txt 2> results_evalall.log
cargo run -q --release -p fastz-bench --bin fig11 -- --verbose > results_fig11.txt 2>&1
cargo run -q --release -p fastz-bench --bin fig2 > results_fig2.txt 2>&1
cargo run -q --release -p fastz-bench --bin roofline > results_roofline.txt 2>&1
cargo run -q --release -p fastz-bench --bin sensitivity -- --max-anchors 3000 > results_sensitivity.txt 2>&1
cargo run -q --release -p fastz-bench --bin fig9 -- --max-anchors 3000 --pairs "C1_1,1+D1_2R,2+A2_X,X" > results_fig9.txt 2> results_fig9.log
echo ALL_DONE
