//! Criterion benchmarks of the end-to-end engines on a small synthetic
//! pair: sequential gapped LASTZ, the ungapped-filtered variant, the
//! multicore driver, and the FastZ pipeline (functional simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use fastz_align::{
    multicore_gapped, sequential_gapped, sequential_ungapped_filtered, DriverConfig,
};
use fastz_core::{run_fastz, FastZConfig};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::Scoring;
use fastz_gpu_sim::DeviceSpec;
use fastz_seed::{Workload, WorkloadParams};

fn bench_pipelines(c: &mut Criterion) {
    let pair = generate_pair(&PairParams {
        target_len: 20_000,
        query_len: 20_000,
        segments: 40,
        ..PairParams::small_demo("pipe", 55)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 400,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    let scoring = Scoring::bench_scaled();

    let mut g = c.benchmark_group("pipelines");
    g.sample_size(10);
    g.bench_function("sequential_gapped", |b| {
        b.iter(|| {
            sequential_gapped(
                &pair.target,
                &pair.query,
                &wl.anchors,
                span,
                &DriverConfig::gapped(scoring.clone()),
            )
            .alignments
            .len()
        })
    });
    g.bench_function("sequential_ungapped_filtered", |b| {
        b.iter(|| {
            sequential_ungapped_filtered(
                &pair.target,
                &pair.query,
                &wl.anchors,
                span,
                &DriverConfig::gapped(scoring.clone()),
            )
            .alignments
            .len()
        })
    });
    g.bench_function("multicore_gapped_x4", |b| {
        b.iter(|| {
            multicore_gapped(
                &pair.target,
                &pair.query,
                &wl.anchors,
                span,
                &DriverConfig::gapped(scoring.clone()),
                4,
            )
            .alignments
            .len()
        })
    });
    g.bench_function("fastz_pipeline_sim", |b| {
        let cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
        b.iter(|| {
            run_fastz(&pair.target, &pair.query, &wl.anchors, span, &cfg)
                .alignments
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
