//! Criterion micro-benchmarks for stage 1-2: seed index construction,
//! anchor enumeration, and the two filtering passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_seed::{band_filter, filter_anchors, find_anchors, SeedIndex, SeedShape};

fn bench_seeding(c: &mut Criterion) {
    let pair = generate_pair(&PairParams {
        target_len: 60_000,
        query_len: 60_000,
        segments: 110,
        ..PairParams::small_demo("bench", 1234)
    });

    let mut g = c.benchmark_group("seeding");
    g.sample_size(15);
    g.throughput(Throughput::Bytes(pair.target.len() as u64));

    for (name, shape) in [
        ("exact19", SeedShape::exact(19)),
        ("12of19", SeedShape::lastz_12of19()),
    ] {
        g.bench_with_input(BenchmarkId::new("index_build", name), &shape, |b, sh| {
            b.iter(|| SeedIndex::build(&pair.target, sh.clone()).len())
        });
        let index = SeedIndex::build(&pair.target, shape.clone());
        g.bench_with_input(BenchmarkId::new("find_anchors", name), &shape, |b, _| {
            b.iter(|| find_anchors(&index, &pair.query).len())
        });
    }

    let index = SeedIndex::build(&pair.target, SeedShape::lastz_12of19());
    let anchors = find_anchors(&index, &pair.query);
    g.throughput(Throughput::Elements(anchors.len() as u64));
    g.bench_function("diagonal_filter_w32", |b| {
        b.iter(|| filter_anchors(&anchors, 32).len())
    });
    g.bench_function("band_filter_2048", |b| {
        b.iter(|| band_filter(&anchors, 64, 2048).len())
    });
    g.finish();
}

criterion_group!(benches, bench_seeding);
criterion_main!(benches);
