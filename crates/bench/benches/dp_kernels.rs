//! Criterion micro-benchmarks for the DP kernels: the scalar y-drop
//! reference (exact and conservative pruning), the banded baseline, the
//! ungapped x-drop filter, and the warp wavefront engine (with and
//! without cyclic register buffering accounted).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastz_align::ydrop::{ydrop_extend, PruneMode};
use fastz_align::{banded_extend, xdrop_extend};
use fastz_core::{warp_extend, OptFlags, WarpConfig, WavefrontBackend};
use fastz_genome::evolve::random_codes;
use fastz_genome::Scoring;
use fastz_gpu_sim::SharedMem;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A homologous pair: `len` bases at ~94 % identity with a couple of
/// indels, embedded in unrelated flanks.
fn homologous_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = random_codes(len, 0.45, &mut rng);
    let mut q = t.clone();
    for b in q.iter_mut() {
        if rng.gen_bool(0.06) {
            *b = (*b + 1 + rng.gen_range(0..3)) % 4;
        }
    }
    if len > 100 {
        q.splice(len / 3..len / 3 + 2, []);
        q.splice(2 * len / 3..2 * len / 3, [0u8, 1, 2]);
    }
    t.extend(random_codes(300, 0.45, &mut rng));
    q.extend(random_codes(300, 0.45, &mut rng));
    (t, q)
}

fn bench_scalar_ydrop(c: &mut Criterion) {
    let scoring = Scoring::bench_scaled();
    let mut g = c.benchmark_group("scalar_ydrop");
    g.sample_size(20);
    for len in [128usize, 1024, 8192] {
        let (t, q) = homologous_pair(len, len as u64);
        let cells = ydrop_extend(&t, &q, &scoring, PruneMode::Exact, false)
            .stats
            .cells;
        g.throughput(Throughput::Elements(cells));
        g.bench_with_input(BenchmarkId::new("exact", len), &len, |b, _| {
            b.iter(|| ydrop_extend(&t, &q, &scoring, PruneMode::Exact, false).best_score)
        });
        g.bench_with_input(BenchmarkId::new("conservative", len), &len, |b, _| {
            b.iter(|| ydrop_extend(&t, &q, &scoring, PruneMode::Conservative, false).best_score)
        });
        g.bench_with_input(BenchmarkId::new("with_traceback", len), &len, |b, _| {
            b.iter(|| ydrop_extend(&t, &q, &scoring, PruneMode::Exact, true).best_score)
        });
    }
    g.finish();
}

fn bench_warp_engine(c: &mut Criterion) {
    let scoring = Scoring::bench_scaled();
    let mut g = c.benchmark_group("warp_engine");
    g.sample_size(20);
    for len in [128usize, 1024, 8192] {
        let (t, q) = homologous_pair(len, 7 + len as u64);
        let insp = WarpConfig::inspector(&OptFlags::fastz());
        let insp_simd = insp.with_backend(WavefrontBackend::Simd);
        let no_cyclic = WarpConfig::inspector(&OptFlags::base());
        g.bench_with_input(BenchmarkId::new("inspector", len), &len, |b, _| {
            let mut shared = SharedMem::new(96 * 1024);
            b.iter(|| warp_extend(&t, &q, &scoring, &insp, &mut shared).best_score)
        });
        g.bench_with_input(BenchmarkId::new("inspector_simd", len), &len, |b, _| {
            let mut shared = SharedMem::new(96 * 1024);
            b.iter(|| warp_extend(&t, &q, &scoring, &insp_simd, &mut shared).best_score)
        });
        g.bench_with_input(
            BenchmarkId::new("inspector_no_cyclic", len),
            &len,
            |b, _| {
                let mut shared = SharedMem::new(96 * 1024);
                b.iter(|| warp_extend(&t, &q, &scoring, &no_cyclic, &mut shared).best_score)
            },
        );
        // Executor: trimmed to the inspector's optimum.
        let mut shared = SharedMem::new(96 * 1024);
        let pre = warp_extend(&t, &q, &scoring, &insp, &mut shared);
        let exec = WarpConfig::executor(&OptFlags::fastz(), pre.best_i, pre.best_j);
        let exec_simd = exec.with_backend(WavefrontBackend::Simd);
        g.bench_with_input(BenchmarkId::new("executor_trimmed", len), &len, |b, _| {
            let mut shared = SharedMem::new(96 * 1024);
            b.iter(|| warp_extend(&t, &q, &scoring, &exec, &mut shared).best_score)
        });
        g.bench_with_input(
            BenchmarkId::new("executor_trimmed_simd", len),
            &len,
            |b, _| {
                let mut shared = SharedMem::new(96 * 1024);
                b.iter(|| warp_extend(&t, &q, &scoring, &exec_simd, &mut shared).best_score)
            },
        );
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let scoring = Scoring::bench_scaled();
    let mut g = c.benchmark_group("baseline_kernels");
    g.sample_size(20);
    let (t, q) = homologous_pair(1024, 99);
    g.bench_function("banded_w32", |b| {
        b.iter(|| banded_extend(&t, &q, 32, &scoring, false).best_score)
    });
    g.bench_function("ungapped_xdrop", |b| {
        b.iter(|| xdrop_extend(&t, &q, 100, 100, 19, &scoring).score)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scalar_ydrop,
    bench_warp_engine,
    bench_baselines
);
criterion_main!(benches);
