//! Plain-text table rendering for harness output.

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if c == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[c]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[c]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a speedup multiplier like `111.3x`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean (positive inputs).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("  1") || lines[2].ends_with("    1"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn column_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(speedup(111.25), "111.25x");
    }
}
