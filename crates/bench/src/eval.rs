//! Per-pair evaluation shared by the figure harnesses.
//!
//! One [`evaluate_pair`] call produces everything Figures 7/8/9/11 and
//! Table 2 need for a benchmark pair: the sequential-LASTZ reference run
//! (measured cells + modeled time), the modeled multicore and GPU-baseline
//! times, and a functional FastZ run re-priced on all three paper GPUs.

use crate::opts::HarnessOpts;
use fastz_align::{sequential_gapped, DriverConfig, ExtensionRecord};
use fastz_core::{baseline_total_time, run_fastz, FastZConfig, FastZReport, OptFlags};
use fastz_genome::{generate_pair, CatalogPair, Scoring, Sequence};
use fastz_gpu_sim::{CpuModel, DeviceSpec};
use fastz_seed::{Anchor, Workload, WorkloadParams};

/// A generated pair plus its seed workload.
pub struct PairWorkload {
    /// Catalog entry.
    pub pair: CatalogPair,
    /// Target sequence.
    pub target: Sequence,
    /// Query sequence.
    pub query: Sequence,
    /// Filtered, budgeted anchors.
    pub anchors: Vec<Anchor>,
    /// Seed span in bp.
    pub seed_span: usize,
}

impl PairWorkload {
    /// Generates the pair and builds its workload under `opts`.
    pub fn build(pair: &CatalogPair, opts: &HarnessOpts) -> PairWorkload {
        let generated = generate_pair(&pair.pair_params(opts.scale));
        let wl = Workload::build(
            &generated.target,
            &generated.query,
            &WorkloadParams {
                max_anchors: opts.max_anchors,
                ..WorkloadParams::default()
            },
        );
        PairWorkload {
            pair: pair.clone(),
            target: generated.target,
            query: generated.query,
            seed_span: wl.shape.span(),
            anchors: wl.anchors,
        }
    }
}

/// Everything the figures need for one pair.
pub struct PairEval {
    /// Pair label.
    pub label: String,
    /// Anchor count used.
    pub seeds: usize,
    /// Sequential LASTZ: total DP cells (with work reduction).
    pub seq_cells: u64,
    /// Sequential LASTZ: modeled time (CPU model).
    pub seq_model_s: f64,
    /// Sequential LASTZ: measured wall-clock of our Rust engine.
    pub seq_wall_s: f64,
    /// Modeled 32-worker multicore time.
    pub multicore_s: f64,
    /// Modeled Feng-baseline time per GPU (Pascal, Volta, Ampere).
    pub baseline_s: [f64; 3],
    /// Modeled FastZ time per GPU (Pascal, Volta, Ampere).
    pub fastz_s: [f64; 3],
    /// The FastZ functional report (Ampere timing inside).
    pub fastz: FastZReport,
    /// Per-seed records from the sequential run.
    pub records: Vec<ExtensionRecord>,
}

impl PairEval {
    /// Speedup of FastZ on GPU `g` (0=Pascal, 1=Volta, 2=Ampere).
    pub fn fastz_speedup(&self, g: usize) -> f64 {
        self.seq_model_s / self.fastz_s[g]
    }

    /// Speedup (usually < 1) of the Feng baseline on GPU `g`.
    pub fn baseline_speedup(&self, g: usize) -> f64 {
        self.seq_model_s / self.baseline_s[g]
    }

    /// Speedup of the modeled 32-worker multicore run.
    pub fn multicore_speedup(&self) -> f64 {
        self.seq_model_s / self.multicore_s
    }
}

/// The three paper GPUs in figure order.
pub fn paper_gpus() -> [DeviceSpec; 3] {
    [
        DeviceSpec::titan_x_pascal(),
        DeviceSpec::qv100_volta(),
        DeviceSpec::rtx3080_ampere(),
    ]
}

/// Splits per-anchor cells into `workers` round-robin partitions (the
/// multicore driver interleaves seeds so hot regions spread across
/// processes) and returns per-worker totals.
pub fn partition_cells(records: &[ExtensionRecord], workers: usize) -> Vec<u64> {
    let mut parts = vec![0u64; workers.max(1)];
    for (i, r) in records.iter().enumerate() {
        parts[i % workers.max(1)] += r.cells;
    }
    parts
}

/// Evaluates one pair end to end.
pub fn evaluate_pair(wl: &PairWorkload, scoring: &Scoring) -> PairEval {
    // Sequential LASTZ reference (with its sequential work reduction).
    let seq_cfg = DriverConfig {
        record_extensions: true,
        ..DriverConfig::gapped(scoring.clone())
    };
    let seq = sequential_gapped(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &seq_cfg);

    let cpu = CpuModel::ryzen_3950x();
    let seq_model_s = cpu.sequential_time(seq.stats.total_cells);
    let multicore_s = cpu.multicore_time(&partition_cells(&seq.records, 32));

    // Feng GPU baseline: per-side search statistics from the same run.
    let side_stats: Vec<fastz_align::ExtensionStats> = seq
        .records
        .iter()
        .flat_map(|r| [r.left_stats, r.right_stats])
        .collect();
    let gpus = paper_gpus();
    let baseline_s = [
        baseline_total_time(&gpus[0], &side_stats),
        baseline_total_time(&gpus[1], &side_stats),
        baseline_total_time(&gpus[2], &side_stats),
    ];

    // FastZ: one functional run, re-priced per device.
    let fz_cfg = FastZConfig {
        flags: OptFlags::fastz(),
        ..FastZConfig::new(scoring.clone(), gpus[2].clone())
    };
    let fastz = run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &fz_cfg);
    let fastz_s = [
        fastz.retime(&gpus[0], fz_cfg.flags.streams).total(),
        fastz.retime(&gpus[1], fz_cfg.flags.streams).total(),
        fastz.modeled_time_s,
    ];

    PairEval {
        label: wl.pair.label.to_string(),
        seeds: wl.anchors.len(),
        seq_cells: seq.stats.total_cells,
        seq_model_s,
        seq_wall_s: seq.stats.wall_time.as_secs_f64(),
        multicore_s,
        baseline_s,
        fastz_s,
        fastz,
        records: seq.records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::{within_genus_pairs, Scale};

    #[test]
    fn evaluate_smallest_pair() {
        let opts = HarnessOpts {
            scale: Scale::TEST,
            max_anchors: 400,
            ..HarnessOpts::default()
        };
        let pair = &within_genus_pairs()[8]; // D1: no huge segments, fastest
        let wl = PairWorkload::build(pair, &opts);
        assert!(!wl.anchors.is_empty());
        let eval = evaluate_pair(&wl, &Scoring::bench_scaled());
        assert!(eval.seq_cells > 0);
        assert!(eval.seq_model_s > 0.0);
        // Shape invariants at unit-test scale (the fixed host-side
        // "other" cost dominates tiny workloads, so absolute speedup
        // ordering vs the multicore model is asserted at bench scale by
        // the fig7 harness): FastZ beats sequential on its GPU phases,
        // multicore beats sequential, and the Feng baseline never beats
        // FastZ.
        let fz_gpu_only = eval.seq_model_s / (eval.fastz_s[2] - eval.fastz.other_s).max(1e-12);
        assert!(fz_gpu_only > 5.0, "gpu-only {fz_gpu_only}");
        assert!(eval.fastz_speedup(2) > 1.0);
        assert!(eval.multicore_speedup() > 1.0);
        assert!(eval.baseline_speedup(2) < eval.fastz_speedup(2));
    }

    #[test]
    fn partition_cells_sums_preserved() {
        let opts = HarnessOpts {
            scale: Scale::TEST,
            max_anchors: 200,
            ..HarnessOpts::default()
        };
        let wl = PairWorkload::build(&within_genus_pairs()[8], &opts);
        let eval = evaluate_pair(&wl, &Scoring::bench_scaled());
        let parts = partition_cells(&eval.records, 8);
        let total: u64 = parts.iter().sum();
        let expect: u64 = eval.records.iter().map(|r| r.cells).sum();
        assert_eq!(total, expect);
    }
}
