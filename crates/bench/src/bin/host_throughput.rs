//! Host-throughput benchmark: work-stealing dispatch vs static chunking.
//!
//! Builds a deliberately imbalanced corpus — a handful of long 32768-bin
//! seeds clustered at the *front* of the anchor list, followed by
//! hundreds of eager-class seeds — so the legacy static chunking strands
//! every expensive problem in worker 0's home chunk while the remaining
//! workers idle. The harness then:
//!
//! 1. verifies the determinism contract: the report — alignments, bin
//!    counts, work counters, and the modeled GPU time's exact bits — is
//!    identical across `sim_threads` ∈ {1, N} and both dispatch modes;
//! 2. measures host wall-clock for `HostDispatch::Static` against
//!    `HostDispatch::Stealing` at the same thread count (best-of-N,
//!    interleaved repeats);
//! 3. times every pool task serially with the same engine calls the
//!    pipeline issues and projects both dispatchers' critical paths
//!    (static home chunks vs the stealing dispatcher's greedy list
//!    schedule) — the speedup a host with ≥N real cores realizes.
//!
//! Results land in `BENCH_host.json`. The measured ratio is reported as
//! the headline speedup whenever the host has real parallelism; on a
//! single-core runner both modes serialize to the same total work, so
//! the critical-path projection is reported instead (and labeled as
//! such). In `--check` mode (CI smoke) the corpus shrinks and the run
//! fails if stealing *regresses* more than 10% against static chunking.

use std::time::Instant;

use fastz_core::{
    run_fastz, warp_extend_in, FastZConfig, FastZReport, HostDispatch, OptFlags, WarpConfig,
};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, SharedMem};
use fastz_seed::Anchor;

/// Repeat-region length shared verbatim by target and query; heavy
/// anchors sit at its centre so both extension sides stay homologous.
const HEAVY_REGION: usize = 22_000;
/// Anchor window span handed to the pipeline.
const SEED_SPAN: usize = 16;

struct Args {
    check: bool,
    threads: usize,
    repeats: usize,
    heavy: Option<usize>,
    light: Option<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        threads: 8,
        repeats: 5,
        heavy: None,
        light: None,
        out: "BENCH_host.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--check" => args.check = true,
            "--threads" => args.threads = grab().parse().expect("--threads"),
            "--repeats" => args.repeats = grab().parse().expect("--repeats"),
            "--heavy" => args.heavy = Some(grab().parse().expect("--heavy")),
            "--light" => args.light = Some(grab().parse().expect("--light")),
            "--out" => args.out = grab(),
            other => panic!("unknown argument {other} (see --check/--threads/--repeats/--out)"),
        }
    }
    args
}

/// `xorshift64*` — deterministic corpus without any RNG dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn random_codes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| ((xorshift(&mut state) >> 33) & 3) as u8)
        .collect()
}

/// The imbalanced corpus: `heavy` 32768-bin seeds first, then `light`
/// eager-class seeds over unrelated sequence.
fn corpus(heavy: usize, light: usize) -> (Sequence, Sequence, Vec<Anchor>) {
    let light_len = 2_000 + light * 140;
    let shared: Vec<u8> = (0..HEAVY_REGION).map(|i| (i % 4) as u8).collect();
    let mut t = shared.clone();
    t.extend(random_codes(light_len, 0x7A26));
    let mut q = shared;
    q.extend(random_codes(light_len, 0x9E37));
    let mut anchors = Vec::with_capacity(heavy + light);
    for i in 0..heavy {
        let p = (HEAVY_REGION / 2 + i * 32) as u32;
        anchors.push(Anchor {
            target_pos: p,
            query_pos: p,
        });
    }
    for i in 0..light {
        let p = (HEAVY_REGION + 1_000 + i * 140) as u32;
        anchors.push(Anchor {
            target_pos: p,
            query_pos: p,
        });
    }
    (
        Sequence::from_codes("bench-target", t),
        Sequence::from_codes("bench-query", q),
        anchors,
    )
}

/// Extension depth: every heavy seed's optimal extent lands in the
/// 32768 bin (extent > 8192) without leaving the repeat region.
const MAX_EXTENSION: usize = 9_000;

fn config(threads: usize, dispatch: HostDispatch) -> FastZConfig {
    FastZConfig {
        sim_threads: threads,
        host_dispatch: dispatch,
        max_extension: MAX_EXTENSION,
        ..FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere())
    }
}

/// Everything observable in a report except host wall-clock, as one
/// comparable string (float fields by exact bits).
fn fingerprint(r: &FastZReport) -> String {
    format!(
        "alignments={:?} bins={:?} modeled_bits={} other_bits={} stats={:?} \
         timeline={:?} ikernels={:?} ekernels={:?} alloc={:?}/{:?}",
        r.alignments,
        r.bin_counts,
        r.modeled_time_s.to_bits(),
        r.other_s.to_bits(),
        r.stats,
        r.timeline,
        r.inspector_kernels,
        r.executor_kernels,
        r.inspector_alloc_bytes,
        r.executor_alloc_bytes,
    )
}

fn run_once(
    t: &Sequence,
    q: &Sequence,
    anchors: &[Anchor],
    threads: usize,
    dispatch: HostDispatch,
) -> (FastZReport, f64) {
    let start = Instant::now();
    let report = run_fastz(t, q, anchors, SEED_SPAN, &config(threads, dispatch));
    (report, start.elapsed().as_secs_f64())
}

/// The (target, query) slices of one problem side — the pipeline's own
/// geometry: reversed prefixes on the left, suffixes on the right.
fn side(codes: &[u8], pos: usize, left: bool) -> Vec<u8> {
    if left {
        codes[pos.saturating_sub(MAX_EXTENSION)..pos]
            .iter()
            .rev()
            .copied()
            .collect()
    } else {
        let end = codes.len().min(pos + SEED_SPAN + MAX_EXTENSION);
        codes[pos + SEED_SPAN..end].to_vec()
    }
}

/// Serial per-task durations for both pool phases, measured with the
/// same engine calls the pipeline issues: the full inspector task list
/// (in dispatch order) and the heavy executor bin (trimmed, traceback
/// recorded into one reused buffer, like a single worker's arena).
fn measure_tasks(t: &Sequence, q: &Sequence, anchors: &[Anchor]) -> (Vec<f64>, Vec<f64>) {
    let scoring = Scoring::bench_scaled();
    let flags = OptFlags::fastz();
    let insp_cfg = WarpConfig::inspector(&flags);
    let device = DeviceSpec::rtx3080_ampere();
    let mut sm = SharedMem::for_device(&device);
    let mut tbm = Vec::new();
    let mut insp = Vec::with_capacity(anchors.len() * 2);
    let mut trims = Vec::new();
    for (idx, a) in anchors
        .iter()
        .flat_map(|a| [(0usize, a), (1usize, a)])
        .enumerate()
    {
        let (lr, a) = a;
        let ts = side(t.codes(), a.target_pos as usize, lr == 0);
        let qs = side(q.codes(), a.query_pos as usize, lr == 0);
        sm.clear();
        let start = Instant::now();
        let r = warp_extend_in(&ts, &qs, &scoring, &insp_cfg, &mut sm, &mut tbm);
        insp.push(start.elapsed().as_secs_f64());
        // Sides the eager window can't resolve go to the executor.
        if r.best_i.max(r.best_j) > 16 {
            trims.push((idx, r.best_i, r.best_j));
        }
    }
    let mut exec = Vec::with_capacity(trims.len());
    for (idx, best_i, best_j) in trims {
        let a = &anchors[idx / 2];
        let lr = idx % 2;
        let ts = side(t.codes(), a.target_pos as usize, lr == 0);
        let qs = side(q.codes(), a.query_pos as usize, lr == 0);
        let cfg = WarpConfig::executor(&flags, best_i, best_j);
        sm.clear();
        let start = Instant::now();
        warp_extend_in(&ts, &qs, &scoring, &cfg, &mut sm, &mut tbm);
        exec.push(start.elapsed().as_secs_f64());
    }
    (insp, exec)
}

/// Phase critical path under static home-chunk assignment: the busiest
/// worker's share.
fn static_critical_path(durs: &[f64], workers: usize) -> f64 {
    let chunk = durs.len().div_ceil(workers);
    durs.chunks(chunk.max(1))
        .map(|c| c.iter().sum())
        .fold(0.0, f64::max)
}

/// Phase critical path under the stealing dispatcher: tasks claimed in
/// index order by whichever worker frees first (greedy list schedule).
fn stealing_critical_path(durs: &[f64], workers: usize) -> f64 {
    let mut clocks = vec![0.0f64; workers.max(1)];
    for &d in durs {
        let w = clocks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        clocks[w] += d;
    }
    clocks.iter().fold(0.0f64, |m, &c| m.max(c))
}

fn main() {
    let args = parse_args();
    let (mut heavy, mut light) = if args.check { (4, 96) } else { (6, 250) };
    heavy = args.heavy.unwrap_or(heavy);
    light = args.light.unwrap_or(light);
    let repeats = if args.check {
        args.repeats.min(3)
    } else {
        args.repeats
    };
    let (t, q, anchors) = corpus(heavy, light);

    eprintln!(
        "host_throughput: {} heavy + {} light seeds, {} threads, {} repeats{}",
        heavy,
        light,
        args.threads,
        repeats,
        if args.check { " (check mode)" } else { "" },
    );

    // Determinism contract first: serial static vs pooled stealing must
    // agree on every observable byte before timings mean anything.
    let (r1, serial_wall) = run_once(&t, &q, &anchors, 1, HostDispatch::Stealing);
    let reference = fingerprint(&r1);
    for (threads, dispatch) in [
        (1, HostDispatch::Static),
        (args.threads, HostDispatch::Static),
        (args.threads, HostDispatch::Stealing),
    ] {
        let (r, _) = run_once(&t, &q, &anchors, threads, dispatch);
        assert_eq!(
            fingerprint(&r),
            reference,
            "report diverged at sim_threads={threads} dispatch={dispatch:?}"
        );
    }
    let heavy_bin = r1.bin_counts.bins[fastz_core::BIN_BOUNDS.len() - 1];
    assert_eq!(heavy_bin, heavy, "heavy seeds missed the 32768 bin");
    eprintln!(
        "determinism: OK (reports identical across sim_threads {{1, {}}} and both dispatch \
         modes; serial reference {serial_wall:.3}s)",
        args.threads
    );

    // Interleaved best-of-N wall clock, one untimed warmup per mode.
    run_once(&t, &q, &anchors, args.threads, HostDispatch::Static);
    run_once(&t, &q, &anchors, args.threads, HostDispatch::Stealing);
    let mut static_wall = f64::INFINITY;
    let mut pooled_wall = f64::INFINITY;
    for rep in 0..repeats {
        let (_, ws) = run_once(&t, &q, &anchors, args.threads, HostDispatch::Static);
        let (_, wp) = run_once(&t, &q, &anchors, args.threads, HostDispatch::Stealing);
        static_wall = static_wall.min(ws);
        pooled_wall = pooled_wall.min(wp);
        eprintln!("  rep {rep}: static {ws:.3}s  stealing {wp:.3}s");
    }
    let wall_ratio = static_wall / pooled_wall;

    // Critical-path projection from serial per-task times.
    let (insp_durs, exec_durs) = measure_tasks(&t, &q, &anchors);
    let static_cp = static_critical_path(&insp_durs, args.threads)
        + static_critical_path(&exec_durs, args.threads);
    let stealing_cp = stealing_critical_path(&insp_durs, args.threads)
        + stealing_critical_path(&exec_durs, args.threads);
    let projected = static_cp / stealing_cp;
    eprintln!(
        "critical path at {} workers: static {static_cp:.3}s  stealing {stealing_cp:.3}s  \
         (projected {projected:.2}x from {} inspector + {} executor task timings)",
        args.threads,
        insp_durs.len(),
        exec_durs.len(),
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // A single core serializes both dispatchers to the same total work,
    // so the measured wall ratio says nothing about the dispatcher; the
    // headline falls back to the projection and says so.
    let (speedup, source) = if cores > 1 {
        (wall_ratio, "measured wall-clock")
    } else {
        (projected, "critical-path projection (single-core host)")
    };
    let json = format!(
        "{{\n  \"bench\": \"host_throughput\",\n  \"mode\": \"{}\",\n  \
         \"threads\": {},\n  \"repeats\": {},\n  \"host_parallelism\": {},\n  \
         \"corpus\": {{ \"heavy_32768_seeds\": {}, \"eager_seeds\": {}, \"problems\": {} }},\n  \
         \"measured\": {{ \"serial_wall_s\": {:.6}, \"static_wall_s\": {:.6}, \
         \"pooled_wall_s\": {:.6}, \"wall_ratio\": {:.3} }},\n  \
         \"projected\": {{ \"static_critical_path_s\": {:.6}, \
         \"stealing_critical_path_s\": {:.6}, \"speedup\": {:.3}, \
         \"basis\": \"greedy list schedule of measured serial per-task times at {} workers\" }},\n  \
         \"speedup\": {:.3},\n  \"speedup_source\": \"{}\",\n  \
         \"reports_identical\": true,\n  \
         \"methodology\": \"Imbalanced corpus: {} seeds whose optimal extent lands in the 32768 bin sit at the front of the anchor list over a period-4 repeat region, followed by {} eager-class seeds over unrelated sequence, so HostDispatch::Static (the legacy per-phase chunking, reproduced in-process by the pool) strands every expensive problem in worker 0's home chunk while HostDispatch::Stealing redistributes them. Reports (alignments, bin counts, counters, modeled-time bits) verified identical across sim_threads in {{1, {}}} and both dispatch modes before timing; only host wall-clock may differ. Wall-clock is best-of-{} interleaved runs of run_fastz after one warmup per mode. The projection times every pool task serially with the pipeline's own engine calls and compares the busiest static home chunk against a greedy list schedule — what the stealing dispatcher executes — at {} workers; it is the headline figure only when the host cannot run the workers in parallel, in which case the measured ratio necessarily sits near 1.0 and the CI gate only rejects regressions (pooled > 1.10x static).\"\n}}\n",
        if args.check { "check" } else { "full" },
        args.threads,
        repeats,
        cores,
        heavy,
        light,
        (heavy + light) * 2,
        serial_wall,
        static_wall,
        pooled_wall,
        wall_ratio,
        static_cp,
        stealing_cp,
        projected,
        args.threads,
        speedup,
        source,
        heavy,
        light,
        args.threads,
        repeats,
        args.threads,
    );
    std::fs::write(&args.out, json).expect("write BENCH_host.json");
    println!(
        "measured {wall_ratio:.2}x (static {static_wall:.3}s / stealing {pooled_wall:.3}s), \
         projected {projected:.2}x at {} workers  -> {}",
        args.threads, args.out
    );

    if args.check && pooled_wall > static_wall * 1.10 {
        eprintln!(
            "FAIL: stealing dispatch regressed {:.1}% vs static chunking (gate: 10%)",
            (pooled_wall / static_wall - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}
