//! Sensitivity comparison (extends Figure 2): exact gapped y-drop vs the
//! ungapped filter vs Darwin-WGA-style banded extension.
//!
//! The paper argues twice about sensitivity: ungapped filtering drops
//! alignments that need gaps (Fig 2), and banded extension (Darwin-WGA's
//! heuristic, §2.1/§2.3) can miss optima that stray off-diagonal —
//! which is why FastZ does the exact search. This harness quantifies
//! both on one benchmark pair.

use fastz_align::{
    sequential_banded, sequential_gapped, sequential_ungapped_filtered, DriverConfig, DriverReport,
};
use fastz_bench::{HarnessOpts, PairWorkload, Table};
use fastz_genome::{within_genus_pairs, Scoring};

fn recall(reference: &DriverReport, candidate: &DriverReport) -> (usize, usize) {
    let covered = reference
        .alignments
        .iter()
        .filter(|r| {
            candidate.alignments.iter().any(|c| {
                c.target_start <= r.target_start
                    && c.target_end >= r.target_end
                    && c.score * 10 >= r.score * 9
            })
        })
        .count();
    (covered, reference.alignments.len())
}

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();
    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "Sensitivity comparison on {} (scale 1/{})\n",
        pair.label, opts.scale.divisor
    );

    let wl = PairWorkload::build(&pair, &opts);
    let cfg = DriverConfig::gapped(scoring);

    let gapped = sequential_gapped(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg);
    let ungapped =
        sequential_ungapped_filtered(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg);
    let banded16 = sequential_banded(&wl.target, &wl.query, &wl.anchors, wl.seed_span, 16, &cfg);
    let banded64 = sequential_banded(&wl.target, &wl.query, &wl.anchors, wl.seed_span, 64, &cfg);

    let mut t = Table::new(&[
        "variant",
        "alignments",
        "total score",
        "DP cells",
        "recall vs gapped",
    ]);
    for (name, rep) in [
        ("gapped (exact, FastZ/LASTZ)", &gapped),
        ("ungapped-filtered", &ungapped),
        ("banded ±16 (Darwin-WGA-ish)", &banded16),
        ("banded ±64", &banded64),
    ] {
        let (covered, total) = recall(&gapped, rep);
        t.row(vec![
            name.to_string(),
            rep.alignments.len().to_string(),
            rep.alignments
                .iter()
                .map(|a| a.score as i64)
                .sum::<i64>()
                .to_string(),
            rep.stats.total_cells.to_string(),
            format!("{covered}/{total}"),
        ]);
    }
    t.print();
    println!(
        "\nexact gapped search is the sensitivity reference; the heuristics trade\n\
         recall for fewer DP cells (paper §2.1, §2.3, Fig 2)."
    );
}
