//! Table 2: alignment-length distribution of the benchmark seeds.
//!
//! For each within-genus pair, runs the FastZ inspector over the seed
//! workload and classifies every seed by its optimal-alignment extent:
//! eager traceback (≤16 bp) or load-balancing bins 1-4
//! (≤512/2048/8192/32768). The paper's row shape: 75-80 % eager, most of
//! the rest in bin 1, thin decreasing bins 2-4, ordered by bin-4 count.

use fastz_bench::{evaluate_pair, HarnessOpts, PairWorkload, Table};
use fastz_genome::{within_genus_pairs, Scoring};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();

    println!(
        "Table 2: alignment length distribution ({} scale, ≤{} seeds/pair)\n",
        match opts.scale.divisor {
            500 => "test",
            100 => "bench",
            20 => "large",
            _ => "custom",
        },
        opts.max_anchors
    );

    let mut t = Table::new(&[
        "benchmark",
        "seeds",
        "eager-tb",
        "bin1",
        "bin2",
        "bin3",
        "bin4",
        "eager%",
    ]);
    for pair in within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        let wl = PairWorkload::build(&pair, &opts);
        let eval = evaluate_pair(&wl, &scoring);
        let b = &eval.fastz.bin_counts;
        t.row(vec![
            pair.label.to_string(),
            b.total().to_string(),
            b.eager.to_string(),
            b.bins[0].to_string(),
            b.bins[1].to_string(),
            b.bins[2].to_string(),
            b.bins[3].to_string(),
            format!("{:.1}%", 100.0 * b.eager_fraction()),
        ]);
        if opts.verbose {
            eprintln!(
                "{}: {} overflow, seq cells {}, {} alignments",
                pair.label,
                b.overflow,
                eval.seq_cells,
                eval.fastz.alignments.len()
            );
        }
    }
    t.print();
    println!(
        "\npaper (per 1M seeds): eager 757k-820k (75-80%), bin1 180k-241k,\n\
         bin2 13-1225, bin3 1-208, bin4 0-25, ordered by decreasing bin4."
    );
}
