//! Developer probe: planted-segment class counts per catalog pair and
//! candidate RNG seed, used to pick deterministic seeds whose draws
//! reproduce Table 2's cross-benchmark bin-4 ordering. Not part of the
//! paper's tables/figures.

use fastz_bench::HarnessOpts;
use fastz_genome::{evolve::generate_pair, within_genus_pairs};

fn main() {
    let opts = HarnessOpts::from_env();
    for pair in within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        print!("{:<9}", pair.label);
        for seed_off in 0..8u64 {
            let mut params = pair.pair_params(opts.scale);
            params.rng_seed = pair.rng_seed.wrapping_add(seed_off * 7919);
            let g = match std::panic::catch_unwind(|| generate_pair(&params)) {
                Ok(g) => g,
                Err(_) => {
                    print!("  [+{seed_off}: overbudget]");
                    continue;
                }
            };
            let huge = g.truth.iter().filter(|s| s.class == "huge").count();
            let large = g.truth.iter().filter(|s| s.class == "large").count();
            let huge_bp: usize = g
                .truth
                .iter()
                .filter(|s| s.class == "huge")
                .map(|s| s.target_len)
                .sum();
            print!("  [+{seed_off}: h{huge}/l{large}/{}k]", huge_bp / 1000);
        }
        println!();
    }
}
