//! Figure 2: gapped versus ungapped alignment sensitivity.
//!
//! Runs the same seed workload through (a) the full gapped pipeline and
//! (b) the ungapped-filtered pipeline (x-drop HSP filter before gapped
//! extension — "ungapped LASTZ"), then compares the alignments found.
//! The paper's claim: the gapped version finds more, longer,
//! higher-scoring alignments (e.g. 41 vs 17 alignments scoring above
//! 10,000 on the C. elegans/C. briggsae million-seed workload).
//! Scatter data (length, score) for both variants is written to TSV
//! files for plotting.

use fastz_align::{sequential_gapped, sequential_ungapped_filtered, DriverConfig, DriverReport};
use fastz_bench::{HarnessOpts, Table};
use fastz_genome::evolve::generate_pair;
use fastz_genome::{within_genus_pairs, HomologyClass, MutationRates, Scoring};
use fastz_seed::{Workload, WorkloadParams};
use std::io::Write;

fn summarize(name: &str, report: &DriverReport, thresholds: &[i32], t: &mut Table) {
    let lens: Vec<usize> = report.alignments.iter().map(|a| a.length()).collect();
    let max_len = lens.iter().max().copied().unwrap_or(0);
    let mean_len = if lens.is_empty() {
        0.0
    } else {
        lens.iter().sum::<usize>() as f64 / lens.len() as f64
    };
    let mut row = vec![
        name.to_string(),
        report.alignments.len().to_string(),
        format!("{mean_len:.0}"),
        max_len.to_string(),
    ];
    for &thr in thresholds {
        let n = report.alignments.iter().filter(|a| a.score > thr).count();
        row.push(n.to_string());
    }
    t.row(row);
}

fn write_scatter(path: &str, report: &DriverReport) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "length\tscore")?;
    for a in &report.alignments {
        writeln!(f, "{}\t{}", a.length(), a.score)?;
    }
    f.flush()
}

fn main() {
    let opts = HarnessOpts::from_env();
    // LASTZ's real thresholds: hspthresh = gappedthresh = 3000. The
    // performance harnesses use the scaled 1500; sensitivity is measured
    // at the real operating point.
    let mut scoring = Scoring::bench_scaled();
    scoring.hsp_threshold = 3000;
    scoring.gapped_threshold = 3000;

    // The paper's Figure 2 uses a C. elegans / C. briggsae subsequence.
    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "Figure 2: gapped vs ungapped alignments on {} (scale 1/{})\n",
        pair.label, opts.scale.divisor
    );

    // The paper's Figure 2 pair: the high-scoring alignments in real
    // elegans/briggsae comparisons are ancient, indel-dense homologies —
    // exactly what the ungapped filter loses. We age the medium/large/
    // huge classes of this pair accordingly (the performance benchmarks
    // use the default mixture; see DESIGN.md).
    let mut params = pair.pair_params(opts.scale);
    for c in params.classes.iter_mut() {
        if matches!(c.name, "medium" | "large" | "huge") {
            c.rates = MutationRates::aged();
        }
    }
    let _: &Vec<HomologyClass> = &params.classes;
    let generated = generate_pair(&params);
    let wl = Workload::build(
        &generated.target,
        &generated.query,
        &WorkloadParams {
            max_anchors: opts.max_anchors,
            ..WorkloadParams::default()
        },
    );
    println!("{} seeds\n", wl.anchors.len());

    let cfg = DriverConfig::gapped(scoring);
    let span = wl.shape.span();
    let gapped = sequential_gapped(&generated.target, &generated.query, &wl.anchors, span, &cfg);
    let ungapped =
        sequential_ungapped_filtered(&generated.target, &generated.query, &wl.anchors, span, &cfg);

    let thresholds = [5_000, 10_000, 20_000];
    let mut t = Table::new(&[
        "variant",
        "alignments",
        "mean-len",
        "max-len",
        ">5k",
        ">10k",
        ">20k",
    ]);
    summarize("gapped", &gapped, &thresholds, &mut t);
    summarize("ungapped-filtered", &ungapped, &thresholds, &mut t);
    t.print();

    // Sensitivity check the paper highlights: every high-scoring ungapped
    // alignment should also be found by the gapped variant, not vice
    // versa.
    let missed = ungapped
        .alignments
        .iter()
        .filter(|u| {
            !gapped.alignments.iter().any(|g| {
                g.target_start <= u.target_start
                    && g.target_end >= u.target_end
                    && g.score >= u.score
            })
        })
        .count();
    println!(
        "\nungapped alignments not covered by a gapped alignment: {missed} / {}",
        ungapped.alignments.len()
    );
    println!(
        "gapped finds {} alignments the ungapped filter never extends",
        gapped
            .alignments
            .len()
            .saturating_sub(ungapped.alignments.len())
    );

    write_scatter("fig2_gapped.tsv", &gapped).expect("write fig2_gapped.tsv");
    write_scatter("fig2_ungapped.tsv", &ungapped).expect("write fig2_ungapped.tsv");
    println!("\nscatter data written to fig2_gapped.tsv and fig2_ungapped.tsv");
    println!("paper: gapped finds >2x the alignments with score >10,000 (41 vs 17).");
}
