//! Figure 8: execution-time breakdown of FastZ on the Ampere GPU.
//!
//! For each within-genus benchmark, attributes FastZ's modeled time to
//! *inspector*, *executor*, and *other* (host prep, transfers, binning).
//! The paper's shape: inspector ≈ two-thirds (up to 79 %), executor
//! ≈ 10 %, other the remainder; benchmarks with fewer long (bin-4)
//! alignments spend relatively less in inspector/executor.

use fastz_bench::{evaluate_pair, HarnessOpts, PairWorkload, Table};
use fastz_genome::{within_genus_pairs, Scoring};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();

    println!(
        "Figure 8: FastZ execution-time breakdown on Ampere (scale 1/{})\n",
        opts.scale.divisor
    );

    let mut t = Table::new(&[
        "benchmark",
        "total (ms)",
        "inspector",
        "executor",
        "other",
        "bin4",
    ]);
    for pair in within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        let wl = PairWorkload::build(&pair, &opts);
        let eval = evaluate_pair(&wl, &scoring);
        let tl = &eval.fastz.timeline;
        t.row(vec![
            pair.label.to_string(),
            format!("{:.3}", tl.total() * 1e3),
            format!("{:.1}%", 100.0 * tl.fraction("inspector")),
            format!("{:.1}%", 100.0 * tl.fraction("executor")),
            format!("{:.1}%", 100.0 * tl.fraction("other")),
            eval.fastz.bin_counts.bins[3].to_string(),
        ]);
    }
    t.print();
    println!(
        "\npaper: inspector ~2/3 (up to 79%), executor ~10%, other the rest;\n\
         lower bin-4 counts shrink the inspector/executor components."
    );
}
