//! Persistent-index benchmark: warm artifact loads vs per-run rebuilds,
//! plus the single-table build's peak-memory accounting gate.
//!
//! Three measurements over one seeded genome:
//!
//! 1. **Cold build** — `ShardedSeedIndex::load_or_build` with no
//!    artifact on disk: index construction plus the atomic save.
//! 2. **Warm service** vs **per-run rebuild** at several request
//!    counts — a service front end acquiring the index once per request
//!    through the [`IndexCache`] (one disk load, then resident hits)
//!    against the pre-persistence behaviour of rebuilding the index for
//!    every request. The warm path must be at least [`WARM_GATE`]×
//!    faster at 8+ requests (a 10% tolerance below the promised 5×
//!    fails the run).
//! 3. **Peak build bytes** — the single-table counting-sort build's
//!    modeled transient peak vs the replaced staged build (full
//!    `(word, pos)` staging buffer + three `u32` tables) on the same
//!    index dimensions. The new accounting must be strictly smaller —
//!    the run fails otherwise.
//!
//! Anchors through the loaded index are checksum-verified against the
//! in-memory index before any timing is reported. Results land in
//! `BENCH_index.json`.

use std::time::Instant;

use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::Sequence;
use fastz_seed::{
    build_peak_bytes, legacy_build_peak_bytes, Anchor, IndexOrigin, SeedIndex, SeedShape,
    ShardedSeedIndex, Workload, WorkloadParams,
};
use fastz_serve::{AcquireOrigin, IndexCache, IndexCacheConfig};

/// Required warm-path speedup over per-run rebuilds at 8+ requests:
/// the promised 5× with a 10% regression margin.
const WARM_GATE: f64 = 5.0 * 0.9;

struct Args {
    repeats: usize,
    shards: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        repeats: 3,
        shards: 4,
        out: "BENCH_index.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--repeats" => args.repeats = grab().parse().expect("--repeats"),
            "--shards" => args.shards = grab().parse().expect("--shards"),
            "--out" => args.out = grab(),
            other => panic!("unknown argument {other} (see --repeats/--shards/--out)"),
        }
    }
    args
}

fn corpus() -> (Sequence, Sequence) {
    let pair = generate_pair(&PairParams {
        target_len: 160_000,
        query_len: 24_000,
        segments: 48,
        ..PairParams::small_demo("index-bench", 31)
    });
    (pair.target, pair.query)
}

/// FNV-1a over the anchor list, order-sensitive.
fn checksum(anchors: &[Anchor]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for a in anchors {
        for v in [a.target_pos as u64, a.query_pos as u64] {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

fn main() {
    let args = parse_args();
    let (target, query) = corpus();
    let shape = SeedShape::lastz_12of19();
    let params = WorkloadParams::default();
    let dir = std::env::temp_dir().join("fastz-bench-index");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench artifact dir");
    eprintln!(
        "index_build: {} bp target, {} shards, best of {}",
        target.len(),
        args.shards,
        args.repeats,
    );

    // Checksum first: anchors through a persisted-and-loaded index must
    // equal anchors through a fresh in-memory index.
    let fresh = SeedIndex::build(&target, shape.clone());
    let wl_mem = Workload::build_with_index(&fresh, &query, &params);
    let built = ShardedSeedIndex::build(&target, shape.clone(), args.shards).expect("build");
    built
        .save(&ShardedSeedIndex::artifact_path(
            &dir,
            &target,
            &shape,
            args.shards,
        ))
        .expect("save");
    let (loaded, origin) =
        ShardedSeedIndex::load_or_build(&dir, &target, shape.clone(), args.shards).expect("load");
    assert_eq!(origin, IndexOrigin::LoadedFromDisk, "artifact not reused");
    let wl_disk = Workload::build_with_index(&loaded, &query, &params);
    let mem_sum = checksum(&wl_mem.anchors);
    let disk_sum = checksum(&wl_disk.anchors);
    assert_eq!(
        mem_sum, disk_sum,
        "loaded index diverged from the in-memory index"
    );
    eprintln!(
        "checksum: OK ({mem_sum:016x}, {} anchors, {} index entries)",
        wl_mem.anchors.len(),
        loaded.len()
    );

    // 3. Peak-bytes accounting: the single-table build vs the replaced
    // staged build on this index's real dimensions.
    let n_windows = target.len() - (shape.span() - 1);
    let n_entries = fresh.len();
    let n_buckets = (fresh.heap_bytes() - n_entries * 16) / 4 - 1;
    let peak_now = build_peak_bytes(n_entries, n_buckets);
    let peak_before = legacy_build_peak_bytes(n_windows, n_entries, n_buckets);
    assert!(
        peak_now < peak_before,
        "single-table build peak {peak_now} B not below staged build {peak_before} B"
    );
    eprintln!(
        "build peak: {:.1} MiB now vs {:.1} MiB staged ({:.2}x less transient memory)",
        peak_now as f64 / (1 << 20) as f64,
        peak_before as f64 / (1 << 20) as f64,
        peak_before as f64 / peak_now as f64,
    );

    // 1. Cold build+save, best of N (artifact removed each repeat).
    let artifact = ShardedSeedIndex::artifact_path(&dir, &target, &shape, args.shards);
    let mut cold_s = f64::INFINITY;
    for _ in 0..args.repeats.max(1) {
        let _ = std::fs::remove_file(&artifact);
        let t0 = Instant::now();
        let (idx, origin) =
            ShardedSeedIndex::load_or_build(&dir, &target, shape.clone(), args.shards)
                .expect("cold build");
        assert_eq!(origin, IndexOrigin::Built);
        std::hint::black_box(idx.len());
        cold_s = cold_s.min(t0.elapsed().as_secs_f64());
    }

    // 2. Warm service vs per-run rebuild across request counts. The warm
    // side acquires through the IndexCache (first acquire loads the
    // artifact, the rest hit the resident index); the rebuild side
    // reconstructs the sharded index for every request, which is exactly
    // what every run paid before persistence.
    let request_counts = [1usize, 4, 8, 16];
    let mut rows = Vec::new();
    let mut gate_failed = false;
    for &requests in &request_counts {
        let mut warm_s = f64::INFINITY;
        let mut rebuild_s = f64::INFINITY;
        for _ in 0..args.repeats.max(1) {
            let mut cache = IndexCache::new(IndexCacheConfig {
                dir: Some(dir.clone()),
                shards: args.shards,
                device_speeds: vec![1.0; 3],
            });
            let t0 = Instant::now();
            for r in 0..requests {
                let got = cache.acquire(&target, shape.clone()).expect("acquire");
                assert_eq!(
                    got.origin,
                    if r == 0 {
                        AcquireOrigin::LoadedFromDisk
                    } else {
                        AcquireOrigin::Resident
                    }
                );
                std::hint::black_box(got.index.len());
            }
            warm_s = warm_s.min(t0.elapsed().as_secs_f64());

            let t1 = Instant::now();
            for _ in 0..requests {
                let idx =
                    ShardedSeedIndex::build(&target, shape.clone(), args.shards).expect("rebuild");
                std::hint::black_box(idx.len());
            }
            rebuild_s = rebuild_s.min(t1.elapsed().as_secs_f64());
        }
        let speedup = rebuild_s / warm_s;
        eprintln!(
            "{requests:>3} requests: warm {warm_s:.6} s vs rebuild {rebuild_s:.6} s \
             ({speedup:.1}x)"
        );
        if requests >= 8 && speedup < WARM_GATE {
            gate_failed = true;
        }
        rows.push(format!(
            "{{ \"requests\": {requests}, \"warm_s\": {warm_s:.9}, \
             \"rebuild_s\": {rebuild_s:.9}, \"speedup\": {speedup:.3} }}"
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"index_build\",\n  \"shards\": {},\n  \"repeats\": {},\n  \
         \"corpus\": {{ \"target_bp\": {}, \"query_bp\": {}, \"index_entries\": {}, \
         \"anchors\": {} }},\n  \"checksum\": \"{:016x}\",\n  \
         \"cold_build_s\": {:.9},\n  \"requests\": [\n    {}\n  ],\n  \
         \"build_peak_bytes\": {{ \"single_table\": {}, \"staged\": {}, \"ratio\": {:.4} }},\n  \
         \"gate\": {{ \"min_warm_speedup_at_8_requests\": {:.2}, \"passed\": {} }},\n  \
         \"methodology\": \"Seeded {} bp genome indexed under the 12-of-19 shape into {} \
         target-interval shards. Cold is load_or_build with the artifact removed (build + \
         checksummed atomic save), best of {}. For each request count, warm acquires the index \
         once per request through the serve IndexCache over a saved artifact (one validated disk \
         load, then resident hits, each acquire re-running the locality-aware shard rebalance), \
         while rebuild constructs the sharded index per request — the pre-persistence behaviour. \
         Anchors through the loaded index are checksum-verified against a fresh in-memory index \
         before timing. Peak build bytes compare the single-table counting-sort build (one u32 \
         table + entries) with the replaced staged build (word staging buffer + three tables) on \
         the same dimensions; the gate fails if the warm speedup at 8+ requests drops below \
         {:.2}x or the new peak is not strictly smaller.\"\n}}\n",
        args.shards,
        args.repeats,
        target.len(),
        query.len(),
        loaded.len(),
        wl_mem.anchors.len(),
        mem_sum,
        cold_s,
        rows.join(",\n    "),
        peak_now,
        peak_before,
        peak_now as f64 / peak_before as f64,
        WARM_GATE,
        !gate_failed,
        target.len(),
        args.shards,
        args.repeats,
        WARM_GATE,
    );
    std::fs::write(&args.out, &json).expect("write BENCH_index.json");
    println!(
        "cold build {cold_s:.4} s; warm gate {} (>= {WARM_GATE:.2}x at 8+ requests)  -> {}",
        if gate_failed { "FAILED" } else { "passed" },
        args.out
    );
    let _ = std::fs::remove_dir_all(&dir);

    if gate_failed {
        eprintln!("FAIL: warm index loads below the {WARM_GATE:.2}x speedup gate");
        std::process::exit(1);
    }
}
