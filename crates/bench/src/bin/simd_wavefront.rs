//! SIMD-wavefront benchmark: the host-vectorized warp backend vs the
//! lane-by-lane interpreter.
//!
//! The backends promise bit-identical *results* — the SIMD path is a
//! wall-clock optimization only — so the harness:
//!
//! 1. verifies the identity contract on a deterministic homologous
//!    corpus: inspector and (trimmed) executor runs must agree on the
//!    optimum, the work counters (hence modeled GPU time), explored
//!    extents, eager scripts, and executor edit scripts at every strip
//!    width, and a full `run_fastz` report must fingerprint identically
//!    under either backend;
//! 2. measures host wall-clock for both backends over the same corpus
//!    (interleaved best-of-N, one untimed warmup each) and derives
//!    per-DP-cell throughput from the engines' own cell counters.
//!
//! Results land in `BENCH_simd.json`. Unlike the dispatcher bench, the
//! vector speedup is per-thread, so the measured ratio is the headline
//! even on a single-core runner. In `--check` mode (CI smoke) the
//! corpus shrinks and the run fails if the SIMD backend *regresses*
//! more than 10% against the interpreter.

use std::time::Instant;

use fastz_core::{
    run_fastz, step_interpreter, step_simd, warp_extend_in, FastZConfig, FastZReport, OptFlags,
    StepIn, WarpConfig, WarpExtension, WavefrontBackend,
};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, Lanes, SharedMem, WARP_SIZE};
use fastz_seed::Anchor;

/// Strip widths swept by the identity phase (the timing phase runs the
/// default full warp).
const WIDTHS: [usize; 3] = [1, 8, 32];
/// Anchor window span handed to the pipeline in the report drill.
const SEED_SPAN: usize = 16;

struct Args {
    check: bool,
    pairs: usize,
    len: usize,
    repeats: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        check: false,
        pairs: 0, // 0 = pick by mode below
        len: 4_096,
        repeats: 5,
        out: "BENCH_simd.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--check" => args.check = true,
            "--pairs" => args.pairs = grab().parse().expect("--pairs"),
            "--len" => args.len = grab().parse().expect("--len"),
            "--repeats" => args.repeats = grab().parse().expect("--repeats"),
            "--out" => args.out = grab(),
            other => panic!("unknown argument {other} (see --check/--pairs/--len/--repeats/--out)"),
        }
    }
    args
}

/// `xorshift64*` — deterministic corpus without any RNG dependency.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn random_codes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| ((xorshift(&mut state) >> 33) & 3) as u8)
        .collect()
}

/// A homologous pair at ~98% identity: the extension stays deep for the
/// whole length, so the wavefront kernel dominates the run.
fn homologous_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let t = random_codes(len, seed);
    let mut q = t.clone();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for b in q.iter_mut() {
        if xorshift(&mut state).is_multiple_of(50) {
            *b = (*b + 1 + (xorshift(&mut state) % 3) as u8) & 3;
        }
    }
    (t, q)
}

/// Everything observable in one extension, as a comparable string.
fn ext_fingerprint(r: &WarpExtension) -> String {
    format!(
        "best=({},{},{}) counters={:?} explored=({},{}) eager={:?} ops={:?}",
        r.best_score,
        r.best_i,
        r.best_j,
        r.counters,
        r.explored_rows,
        r.explored_cols,
        r.eager_ops,
        r.ops,
    )
}

/// Everything observable in a pipeline report except host wall-clock.
fn report_fingerprint(r: &FastZReport) -> String {
    format!(
        "alignments={:?} bins={:?} modeled_bits={} stats={:?} ikernels={:?} ekernels={:?}",
        r.alignments,
        r.bin_counts,
        r.modeled_time_s.to_bits(),
        r.stats,
        r.inspector_kernels,
        r.executor_kernels,
    )
}

struct Corpus {
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
}

impl Corpus {
    fn build(pairs: usize, len: usize) -> Corpus {
        Corpus {
            pairs: (0..pairs)
                .map(|i| homologous_pair(len, 0xC0FF_EE00 + i as u64))
                .collect(),
        }
    }
}

/// Runs the whole corpus under `backend` (inspector + trimmed executor,
/// the pipeline's own call pattern) and returns (wall seconds, total DP
/// cells, per-extension fingerprints).
fn run_corpus(corpus: &Corpus, backend: WavefrontBackend, width: usize) -> (f64, u64, Vec<String>) {
    let scoring = Scoring::bench_scaled();
    let flags = OptFlags::fastz();
    let insp_cfg = WarpConfig::inspector(&flags)
        .with_strip_width(width)
        .with_backend(backend);
    let mut shared = SharedMem::for_device(&DeviceSpec::rtx3080_ampere());
    let mut tbm = Vec::new();
    let mut fingerprints = Vec::with_capacity(corpus.pairs.len() * 2);
    let mut cells = 0u64;
    let start = Instant::now();
    for (t, q) in &corpus.pairs {
        shared.clear();
        let insp = warp_extend_in(t, q, &scoring, &insp_cfg, &mut shared, &mut tbm);
        cells += insp.counters.cells;
        let trim = (insp.best_i, insp.best_j);
        fingerprints.push(ext_fingerprint(&insp));
        let exec_cfg = WarpConfig::executor(&flags, trim.0, trim.1)
            .with_strip_width(width)
            .with_backend(backend);
        shared.clear();
        let exec = warp_extend_in(t, q, &scoring, &exec_cfg, &mut shared, &mut tbm);
        cells += exec.counters.cells;
        fingerprints.push(ext_fingerprint(&exec));
    }
    (start.elapsed().as_secs_f64(), cells, fingerprints)
}

/// One `run_fastz` over an anchored slice of the corpus — the
/// pipeline-level identity drill.
fn run_pipeline(corpus: &Corpus, backend: WavefrontBackend) -> FastZReport {
    let (t, q) = &corpus.pairs[0];
    let anchors: Vec<Anchor> = (1..t.len() / 512)
        .map(|i| Anchor {
            target_pos: (i * 512) as u32,
            query_pos: (i * 512) as u32,
        })
        .collect();
    let mut cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    cfg.sim_threads = 1;
    cfg.backend = backend;
    run_fastz(
        &Sequence::from_codes("bench-target", t.clone()),
        &Sequence::from_codes("bench-query", q.clone()),
        &anchors,
        SEED_SPAN,
        &cfg,
    )
}

/// Times `steps` invocations of one step kernel on rotating synthetic
/// register files (full 32-lane window, live-score values), returning
/// (wall seconds, checksum). The checksum feeds the caller so the work
/// cannot be optimized away, and doubles as a cross-backend identity
/// check at the kernel granularity.
fn kernel_microbench(steps: usize, simd: bool) -> (f64, i64) {
    let mut state = 0x5EEDu64;
    let mut file = || -> Lanes<i32> {
        let mut v = [0i32; WARP_SIZE];
        for x in v.iter_mut() {
            *x = (xorshift(&mut state) % 20_000) as i32 - 10_000;
        }
        v
    };
    // A bank of precomputed register-file sets cycled through the run:
    // mixed live/pruned lanes like a real wavefront, no value drift.
    const BANK: usize = 64;
    let bank: Vec<[Lanes<i32>; 7]> = (0..BANK)
        .map(|_| {
            let mut set = [file(), file(), file(), file(), file(), file(), file()];
            for x in set[6].iter_mut() {
                *x -= 9_000; // thresholds: most lanes live, some pruned
            }
            set
        })
        .collect();
    let mut checksum = 0i64;
    let start = Instant::now();
    for k in 0..steps {
        let [s_left, i_left, s_diag, s_cur, d_cur, subst, threshold] = &bank[k % BANK];
        let inp = StepIn {
            s_left,
            i_left,
            s_diag,
            s_cur,
            d_cur,
            subst,
            threshold,
            // The checksum feedback makes each step serially dependent
            // on the last, so the bank cannot be memoized; the kernels
            // are bit-identical, so both backends see the same inputs.
            so_se: -35 - (checksum & 1) as i32,
            se: -5,
            lo: 0,
            hi: WARP_SIZE - 1,
        };
        let out = if simd {
            step_simd(&inp)
        } else {
            step_interpreter(&inp)
        };
        checksum = checksum
            .wrapping_add(out.s_store[k % WARP_SIZE] as i64)
            .wrapping_add(out.live_mask as i64);
    }
    (start.elapsed().as_secs_f64(), checksum)
}

fn main() {
    let args = parse_args();
    let pairs = match (args.pairs, args.check) {
        (0, true) => 6,
        (0, false) => 24,
        (n, _) => n,
    };
    let repeats = if args.check {
        args.repeats.min(3)
    } else {
        args.repeats
    };
    let corpus = Corpus::build(pairs, args.len);

    eprintln!(
        "simd_wavefront: {} pairs x {} bp, {} repeats{}",
        pairs,
        args.len,
        repeats,
        if args.check { " (check mode)" } else { "" },
    );

    // Identity contract first: every observable byte of every extension
    // must match across backends at every strip width, and the pipeline
    // report must fingerprint identically, before timings mean anything.
    for width in WIDTHS {
        let (_, cells_i, fp_i) = run_corpus(&corpus, WavefrontBackend::Interpreter, width);
        let (_, cells_s, fp_s) = run_corpus(&corpus, WavefrontBackend::Simd, width);
        assert_eq!(cells_i, cells_s, "cell counters diverged at width {width}");
        assert_eq!(fp_i, fp_s, "extensions diverged at width {width}");
    }
    let rep_i = run_pipeline(&corpus, WavefrontBackend::Interpreter);
    let rep_s = run_pipeline(&corpus, WavefrontBackend::Simd);
    assert_eq!(
        report_fingerprint(&rep_i),
        report_fingerprint(&rep_s),
        "pipeline reports diverged across backends"
    );
    eprintln!(
        "identity: OK ({} extensions x widths {:?} + pipeline report byte-identical)",
        pairs * 2,
        WIDTHS,
    );

    // Interleaved best-of-N wall clock at the full warp width, one
    // untimed warmup per backend.
    run_corpus(&corpus, WavefrontBackend::Interpreter, 32);
    run_corpus(&corpus, WavefrontBackend::Simd, 32);
    let mut interp_wall = f64::INFINITY;
    let mut simd_wall = f64::INFINITY;
    let mut cells = 0u64;
    for rep in 0..repeats {
        let (wi, c, _) = run_corpus(&corpus, WavefrontBackend::Interpreter, 32);
        let (ws, _, _) = run_corpus(&corpus, WavefrontBackend::Simd, 32);
        cells = c;
        interp_wall = interp_wall.min(wi);
        simd_wall = simd_wall.min(ws);
        eprintln!("  rep {rep}: interpreter {wi:.3}s  simd {ws:.3}s");
    }
    let speedup = interp_wall / simd_wall;
    let interp_gcups = cells as f64 / interp_wall / 1e9;
    let simd_gcups = cells as f64 / simd_wall / 1e9;

    // Kernel-granularity microbench: the per-step kernels in isolation
    // (the engine's gather/bookkeeping/sanitizer costs are shared by
    // both backends and dilute the end-to-end ratio above).
    let ksteps = if args.check { 400_000 } else { 4_000_000 };
    kernel_microbench(ksteps / 4, false);
    kernel_microbench(ksteps / 4, true);
    let mut kinterp_wall = f64::INFINITY;
    let mut ksimd_wall = f64::INFINITY;
    let mut kck = (0i64, 0i64);
    for _ in 0..repeats {
        let (wi, ci) = kernel_microbench(ksteps, false);
        let (ws, cs) = kernel_microbench(ksteps, true);
        kck = (ci, cs);
        kinterp_wall = kinterp_wall.min(wi);
        ksimd_wall = ksimd_wall.min(ws);
    }
    assert_eq!(
        kck.0, kck.1,
        "kernel microbench checksums diverged across backends"
    );
    let kernel_speedup = kinterp_wall / ksimd_wall;
    eprintln!(
        "kernel microbench: {ksteps} steps, interpreter {kinterp_wall:.3}s  simd {ksimd_wall:.3}s  \
         ({kernel_speedup:.2}x, checksums identical)"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let simd_isa = if cfg!(feature = "nightly-simd") {
        "std::simd (nightly feature)"
    } else {
        "portable fixed-array fallback (autovectorized)"
    };
    // Compile-time codegen width: the portable fallback vectorizes to
    // whatever the build's target features allow (CI builds the bench
    // with target-cpu=native to use the runner's full vector width).
    let target_isa = if cfg!(target_feature = "avx512f") {
        "avx512"
    } else if cfg!(target_feature = "avx2") {
        "avx2"
    } else if cfg!(target_feature = "sse2") {
        "sse2 (x86-64 baseline)"
    } else {
        "no explicit vector target features"
    };
    let json = format!(
        "{{\n  \"bench\": \"simd_wavefront\",\n  \"mode\": \"{}\",\n  \
         \"repeats\": {},\n  \"host_parallelism\": {},\n  \"simd_path\": \"{}\",\n  \
         \"target_isa\": \"{}\",\n  \
         \"corpus\": {{ \"pairs\": {}, \"pair_len\": {}, \"dp_cells\": {} }},\n  \
         \"identity\": {{ \"extensions\": {}, \"strip_widths\": {:?}, \
         \"pipeline_report\": true, \"identical\": true }},\n  \
         \"measured\": {{ \"interpreter_wall_s\": {:.6}, \"simd_wall_s\": {:.6}, \
         \"interpreter_gcups\": {:.4}, \"simd_gcups\": {:.4} }},\n  \
         \"kernel\": {{ \"steps\": {}, \"interpreter_wall_s\": {:.6}, \"simd_wall_s\": {:.6}, \
         \"speedup\": {:.3}, \"checksums_identical\": true }},\n  \
         \"speedup\": {:.3},\n  \"speedup_source\": \"measured end-to-end wall-clock \
         (per-thread vector speedup; valid on any core count)\",\n  \
         \"methodology\": \"Deterministic ~98%-identity homologous pairs keep the 32-lane wavefront deep for the whole extension, so the per-step kernel dominates. The identity phase runs inspector and trimmed-executor extensions under both backends at strip widths {:?} plus one full run_fastz workload, and asserts byte-identical fingerprints (optimum, work counters, explored extents, eager scripts, executor edit scripts, alignments, bin counts, modeled-time bits) before any timing. End-to-end wall-clock is best-of-{} interleaved corpus runs at the full warp width after one warmup per backend; throughput divides the engines' own DP-cell counters by wall time. The kernel block times step_interpreter vs step_simd in isolation on a serially-dependent synthetic wavefront (checksum-fed inputs, checksums asserted equal) — the engine's gather, traceback, sanitizer, and bookkeeping costs are shared by both backends and dilute the end-to-end ratio relative to this kernel ratio. Both speedups are per-thread host vectorization, so measured ratios are the headline even on a single-core runner; the --check gate only rejects regressions (simd > 1.10x interpreter end-to-end).\"\n}}\n",
        if args.check { "check" } else { "full" },
        repeats,
        cores,
        simd_isa,
        target_isa,
        pairs,
        args.len,
        cells,
        pairs * 2,
        WIDTHS,
        interp_wall,
        simd_wall,
        interp_gcups,
        simd_gcups,
        ksteps,
        kinterp_wall,
        ksimd_wall,
        kernel_speedup,
        speedup,
        WIDTHS,
        repeats,
    );
    std::fs::write(&args.out, json).expect("write BENCH_simd.json");
    println!(
        "measured {speedup:.2}x end-to-end (interpreter {interp_wall:.3}s / simd {simd_wall:.3}s, \
         {interp_gcups:.3} -> {simd_gcups:.3} GCUPS), {kernel_speedup:.2}x kernel  -> {}",
        args.out
    );

    if args.check && simd_wall > interp_wall * 1.10 {
        eprintln!(
            "FAIL: SIMD backend regressed {:.1}% vs interpreter (gate: 10%)",
            (simd_wall / interp_wall - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}
