//! Figure 11: FastZ performance on dissimilar (cross-genus) genome pairs.
//!
//! Runs the six cross-genus benchmarks (Figure 10) on the Ampere model.
//! The paper: dissimilar genomes have no alignments in the two largest
//! bins, spend relatively more time in the fast inspector, and therefore
//! speed up *more* than within-genus pairs (mean 137× vs 111×).

use fastz_bench::table::{mean, speedup};
use fastz_bench::{evaluate_pair, HarnessOpts, PairWorkload, Table};
use fastz_genome::{cross_genus_pairs, Scoring};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();

    println!(
        "Figure 11: FastZ on dissimilar (cross-genus) pairs, Ampere (scale 1/{})\n",
        opts.scale.divisor
    );

    let mut t = Table::new(&["benchmark", "seeds", "bin3", "bin4", "FastZ-Amp"]);
    let mut all = Vec::new();
    for pair in cross_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        let wl = PairWorkload::build(&pair, &opts);
        let eval = evaluate_pair(&wl, &scoring);
        let s = eval.fastz_speedup(2);
        all.push(s);
        t.row(vec![
            pair.label.to_string(),
            eval.seeds.to_string(),
            eval.fastz.bin_counts.bins[2].to_string(),
            eval.fastz.bin_counts.bins[3].to_string(),
            speedup(s),
        ]);
        if opts.verbose {
            eprintln!(
                "{}: inspector {:.1}%, executor {:.1}%",
                pair.label,
                100.0 * eval.fastz.timeline.fraction("inspector"),
                100.0 * eval.fastz.timeline.fraction("executor"),
            );
        }
    }
    t.row(vec![
        "MEAN".into(),
        "".into(),
        "".into(),
        "".into(),
        speedup(mean(&all)),
    ]);
    t.print();

    println!(
        "\npaper: cross-genus mean 137x vs within-genus 111x on Ampere;\n\
         no alignments fall in the two largest size bins."
    );
}
