//! Service-throughput benchmark: cross-request batched binning vs
//! per-request dispatch, plus the fault-free service overhead gate.
//!
//! Three measurements over one seeded corpus:
//!
//! 1. **Batched vs per-request executor schedule** — the corpus splits
//!    into many small requests whose individual bin launches are ragged
//!    (each request strands a handful of tasks per length bin). The
//!    service's [`ServeReport`] carries both modeled executor times:
//!    `solo_exec_s` (every request dispatching its own launches) and
//!    `batched_exec_s` (the wave's tasks merged into shared per-bin
//!    launches). Batching must win — the run fails otherwise.
//! 2. **Fault-free service overhead** — one request holding the whole
//!    corpus through [`AlignService`] vs the same corpus through plain
//!    `run_fastz`, best-of-N host wall clock. The service machinery
//!    (queue, virtual clock, bin packer, wave timing) must cost ≤ 2%.
//! 3. **Checksum verification** — the deduped union of the served
//!    requests' alignments must checksum-match the direct run before
//!    any timing is reported.
//!
//! Results land in `BENCH_serve.json`.

use std::time::Instant;

use fastz_align::{dedupe_alignments, Alignment};
use fastz_core::{run_fastz, FastZConfig};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::DeviceSpec;
use fastz_seed::{Anchor, Workload, WorkloadParams};
use fastz_serve::{AlignRequest, AlignService, ServeConfig};

const GATE: f64 = 0.02;

struct Args {
    repeats: usize,
    requests: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        repeats: 5,
        requests: 12,
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--repeats" => args.repeats = grab().parse().expect("--repeats"),
            "--requests" => args.requests = grab().parse().expect("--requests"),
            "--out" => args.out = grab(),
            other => panic!("unknown argument {other} (see --repeats/--requests/--out)"),
        }
    }
    args
}

fn corpus() -> (Sequence, Sequence, Vec<Anchor>, usize) {
    let pair = generate_pair(&PairParams {
        target_len: 48_000,
        query_len: 48_000,
        segments: 96,
        ..PairParams::small_demo("serve-bench", 23)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 600,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    (pair.target, pair.query, wl.anchors, span)
}

/// FNV-1a over every alignment's coordinates, score, and op string —
/// order-sensitive, so both sides are deduped (which sorts) first.
fn checksum(alignments: &[Alignment]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for a in alignments {
        eat(a.target_start as u64);
        eat(a.target_end as u64);
        eat(a.query_start as u64);
        eat(a.query_end as u64);
        eat(a.score as u64);
        eat(a.ops.len() as u64);
    }
    h
}

fn main() {
    let args = parse_args();
    let (target, query, anchors, span) = corpus();
    let cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    eprintln!(
        "serve_throughput: {} anchors over {} + {} bp, {} requests, best of {}",
        anchors.len(),
        target.len(),
        query.len(),
        args.requests,
        args.repeats,
    );

    // Quiet service sized to admit everything: admission never sheds, so
    // the only difference between the two executor columns is the
    // schedule itself.
    let mut scfg = ServeConfig::new(cfg.clone());
    scfg.admission.queue_cap = args.requests.max(scfg.admission.queue_cap);
    scfg.admission.work_budget = f64::INFINITY;
    scfg.wave = args.requests.max(1);
    let per = anchors.len().div_ceil(args.requests).max(1);
    let requests: Vec<AlignRequest> = anchors
        .chunks(per)
        .enumerate()
        .map(|(i, chunk)| AlignRequest::new(i as u64, chunk.to_vec(), span))
        .collect();

    // Checksum first: timing a service that loses or perturbs results
    // would be meaningless.
    let direct = run_fastz(&target, &query, &anchors, span, &cfg);
    let service = AlignService::new(&target, &query, scfg.clone());
    let split = service.run(&requests);
    assert_eq!(split.records.len(), requests.len(), "no request lost");
    let union: Vec<Alignment> = split
        .records
        .iter()
        .flat_map(|r| r.alignments.iter().cloned())
        .collect();
    let served_sum = checksum(&dedupe_alignments(union));
    let direct_sum = checksum(&dedupe_alignments(direct.alignments.clone()));
    assert_eq!(
        served_sum, direct_sum,
        "served alignments diverged from the direct run"
    );
    eprintln!(
        "checksum: OK ({served_sum:016x}, {} merged launches)",
        split.merged_launches
    );

    // 1. Modeled executor schedule: merged cross-request launches vs
    // every request dispatching its own ragged launches. Deterministic —
    // one run is exact.
    let batching_speedup = split.solo_exec_s / split.batched_exec_s;
    eprintln!(
        "executor schedule: batched {:.6} s vs per-request {:.6} s ({batching_speedup:.3}x, \
         mean bin fill {:.2})",
        split.batched_exec_s,
        split.solo_exec_s,
        split.bin_fills.iter().sum::<f64>() / split.bin_fills.len().max(1) as f64,
    );

    // 2. Fault-free overhead: the whole corpus as ONE request through
    // the service vs plain run_fastz — a like-for-like measure of the
    // service machinery. Best-of-N min damps scheduler noise; one
    // untimed warmup per side.
    let single = [AlignRequest::new(0, anchors.clone(), span)];
    let solo_service = AlignService::new(&target, &query, scfg.clone());
    run_fastz(&target, &query, &anchors, span, &cfg);
    solo_service.run(&single);
    let mut direct_wall = f64::INFINITY;
    let mut serve_wall = f64::INFINITY;
    for rep in 0..args.repeats.max(1) {
        let t0 = Instant::now();
        let d = run_fastz(&target, &query, &anchors, span, &cfg);
        let wd = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let s = solo_service.run(&single);
        let ws = t1.elapsed().as_secs_f64();
        assert_eq!(
            d.modeled_time_s.to_bits(),
            s.records[0].modeled_time_s.to_bits(),
            "service changed the modeled time"
        );
        direct_wall = direct_wall.min(wd);
        serve_wall = serve_wall.min(ws);
        eprintln!("  rep {rep}: direct {wd:.3}s  service {ws:.3}s");
    }
    let overhead = serve_wall / direct_wall - 1.0;

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"requests\": {},\n  \"repeats\": {},\n  \
         \"corpus\": {{ \"anchors\": {}, \"target_bp\": {}, \"query_bp\": {} }},\n  \
         \"checksum\": \"{:016x}\",\n  \
         \"executor_schedule\": {{ \"batched_s\": {:.9}, \"per_request_s\": {:.9}, \
         \"speedup\": {:.4}, \"merged_launches\": {}, \"mean_bin_fill\": {:.4} }},\n  \
         \"overhead\": {{ \"direct_wall_s\": {:.6}, \"service_wall_s\": {:.6}, \
         \"fraction\": {:.5}, \"gate\": {:.2} }},\n  \
         \"methodology\": \"Seeded 48 kbp homologous pair, {} anchors. The corpus splits into {} requests served in one wave; solo_exec_s re-times every request's own executor launches while batched_exec_s times the wave's tasks merged into shared per-bin launches (same tasks, same device model, stream-pipelined either way) — the speedup is pure schedule, results are checksum-verified against a direct run_fastz first. Overhead is best-of-{} wall clock of the whole corpus as one request through AlignService vs plain run_fastz, with bit-identical modeled time asserted every repeat; the gate fails the run above 2%.\"\n}}\n",
        args.requests,
        args.repeats,
        anchors.len(),
        target.len(),
        query.len(),
        served_sum,
        split.batched_exec_s,
        split.solo_exec_s,
        batching_speedup,
        split.merged_launches,
        split.bin_fills.iter().sum::<f64>() / split.bin_fills.len().max(1) as f64,
        direct_wall,
        serve_wall,
        overhead,
        GATE,
        anchors.len(),
        requests.len(),
        args.repeats,
    );
    std::fs::write(&args.out, json).expect("write BENCH_serve.json");
    println!(
        "batched binning {batching_speedup:.2}x vs per-request dispatch; service overhead \
         {:+.2}% (gate {:.0}%)  -> {}",
        overhead * 100.0,
        GATE * 100.0,
        args.out
    );

    if batching_speedup < 1.0 {
        eprintln!("FAIL: batched binning slower than per-request dispatch");
        std::process::exit(1);
    }
    if overhead > GATE {
        eprintln!(
            "FAIL: fault-free service overhead {:.2}% exceeds the {:.0}% gate",
            overhead * 100.0,
            GATE * 100.0
        );
        std::process::exit(1);
    }
}
