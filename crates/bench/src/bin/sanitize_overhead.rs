//! Sanitizer overhead harness.
//!
//! Demonstrates the sanitizer's NoObs-style cost contract. When
//! `FastZConfig::sanitize` is off (the default) the scratchpads carry
//! no shadow state and every hook is a single null check — the
//! acceptance bar is < 1 % host-side overhead against the plain
//! `run_fastz` baseline on the Figure 2 workload. When it is on, the
//! run pays for real shadow bookkeeping (informational, not gated) but
//! must stay a pure observer: bit-identical modeled time, identical
//! alignments, and a clean report.
//!
//! Three configurations over the same seeded workload:
//!
//! * `baseline`     — `run_fastz` with sanitize off (the default);
//! * `sanitize-off` — the same entry point, config spelled explicitly
//!   (gated: the flag itself must cost nothing when false);
//! * `sanitize-on`  — full shadow-memory sanitizer (informational).

use fastz_bench::{HarnessOpts, PairWorkload, Table};
use fastz_core::{run_fastz, FastZConfig};
use fastz_genome::{within_genus_pairs, Scoring};
use fastz_gpu_sim::DeviceSpec;
use std::time::Duration;

const REPS: usize = 5;
const GATE: f64 = 0.01;

fn main() {
    let opts = HarnessOpts::from_env();
    let dev = DeviceSpec::rtx3080_ampere();
    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "Sanitizer overhead on {} (scale 1/{})\n",
        pair.label, opts.scale.divisor
    );
    let wl = PairWorkload::build(&pair, &opts);
    let cfg = FastZConfig::new(Scoring::bench_scaled(), dev);
    let mut cfg_on = cfg.clone();
    cfg_on.sanitize = true;
    println!(
        "workload: {} anchors over {} + {} bp\n",
        wl.anchors.len(),
        wl.target.len(),
        wl.query.len()
    );

    // One untimed warm-up so the first measured configuration doesn't
    // absorb cache/allocator cold-start cost.
    run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg);

    // Best-of-N host wall time per configuration (min damps scheduler
    // noise); modeled time must be bit-identical across all three since
    // the sanitizer never feeds back into the timing model.
    let mut rows: Vec<(&str, f64, Duration, u64)> = Vec::new();
    let mut baseline_alignments = None;
    for name in ["baseline", "sanitize-off", "sanitize-on"] {
        let run_cfg = if name == "sanitize-on" { &cfg_on } else { &cfg };
        let mut best_host = Duration::MAX;
        let mut modeled = 0.0;
        let mut findings = 0;
        for _ in 0..REPS {
            let report = run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, run_cfg);
            best_host = best_host.min(report.host_wall);
            modeled = report.modeled_time_s;
            match (name, &report.sanitize) {
                ("sanitize-on", Some(srep)) => {
                    findings = srep.total_findings();
                    assert!(
                        srep.is_clean(),
                        "sanitizer found problems on the bench workload: {:?}",
                        srep.findings
                    );
                    assert!(srep.shared_writes > 0, "sanitizer observed no traffic");
                }
                ("sanitize-on", None) => panic!("sanitize: true produced no report"),
                (_, Some(_)) => panic!("{name} unexpectedly produced a sanitize report"),
                (_, None) => {}
            }
            match &baseline_alignments {
                None => baseline_alignments = Some(report.alignments),
                Some(base) => assert_eq!(base, &report.alignments, "{name} changed the alignments"),
            }
        }
        rows.push((name, modeled, best_host, findings));
    }

    let baseline_modeled = rows[0].1;
    let baseline_host = rows[0].2;
    let mut table = Table::new(&["config", "modeled s", "host s", "host ovh", "findings"]);
    let mut off_overhead = f64::NAN;
    for (name, modeled, host, findings) in &rows {
        let host_overhead = host.as_secs_f64() / baseline_host.as_secs_f64() - 1.0;
        if *name == "sanitize-off" {
            off_overhead = host_overhead;
        }
        assert!(
            (*modeled - baseline_modeled).abs() < 1e-12,
            "{name} changed the modeled time: {modeled} vs {baseline_modeled}"
        );
        table.row(vec![
            name.to_string(),
            format!("{modeled:.5}"),
            format!("{:.3}", host.as_secs_f64()),
            format!("{:+.2}%", host_overhead * 100.0),
            if *name == "sanitize-on" {
                findings.to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    println!("{}", table.render());
    let pass = off_overhead < GATE;
    println!(
        "\nsanitize-off overhead: {:+.3}% (acceptance < {:.0}%): {}",
        off_overhead * 100.0,
        GATE * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
