//! Bitvector pre-filter benchmark: cheap-reject throughput vs full
//! y-drop on a garbage-heavy (high-divergence) anchor corpus.
//!
//! The corpus doubles a seeded homologous workload with planted garbage
//! anchors (real target windows pointed at unrelated query regions), so
//! half the anchor population is provably hopeless. Three measurements:
//!
//! 1. **Soundness first** — the filtered pipeline's alignments must
//!    checksum-match the unfiltered run before any timing is reported
//!    (the probe may only drop anchors that cannot clear
//!    `gapped_threshold`).
//! 2. **Reject throughput** — host wall clock of the probe alone,
//!    reported as anchors/second, plus the reject fraction.
//! 3. **End-to-end** — best-of-N host wall of probe + pipeline on the
//!    kept anchors vs the full pipeline on every anchor, and the
//!    modeled-GPU-time saving from the problems never dispatched.
//!
//! Results land in `BENCH_bitvec.json`. With `--check`, the run fails
//! if the filtered path regresses more than 10% against unfiltered
//! y-drop (on a half-garbage corpus it should win, not merely tie).

use std::time::Instant;

use fastz_align::{dedupe_alignments, Alignment};
use fastz_core::{prefilter_anchors, run_fastz, FastZConfig, PrefilterConfig};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::DeviceSpec;
use fastz_seed::{Anchor, Workload, WorkloadParams};

const GATE: f64 = 0.10;

struct Args {
    repeats: usize,
    check: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        repeats: 3,
        check: false,
        out: "BENCH_bitvec.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--repeats" => args.repeats = grab().parse().expect("--repeats"),
            "--check" => args.check = true,
            "--out" => args.out = grab(),
            other => panic!("unknown argument {other} (see --repeats/--check/--out)"),
        }
    }
    args
}

/// Homologous workload doubled with planted garbage: every real anchor
/// is shadowed by one whose query coordinate sits thousands of bases
/// off the homologous diagonal — random-vs-random seed and flanks, the
/// population the reject rung exists for.
fn corpus() -> (Sequence, Sequence, Vec<Anchor>, usize, usize) {
    let pair = generate_pair(&PairParams {
        target_len: 48_000,
        query_len: 48_000,
        segments: 96,
        ..PairParams::small_demo("bitvec-bench", 31)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 600,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    let qlen = pair.query.len();
    let mut anchors = Vec::with_capacity(wl.anchors.len() * 2);
    let mut garbage = 0usize;
    for a in &wl.anchors {
        anchors.push(*a);
        let q = (a.query_pos as usize + 9_001 + 131 * garbage) % (qlen - 2 * span);
        anchors.push(Anchor {
            target_pos: a.target_pos,
            query_pos: q as u32,
        });
        garbage += 1;
    }
    (pair.target, pair.query, anchors, span, garbage)
}

/// FNV-1a over the deduped alignment set (dedupe sorts, so the sum is
/// order-insensitive across runs).
fn checksum(alignments: &[Alignment]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for a in alignments {
        eat(a.target_start as u64);
        eat(a.target_end as u64);
        eat(a.query_start as u64);
        eat(a.query_end as u64);
        eat(a.score as u64);
        eat(a.ops.len() as u64);
    }
    h
}

fn main() {
    let args = parse_args();
    let (target, query, anchors, span, garbage) = corpus();
    // The probe is conclusive only when its rectangle covers the flank:
    // cap extensions at the probe size (PrefilterConfig docs).
    let cfg = FastZConfig {
        max_extension: 256,
        ..FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere())
    };
    let pf = PrefilterConfig::default();
    eprintln!(
        "bitvec_filter: {} anchors ({} planted garbage) over {} + {} bp, best of {}",
        anchors.len(),
        garbage,
        target.len(),
        query.len(),
        args.repeats,
    );

    // Soundness before timing: the filtered alignment set must equal
    // the unfiltered one.
    let (kept, rejected) = prefilter_anchors(
        &target,
        &query,
        &anchors,
        span,
        &cfg.scoring,
        cfg.max_extension,
        &pf,
    );
    assert!(rejected > 0, "the garbage population must be rejectable");
    let full = run_fastz(&target, &query, &anchors, span, &cfg);
    let filtered = run_fastz(&target, &query, &kept, span, &cfg);
    let full_sum = checksum(&dedupe_alignments(full.alignments.clone()));
    let filt_sum = checksum(&dedupe_alignments(filtered.alignments.clone()));
    assert_eq!(full_sum, filt_sum, "pre-filter changed the alignment set");
    eprintln!(
        "checksum: OK ({full_sum:016x}); rejected {rejected}/{} anchors",
        anchors.len()
    );
    let modeled_saving = 1.0 - filtered.modeled_time_s / full.modeled_time_s;

    // Warm both paths once, then best-of-N walls.
    let mut probe_wall = f64::INFINITY;
    let mut full_wall = f64::INFINITY;
    let mut filt_wall = f64::INFINITY;
    for rep in 0..args.repeats.max(1) {
        let t0 = Instant::now();
        let (kept_r, rej_r) = prefilter_anchors(
            &target,
            &query,
            &anchors,
            span,
            &cfg.scoring,
            cfg.max_extension,
            &pf,
        );
        let wp = t0.elapsed().as_secs_f64();
        assert_eq!(rej_r, rejected, "probe is deterministic");
        let t1 = Instant::now();
        run_fastz(&target, &query, &anchors, span, &cfg);
        let wf = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        run_fastz(&target, &query, &kept_r, span, &cfg);
        let wk = t2.elapsed().as_secs_f64() + wp;
        probe_wall = probe_wall.min(wp);
        full_wall = full_wall.min(wf);
        filt_wall = filt_wall.min(wk);
        eprintln!("  rep {rep}: probe {wp:.4}s  unfiltered {wf:.3}s  probe+filtered {wk:.3}s");
    }
    let reject_per_s = anchors.len() as f64 / probe_wall;
    let speedup = full_wall / filt_wall;
    let regression = filt_wall / full_wall - 1.0;

    let json = format!(
        "{{\n  \"bench\": \"bitvec_filter\",\n  \"repeats\": {},\n  \
         \"corpus\": {{ \"anchors\": {}, \"garbage\": {}, \"target_bp\": {}, \"query_bp\": {} }},\n  \
         \"checksum\": \"{:016x}\",\n  \
         \"probe\": {{ \"rejected\": {}, \"reject_fraction\": {:.4}, \"wall_s\": {:.6}, \
         \"anchors_per_s\": {:.1} }},\n  \
         \"end_to_end\": {{ \"unfiltered_wall_s\": {:.6}, \"filtered_wall_s\": {:.6}, \
         \"speedup\": {:.4}, \"modeled_gpu_saving\": {:.4}, \"gate\": {:.2} }},\n  \
         \"methodology\": \"Seeded 48 kbp homologous pair; every real anchor is shadowed by a planted garbage anchor (query coordinate shifted thousands of bases off the homologous diagonal), so at least half the population is provably below gapped_threshold (spurious chance seeds among the real workload anchors are rejected too). prefilter_anchors probes each anchor (exact seed score + per-flank bitvector quick-accept or exact mini-DP bound, max_extension capped at the probe rectangle so the bound is conclusive); the filtered pipeline runs y-drop on the kept anchors only. Alignment sets are checksum-verified identical before timing. Walls are best-of-{}; the filtered column includes the probe itself. --check fails the run if probe+filtered regresses >10% against unfiltered y-drop.\"\n}}\n",
        args.repeats,
        anchors.len(),
        garbage,
        target.len(),
        query.len(),
        full_sum,
        rejected,
        rejected as f64 / anchors.len() as f64,
        probe_wall,
        reject_per_s,
        full_wall,
        filt_wall,
        speedup,
        modeled_saving,
        GATE,
        args.repeats,
    );
    std::fs::write(&args.out, json).expect("write BENCH_bitvec.json");
    println!(
        "prefilter: {rejected}/{} rejected at {:.0} anchors/s; probe+filtered {speedup:.2}x vs \
         unfiltered ({:+.1}% modeled GPU)  -> {}",
        anchors.len(),
        reject_per_s,
        -modeled_saving * 100.0,
        args.out
    );

    if args.check && regression > GATE {
        eprintln!(
            "FAIL: filtered path {:.1}% slower than unfiltered y-drop (gate {:.0}%)",
            regression * 100.0,
            GATE * 100.0
        );
        std::process::exit(1);
    }
}
