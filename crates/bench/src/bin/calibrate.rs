//! Calibration probe: prints the cost-model internals for one pair so
//! the constants in `gpu_sim::model` and the workload scaling can be
//! tuned against the paper's reported shapes. Not part of the paper's
//! tables/figures — a developer tool.

use fastz_bench::eval::paper_gpus;
use fastz_bench::{evaluate_pair, HarnessOpts, PairWorkload};
use fastz_genome::{within_genus_pairs, Scoring};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();
    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "pair {} scale 1/{} max-anchors {}",
        pair.label, opts.scale.divisor, opts.max_anchors
    );
    println!(
        "scoring: ydrop {}, gaps {}/{}",
        scoring.ydrop, scoring.gaps.open, scoring.gaps.extend
    );

    let wl = PairWorkload::build(&pair, &opts);
    println!("anchors {}", wl.anchors.len());
    let eval = evaluate_pair(&wl, &scoring);

    println!("\n-- sequential reference --");
    println!(
        "cells {}  (per seed {:.0})",
        eval.seq_cells,
        eval.seq_cells as f64 / eval.seeds as f64
    );
    println!(
        "modeled {:.6} s   measured(Rust) {:.3} s",
        eval.seq_model_s, eval.seq_wall_s
    );

    println!("\n-- FastZ functional stats --");
    let st = &eval.fastz.stats;
    let insp = &st.inspector.total;
    let exec = &st.executor.total;
    println!(
        "problems {}  eager {}  executor {}",
        st.problems, st.eager_resolved, st.executor_problems
    );
    println!(
        "inspector: steps {}  cells {}  C/S {:.2}  dram {} B",
        insp.steps,
        insp.cells,
        insp.cells as f64 / insp.steps.max(1) as f64,
        insp.global_read + insp.global_written
    );
    println!(
        "executor:  steps {}  cells {}  C/S {:.2}  dram {} B",
        exec.steps,
        exec.cells,
        exec.cells as f64 / exec.steps.max(1) as f64,
        exec.global_read + exec.global_written
    );

    println!("\n-- FastZ modeled times --");
    for (g, dev) in paper_gpus().iter().enumerate() {
        let tl = eval.fastz.retime(dev, 32);
        println!(
            "{:<10} total {:.6} s  insp {:.6}  exec {:.6}  other {:.6}  speedup {:.1}x",
            dev.arch,
            tl.total(),
            tl.seconds("inspector"),
            tl.seconds("executor"),
            tl.seconds("other"),
            eval.seq_model_s / tl.total()
        );
        let _ = g;
    }
    // Longest inspector kernel task.
    let longest = eval
        .fastz
        .inspector_kernels
        .iter()
        .map(|k| k.longest_task_cycles())
        .fold(0.0, f64::max);
    println!(
        "longest inspector task: {:.0} cycles ({:.6} s on Ampere)",
        longest,
        longest / 1.71e9
    );

    println!("\n-- baselines --");
    println!(
        "multicore32 modeled {:.6} s  speedup {:.1}x",
        eval.multicore_s,
        eval.multicore_speedup()
    );
    for (g, dev) in paper_gpus().iter().enumerate() {
        println!(
            "feng-{:<7} modeled {:.6} s  speedup {:.2}x",
            dev.arch,
            eval.baseline_s[g],
            eval.baseline_speedup(g)
        );
    }
}
