//! One-pass evaluation of all within-genus benchmarks: emits Figure 7
//! (speedups), Table 2 (length bins), and Figure 8 (phase breakdown)
//! from a single `evaluate_pair` run per benchmark — three times faster
//! than running the three dedicated binaries, with identical numbers.

use fastz_bench::table::{mean, speedup};
use fastz_bench::{evaluate_pair, HarnessOpts, PairEval, PairWorkload, Table};
use fastz_genome::{within_genus_pairs, Scoring};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();

    let mut evals: Vec<PairEval> = Vec::new();
    for pair in within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        eprintln!("evaluating {} ...", pair.label);
        let wl = PairWorkload::build(&pair, &opts);
        evals.push(evaluate_pair(&wl, &scoring));
    }

    println!(
        "Figure 7: speedup over sequential LASTZ (scale 1/{}, ≤{} seeds/pair)\n",
        opts.scale.divisor, opts.max_anchors
    );
    let mut t = Table::new(&[
        "benchmark",
        "base-Pas",
        "base-Vol",
        "base-Amp",
        "multicore32",
        "FastZ-Pas",
        "FastZ-Vol",
        "FastZ-Amp",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for e in &evals {
        let vals = [
            e.baseline_speedup(0),
            e.baseline_speedup(1),
            e.baseline_speedup(2),
            e.multicore_speedup(),
            e.fastz_speedup(0),
            e.fastz_speedup(1),
            e.fastz_speedup(2),
        ];
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        let mut row = vec![e.label.clone()];
        row.extend(vals.iter().map(|v| speedup(*v)));
        t.row(row);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    mean_row.extend(cols.iter().map(|c| speedup(mean(c))));
    t.row(mean_row);
    t.print();
    println!("paper means: GPU baseline 0.57-0.82x, multicore 20x, FastZ 43/93/111x\n");

    println!("Table 2: alignment length distribution\n");
    let mut t = Table::new(&[
        "benchmark",
        "seeds",
        "eager-tb",
        "bin1",
        "bin2",
        "bin3",
        "bin4",
        "eager%",
    ]);
    for e in &evals {
        let b = &e.fastz.bin_counts;
        t.row(vec![
            e.label.clone(),
            b.total().to_string(),
            b.eager.to_string(),
            b.bins[0].to_string(),
            b.bins[1].to_string(),
            b.bins[2].to_string(),
            b.bins[3].to_string(),
            format!("{:.1}%", 100.0 * b.eager_fraction()),
        ]);
    }
    t.print();
    println!("paper (per 1M): eager 75-82%, bin1 18-24%, bins 2-4 thin and decreasing\n");

    println!("Figure 8: execution-time breakdown on Ampere\n");
    let mut t = Table::new(&[
        "benchmark",
        "total (ms)",
        "inspector",
        "executor",
        "other",
        "bin4",
    ]);
    for e in &evals {
        let tl = &e.fastz.timeline;
        t.row(vec![
            e.label.clone(),
            format!("{:.3}", tl.total() * 1e3),
            format!("{:.1}%", 100.0 * tl.fraction("inspector")),
            format!("{:.1}%", 100.0 * tl.fraction("executor")),
            format!("{:.1}%", 100.0 * tl.fraction("other")),
            e.fastz.bin_counts.bins[3].to_string(),
        ]);
    }
    t.print();
    println!("paper: inspector ~2/3 (up to 79%), executor ~10%, other the rest");
}
