//! Table 1 + Figures 6/10: the genome inventory, the benchmark pairs,
//! and the synthetic sizes generated at the selected scale.

use fastz_bench::{HarnessOpts, Table};
use fastz_genome::{catalog, generate_pair};

fn main() {
    let opts = HarnessOpts::from_env();

    println!("Table 1: genomes (real sizes from the paper)\n");
    let mut t = Table::new(&["group", "species (chromosome)", "basepairs"]);
    for (group, species, bp) in catalog::table1_genomes() {
        t.row(vec![group.to_string(), species.to_string(), bp.to_string()]);
    }
    t.print();

    println!(
        "\nFigure 6: within-genus pairs (synthetic at 1/{} scale)\n",
        opts.scale.divisor
    );
    let mut t = Table::new(&[
        "pair",
        "target",
        "query",
        "real t-bp",
        "real q-bp",
        "synthetic t-bp",
        "synthetic q-bp",
        "planted segs",
    ]);
    for pair in catalog::within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        let params = pair.pair_params(opts.scale);
        let generated = generate_pair(&params);
        t.row(vec![
            pair.label.to_string(),
            pair.target_desc.to_string(),
            pair.query_desc.to_string(),
            pair.target_bp.to_string(),
            pair.query_bp.to_string(),
            generated.target.len().to_string(),
            generated.query.len().to_string(),
            generated.truth.len().to_string(),
        ]);
    }
    t.print();

    println!(
        "\nFigure 10: cross-genus pairs (synthetic at 1/{} scale)\n",
        opts.scale.divisor
    );
    let mut t = Table::new(&[
        "pair",
        "target",
        "query",
        "synthetic t-bp",
        "synthetic q-bp",
    ]);
    for pair in catalog::cross_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        let generated = generate_pair(&pair.pair_params(opts.scale));
        t.row(vec![
            pair.label.to_string(),
            pair.target_desc.to_string(),
            pair.query_desc.to_string(),
            generated.target.len().to_string(),
            generated.query.len().to_string(),
        ]);
    }
    t.print();
}
