//! Figure 7: FastZ performance — speedup over sequential LASTZ for every
//! within-genus benchmark.
//!
//! Seven bars per benchmark, exactly as in the paper: the Feng-et-al GPU
//! baseline on Pascal/Volta/Ampere (slowdowns), the 32-process multicore
//! configuration (~20x), and FastZ on Pascal/Volta/Ampere (~43x/93x/111x
//! paper means). Pairs are ordered by decreasing bin-4 count (the paper's
//! Table 2 order).

use fastz_bench::table::{mean, speedup};
use fastz_bench::{evaluate_pair, HarnessOpts, PairWorkload, Table};
use fastz_genome::{within_genus_pairs, Scoring};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();

    println!(
        "Figure 7: speedup over sequential LASTZ (scale 1/{}, ≤{} seeds/pair)\n",
        opts.scale.divisor, opts.max_anchors
    );

    let mut t = Table::new(&[
        "benchmark",
        "base-Pas",
        "base-Vol",
        "base-Amp",
        "multicore32",
        "FastZ-Pas",
        "FastZ-Vol",
        "FastZ-Amp",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for pair in within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        let wl = PairWorkload::build(&pair, &opts);
        let eval = evaluate_pair(&wl, &scoring);
        let vals = [
            eval.baseline_speedup(0),
            eval.baseline_speedup(1),
            eval.baseline_speedup(2),
            eval.multicore_speedup(),
            eval.fastz_speedup(0),
            eval.fastz_speedup(1),
            eval.fastz_speedup(2),
        ];
        for (c, v) in vals.iter().enumerate() {
            cols[c].push(*v);
        }
        let mut row = vec![pair.label.to_string()];
        row.extend(vals.iter().map(|v| speedup(*v)));
        t.row(row);
        if opts.verbose {
            eprintln!(
                "{}: seq model {:.3}s (measured Rust engine {:.3}s, {} cells), \
                 FastZ Ampere modeled {:.5}s, host sim {:.1}s",
                eval.label,
                eval.seq_model_s,
                eval.seq_wall_s,
                eval.seq_cells,
                eval.fastz_s[2],
                eval.fastz.host_wall.as_secs_f64()
            );
        }
    }
    if t.is_empty() {
        eprintln!("no pairs selected");
        return;
    }
    let mut mean_row = vec!["MEAN".to_string()];
    mean_row.extend(cols.iter().map(|c| speedup(mean(c))));
    t.row(mean_row);
    t.print();

    println!(
        "\npaper means: GPU baseline 0.57-0.82x (18-43% slowdowns), multicore 20x,\n\
         FastZ 43x (Pascal), 93x (Volta), 111x (Ampere)."
    );
}
