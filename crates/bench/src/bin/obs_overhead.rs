//! Observability overhead harness.
//!
//! Demonstrates that the `MetricsSink` plumbing is zero-cost when
//! disabled: `run_fastz_observed` with [`NoObs`] must be within noise
//! of the pre-observability `run_fastz` entry point (they monomorphize
//! to the same machine code; the acceptance bar is < 1 % host-side
//! overhead on the Figure 2 workload). The [`Recorder`] row is
//! informational — it is the price of actually collecting metrics and
//! spans, and is *not* gated.
//!
//! Three configurations over the same seeded workload:
//!
//! * `baseline` — `run_fastz` (the plain entry point);
//! * `noobs`    — `run_fastz_observed` with the `NoObs` sink (gated);
//! * `recorder` — `run_fastz_observed` with a full `Recorder`
//!   (registry + timeline + per-bin span attribution).

use fastz_bench::{HarnessOpts, PairWorkload, Table};
use fastz_core::{run_fastz, run_fastz_observed, FastZConfig, ResilienceConfig};
use fastz_genome::{within_genus_pairs, Scoring};
use fastz_gpu_sim::DeviceSpec;
use fastz_obs::{NoObs, Recorder};
use std::time::Duration;

const REPS: usize = 5;
const GATE: f64 = 0.01;

fn main() {
    let opts = HarnessOpts::from_env();
    let dev = DeviceSpec::rtx3080_ampere();
    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "Observability overhead on {} (scale 1/{})\n",
        pair.label, opts.scale.divisor
    );
    let wl = PairWorkload::build(&pair, &opts);
    let cfg = FastZConfig::new(Scoring::bench_scaled(), dev);
    let rcfg = ResilienceConfig::disabled();
    println!(
        "workload: {} anchors over {} + {} bp\n",
        wl.anchors.len(),
        wl.target.len(),
        wl.query.len()
    );

    // One untimed warm-up so the first measured configuration doesn't
    // absorb cache/allocator cold-start cost.
    run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg);

    // Best-of-N host wall time per configuration (min damps scheduler
    // noise); modeled time must be identical across all three since the
    // sink never feeds back into the timing model.
    let mut rows: Vec<(&str, f64, Duration, usize)> = Vec::new();
    for name in ["baseline", "noobs", "recorder"] {
        let mut best_host = Duration::MAX;
        let mut modeled = 0.0;
        let mut metrics = 0;
        for _ in 0..REPS {
            let report = match name {
                "baseline" => run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg),
                "noobs" => run_fastz_observed(
                    &wl.target,
                    &wl.query,
                    &wl.anchors,
                    wl.seed_span,
                    &cfg,
                    &rcfg,
                    &mut NoObs,
                ),
                _ => {
                    let mut rec = Recorder::new();
                    let report = run_fastz_observed(
                        &wl.target,
                        &wl.query,
                        &wl.anchors,
                        wl.seed_span,
                        &cfg,
                        &rcfg,
                        &mut rec,
                    );
                    metrics = rec.registry.len();
                    report
                }
            };
            best_host = best_host.min(report.host_wall);
            modeled = report.modeled_time_s;
        }
        rows.push((name, modeled, best_host, metrics));
    }

    let baseline_modeled = rows[0].1;
    let baseline_host = rows[0].2;
    let mut table = Table::new(&["config", "modeled s", "host s", "host ovh", "metrics"]);
    let mut noobs_overhead = f64::NAN;
    for (name, modeled, host, metrics) in &rows {
        let host_overhead = host.as_secs_f64() / baseline_host.as_secs_f64() - 1.0;
        if *name == "noobs" {
            noobs_overhead = host_overhead;
            assert!(
                (*modeled - baseline_modeled).abs() < 1e-12,
                "NoObs changed the modeled time: {modeled} vs {baseline_modeled}"
            );
        }
        table.row(vec![
            name.to_string(),
            format!("{modeled:.5}"),
            format!("{:.3}", host.as_secs_f64()),
            format!("{:+.2}%", host_overhead * 100.0),
            if *metrics == 0 {
                "-".to_string()
            } else {
                metrics.to_string()
            },
        ]);
    }
    println!("{}", table.render());
    let pass = noobs_overhead < GATE;
    println!(
        "\nNoObs overhead: {:+.3}% (acceptance < {:.0}%): {}",
        noobs_overhead * 100.0,
        GATE * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
