//! Figure 9: isolating the impact of FastZ's optimizations.
//!
//! Progressively enables the paper's optimizations — base
//! (inspector-executor + lightweight inspector + length-binned load
//! balancing), then cyclic use-and-discard buffers, then eager
//! traceback, then executor trimming (= FastZ) — and finally restricts
//! FastZ to a single CUDA stream. Reports the mean speedup over sequential LASTZ
//! per GPU, like the paper's grouped bars (Pascal ≈ 0.92→4.7→15→43×,
//! Volta ≈ …→93×, Ampere ≈ 2.8→17→46→111×; single stream 1.7-2.4× worse).
//!
//! Each configuration is one functional run per pair (re-priced on all
//! three GPUs). Default pair set is a 4-pair cross-genus-spread subset
//! to keep single-core simulation time reasonable; pass `--pairs` to
//! select others.

use fastz_bench::eval::paper_gpus;
use fastz_bench::table::{mean, speedup};
use fastz_bench::{HarnessOpts, PairWorkload, Table};
use fastz_core::{run_fastz, FastZConfig, OptFlags};
use fastz_genome::{within_genus_pairs, Scoring};
use fastz_gpu_sim::CpuModel;

const DEFAULT_PAIRS: [&str; 4] = ["C1_1,1", "C1_4,4", "A2_X,X", "D1_2R,2"];

fn main() {
    let mut opts = HarnessOpts::from_env();
    if opts.pairs.is_empty() {
        opts.pairs = DEFAULT_PAIRS.iter().map(|s| s.to_string()).collect();
    }
    let scoring = Scoring::bench_scaled();
    let gpus = paper_gpus();

    println!(
        "Figure 9: impact of FastZ's optimizations (scale 1/{}, pairs {:?})\n",
        opts.scale.divisor, opts.pairs
    );

    // speedups[config][gpu] -> per-pair values
    let progression = OptFlags::figure9_progression();
    let mut speedups: Vec<[Vec<f64>; 3]> = (0..progression.len())
        .map(|_| [vec![], vec![], vec![]])
        .collect();

    for pair in within_genus_pairs() {
        if !opts.selects(pair.label) {
            continue;
        }
        eprintln!("running {} ...", pair.label);
        let wl = PairWorkload::build(&pair, &opts);
        // Sequential reference.
        let seq = fastz_align::sequential_gapped(
            &wl.target,
            &wl.query,
            &wl.anchors,
            wl.seed_span,
            &fastz_align::DriverConfig::gapped(scoring.clone()),
        );
        let seq_s = CpuModel::ryzen_3950x().sequential_time(seq.stats.total_cells);

        for (ci, (label, flags)) in progression.iter().enumerate() {
            let cfg = FastZConfig {
                flags: *flags,
                ..FastZConfig::new(scoring.clone(), gpus[2].clone())
            };
            let report = run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg);
            for (g, dev) in gpus.iter().enumerate() {
                let t = report.retime(dev, flags.streams).total();
                speedups[ci][g].push(seq_s / t);
            }
            eprintln!(
                "  {:>20}: host sim {:.1}s",
                label,
                report.host_wall.as_secs_f64()
            );
        }
    }

    let mut t = Table::new(&["configuration", "Pascal", "Volta", "Ampere"]);
    for (ci, (label, _)) in progression.iter().enumerate() {
        t.row(vec![
            label.to_string(),
            speedup(mean(&speedups[ci][0])),
            speedup(mean(&speedups[ci][1])),
            speedup(mean(&speedups[ci][2])),
        ]);
    }
    t.print();

    println!(
        "\npaper means: base 0.92x/…/2.8x, +cyclic 4.7/6.1/17x, +eager 15/21/46x,\n\
         FastZ 43/93/111x, single-stream 1.7x/1.7x/2.4x slower than FastZ.\n\
         relative contributions: load-bal+inspector 1.4x, cyclic 5.8x,\n\
         eager 3x, trimming 3.4x (mean across GPUs)."
    );
}
