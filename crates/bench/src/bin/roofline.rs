//! §6 "Remaining bottlenecks": roofline analysis of FastZ's phases.
//!
//! Reproduces the paper's operational-intensity arithmetic from measured
//! counters: the inspector moves 12 B per 32×9-op warp step
//! (≈24 ops/byte, slightly compute-bound on the RTX 3080 whose derated
//! threshold is ≈15.2 ops/byte); the executor adds ~1 B of traceback per
//! cell (≈6.5 ops/byte, slightly memory-bound); without FastZ's
//! optimizations the kernel sits at ≈0.75 ops/byte, deeply memory-bound.

use fastz_bench::{HarnessOpts, PairWorkload, Table};
use fastz_core::{run_fastz, FastZConfig, OptFlags};
use fastz_genome::{within_genus_pairs, Scoring};
use fastz_gpu_sim::{analyze, Bound, DeviceSpec};

fn main() {
    let opts = HarnessOpts::from_env();
    let scoring = Scoring::bench_scaled();
    let dev = DeviceSpec::rtx3080_ampere();

    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "Roofline analysis (§6) on {} (scale 1/{}), device {}\n",
        pair.label, opts.scale.divisor, dev.name
    );

    let wl = PairWorkload::build(&pair, &opts);
    let cfg = FastZConfig::new(scoring.clone(), dev.clone());
    let fz = run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg);

    // Un-optimized variant (no cyclic buffers) for the paper's 0.75
    // ops/byte comparison point.
    let base_cfg = FastZConfig {
        flags: OptFlags::base(),
        ..FastZConfig::new(scoring, dev.clone())
    };
    let base = run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &base_cfg);

    let mut t = Table::new(&["phase", "ops", "dram bytes", "ops/byte", "bound", "paper"]);
    let mut add = |name: &str, ops: u64, bytes: u64, paper: &str| {
        let r = analyze(&dev, ops, bytes);
        t.row(vec![
            name.to_string(),
            ops.to_string(),
            bytes.to_string(),
            format!("{:.2}", r.intensity),
            format!("{:?}", r.bound),
            paper.to_string(),
        ]);
        r
    };

    let insp = &fz.stats.inspector.total;
    let exec = &fz.stats.executor.total;
    let binsp = &base.stats.inspector.total;
    let r_insp = add(
        "inspector",
        insp.alu_ops,
        insp.global_bytes(),
        "24 (compute)",
    );
    let r_exec = add(
        "executor",
        exec.alu_ops,
        exec.global_bytes(),
        "6.5 (memory)",
    );
    let r_base = add(
        "no-cyclic inspector",
        binsp.alu_ops,
        binsp.global_bytes(),
        "0.75 (memory)",
    );
    t.print();

    let thr = analyze(&dev, 1, 1);
    println!(
        "\nRTX 3080 thresholds: nominal {:.1} ops/byte, divergence-derated {:.1}",
        thr.nominal_threshold, thr.derated_threshold
    );
    println!("paper §6: nominal 39, derated 15.2");

    assert_eq!(
        r_insp.bound,
        Bound::Compute,
        "inspector should be compute-bound"
    );
    assert_eq!(
        r_exec.bound,
        Bound::Memory,
        "executor should be memory-bound"
    );
    assert_eq!(
        r_base.bound,
        Bound::Memory,
        "unoptimized kernel should be memory-bound"
    );
    println!("\nbound classifications match the paper.");
}
