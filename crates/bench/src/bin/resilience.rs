//! Resilience overhead harness.
//!
//! Measures what the resilient dispatcher costs when nothing goes wrong
//! — the acceptance bar is < 2 % fault-free overhead on a Figure 2
//! workload — and what a standard fault drill costs when everything
//! does. Four configurations run over the same seed workload:
//!
//! * `plain`      — `run_fastz` (the fault-free fast path);
//! * `resilient`  — `run_fastz_resilient` with resilience disabled
//!   (every probe short-circuited; must be modeled-time identical and
//!   within noise on host wall time);
//! * `checkpoint` — resilience disabled but checkpointing enabled
//!   (fingerprint + per-bin persistence cost);
//! * `drill`      — the seeded drill plan (hangs, bit flips, stalls,
//!   shmem pressure) with full recovery; reports the modeled recovery
//!   overhead and the fault counts.

use fastz_bench::{HarnessOpts, PairWorkload, Table};
use fastz_core::{run_fastz, run_fastz_resilient, FastZConfig, ResilienceConfig};
use fastz_genome::{within_genus_pairs, Scoring};
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use std::time::Duration;

const DRILL_SEED: u64 = 7;
const REPS: usize = 3;

fn main() {
    let opts = HarnessOpts::from_env();
    let dev = DeviceSpec::rtx3080_ampere();
    let pair = within_genus_pairs()
        .into_iter()
        .find(|p| opts.selects(p.label))
        .expect("no pair selected");
    println!(
        "Resilience overhead on {} (scale 1/{}, drill seed {DRILL_SEED})\n",
        pair.label, opts.scale.divisor
    );
    let wl = PairWorkload::build(&pair, &opts);
    let cfg = FastZConfig::new(Scoring::bench_scaled(), dev);
    println!(
        "workload: {} anchors over {} + {} bp\n",
        wl.anchors.len(),
        wl.target.len(),
        wl.query.len()
    );

    let ckpt_path = std::env::temp_dir().join("fastz-resilience-bench.ckpt");
    let _ = std::fs::remove_file(&ckpt_path);
    let checkpoint_cfg = ResilienceConfig {
        checkpoint: Some(ckpt_path.clone()),
        ..ResilienceConfig::disabled()
    };
    let drill_cfg = ResilienceConfig::with_plan(FaultPlan::from_seed(DRILL_SEED));

    // Best-of-N host wall time per configuration (the functional
    // simulation dominates; min damps scheduler noise).
    let mut rows: Vec<(&str, f64, Duration, u64, u64)> = Vec::new();
    for (name, rcfg) in [
        ("plain", None),
        ("resilient", Some(&ResilienceConfig::disabled())),
        ("checkpoint", Some(&checkpoint_cfg)),
        ("drill", Some(&drill_cfg)),
    ] {
        let mut best_host = Duration::MAX;
        let mut modeled = 0.0;
        let mut faults = 0;
        let mut retries = 0;
        for _ in 0..REPS {
            // The checkpoint config must pay the full write cost each
            // rep, not resume from the previous rep.
            if name == "checkpoint" {
                let _ = std::fs::remove_file(&ckpt_path);
            }
            let report = match rcfg {
                None => run_fastz(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg),
                Some(r) => {
                    run_fastz_resilient(&wl.target, &wl.query, &wl.anchors, wl.seed_span, &cfg, r)
                }
            };
            best_host = best_host.min(report.host_wall);
            modeled = report.modeled_time_s;
            faults = report.resilience.injected.total();
            retries = report.resilience.retries;
        }
        rows.push((name, modeled, best_host, faults, retries));
    }
    let _ = std::fs::remove_file(&ckpt_path);

    let baseline_modeled = rows[0].1;
    let baseline_host = rows[0].2;
    let mut table = Table::new(&[
        "config",
        "modeled s",
        "host s",
        "modeled ovh",
        "host ovh",
        "faults",
        "retries",
    ]);
    let mut resilient_overhead = f64::NAN;
    for (name, modeled, host, faults, retries) in &rows {
        let overhead = modeled / baseline_modeled - 1.0;
        let host_overhead = host.as_secs_f64() / baseline_host.as_secs_f64() - 1.0;
        if *name == "resilient" {
            // Modeled time must be bit-identical; the measurable cost is
            // host-side (and should vanish into noise).
            resilient_overhead = host_overhead.max(overhead);
        }
        table.row(vec![
            name.to_string(),
            format!("{modeled:.5}"),
            format!("{:.3}", host.as_secs_f64()),
            format!("{:+.2}%", overhead * 100.0),
            format!("{:+.2}%", host_overhead * 100.0),
            faults.to_string(),
            retries.to_string(),
        ]);
    }
    println!("{}", table.render());
    let pass = resilient_overhead < 0.02;
    println!(
        "\nfault-free resilience overhead: {:+.3}% (acceptance < 2%): {}",
        resilient_overhead * 100.0,
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
