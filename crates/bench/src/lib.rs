//! # fastz-bench
//!
//! Shared harness code for the binaries that regenerate every table and
//! figure of the FastZ paper (`table1`, `table2`, `fig2`, `fig7`, `fig8`,
//! `fig9`, `fig11`, `roofline`) plus the Criterion micro-benchmarks.

#![warn(missing_docs)]

pub mod eval;
pub mod opts;
pub mod table;

pub use eval::{evaluate_pair, PairEval, PairWorkload};
pub use opts::HarnessOpts;
pub use table::Table;
