//! Command-line options shared by all harness binaries.

use fastz_genome::Scale;

/// Parsed harness options.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Workload scale (default [`Scale::BENCH`]).
    pub scale: Scale,
    /// Seed budget per pair (0 = unlimited; default 6000 keeps single-core
    /// simulation times reasonable).
    pub max_anchors: usize,
    /// Restrict to these pair labels (empty = all).
    pub pairs: Vec<String>,
    /// Print extra detail.
    pub verbose: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            scale: Scale::BENCH,
            max_anchors: 6_000,
            pairs: Vec::new(),
            verbose: false,
        }
    }
}

impl HarnessOpts {
    /// Parses `std::env::args()`:
    /// `--scale test|bench|large`, `--max-anchors N`, `--pairs A,B`,
    /// `--verbose`.
    ///
    /// Exits the process with a usage message on bad input.
    pub fn from_env() -> HarnessOpts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match HarnessOpts::parse(&args) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!(
                    "usage: [--scale test|bench|large] [--max-anchors N] \
                     [--pairs L1+L2+...] [--verbose]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list.
    pub fn parse(args: &[String]) -> Result<HarnessOpts, String> {
        let mut opts = HarnessOpts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    opts.scale = match v.as_str() {
                        "test" => Scale::TEST,
                        "bench" => Scale::BENCH,
                        "large" => Scale::LARGE,
                        other => return Err(format!("unknown scale {other}")),
                    };
                }
                "--max-anchors" => {
                    let v = it.next().ok_or("--max-anchors needs a value")?;
                    opts.max_anchors = v
                        .parse()
                        .map_err(|_| "--max-anchors must be a number".to_string())?;
                }
                "--pairs" => {
                    // Pair labels contain commas (C1_1,1), so the list
                    // separator is '+': --pairs C1_1,1+A1_X,X
                    let v = it.next().ok_or("--pairs needs a value")?;
                    opts.pairs = v.split('+').map(str::to_string).collect();
                }
                "--verbose" => opts.verbose = true,
                other => return Err(format!("unknown option {other}")),
            }
        }
        Ok(opts)
    }

    /// True if `label` is selected by `--pairs` (or no filter is set).
    pub fn selects(&self, label: &str) -> bool {
        self.pairs.is_empty() || self.pairs.iter().any(|p| p == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = HarnessOpts::parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::BENCH);
        assert_eq!(o.max_anchors, 6_000);
        assert!(o.selects("anything"));
    }

    #[test]
    fn full_parse() {
        let o = HarnessOpts::parse(&sv(&[
            "--scale",
            "test",
            "--max-anchors",
            "123",
            "--pairs",
            "C1_1,1",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(o.scale, Scale::TEST);
        assert_eq!(o.max_anchors, 123);
        assert!(o.verbose);
    }

    #[test]
    fn pair_filter() {
        let o = HarnessOpts::parse(&sv(&["--pairs", "A1_X,X+C1_1,1"])).unwrap();
        assert!(o.selects("A1_X,X"));
        assert!(o.selects("C1_1,1"));
        assert!(!o.selects("D1_2R,2"));
    }

    #[test]
    fn errors() {
        assert!(HarnessOpts::parse(&sv(&["--scale"])).is_err());
        assert!(HarnessOpts::parse(&sv(&["--scale", "huge"])).is_err());
        assert!(HarnessOpts::parse(&sv(&["--bogus"])).is_err());
        assert!(HarnessOpts::parse(&sv(&["--max-anchors", "x"])).is_err());
    }
}
