//! Property tests for the genome substrate: sequence containers, FASTA
//! round-trips, scoring invariants, and the synthetic evolver.

use fastz_genome::evolve::{generate_pair, mutate, MutationRates, PairParams};
use fastz_genome::{read_fasta, write_fasta, PackedSeq, Scoring, Sequence, SubstMatrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn codes_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..5, 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packed_seq_round_trips(codes in codes_strategy()) {
        let packed = PackedSeq::from_codes(&codes);
        prop_assert_eq!(packed.unpack(), codes.clone());
        prop_assert_eq!(packed.len(), codes.len());
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(packed.code(i), c);
        }
    }

    #[test]
    fn packed_n_runs_are_sorted_disjoint(codes in codes_strategy()) {
        let packed = PackedSeq::from_codes(&codes);
        let runs = packed.n_runs();
        for w in runs.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "runs must be disjoint and non-adjacent");
        }
        let n_total: u32 = runs.iter().map(|&(s, e)| e - s).sum();
        let expected = codes.iter().filter(|&&c| c == 4).count() as u32;
        prop_assert_eq!(n_total, expected);
    }

    #[test]
    fn reverse_complement_involution(codes in codes_strategy()) {
        let s = Sequence::from_codes("p", codes);
        let rc_rc = s.reverse_complement().reverse_complement();
        prop_assert_eq!(rc_rc.codes(), s.codes());
    }

    #[test]
    fn fasta_round_trip(codes in codes_strategy(), width in 1usize..100) {
        let records = vec![Sequence::from_codes("rec1", codes)];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, width).unwrap();
        let parsed = read_fasta(std::io::Cursor::new(&buf)).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn hoxd70_symmetry_under_complement(a in 0u8..4, b in 0u8..4) {
        // HOXD70 scores are invariant under complementing both bases —
        // the property strand symmetry rests on.
        let m = SubstMatrix::hoxd70();
        prop_assert_eq!(m.score(a, b), m.score(3 - a, 3 - b));
        prop_assert_eq!(m.score(a, b), m.score(b, a));
    }

    #[test]
    fn gap_cost_is_affine(len in 1usize..1000) {
        let s = Scoring::lastz_default();
        let c1 = s.gaps.gap_cost(len);
        let c2 = s.gaps.gap_cost(len + 1);
        prop_assert_eq!(c2 - c1, s.gaps.extend);
        prop_assert_eq!(s.gaps.gap_cost(len), s.gaps.open + s.gaps.extend * len as i32);
    }

    #[test]
    fn mutation_without_indels_preserves_length(sub in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let anc = fastz_genome::evolve::random_codes(500, 0.5, &mut rng);
        let rates = MutationRates { substitution: sub, indel: 0.0, mean_indel_len: 1.0 };
        let out = mutate(&anc, &rates, 0.5, &mut rng);
        prop_assert_eq!(out.len(), anc.len());
        prop_assert!(out.iter().all(|&b| b < 4));
    }

    #[test]
    fn generated_pairs_are_deterministic_and_in_bounds(seed in any::<u64>()) {
        let params = PairParams {
            target_len: 25_000,
            query_len: 25_000,
            segments: 40,
            rng_seed: seed,
            ..PairParams::small_demo("prop", 0)
        };
        let a = match std::panic::catch_unwind(|| generate_pair(&params)) {
            Ok(p) => p,
            Err(_) => return Ok(()), // over-budget draw: rejected loudly
        };
        let b = generate_pair(&params);
        prop_assert_eq!(a.target.codes(), b.target.codes());
        prop_assert_eq!(a.query.codes(), b.query.codes());
        for seg in &a.truth {
            prop_assert!(seg.target_start + seg.target_len <= a.target.len());
            prop_assert!(seg.query_start + seg.query_len <= a.query.len());
        }
        // Segments are ordered and non-overlapping in both sequences.
        for w in a.truth.windows(2) {
            prop_assert!(w[0].target_start + w[0].target_len <= w[1].target_start);
            prop_assert!(w[0].query_start + w[0].query_len <= w[1].query_start);
        }
    }
}
