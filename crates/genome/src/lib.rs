//! # fastz-genome
//!
//! Sequence handling for the FastZ whole-genome-alignment reproduction:
//! the DNA alphabet, byte-code and 2-bit-packed sequence containers, FASTA
//! I/O, LASTZ-compatible scoring (HOXD70, affine gaps, y-drop/x-drop), a
//! synthetic genome-pair evolver, and the paper's benchmark-pair catalog.
//!
//! The synthetic evolver is the documented substitution for the paper's
//! real chromosome inputs; see `DESIGN.md` at the repository root.

#![warn(missing_docs)]

pub mod alphabet;
pub mod catalog;
pub mod evolve;
pub mod fasta;
pub mod scorefile;
pub mod scoring;
pub mod sequence;

pub use alphabet::{Base, ALPHABET_SIZE, N_CODE};
pub use catalog::{cross_genus_pairs, find_pair, within_genus_pairs, CatalogPair, Genus, Scale};
pub use evolve::{generate_pair, GenomePair, HomologyClass, MutationRates, PairParams};
pub use fasta::{read_fasta, read_fasta_file, write_fasta, write_fasta_file, FastaError};
pub use scorefile::{parse_score_file, write_score_file, ScoreFileError};
pub use scoring::{GapPenalties, Scoring, SubstMatrix};
pub use sequence::{PackedSeq, Sequence};
