//! The benchmark-pair catalog (paper Table 1, Figure 6, Figure 10).
//!
//! Each entry names a pairwise alignment benchmark from the paper and
//! carries (a) the real chromosome sizes from Table 1 and (b) the synthetic
//! mixture tuning that reproduces that pair's alignment-length distribution
//! (Table 2 row). Harnesses call [`CatalogPair::pair_params`] with a
//! [`Scale`] to obtain generation parameters at a tractable size.

use crate::evolve::{
    cross_genus_classes, default_classes, HomologyClass, MutationRates, PairParams,
};

/// Genus grouping used for labels and plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Genus {
    /// Caenorhabditis nematodes (C. elegans vs C. briggsae).
    Nematode,
    /// Drosophila fruit flies.
    FruitFly,
    /// Anopheles mosquitoes.
    Mosquito,
    /// Cross-genus comparison (dissimilar genomes, §5.4).
    Cross,
}

/// Relative abundance of the largest conserved segments, which determines
/// the pair's Table 2 bin-3/bin-4 tail and hence its speedup rank in
/// Figures 7 and 8.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixtureTuning {
    /// Weight of the `medium` (~1-2 kbp) class.
    pub medium: f64,
    /// Weight of the `large` (~4-8 kbp) class.
    pub large: f64,
    /// Weight of the `huge` (bin-4) class.
    pub huge: f64,
    /// Optional override of the huge class's length range (pairs whose
    /// Table 2 bin-4 alignments sit near the lower bin edge).
    pub huge_range: Option<(usize, usize)>,
}

/// One benchmark pair.
#[derive(Clone, Debug)]
pub struct CatalogPair {
    /// Paper label, e.g. `"C1_1,1"`.
    pub label: &'static str,
    /// Genus group.
    pub genus: Genus,
    /// Target species/chromosome description.
    pub target_desc: &'static str,
    /// Query species/chromosome description.
    pub query_desc: &'static str,
    /// Real target chromosome length in bp (Table 1).
    pub target_bp: usize,
    /// Real query chromosome length in bp (Table 1).
    pub query_bp: usize,
    /// Mixture tuning for the long-segment tail.
    pub tuning: MixtureTuning,
    /// Deterministic RNG seed for this pair.
    pub rng_seed: u64,
}

/// Workload scale: real chromosome lengths are divided by `divisor`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Scale {
    /// Length divisor relative to the real chromosomes.
    pub divisor: usize,
}

impl Scale {
    /// Quick scale for tests (~1/500 of real size: 25-60 kbp sequences).
    pub const TEST: Scale = Scale { divisor: 500 };
    /// Default bench scale (~1/100: 120-310 kbp sequences).
    pub const BENCH: Scale = Scale { divisor: 100 };
    /// Large evaluation scale (~1/20: 0.6-1.5 Mbp sequences).
    pub const LARGE: Scale = Scale { divisor: 20 };
}

impl CatalogPair {
    /// Mean planted-segment spacing (one segment per this many target bp).
    const SEGMENT_SPACING: usize = 550;

    /// Builds the class mixture for this pair: the shared tiny/small head
    /// plus this pair's tuned long-segment tail.
    pub fn classes(&self) -> Vec<HomologyClass> {
        let mut classes = if self.genus == Genus::Cross {
            cross_genus_classes()
        } else {
            default_classes()
        };
        for c in classes.iter_mut() {
            match c.name {
                "medium" => c.weight = self.tuning.medium,
                "large" => c.weight = self.tuning.large,
                "huge" => {
                    c.weight = self.tuning.huge;
                    if let Some(r) = self.tuning.huge_range {
                        c.len_range = r;
                    }
                }
                _ => {}
            }
        }
        classes.retain(|c| c.weight > 0.0);
        classes
    }

    /// Generation parameters at the given scale.
    pub fn pair_params(&self, scale: Scale) -> PairParams {
        let target_len = (self.target_bp / scale.divisor).max(20_000);
        let query_len = (self.query_bp / scale.divisor).max(20_000);
        PairParams {
            label: self.label.to_string(),
            target_len,
            query_len,
            segments: (target_len / Self::SEGMENT_SPACING).max(8),
            classes: self.classes(),
            gc: if self.genus == Genus::Nematode {
                0.36
            } else {
                0.42
            },
            rng_seed: self.rng_seed,
        }
    }
}

/// The nine within-genus benchmark pairs (Figure 6), ordered as in the
/// paper's Table 2 (decreasing bin-4 count).
pub fn within_genus_pairs() -> Vec<CatalogPair> {
    vec![
        CatalogPair {
            label: "C1_5,5",
            genus: Genus::Nematode,
            target_desc: "C. elegans chr5",
            query_desc: "C. briggsae chr5",
            target_bp: 20_924_180,
            query_bp: 19_495_157,
            tuning: MixtureTuning {
                medium: 1.6,
                large: 0.80,
                huge: 0.80,
                huge_range: None,
            },
            rng_seed: 0xC155 + 7919, // draw: 3 huge segments, 56 kbp (Table 2's largest bin-4 tail)
        },
        CatalogPair {
            label: "C1_2,2",
            genus: Genus::Nematode,
            target_desc: "C. elegans chr2",
            query_desc: "C. briggsae chr2",
            target_bp: 15_279_421,
            query_bp: 16_627_154,
            tuning: MixtureTuning {
                medium: 1.8,
                large: 0.75,
                huge: 0.65,
                huge_range: None,
            },
            rng_seed: 0xC122,
        },
        CatalogPair {
            label: "C1_1,1",
            genus: Genus::Nematode,
            target_desc: "C. elegans chr1",
            query_desc: "C. briggsae chr1",
            target_bp: 15_072_434,
            query_bp: 15_455_979,
            tuning: MixtureTuning {
                medium: 2.2,
                large: 0.70,
                huge: 0.55,
                huge_range: None,
            },
            rng_seed: 0xC111 + 6 * 7919, // draw: 2 huge segments, 39 kbp
        },
        CatalogPair {
            label: "C1_3,3",
            genus: Genus::Nematode,
            target_desc: "C. elegans chr3",
            query_desc: "C. briggsae chr3",
            target_bp: 13_783_801,
            query_bp: 14_578_851,
            tuning: MixtureTuning {
                medium: 2.5,
                large: 0.65,
                huge: 0.45,
                huge_range: None,
            },
            rng_seed: 0xC133,
        },
        CatalogPair {
            label: "C1_4,4",
            genus: Genus::Nematode,
            target_desc: "C. elegans chr4",
            query_desc: "C. briggsae chr4",
            target_bp: 17_493_829,
            query_bp: 17_485_439,
            tuning: MixtureTuning {
                medium: 1.4,
                large: 0.45,
                huge: 0.15,
                huge_range: Some((9_000, 12_500)),
            },
            rng_seed: 0xC144,
        },
        CatalogPair {
            label: "A1_X,X",
            genus: Genus::Mosquito,
            target_desc: "A. albimanus chrX",
            query_desc: "A. atroparvus chrX",
            target_bp: 12_318_379,
            query_bp: 17_503_697,
            tuning: MixtureTuning {
                medium: 0.55,
                large: 0.26,
                huge: 0.17,
                huge_range: Some((9_000, 12_500)),
            },
            rng_seed: 0xA1 + 2 * 7919, // draw: 1 huge segment, 16 kbp
        },
        CatalogPair {
            label: "A2_X,X",
            genus: Genus::Mosquito,
            target_desc: "A. albimanus chrX",
            query_desc: "A. gambiae chrX",
            target_bp: 12_318_379,
            query_bp: 24_393_108,
            tuning: MixtureTuning {
                medium: 0.70,
                large: 0.22,
                huge: 0.15,
                huge_range: Some((9_000, 12_500)),
            },
            rng_seed: 0xA2 + 3 * 7919, // draw: 1 huge segment, 20 kbp
        },
        CatalogPair {
            label: "A3_X,X",
            genus: Genus::Mosquito,
            target_desc: "A. atroparvus chrX",
            query_desc: "A. gambiae chrX",
            target_bp: 17_503_697,
            query_bp: 24_393_108,
            tuning: MixtureTuning {
                medium: 0.95,
                large: 0.30,
                huge: 0.09,
                huge_range: Some((9_000, 12_500)),
            },
            rng_seed: 0xA3 + 2 * 7919, // draw: 1 huge segment, 18 kbp
        },
        CatalogPair {
            label: "D1_2R,2",
            genus: Genus::FruitFly,
            target_desc: "D. melanogaster chr2R",
            query_desc: "D. pseudoobscura chr2",
            target_bp: 25_286_936,
            query_bp: 30_794_189,
            tuning: MixtureTuning {
                medium: 0.035,
                large: 0.003,
                huge: 0.0,
                huge_range: None,
            },
            rng_seed: 0xD1,
        },
    ]
}

/// The six cross-genus benchmark pairs (Figure 10, §5.4). Dissimilar
/// genomes: no alignments in the two largest size bins.
pub fn cross_genus_pairs() -> Vec<CatalogPair> {
    let tuning = MixtureTuning {
        medium: 0.10,
        large: 0.0,
        huge: 0.0,
        huge_range: None,
    };
    vec![
        CatalogPair {
            label: "CD_1,2R",
            genus: Genus::Cross,
            target_desc: "C. elegans chr1",
            query_desc: "D. melanogaster chr2R",
            target_bp: 15_072_434,
            query_bp: 25_286_936,
            tuning,
            rng_seed: 0xCD12,
        },
        CatalogPair {
            label: "CA_1,X",
            genus: Genus::Cross,
            target_desc: "C. elegans chr1",
            query_desc: "A. gambiae chrX",
            target_bp: 15_072_434,
            query_bp: 24_393_108,
            tuning,
            rng_seed: 0xCA1A,
        },
        CatalogPair {
            label: "DA_2R,X",
            genus: Genus::Cross,
            target_desc: "D. melanogaster chr2R",
            query_desc: "A. gambiae chrX",
            target_bp: 25_286_936,
            query_bp: 24_393_108,
            tuning,
            rng_seed: 0xDA2A,
        },
        CatalogPair {
            label: "CD_5,2",
            genus: Genus::Cross,
            target_desc: "C. elegans chr5",
            query_desc: "D. pseudoobscura chr2",
            target_bp: 20_924_180,
            query_bp: 30_794_189,
            tuning,
            rng_seed: 0xCD52,
        },
        CatalogPair {
            label: "CA_5,X",
            genus: Genus::Cross,
            target_desc: "C. briggsae chr5",
            query_desc: "A. atroparvus chrX",
            target_bp: 19_495_157,
            query_bp: 17_503_697,
            tuning,
            rng_seed: 0xCA5A,
        },
        CatalogPair {
            label: "DA_2,X",
            genus: Genus::Cross,
            target_desc: "D. pseudoobscura chr2",
            query_desc: "A. albimanus chrX",
            target_bp: 30_794_189,
            query_bp: 12_318_379,
            tuning,
            rng_seed: 0xDA2B,
        },
    ]
}

/// Looks up any catalog pair (within- or cross-genus) by its label.
pub fn find_pair(label: &str) -> Option<CatalogPair> {
    within_genus_pairs()
        .into_iter()
        .chain(cross_genus_pairs())
        .find(|p| p.label == label)
}

/// The seven species of Table 1: (common group, species/chromosome, bp).
pub fn table1_genomes() -> Vec<(&'static str, &'static str, usize)> {
    vec![
        ("Nematodes", "C. elegans (chr1)", 15_072_434),
        ("Nematodes", "C. briggsae (chr1)", 15_455_979),
        ("Nematodes", "C. elegans (chr2)", 15_279_421),
        ("Nematodes", "C. briggsae (chr2)", 16_627_154),
        ("Nematodes", "C. elegans (chr3)", 13_783_801),
        ("Nematodes", "C. briggsae (chr3)", 14_578_851),
        ("Nematodes", "C. elegans (chr4)", 17_493_829),
        ("Nematodes", "C. briggsae (chr4)", 17_485_439),
        ("Nematodes", "C. elegans (chr5)", 20_924_180),
        ("Nematodes", "C. briggsae (chr5)", 19_495_157),
        ("Fruit flies", "D. melanogaster (chr2R)", 25_286_936),
        ("Fruit flies", "D. pseudoobscura (chr2)", 30_794_189),
        ("Mosquitoes", "A. albimanus (chrX)", 12_318_379),
        ("Mosquitoes", "A. atroparvus (chrX)", 17_503_697),
        ("Mosquitoes", "A. gambiae (chrX)", 24_393_108),
    ]
}

/// Verifies the class list for a pair never loses the tiny/small head.
fn _assert_mixture_invariants(classes: &[HomologyClass]) {
    debug_assert!(classes.iter().any(|c| c.name == "tiny"));
    debug_assert!(classes.iter().any(|c| c.name == "small"));
    debug_assert!(classes.iter().all(|c| c.rates.substitution < 0.5));
    let _ = MutationRates::IDENTITY;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evolve::generate_pair;

    #[test]
    fn nine_within_genus_pairs_in_table2_order() {
        let pairs = within_genus_pairs();
        assert_eq!(pairs.len(), 9);
        let labels: Vec<_> = pairs.iter().map(|p| p.label).collect();
        assert_eq!(
            labels,
            [
                "C1_5,5", "C1_2,2", "C1_1,1", "C1_3,3", "C1_4,4", "A1_X,X", "A2_X,X", "A3_X,X",
                "D1_2R,2"
            ]
        );
        // Table 2 ordering: decreasing *expected* huge-segment count
        // (weight × planted segments) at bench scale.
        let expected = |p: &CatalogPair| {
            let params = p.pair_params(Scale::BENCH);
            let total: f64 = params.classes.iter().map(|c| c.weight).sum();
            params.segments as f64 * p.tuning.huge / total
        };
        for w in pairs.windows(2) {
            assert!(
                expected(&w[0]) >= expected(&w[1]),
                "{} ({:.2}) vs {} ({:.2})",
                w[0].label,
                expected(&w[0]),
                w[1].label,
                expected(&w[1])
            );
        }
    }

    #[test]
    fn six_cross_genus_pairs_without_large_tail() {
        let pairs = cross_genus_pairs();
        assert_eq!(pairs.len(), 6);
        for p in &pairs {
            assert_eq!(p.genus, Genus::Cross);
            assert_eq!(p.tuning.large, 0.0);
            assert_eq!(p.tuning.huge, 0.0);
        }
    }

    #[test]
    fn real_sizes_match_table1() {
        let p = find_pair("C1_1,1").unwrap();
        assert_eq!(p.target_bp, 15_072_434);
        assert_eq!(p.query_bp, 15_455_979);
        assert_eq!(table1_genomes().len(), 15);
    }

    #[test]
    fn find_pair_misses_gracefully() {
        assert!(find_pair("nope").is_none());
        assert!(find_pair("CD_1,2R").is_some());
    }

    #[test]
    fn rng_seeds_are_distinct() {
        let mut seeds: Vec<u64> = within_genus_pairs()
            .iter()
            .chain(cross_genus_pairs().iter())
            .map(|p| p.rng_seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 15);
    }

    #[test]
    fn pair_params_scale() {
        let p = find_pair("C1_1,1").unwrap();
        let test = p.pair_params(Scale::TEST);
        let bench = p.pair_params(Scale::BENCH);
        assert!(test.target_len < bench.target_len);
        assert_eq!(bench.target_len, 15_072_434 / 100);
        assert!(test.segments >= 8);
    }

    #[test]
    fn catalog_pairs_generate() {
        let p = find_pair("D1_2R,2").unwrap();
        let pair = generate_pair(&p.pair_params(Scale::TEST));
        assert!(pair.target.len() > 10_000);
        assert!(!pair.truth.is_empty());
        // D1 has essentially no large/huge segments.
        assert!(pair
            .truth
            .iter()
            .all(|s| s.class != "huge" && s.class != "large" || s.target_len < 14_001));
    }

    #[test]
    fn cross_genus_generates_only_short_segments() {
        let p = find_pair("CA_1,X").unwrap();
        let pair = generate_pair(&p.pair_params(Scale::TEST));
        assert!(pair.truth.iter().all(|s| s.target_len <= 2_500));
    }
}
