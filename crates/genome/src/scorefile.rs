//! LASTZ score-file parsing and writing.
//!
//! LASTZ accepts a substitution matrix and gap penalties from a text
//! "score file" (`--scores=<file>`), e.g.:
//!
//! ```text
//! # HOXD70 with default gaps
//! O = 400
//! E = 30
//!      A     C     G     T
//! A   91  -114   -31  -123
//! C -114   100  -125   -31
//! G  -31  -125   100  -114
//! T -123   -31  -114    91
//! ```
//!
//! This module reads and writes that format so the CLI is interoperable
//! with existing LASTZ workflows.

use crate::scoring::{GapPenalties, Scoring, SubstMatrix};
use std::fmt;

/// Errors from score-file parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum ScoreFileError {
    /// A malformed `O = ...` / `E = ...` assignment.
    BadAssignment(String),
    /// The matrix header row was missing or not a permutation of ACGT.
    BadHeader(String),
    /// A matrix row was malformed.
    BadRow(String),
    /// Fewer than four matrix rows were present.
    MissingRows(usize),
    /// A numeric field failed to parse.
    BadNumber(String),
}

impl fmt::Display for ScoreFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreFileError::BadAssignment(l) => write!(f, "bad assignment line: {l}"),
            ScoreFileError::BadHeader(l) => write!(f, "bad matrix header: {l}"),
            ScoreFileError::BadRow(l) => write!(f, "bad matrix row: {l}"),
            ScoreFileError::MissingRows(n) => write!(f, "only {n} matrix rows"),
            ScoreFileError::BadNumber(s) => write!(f, "bad number: {s}"),
        }
    }
}

impl std::error::Error for ScoreFileError {}

fn base_index(ch: char) -> Option<usize> {
    match ch.to_ascii_uppercase() {
        'A' => Some(0),
        'C' => Some(1),
        'G' => Some(2),
        'T' => Some(3),
        _ => None,
    }
}

/// Parses a LASTZ score file, returning the scoring it defines on top of
/// `defaults` (fields absent from the file keep the default value).
pub fn parse_score_file(text: &str, defaults: &Scoring) -> Result<Scoring, ScoreFileError> {
    let mut open = defaults.gaps.open;
    let mut extend = defaults.gaps.extend;
    let mut header: Option<Vec<usize>> = None;
    let mut table = [[0i32; 4]; 4];
    let mut rows_seen = [false; 4];

    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some((lhs, rhs)) = line.split_once('=') {
            let key = lhs.trim().to_ascii_uppercase();
            let value: i32 = rhs
                .trim()
                .parse()
                .map_err(|_| ScoreFileError::BadNumber(rhs.trim().to_string()))?;
            match key.as_str() {
                "O" => open = value,
                "E" => extend = value,
                _ => return Err(ScoreFileError::BadAssignment(line.to_string())),
            }
            continue;
        }

        let fields: Vec<&str> = line.split_whitespace().collect();
        if header.is_none() {
            // Expect the column header: a permutation of A C G T.
            let cols: Option<Vec<usize>> = fields
                .iter()
                .map(|f| {
                    (f.len() == 1)
                        .then(|| base_index(f.chars().next().unwrap()))
                        .flatten()
                })
                .collect();
            match cols {
                Some(cols) if cols.len() == 4 => {
                    header = Some(cols);
                    continue;
                }
                _ => return Err(ScoreFileError::BadHeader(line.to_string())),
            }
        }

        // Matrix row: base label then four scores.
        let cols = header.as_ref().unwrap();
        if fields.len() != 5 || fields[0].len() != 1 {
            return Err(ScoreFileError::BadRow(line.to_string()));
        }
        let row = base_index(fields[0].chars().next().unwrap())
            .ok_or_else(|| ScoreFileError::BadRow(line.to_string()))?;
        for (k, f) in fields[1..].iter().enumerate() {
            let v: i32 = f
                .parse()
                .map_err(|_| ScoreFileError::BadNumber(f.to_string()))?;
            table[row][cols[k]] = v;
        }
        rows_seen[row] = true;
    }

    let seen = rows_seen.iter().filter(|&&b| b).count();
    if header.is_some() && seen < 4 {
        return Err(ScoreFileError::MissingRows(seen));
    }

    let subst = if header.is_some() {
        SubstMatrix::from_acgt(table, -1000)
    } else {
        defaults.subst.clone()
    };
    Ok(Scoring {
        subst,
        gaps: GapPenalties::new(open, extend),
        ..defaults.clone()
    })
}

/// Renders `scoring` as a LASTZ score file.
pub fn write_score_file(scoring: &Scoring) -> String {
    let mut out = String::from("# fastz score file\n");
    out.push_str(&format!("O = {}\n", scoring.gaps.open));
    out.push_str(&format!("E = {}\n", scoring.gaps.extend));
    out.push_str("     A     C     G     T\n");
    for (i, label) in ['A', 'C', 'G', 'T'].iter().enumerate() {
        out.push(*label);
        for j in 0..4 {
            out.push_str(&format!(" {:5}", scoring.subst.score(i as u8, j as u8)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOXD70_FILE: &str = "\
# HOXD70
O = 400
E = 30
     A     C     G     T
A   91  -114   -31  -123
C -114   100  -125   -31
G  -31  -125   100  -114
T -123   -31  -114    91
";

    #[test]
    fn parses_the_canonical_file() {
        let s = parse_score_file(HOXD70_FILE, &Scoring::lastz_default()).unwrap();
        assert_eq!(s.gaps.open, 400);
        assert_eq!(s.gaps.extend, 30);
        assert_eq!(s.subst, crate::scoring::SubstMatrix::hoxd70());
    }

    #[test]
    fn round_trips_through_writer() {
        let original = Scoring::lastz_default();
        let text = write_score_file(&original);
        let parsed = parse_score_file(&text, &Scoring::bench_scaled()).unwrap();
        assert_eq!(parsed.subst, original.subst);
        assert_eq!(parsed.gaps, original.gaps);
        // Non-file fields come from the defaults argument.
        assert_eq!(parsed.ydrop, Scoring::bench_scaled().ydrop);
    }

    #[test]
    fn gaps_only_file_keeps_default_matrix() {
        let s = parse_score_file("O = 500\nE = 50\n", &Scoring::lastz_default()).unwrap();
        assert_eq!(s.gaps.open, 500);
        assert_eq!(s.gaps.extend, 50);
        assert_eq!(s.subst, Scoring::lastz_default().subst);
    }

    #[test]
    fn permuted_header_is_honoured() {
        let text = "\
     T     G     C     A
A -123   -31  -114    91
C  -31  -125   100  -114
G -114   100  -125   -31
T   91  -114   -31  -123
";
        let s = parse_score_file(text, &Scoring::lastz_default()).unwrap();
        assert_eq!(s.subst, crate::scoring::SubstMatrix::hoxd70());
    }

    #[test]
    fn errors_are_reported() {
        let d = Scoring::lastz_default();
        assert!(matches!(
            parse_score_file("Q = 3\n", &d),
            Err(ScoreFileError::BadAssignment(_))
        ));
        assert!(matches!(
            parse_score_file("O = x\n", &d),
            Err(ScoreFileError::BadNumber(_))
        ));
        assert!(matches!(
            parse_score_file("  A  B  C  D\n", &d),
            Err(ScoreFileError::BadHeader(_))
        ));
        assert!(matches!(
            parse_score_file("     A     C     G     T\nA 1 2 3\n", &d),
            Err(ScoreFileError::BadRow(_))
        ));
        assert!(matches!(
            parse_score_file("     A     C     G     T\nA 1 2 3 4\n", &d),
            Err(ScoreFileError::MissingRows(1))
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("# leading comment\n\n{HOXD70_FILE}\n# trailing\n");
        assert!(parse_score_file(&text, &Scoring::lastz_default()).is_ok());
    }
}
