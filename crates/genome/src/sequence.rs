//! Sequence containers.
//!
//! [`Sequence`] stores one byte-code per base (fast random access for DP
//! inner loops); [`PackedSeq`] stores 2 bits per base plus an `N`-run
//! exception list (4x smaller, used for on-disk/catalog storage and the
//! seed index, which never needs `N` positions anyway).

use crate::alphabet::{codes_from_ascii, codes_to_ascii, complement_code, Base, N_CODE};
use std::fmt;

/// A named DNA sequence with one byte-code (0..=4) per base.
#[derive(Clone, PartialEq, Eq)]
pub struct Sequence {
    name: String,
    codes: Vec<u8>,
}

impl Sequence {
    /// Creates a sequence from pre-validated base codes.
    ///
    /// # Panics
    /// Panics (in debug builds) if any code exceeds 4.
    pub fn from_codes(name: impl Into<String>, codes: Vec<u8>) -> Sequence {
        debug_assert!(codes.iter().all(|&c| c <= N_CODE), "invalid base code");
        Sequence {
            name: name.into(),
            codes,
        }
    }

    /// Parses an ASCII string such as `"ACGTn"`. Returns `None` on any
    /// non-sequence character.
    pub fn from_ascii(name: impl Into<String>, ascii: &[u8]) -> Option<Sequence> {
        Some(Sequence {
            name: name.into(),
            codes: codes_from_ascii(ascii)?,
        })
    }

    /// The sequence's display name (FASTA header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the sequence.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw base codes.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// The base at `pos`.
    #[inline]
    pub fn base(&self, pos: usize) -> Base {
        Base::from_code(self.codes[pos])
    }

    /// ASCII (uppercase) rendering of the whole sequence.
    pub fn to_ascii(&self) -> Vec<u8> {
        codes_to_ascii(&self.codes)
    }

    /// Extracts `[start, end)` as a new sequence named `name:start-end`.
    pub fn subsequence(&self, start: usize, end: usize) -> Sequence {
        assert!(start <= end && end <= self.codes.len());
        Sequence {
            name: format!("{}:{}-{}", self.name, start, end),
            codes: self.codes[start..end].to_vec(),
        }
    }

    /// Reverse complement, named `name(-)`.
    pub fn reverse_complement(&self) -> Sequence {
        Sequence {
            name: format!("{}(-)", self.name),
            codes: self
                .codes
                .iter()
                .rev()
                .map(|&c| complement_code(c))
                .collect(),
        }
    }

    /// Fraction of G/C bases among non-`N` bases (0.0 for all-`N`).
    pub fn gc_content(&self) -> f64 {
        let mut gc = 0usize;
        let mut acgt = 0usize;
        for &c in &self.codes {
            if c < N_CODE {
                acgt += 1;
                if c == Base::C.code() || c == Base::G.code() {
                    gc += 1;
                }
            }
        }
        if acgt == 0 {
            0.0
        } else {
            gc as f64 / acgt as f64
        }
    }

    /// Number of `N` bases.
    pub fn n_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == N_CODE).count()
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview_len = self.codes.len().min(32);
        let preview = String::from_utf8(codes_to_ascii(&self.codes[..preview_len])).unwrap();
        write!(
            f,
            "Sequence({:?}, {} bp, {}{})",
            self.name,
            self.codes.len(),
            preview,
            if self.codes.len() > preview_len {
                "…"
            } else {
                ""
            }
        )
    }
}

/// A 2-bit-packed DNA sequence with an exception list for `N` runs.
///
/// Four bases per byte, little-endian within the byte: base `i` occupies
/// bits `2*(i%4) .. 2*(i%4)+2` of byte `i/4`. Positions inside an `N` run
/// decode to [`Base::N`] regardless of the (arbitrary) packed bits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PackedSeq {
    len: usize,
    words: Vec<u8>,
    /// Sorted, non-overlapping, non-adjacent `[start, end)` runs of `N`.
    n_runs: Vec<(u32, u32)>,
}

impl PackedSeq {
    /// Packs a code slice.
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        let mut words = vec![0u8; codes.len().div_ceil(4)];
        let mut n_runs: Vec<(u32, u32)> = Vec::new();
        for (i, &c) in codes.iter().enumerate() {
            let packed = if c >= N_CODE {
                match n_runs.last_mut() {
                    Some(run) if run.1 as usize == i => run.1 += 1,
                    _ => n_runs.push((i as u32, i as u32 + 1)),
                }
                0
            } else {
                c
            };
            words[i / 4] |= packed << (2 * (i % 4));
        }
        PackedSeq {
            len: codes.len(),
            words,
            n_runs,
        }
    }

    /// Packs a [`Sequence`].
    pub fn from_sequence(seq: &Sequence) -> PackedSeq {
        PackedSeq::from_codes(seq.codes())
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of packed storage (excluding the exception list).
    pub fn packed_bytes(&self) -> usize {
        self.words.len()
    }

    /// The code (0..=4) at `pos`, honouring `N` runs.
    #[inline]
    pub fn code(&self, pos: usize) -> u8 {
        debug_assert!(pos < self.len);
        if self.is_n(pos) {
            N_CODE
        } else {
            (self.words[pos / 4] >> (2 * (pos % 4))) & 0b11
        }
    }

    /// True if position `pos` falls inside an `N` run.
    #[inline]
    pub fn is_n(&self, pos: usize) -> bool {
        let pos = pos as u32;
        match self.n_runs.binary_search_by(|&(s, _)| s.cmp(&pos)) {
            Ok(_) => true,
            Err(idx) => idx > 0 && self.n_runs[idx - 1].1 > pos,
        }
    }

    /// Unpacks the whole sequence back to byte codes.
    pub fn unpack(&self) -> Vec<u8> {
        let mut codes = Vec::with_capacity(self.len);
        for i in 0..self.len {
            codes.push((self.words[i / 4] >> (2 * (i % 4))) & 0b11);
        }
        for &(s, e) in &self.n_runs {
            for c in &mut codes[s as usize..e as usize] {
                *c = N_CODE;
            }
        }
        codes
    }

    /// Unpacks into a named [`Sequence`].
    pub fn unpack_to_sequence(&self, name: impl Into<String>) -> Sequence {
        Sequence::from_codes(name, self.unpack())
    }

    /// The `N`-run exception list (sorted `[start, end)` pairs).
    pub fn n_runs(&self) -> &[(u32, u32)] {
        &self.n_runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ascii: &[u8]) -> Sequence {
        Sequence::from_ascii("t", ascii).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let s = seq(b"ACGTN");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.base(0), Base::A);
        assert_eq!(s.base(4), Base::N);
        assert_eq!(s.to_ascii(), b"ACGTN");
        assert_eq!(s.n_count(), 1);
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::from_codes("e", vec![]);
        assert!(s.is_empty());
        assert_eq!(s.gc_content(), 0.0);
        assert_eq!(s.reverse_complement().len(), 0);
    }

    #[test]
    fn subsequence_extracts_range() {
        let s = seq(b"AACCGGTT");
        let sub = s.subsequence(2, 6);
        assert_eq!(sub.to_ascii(), b"CCGG");
        assert_eq!(sub.name(), "t:2-6");
    }

    #[test]
    #[should_panic]
    fn subsequence_out_of_range_panics() {
        seq(b"ACGT").subsequence(2, 9);
    }

    #[test]
    fn reverse_complement_known() {
        let s = seq(b"AACGTN");
        assert_eq!(s.reverse_complement().to_ascii(), b"NACGTT");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let s = seq(b"ATCGGGCATNNAT");
        let rc_rc = s.reverse_complement().reverse_complement();
        assert_eq!(rc_rc.codes(), s.codes());
    }

    #[test]
    fn gc_content_ignores_n() {
        let s = seq(b"GGCCNNNN");
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let s = seq(b"GCAT");
        assert!((s.gc_content() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn packed_round_trip() {
        let s = seq(b"ACGTACGTNNACGNTT");
        let p = PackedSeq::from_sequence(&s);
        assert_eq!(p.len(), s.len());
        assert_eq!(p.unpack(), s.codes());
        for i in 0..s.len() {
            assert_eq!(p.code(i), s.codes()[i], "pos {i}");
        }
    }

    #[test]
    fn packed_n_runs_merge() {
        let s = seq(b"NNACGNNNT");
        let p = PackedSeq::from_sequence(&s);
        assert_eq!(p.n_runs(), &[(0, 2), (5, 8)]);
        assert!(p.is_n(0));
        assert!(p.is_n(7));
        assert!(!p.is_n(2));
        assert!(!p.is_n(8));
    }

    #[test]
    fn packed_is_4x_smaller() {
        let codes = vec![0u8; 1024];
        let p = PackedSeq::from_codes(&codes);
        assert_eq!(p.packed_bytes(), 256);
    }

    #[test]
    fn packed_empty() {
        let p = PackedSeq::from_codes(&[]);
        assert!(p.is_empty());
        assert!(p.unpack().is_empty());
    }

    #[test]
    fn debug_preview_truncates() {
        let s = Sequence::from_codes("x", vec![0; 100]);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("100 bp"));
        assert!(dbg.contains('…'));
    }
}
