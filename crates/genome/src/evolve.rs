//! Synthetic genome-pair generation (the data substitution for real
//! chromosome pairs).
//!
//! The paper evaluates on real chromosome pairs (C. elegans / C. briggsae,
//! fruit flies, mosquitoes). Those inputs are unavailable here, so we
//! generate pairs with the property the paper's evaluation actually depends
//! on: a **heavily skewed distribution of homologous-segment lengths**
//! (Table 2: 75-80 % of seed extensions end within 16 bp, ~20 % within
//! 512 bp, and a handful of alignments reach 8K-32K bp).
//!
//! A pair is built as a collinear mosaic: independent random ("unrelated")
//! background in both sequences, interrupted by *planted homologous
//! segments*. Each planted segment is a fresh random ancestor copied into
//! both sequences, with the query copy mutated (substitutions + indels)
//! according to its homology class. Seed matches arise inside planted
//! segments (found by the real seed index, not synthesized), and a y-drop
//! extension from such a seed dies quickly once it reaches the unrelated
//! background — exactly the mechanism that shapes the paper's distribution.

use crate::alphabet::Base;
use crate::sequence::Sequence;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-base mutation rates applied to the query copy of a planted segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MutationRates {
    /// Probability that a base is substituted by a different base.
    pub substitution: f64,
    /// Probability that an indel event starts at a base (split evenly
    /// between insertion and deletion).
    pub indel: f64,
    /// Mean indel length (geometric distribution, minimum 1).
    pub mean_indel_len: f64,
}

impl MutationRates {
    /// No mutation at all (identical copies).
    pub const IDENTITY: MutationRates = MutationRates {
        substitution: 0.0,
        indel: 0.0,
        mean_indel_len: 1.0,
    };

    /// Typical within-genus conserved coding sequence.
    pub fn conserved() -> MutationRates {
        MutationRates {
            substitution: 0.06,
            indel: 0.004,
            mean_indel_len: 2.5,
        }
    }

    /// Weakly conserved / intronic sequence.
    pub fn weak() -> MutationRates {
        MutationRates {
            substitution: 0.15,
            indel: 0.01,
            mean_indel_len: 2.0,
        }
    }

    /// Anciently conserved sequence: high substitution load and very
    /// dense indels. Gapped extension still accumulates ~25-30 points/bp
    /// (the indel events are cheap relative to the matches they bridge),
    /// but ungapped runs between indels average ~7 bp, so even the
    /// longest run in a segment hovers at LASTZ's 3000-point HSP
    /// threshold — the partial-loss regime the paper's Figure 2 shows
    /// for the ungapped filter.
    pub fn aged() -> MutationRates {
        MutationRates {
            substitution: 0.16,
            indel: 0.15,
            mean_indel_len: 2.0,
        }
    }
}

/// A class of planted homologous segments.
#[derive(Clone, Debug)]
pub struct HomologyClass {
    /// Human-readable class name (e.g. `"tiny"`).
    pub name: &'static str,
    /// Inclusive segment length range (ancestor length, in bp).
    pub len_range: (usize, usize),
    /// Relative sampling weight.
    pub weight: f64,
    /// Mutation rates applied to the query copy.
    pub rates: MutationRates,
}

/// The default class mixture: tuned so that, with 19-bp seeds, the
/// per-seed alignment-extent distribution matches the *shape* of the
/// paper's Table 2 (~75-80 % eager-traceback, most of the rest in bin 1,
/// thin decreasing bins 2-4). A seed's extension reaches the segment
/// boundary, so the eager class (extent ≤ 16) comes from segments of at
/// most ~35 bp (19-bp seed span + 16 bp) plus chance seed matches in the
/// unrelated background.
pub fn default_classes() -> Vec<HomologyClass> {
    vec![
        HomologyClass {
            name: "tiny",
            len_range: (21, 34),
            weight: 67.0,
            rates: MutationRates {
                substitution: 0.03,
                indel: 0.0,
                mean_indel_len: 1.0,
            },
        },
        HomologyClass {
            name: "small",
            len_range: (35, 430),
            weight: 32.5,
            rates: MutationRates::conserved(),
        },
        HomologyClass {
            name: "medium",
            len_range: (900, 1_900),
            weight: 0.40,
            rates: MutationRates::conserved(),
        },
        HomologyClass {
            name: "large",
            len_range: (4_200, 7_800),
            weight: 0.06,
            rates: MutationRates::conserved(),
        },
        HomologyClass {
            name: "huge",
            len_range: (16_000, 22_000),
            weight: 0.012,
            rates: MutationRates {
                substitution: 0.03,
                indel: 0.003,
                mean_indel_len: 3.0,
            },
        },
    ]
}

/// A cross-genus mixture: no medium/large/huge conserved segments, higher
/// divergence — reproduces §5.4 ("no alignment falls in the two largest
/// size bins").
pub fn cross_genus_classes() -> Vec<HomologyClass> {
    vec![
        HomologyClass {
            name: "tiny",
            len_range: (21, 34),
            weight: 80.0,
            rates: MutationRates {
                substitution: 0.04,
                indel: 0.0,
                mean_indel_len: 1.0,
            },
        },
        HomologyClass {
            name: "small",
            len_range: (35, 400),
            weight: 19.9,
            rates: MutationRates::weak(),
        },
        HomologyClass {
            name: "medium",
            len_range: (900, 1_800),
            weight: 0.1,
            rates: MutationRates::weak(),
        },
    ]
}

/// Parameters for generating one synthetic pair.
#[derive(Clone, Debug)]
pub struct PairParams {
    /// Pair label (becomes the sequence-name prefix).
    pub label: String,
    /// Approximate target (reference) sequence length.
    pub target_len: usize,
    /// Approximate query sequence length.
    pub query_len: usize,
    /// Number of homologous segments to plant.
    pub segments: usize,
    /// Homology class mixture.
    pub classes: Vec<HomologyClass>,
    /// GC content of generated sequence.
    pub gc: f64,
    /// RNG seed (generation is fully deterministic given the params).
    pub rng_seed: u64,
}

impl PairParams {
    /// A small default pair useful in tests and examples.
    pub fn small_demo(label: &str, rng_seed: u64) -> PairParams {
        PairParams {
            label: label.to_string(),
            target_len: 120_000,
            query_len: 120_000,
            segments: 220,
            classes: default_classes(),
            gc: 0.42,
            rng_seed,
        }
    }
}

/// Ground truth for one planted segment (used by tests and sensitivity
/// analyses; the alignment pipeline never sees this).
#[derive(Clone, Debug)]
pub struct PlantedSegment {
    /// Class name.
    pub class: &'static str,
    /// Start of the segment copy in the target.
    pub target_start: usize,
    /// Length of the target copy.
    pub target_len: usize,
    /// Start of the (mutated) copy in the query.
    pub query_start: usize,
    /// Length of the query copy (differs from `target_len` by net indels).
    pub query_len: usize,
}

/// A generated synthetic pair plus its ground truth.
#[derive(Clone, Debug)]
pub struct GenomePair {
    /// Pair label.
    pub label: String,
    /// Target (reference) sequence.
    pub target: Sequence,
    /// Query sequence.
    pub query: Sequence,
    /// Planted-segment ground truth, sorted by `target_start`.
    pub truth: Vec<PlantedSegment>,
}

/// Generates `len` random bases with the given GC content.
pub fn random_codes(len: usize, gc: f64, rng: &mut SmallRng) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&gc), "gc must be a probability");
    let mut codes = Vec::with_capacity(len);
    for _ in 0..len {
        let code = if rng.gen_bool(gc) {
            // C or G
            if rng.gen_bool(0.5) {
                Base::C.code()
            } else {
                Base::G.code()
            }
        } else if rng.gen_bool(0.5) {
            Base::A.code()
        } else {
            Base::T.code()
        };
        codes.push(code);
    }
    codes
}

/// Generates a named random sequence.
pub fn random_sequence(name: &str, len: usize, gc: f64, seed: u64) -> Sequence {
    let mut rng = SmallRng::seed_from_u64(seed);
    Sequence::from_codes(name, random_codes(len, gc, &mut rng))
}

/// Samples a geometric length with the given mean (minimum 1).
fn geometric_len(mean: f64, rng: &mut SmallRng) -> usize {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let mut len = 1usize;
    while len < 1000 && !rng.gen_bool(p) {
        len += 1;
    }
    len
}

/// Applies `rates` to `ancestor`, returning the mutated copy.
///
/// Substitutions replace a base with one of the three others uniformly;
/// indels are geometric-length insertions (random bases) or deletions.
pub fn mutate(ancestor: &[u8], rates: &MutationRates, gc: f64, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(ancestor.len() + 8);
    let mut i = 0usize;
    while i < ancestor.len() {
        if rates.indel > 0.0 && rng.gen_bool(rates.indel) {
            let len = geometric_len(rates.mean_indel_len, rng);
            if rng.gen_bool(0.5) {
                // Insertion before position i.
                out.extend(random_codes(len, gc, rng));
                // Fall through to also emit the current base below.
            } else {
                // Deletion of up to `len` bases starting at i.
                i = (i + len).min(ancestor.len());
                continue;
            }
        }
        let base = ancestor[i];
        if rates.substitution > 0.0 && rng.gen_bool(rates.substitution) {
            // Substitute with one of the three other nucleotides.
            let mut alt = rng.gen_range(0..3u8);
            if alt >= base {
                alt += 1;
            }
            out.push(alt % 4);
        } else {
            out.push(base);
        }
        i += 1;
    }
    out
}

/// Picks a class index according to the mixture weights.
fn pick_class(classes: &[HomologyClass], rng: &mut SmallRng) -> usize {
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    assert!(total > 0.0, "class weights must sum to a positive value");
    let mut x = rng.gen_range(0.0..total);
    for (i, c) in classes.iter().enumerate() {
        if x < c.weight {
            return i;
        }
        x -= c.weight;
    }
    classes.len() - 1
}

/// Generates a synthetic genome pair from `params`.
///
/// The two sequences are collinear mosaics: unrelated random background
/// interleaved with planted homologous segments in the same order. The
/// planted ground truth is returned alongside the sequences.
pub fn generate_pair(params: &PairParams) -> GenomePair {
    assert!(params.segments > 0, "need at least one planted segment");
    assert!(
        !params.classes.is_empty(),
        "need at least one homology class"
    );
    let mut rng = SmallRng::seed_from_u64(params.rng_seed);

    // Draw the planted segments up front so we know the homology budget.
    let mut seg_specs: Vec<(usize, usize)> = Vec::with_capacity(params.segments); // (class, len)
    let mut homology_total = 0usize;
    for _ in 0..params.segments {
        let ci = pick_class(&params.classes, &mut rng);
        let (lo, hi) = params.classes[ci].len_range;
        let len = rng.gen_range(lo..=hi);
        seg_specs.push((ci, len));
        homology_total += len;
    }

    let background_total = params.target_len.saturating_sub(homology_total);
    assert!(
        background_total >= params.segments,
        "target_len {} too small for {} bp of planted homology across {} segments",
        params.target_len,
        homology_total,
        params.segments
    );

    // Split the background budget into segments+1 gaps with ±50 % jitter.
    let gaps = params.segments + 1;
    let mean_gap = background_total / gaps;
    let mut gap_lens: Vec<usize> = (0..gaps)
        .map(|_| {
            let jitter = rng.gen_range(0.5..1.5);
            ((mean_gap as f64) * jitter) as usize
        })
        .collect();
    // Re-balance so totals still roughly match the requested length.
    let assigned: usize = gap_lens.iter().sum();
    if assigned < background_total {
        gap_lens[gaps - 1] += background_total - assigned;
    }

    let mut target = Vec::with_capacity(params.target_len + 1024);
    let mut query = Vec::with_capacity(params.query_len + 1024);
    let mut truth = Vec::with_capacity(params.segments);

    for (idx, &(ci, len)) in seg_specs.iter().enumerate() {
        // Unrelated background: independent draws for target and query.
        let t_gap = gap_lens[idx];
        // Query gaps scale by the requested query/target ratio.
        let q_gap =
            (t_gap as f64 * params.query_len as f64 / params.target_len as f64).round() as usize;
        target.extend(random_codes(t_gap, params.gc, &mut rng));
        query.extend(random_codes(q_gap, params.gc, &mut rng));

        // Planted segment: ancestor into target verbatim, mutated into query.
        let class = &params.classes[ci];
        let ancestor = random_codes(len, params.gc, &mut rng);
        let mutated = mutate(&ancestor, &class.rates, params.gc, &mut rng);
        truth.push(PlantedSegment {
            class: class.name,
            target_start: target.len(),
            target_len: ancestor.len(),
            query_start: query.len(),
            query_len: mutated.len(),
        });
        target.extend_from_slice(&ancestor);
        query.extend_from_slice(&mutated);
    }
    target.extend(random_codes(gap_lens[gaps - 1], params.gc, &mut rng));
    let q_tail = params.query_len.saturating_sub(query.len());
    query.extend(random_codes(q_tail, params.gc, &mut rng));

    GenomePair {
        label: params.label.clone(),
        target: Sequence::from_codes(format!("{}.target", params.label), target),
        query: Sequence::from_codes(format!("{}.query", params.label), query),
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_codes_respects_gc() {
        let mut rng = SmallRng::seed_from_u64(1);
        let codes = random_codes(100_000, 0.6, &mut rng);
        let gc = codes.iter().filter(|&&c| c == 1 || c == 2).count() as f64 / 1e5;
        assert!((gc - 0.6).abs() < 0.01, "observed gc {gc}");
    }

    #[test]
    fn mutate_identity_is_identity() {
        let mut rng = SmallRng::seed_from_u64(2);
        let anc = random_codes(1000, 0.5, &mut rng);
        assert_eq!(mutate(&anc, &MutationRates::IDENTITY, 0.5, &mut rng), anc);
    }

    #[test]
    fn mutate_substitution_rate_observed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let anc = random_codes(200_000, 0.5, &mut rng);
        let rates = MutationRates {
            substitution: 0.10,
            indel: 0.0,
            mean_indel_len: 1.0,
        };
        let mutated = mutate(&anc, &rates, 0.5, &mut rng);
        assert_eq!(mutated.len(), anc.len());
        let diffs = anc.iter().zip(&mutated).filter(|(a, b)| a != b).count() as f64;
        let rate = diffs / anc.len() as f64;
        assert!(
            (rate - 0.10).abs() < 0.01,
            "observed substitution rate {rate}"
        );
    }

    #[test]
    fn mutate_substitutions_never_produce_same_base() {
        // The "pick one of the other three" trick must never reproduce the
        // original base; verify on a constant sequence.
        let mut rng = SmallRng::seed_from_u64(4);
        let anc = vec![2u8; 50_000];
        let rates = MutationRates {
            substitution: 1.0,
            indel: 0.0,
            mean_indel_len: 1.0,
        };
        let mutated = mutate(&anc, &rates, 0.5, &mut rng);
        assert!(mutated.iter().all(|&b| b != 2 && b < 4));
    }

    #[test]
    fn indels_change_length() {
        let mut rng = SmallRng::seed_from_u64(5);
        let anc = random_codes(50_000, 0.5, &mut rng);
        let rates = MutationRates {
            substitution: 0.0,
            indel: 0.02,
            mean_indel_len: 3.0,
        };
        let mutated = mutate(&anc, &rates, 0.5, &mut rng);
        assert_ne!(mutated.len(), anc.len());
        // Net length change should be small relative to the indel churn.
        let delta = (mutated.len() as i64 - anc.len() as i64).unsigned_abs() as usize;
        assert!(delta < anc.len() / 10);
    }

    #[test]
    fn generate_pair_is_deterministic() {
        let params = PairParams::small_demo("demo", 42);
        let a = generate_pair(&params);
        let b = generate_pair(&params);
        assert_eq!(a.target.codes(), b.target.codes());
        assert_eq!(a.query.codes(), b.query.codes());
        assert_eq!(a.truth.len(), b.truth.len());
    }

    #[test]
    fn generate_pair_lengths_roughly_match() {
        let params = PairParams::small_demo("demo", 7);
        let pair = generate_pair(&params);
        let t = pair.target.len() as f64;
        let q = pair.query.len() as f64;
        assert!(
            (t / params.target_len as f64 - 1.0).abs() < 0.25,
            "target {t}"
        );
        assert!(
            (q / params.query_len as f64 - 1.0).abs() < 0.25,
            "query {q}"
        );
    }

    #[test]
    fn planted_truth_matches_sequences() {
        let params = PairParams::small_demo("demo", 11);
        let pair = generate_pair(&params);
        assert_eq!(pair.truth.len(), params.segments);
        let mut prev_end = 0usize;
        for seg in &pair.truth {
            assert!(seg.target_start >= prev_end, "segments must be ordered");
            prev_end = seg.target_start + seg.target_len;
            assert!(prev_end <= pair.target.len());
            assert!(seg.query_start + seg.query_len <= pair.query.len());
        }
    }

    #[test]
    fn tiny_segments_are_near_identical_copies() {
        let params = PairParams::small_demo("demo", 13);
        let pair = generate_pair(&params);
        let seg = pair
            .truth
            .iter()
            .find(|s| s.class == "tiny")
            .expect("mixture should produce tiny segments");
        let t = &pair.target.codes()[seg.target_start..seg.target_start + seg.target_len];
        let q = &pair.query.codes()[seg.query_start..seg.query_start + seg.query_len];
        assert_eq!(t.len(), q.len(), "tiny class has no indels");
        let matches = t.iter().zip(q).filter(|(a, b)| a == b).count();
        assert!(matches as f64 / t.len() as f64 > 0.80);
    }

    #[test]
    fn class_mixture_weights_respected() {
        let mut rng = SmallRng::seed_from_u64(17);
        let classes = default_classes();
        let mut counts = vec![0usize; classes.len()];
        for _ in 0..20_000 {
            counts[pick_class(&classes, &mut rng)] += 1;
        }
        // "tiny" should dominate with ~67 % of draws.
        let tiny_frac = counts[0] as f64 / 20_000.0;
        assert!((tiny_frac - 0.67).abs() < 0.02, "tiny fraction {tiny_frac}");
    }

    #[test]
    fn cross_genus_has_no_large_segments() {
        for c in cross_genus_classes() {
            assert!(c.len_range.1 <= 2_500);
        }
    }
}
