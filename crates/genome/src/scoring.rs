//! Alignment scoring: substitution matrices and affine gap penalties.
//!
//! Defaults mirror LASTZ: the HOXD70 substitution matrix (Chiaromonte,
//! Yap & Miller 2002), gap open 400 / gap extend 30 (expressed as negative
//! scores in the recurrences), y-drop `O + 300·E = 9400`, x-drop 910 for the
//! ungapped filter, and an HSP / gapped-alignment score threshold of 3000.

use crate::alphabet::{Base, ALPHABET_SIZE, N_CODE};

/// A substitution score matrix over the 5-letter code alphabet (ACGTN).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubstMatrix {
    scores: [[i32; ALPHABET_SIZE]; ALPHABET_SIZE],
}

impl SubstMatrix {
    /// Builds a matrix from a 4x4 ACGT score table; every pairing involving
    /// `N` is assigned `n_score` (strongly negative by default usage so that
    /// extensions never run through unknown sequence).
    pub fn from_acgt(table: [[i32; 4]; 4], n_score: i32) -> SubstMatrix {
        let mut scores = [[n_score; ALPHABET_SIZE]; ALPHABET_SIZE];
        for (i, row) in table.iter().enumerate() {
            scores[i][..4].copy_from_slice(row);
        }
        SubstMatrix { scores }
    }

    /// The LASTZ default HOXD70 matrix. `N` scores −1000 against everything.
    pub fn hoxd70() -> SubstMatrix {
        SubstMatrix::from_acgt(
            [
                //  A     C     G     T
                [91, -114, -31, -123],  // A
                [-114, 100, -125, -31], // C
                [-31, -125, 100, -114], // G
                [-123, -31, -114, 91],  // T
            ],
            -1000,
        )
    }

    /// A uniform match/mismatch matrix (useful in unit tests and property
    /// tests where hand-checkable scores are needed).
    pub fn match_mismatch(match_score: i32, mismatch_score: i32) -> SubstMatrix {
        let mut table = [[mismatch_score; 4]; 4];
        for (i, row) in table.iter_mut().enumerate() {
            row[i] = match_score;
        }
        SubstMatrix::from_acgt(table, mismatch_score.min(-1))
    }

    /// Score of aligning code `a` against code `b`.
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize][b as usize]
    }

    /// Score of aligning two [`Base`]s.
    #[inline]
    pub fn score_bases(&self, a: Base, b: Base) -> i32 {
        self.score(a.code(), b.code())
    }

    /// Maximum score in the matrix (the best possible per-base gain).
    pub fn max_score(&self) -> i32 {
        let mut m = i32::MIN;
        for row in &self.scores {
            for &s in &row[..4] {
                m = m.max(s);
            }
        }
        m
    }

    /// True if the matrix is symmetric (required for strand symmetry).
    pub fn is_symmetric(&self) -> bool {
        for a in 0..ALPHABET_SIZE {
            for b in 0..ALPHABET_SIZE {
                if self.scores[a][b] != self.scores[b][a] {
                    return false;
                }
            }
        }
        true
    }
}

/// Affine gap penalties, stored as positive costs.
///
/// A gap of length `g` costs `open + extend * g`; in the Gotoh recurrences
/// the first gapped cell therefore pays `-(open + extend)` and each further
/// cell `-extend`, matching Fig. 1 of the paper (`s_o + s_e` then `s_e`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GapPenalties {
    /// Cost for opening a gap (LASTZ default 400).
    pub open: i32,
    /// Cost per gapped base (LASTZ default 30).
    pub extend: i32,
}

impl GapPenalties {
    /// LASTZ defaults: open 400, extend 30.
    pub const LASTZ_DEFAULT: GapPenalties = GapPenalties {
        open: 400,
        extend: 30,
    };

    /// Creates gap penalties from positive costs.
    ///
    /// # Panics
    /// Panics if either cost is negative or `extend` is zero (a zero extend
    /// cost makes y-drop termination unsound).
    pub fn new(open: i32, extend: i32) -> GapPenalties {
        assert!(open >= 0, "gap open cost must be non-negative");
        assert!(extend > 0, "gap extend cost must be positive");
        GapPenalties { open, extend }
    }

    /// The score delta for opening a gap (first gapped base): `-(open+extend)`.
    #[inline(always)]
    pub fn open_score(&self) -> i32 {
        -(self.open + self.extend)
    }

    /// The score delta for extending a gap by one base: `-extend`.
    #[inline(always)]
    pub fn extend_score(&self) -> i32 {
        -self.extend
    }

    /// Total cost of a gap of `len` bases.
    pub fn gap_cost(&self, len: usize) -> i32 {
        if len == 0 {
            0
        } else {
            self.open + self.extend * len as i32
        }
    }
}

/// Complete scoring configuration for the WGA pipeline.
#[derive(Clone, Debug)]
pub struct Scoring {
    /// Substitution matrix.
    pub subst: SubstMatrix,
    /// Affine gap penalties.
    pub gaps: GapPenalties,
    /// Gapped-extension termination threshold: a DP cell is abandoned when
    /// its score falls more than `ydrop` below the best score seen so far.
    pub ydrop: i32,
    /// Ungapped-extension termination threshold (LASTZ `--xdrop`).
    pub xdrop: i32,
    /// Minimum ungapped HSP score for the ungapped filtering stage
    /// (LASTZ `--hspthresh`).
    pub hsp_threshold: i32,
    /// Minimum final gapped alignment score to report
    /// (LASTZ `--gappedthresh`).
    pub gapped_threshold: i32,
}

impl Scoring {
    /// LASTZ defaults: HOXD70, 400/30 gaps, ydrop = open + 300·extend = 9400,
    /// xdrop = 10·A-match = 910, hspthresh = gappedthresh = 3000.
    pub fn lastz_default() -> Scoring {
        let gaps = GapPenalties::LASTZ_DEFAULT;
        Scoring {
            subst: SubstMatrix::hoxd70(),
            gaps,
            ydrop: gaps.open + 300 * gaps.extend,
            xdrop: 910,
            hsp_threshold: 3000,
            gapped_threshold: 3000,
        }
    }

    /// A scaled-down configuration for benchmark harnesses: identical matrix
    /// and gap costs, but a smaller y-drop so that the explored search space
    /// around each (scaled-down) seed keeps the paper's ratio of search
    /// space to optimal alignment without requiring chromosome-scale inputs.
    pub fn bench_scaled() -> Scoring {
        let mut s = Scoring::lastz_default();
        s.ydrop = s.gaps.open + 90 * s.gaps.extend; // 3100
        s.hsp_threshold = 1500;
        s.gapped_threshold = 1500;
        s
    }

    /// Rough upper bound on how many rows/columns the y-drop region can
    /// extend past the optimum: once the running score trails the best by
    /// more than `ydrop`, extension stops; each all-mismatch row costs at
    /// least `extend`, so the overshoot is bounded by `ydrop / extend + 1`.
    pub fn ydrop_overshoot_bound(&self) -> usize {
        (self.ydrop / self.gaps.extend) as usize + 1
    }

    /// True if a base code should be treated as unalignable (`N`).
    #[inline]
    pub fn is_unalignable(code: u8) -> bool {
        code >= N_CODE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoxd70_known_entries() {
        let m = SubstMatrix::hoxd70();
        assert_eq!(m.score_bases(Base::A, Base::A), 91);
        assert_eq!(m.score_bases(Base::C, Base::C), 100);
        assert_eq!(m.score_bases(Base::G, Base::G), 100);
        assert_eq!(m.score_bases(Base::T, Base::T), 91);
        assert_eq!(m.score_bases(Base::A, Base::G), -31);
        assert_eq!(m.score_bases(Base::C, Base::T), -31);
        assert_eq!(m.score_bases(Base::A, Base::T), -123);
        assert_eq!(m.score_bases(Base::C, Base::G), -125);
    }

    #[test]
    fn hoxd70_is_symmetric() {
        assert!(SubstMatrix::hoxd70().is_symmetric());
    }

    #[test]
    fn hoxd70_transitions_cheaper_than_transversions() {
        // A<->G and C<->T are transitions; they must score better than
        // transversions under HOXD70.
        let m = SubstMatrix::hoxd70();
        let transition = m.score_bases(Base::A, Base::G);
        assert!(transition > m.score_bases(Base::A, Base::T));
        assert!(transition > m.score_bases(Base::C, Base::G));
    }

    #[test]
    fn n_scores_badly() {
        let m = SubstMatrix::hoxd70();
        for b in Base::NUCLEOTIDES {
            assert_eq!(m.score_bases(Base::N, b), -1000);
            assert_eq!(m.score_bases(b, Base::N), -1000);
        }
    }

    #[test]
    fn match_mismatch_matrix() {
        let m = SubstMatrix::match_mismatch(5, -4);
        assert_eq!(m.score_bases(Base::A, Base::A), 5);
        assert_eq!(m.score_bases(Base::A, Base::C), -4);
        assert!(m.is_symmetric());
        assert_eq!(m.max_score(), 5);
    }

    #[test]
    fn gap_penalties_scores() {
        let g = GapPenalties::new(400, 30);
        assert_eq!(g.open_score(), -430);
        assert_eq!(g.extend_score(), -30);
        assert_eq!(g.gap_cost(0), 0);
        assert_eq!(g.gap_cost(1), 430);
        assert_eq!(g.gap_cost(10), 700);
    }

    #[test]
    #[should_panic]
    fn zero_extend_rejected() {
        GapPenalties::new(400, 0);
    }

    #[test]
    fn lastz_default_parameters() {
        let s = Scoring::lastz_default();
        assert_eq!(s.gaps.open, 400);
        assert_eq!(s.gaps.extend, 30);
        assert_eq!(s.ydrop, 9400);
        assert_eq!(s.hsp_threshold, 3000);
    }

    #[test]
    fn overshoot_bound_positive_and_monotone() {
        let s = Scoring::lastz_default();
        let b = Scoring::bench_scaled();
        assert!(s.ydrop_overshoot_bound() > b.ydrop_overshoot_bound());
        assert!(b.ydrop_overshoot_bound() >= 1);
    }
}
