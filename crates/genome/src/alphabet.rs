//! DNA alphabet: base codes, ASCII conversion, and complementation.
//!
//! Bases are stored internally as small integer *codes* so that DP inner
//! loops can index substitution matrices directly without branching:
//!
//! | base | code |
//! |------|------|
//! | A    | 0    |
//! | C    | 1    |
//! | G    | 2    |
//! | T    | 3    |
//! | N    | 4    |
//!
//! `N` (any/unknown) is a first-class code because real FASTA inputs contain
//! runs of `N`; scoring treats it as a strong mismatch against everything so
//! that alignments never extend through unknown sequence.

/// Number of distinct base codes (A, C, G, T, N).
pub const ALPHABET_SIZE: usize = 5;

/// Code for an unknown base.
pub const N_CODE: u8 = 4;

/// A single DNA base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    /// Adenine
    A = 0,
    /// Cytosine
    C = 1,
    /// Guanine
    G = 2,
    /// Thymine
    T = 3,
    /// Unknown / masked
    N = 4,
}

impl Base {
    /// All four concrete nucleotides (excludes [`Base::N`]).
    pub const NUCLEOTIDES: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Converts an internal code (0..=4) to a `Base`.
    ///
    /// # Panics
    /// Panics if `code > 4`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            4 => Base::N,
            _ => panic!("invalid base code {code}"),
        }
    }

    /// The internal code of this base (0..=4).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an ASCII nucleotide character (case-insensitive).
    /// Any IUPAC ambiguity character other than ACGT maps to `N`.
    /// Returns `None` for characters that are not plausible sequence
    /// characters at all (digits, punctuation other than `-`).
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch.to_ascii_uppercase() {
            b'A' => Some(Base::A),
            b'C' => Some(Base::C),
            b'G' => Some(Base::G),
            b'T' | b'U' => Some(Base::T),
            // IUPAC ambiguity codes degrade to N.
            b'N' | b'R' | b'Y' | b'S' | b'W' | b'K' | b'M' | b'B' | b'D' | b'H' | b'V' | b'X' => {
                Some(Base::N)
            }
            _ => None,
        }
    }

    /// The ASCII (uppercase) representation of this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
            Base::N => b'N',
        }
    }

    /// Watson–Crick complement. `N` complements to `N`.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
            Base::N => Base::N,
        }
    }
}

/// Complements a base *code* without constructing a [`Base`].
///
/// Codes 0..=3 map to `3 - code` (A<->T, C<->G); `N` stays `N`.
#[inline]
pub fn complement_code(code: u8) -> u8 {
    if code >= N_CODE {
        N_CODE
    } else {
        3 - code
    }
}

/// Converts an ASCII byte slice into base codes, mapping unknown
/// characters to `N` and skipping nothing. Returns `None` if any byte is
/// not a plausible sequence character.
pub fn codes_from_ascii(ascii: &[u8]) -> Option<Vec<u8>> {
    ascii
        .iter()
        .map(|&ch| Base::from_ascii(ch).map(Base::code))
        .collect()
}

/// Converts base codes to uppercase ASCII.
pub fn codes_to_ascii(codes: &[u8]) -> Vec<u8> {
    codes
        .iter()
        .map(|&c| Base::from_code(c).to_ascii())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..=4u8 {
            assert_eq!(Base::from_code(code).code(), code);
        }
    }

    #[test]
    fn ascii_round_trip() {
        for b in [Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
        }
    }

    #[test]
    fn lowercase_parses() {
        assert_eq!(Base::from_ascii(b'a'), Some(Base::A));
        assert_eq!(Base::from_ascii(b't'), Some(Base::T));
        assert_eq!(Base::from_ascii(b'n'), Some(Base::N));
    }

    #[test]
    fn uracil_maps_to_t() {
        assert_eq!(Base::from_ascii(b'U'), Some(Base::T));
    }

    #[test]
    fn iupac_ambiguity_maps_to_n() {
        for ch in b"RYSWKMBDHVX" {
            assert_eq!(Base::from_ascii(*ch), Some(Base::N), "char {}", *ch as char);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(Base::from_ascii(b'1'), None);
        assert_eq!(Base::from_ascii(b'*'), None);
        assert_eq!(Base::from_ascii(b' '), None);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::NUCLEOTIDES {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::N.complement(), Base::N);
    }

    #[test]
    fn complement_code_matches_base_complement() {
        for code in 0..=4u8 {
            assert_eq!(
                complement_code(code),
                Base::from_code(code).complement().code()
            );
        }
    }

    #[test]
    fn codes_from_ascii_whole_string() {
        let codes = codes_from_ascii(b"ACGTNacgtn").unwrap();
        assert_eq!(codes, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        assert!(codes_from_ascii(b"ACG!T").is_none());
    }

    #[test]
    fn codes_to_ascii_uppercases() {
        assert_eq!(codes_to_ascii(&[0, 1, 2, 3, 4]), b"ACGTN".to_vec());
    }
}
