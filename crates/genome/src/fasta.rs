//! Minimal FASTA reading and writing.
//!
//! Supports multi-record files, arbitrary line wrapping, CRLF endings,
//! lowercase (soft-masked) bases, and IUPAC ambiguity codes (degraded to
//! `N`). Parsing is strict about structure: text before the first header
//! or unparseable sequence characters produce an error rather than silent
//! data loss.

use crate::sequence::Sequence;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Errors produced by the FASTA parser.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data encountered before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending data.
        line: usize,
    },
    /// A character that cannot be part of a sequence.
    BadCharacter {
        /// 1-based line number of the offending data.
        line: usize,
        /// The offending character.
        ch: char,
    },
    /// A header with an empty name.
    EmptyName {
        /// 1-based line number of the offending header.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::BadCharacter { line, ch } => {
                write!(f, "line {line}: invalid sequence character {ch:?}")
            }
            FastaError::EmptyName { line } => write!(f, "line {line}: empty record name"),
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parses all records from a reader.
pub fn read_fasta<R: BufRead>(reader: R) -> Result<Vec<Sequence>, FastaError> {
    let mut records: Vec<Sequence> = Vec::new();
    let mut name: Option<String> = None;
    let mut codes: Vec<u8> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(n) = name.take() {
                records.push(Sequence::from_codes(n, std::mem::take(&mut codes)));
            }
            // FASTA convention: the name is the first whitespace-delimited token.
            let token = header.split_whitespace().next().unwrap_or("");
            if token.is_empty() {
                return Err(FastaError::EmptyName { line: line_no });
            }
            name = Some(token.to_string());
        } else {
            if name.is_none() {
                return Err(FastaError::MissingHeader { line: line_no });
            }
            for &ch in line.as_bytes() {
                match crate::alphabet::Base::from_ascii(ch) {
                    Some(b) => codes.push(b.code()),
                    None => {
                        return Err(FastaError::BadCharacter {
                            line: line_no,
                            ch: ch as char,
                        })
                    }
                }
            }
        }
    }
    if let Some(n) = name {
        records.push(Sequence::from_codes(n, codes));
    }
    Ok(records)
}

/// Parses all records from a file path.
pub fn read_fasta_file(path: impl AsRef<Path>) -> Result<Vec<Sequence>, FastaError> {
    let file = std::fs::File::open(path)?;
    read_fasta(io::BufReader::new(file))
}

/// Writes records with the given line width (bases per line).
pub fn write_fasta<W: Write>(
    writer: &mut W,
    records: &[Sequence],
    line_width: usize,
) -> io::Result<()> {
    assert!(line_width > 0, "line width must be positive");
    for rec in records {
        writeln!(writer, ">{}", rec.name())?;
        let ascii = rec.to_ascii();
        for chunk in ascii.chunks(line_width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Writes records to a file with 70-column wrapping.
pub fn write_fasta_file(path: impl AsRef<Path>, records: &[Sequence]) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_fasta(&mut file, records, 70)?;
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Vec<Sequence>, FastaError> {
        read_fasta(Cursor::new(text.as_bytes()))
    }

    #[test]
    fn single_record() {
        let recs = parse(">chr1 description here\nACGT\nacgt\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name(), "chr1");
        assert_eq!(recs[0].to_ascii(), b"ACGTACGT");
    }

    #[test]
    fn multi_record_and_blank_lines() {
        let recs = parse(">a\nAC\n\nGT\n>b\nTTTT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].to_ascii(), b"ACGT");
        assert_eq!(recs[1].name(), "b");
        assert_eq!(recs[1].len(), 4);
    }

    #[test]
    fn crlf_line_endings() {
        let recs = parse(">a\r\nACGT\r\n").unwrap();
        assert_eq!(recs[0].to_ascii(), b"ACGT");
    }

    #[test]
    fn iupac_degrades_to_n() {
        let recs = parse(">a\nARYT\n").unwrap();
        assert_eq!(recs[0].to_ascii(), b"ANNT");
    }

    #[test]
    fn data_before_header_is_error() {
        assert!(matches!(
            parse("ACGT\n"),
            Err(FastaError::MissingHeader { line: 1 })
        ));
    }

    #[test]
    fn bad_character_is_error() {
        assert!(matches!(
            parse(">a\nAC1T\n"),
            Err(FastaError::BadCharacter { line: 2, ch: '1' })
        ));
    }

    #[test]
    fn empty_name_is_error() {
        assert!(matches!(
            parse(">\nACGT\n"),
            Err(FastaError::EmptyName { line: 1 })
        ));
        assert!(matches!(
            parse(">   \nACGT\n"),
            Err(FastaError::EmptyName { line: 1 })
        ));
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn record_with_no_sequence_is_kept() {
        let recs = parse(">empty\n>full\nAC\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].is_empty());
        assert_eq!(recs[1].len(), 2);
    }

    #[test]
    fn write_then_read_round_trip() {
        let records = vec![
            Sequence::from_ascii("x", b"ACGTACGTACGTN").unwrap(),
            Sequence::from_ascii("y", b"TTTT").unwrap(),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 5).unwrap();
        let parsed = read_fasta(Cursor::new(&buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn write_wraps_lines() {
        let records = vec![Sequence::from_ascii("x", b"ACGTACGT").unwrap()];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 4).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), ">x\nACGT\nACGT\n");
    }
}
