//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the surface its property tests use: the [`Strategy`] trait
//! with `prop_map`, range / tuple / [`collection::vec`] / [`any`]
//! strategies, the [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the
//!   per-test RNG seed; replaying is deterministic (same binary, same
//!   test, same case count ⇒ same inputs).
//! * **Deterministic by construction.** Each test derives its RNG seed
//!   from the test's name via FNV-1a, so failures reproduce across runs
//!   and machines without an external seed file.

use rand::rngs::SmallRng;
use rand::Rng;

/// Error type carried out of a failing property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic seed for a named test (FNV-1a over the name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A generator of values (subset of proptest's `Strategy`: generation
/// only, no shrink tree).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut SmallRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut SmallRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw(&self, rng: &mut SmallRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property body; on failure returns a
/// [`TestCaseError`] out of the body (the harness reports case + seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), file!(), line!(), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                left
            )));
        }
    }};
}

/// Declares deterministic property tests (subset of proptest's macro).
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, (a, b) in pair_strategy()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // `$meta` carries the original attributes, `#[test]` included.
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                let mut run = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = ($strat).generate(&mut rng);)+
                    $body
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!(
                        "property `{}` failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, config.cases, seed, e
                    );
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..50, 50u32..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 5u8..10, y in 0usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        /// Doc comments on properties are preserved.
        #[test]
        fn tuples_and_maps(
            (a, b) in pair(),
            v in collection::vec(0u8..4, 3..6),
            w in collection::vec(any::<u32>(), 4usize),
        ) {
            prop_assert!(a < 50 && b >= 50);
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|&c| c < 4));
            if a == 0 {
                return Ok(());
            }
            prop_assert_ne!(a, 100);
        }

        #[test]
        fn mapped_strategy(s in (0u8..4).prop_map(|c| c as usize * 2)) {
            prop_assert!(s % 2 == 0 && s <= 6);
        }
    }

    #[test]
    fn failure_reports_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(8);
            let seed = crate::seed_for("demo");
            let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                let mut run = || -> Result<(), TestCaseError> {
                    let x = Strategy::generate(&(0u32..10), &mut rng);
                    prop_assert!(x < 5, "x was {x}");
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!("property failed at case {case} (seed {seed:#x}): {e}");
                }
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("case"), "{msg}");
        assert!(msg.contains("seed"), "{msg}");
    }
}
