//! Integration tests for the conformance suite itself: a scaled-down
//! clean run, the corruption drill (the suite must *detect* a broken
//! engine, not just pass on a healthy one), and replays of the seeds
//! that exposed real engine bugs during development.

use fastz_conformance::{replay, report, run_suite, Category, SuiteConfig};

fn small_config() -> SuiteConfig {
    SuiteConfig {
        pairs: 24,
        seed: 7,
        // Skip the two largest bin-boundary extents (8192/32768): they
        // are covered by the CLI acceptance run and would dominate the
        // test's runtime.
        max_extent: 4096,
        pipeline_workloads: 1,
        corrupt_warp_match: 0,
        // One fault drill rides along so the resilient-pipeline checks
        // stay exercised in tier-1 (CI's smoke job runs them at scale).
        fault_seed: Some(7),
        // The sanitizer drill rides along too, exercising the
        // `--sanitize` path through `run_suite` end to end.
        sanitize: true,
        backend: fastz_core::WavefrontBackend::default(),
        // The cross-algorithm bitvector drill rides along so the
        // agreement/inequality contract stays exercised in tier-1
        // (CI's bitvector job runs it at 500 pairs).
        bitvector: true,
    }
}

#[test]
fn small_suite_is_clean() {
    let suite = run_suite(&small_config());
    assert!(suite.is_clean(), "divergences: {:#?}", suite.divergences);
    assert!(suite.checks > 200, "only {} checks ran", suite.checks);
}

#[test]
fn corrupted_engine_is_detected_with_replayable_cell() {
    let config = SuiteConfig {
        pairs: 8,
        corrupt_warp_match: 2,
        pipeline_workloads: 0,
        fault_seed: None,
        ..small_config()
    };
    let suite = run_suite(&config);
    assert!(
        !suite.is_clean(),
        "a +2 match-score corruption of the warp engine went unnoticed"
    );
    // At least one divergence must pin down the first divergent cell,
    // and its replay seed must reproduce the case deterministically.
    let pinned = suite
        .divergences
        .iter()
        .find(|d| d.first_divergent_cell.is_some())
        .expect("no divergence carries a first divergent cell");
    let (case, _, _) = replay(pinned.category, pinned.seed);
    assert_eq!(case.category, pinned.category);
    assert_eq!(case.seed, pinned.seed);
    // The JSON report serializes the cell coordinates.
    let json = report::to_json(&suite);
    assert!(json.contains("first_divergent_cell"));
    assert!(json.contains("replay_seed"));
}

/// Replays of fuzz cases that exposed real bugs while this suite was
/// being built. Root causes, for the record:
///
/// * warp-superset violations at `(r, strip_base + 1)` — the warp
///   engine's strip-entry row window was judged against the global
///   running best instead of the order-safe row-prefix maxima, pruning
///   rows the scalar engines keep (`crates/core/src/warp_engine.rs`).
/// * pipeline-accounting mismatch — `FastZReport::bin_counts` is a
///   per-seed (Table 2) classification; the checker originally
///   expected a per-problem total.
#[test]
fn development_regression_seeds_stay_clean() {
    let seeds = [
        (Category::CleanHomology, 13679457532755275413u64),
        (Category::IndelDense, 2949826092126892291),
        (Category::Garbage, 5139283748462763858),
        (Category::StripStraddle, 6349198060258255764),
        (Category::EagerEdge, 701532786141963250),
    ];
    for (category, seed) in seeds {
        let (_, checks, divergences) = replay(category, seed);
        assert!(checks > 0);
        assert!(
            divergences.is_empty(),
            "{}:{} regressed: {:#?}",
            category.name(),
            seed,
            divergences
        );
    }
}
