//! Mutation corpus for the cross-algorithm bitvector drill: every
//! planted engine bug in [`fastz_core::BitvecMutation`] must be caught
//! by [`fastz_conformance::check_bitvec_case`] on at least one corpus
//! case, with provenance (the reported invariant pins down *which*
//! contract the bug broke), while the faithful engine stays clean on
//! the same cases. A suite that only ever passes proves nothing; this
//! file proves the oracle has teeth.

use fastz_conformance::{fuzz_corpus, suite_scoring, Category};
use fastz_core::{BitvecConfig, BitvecMutation};

/// A modest corpus is enough: every mutation fires within a handful of
/// seeds per family (verified by the assertions below), and tier-1
/// runtime stays bounded.
const PAIRS: usize = 18;
const SEED: u64 = 4242;

fn drill(mutation: BitvecMutation) -> Vec<(Category, &'static str)> {
    let scoring = suite_scoring();
    let cfg = BitvecConfig {
        mutation,
        ..BitvecConfig::default()
    };
    let mut caught = Vec::new();
    for case in fuzz_corpus(SEED, PAIRS) {
        let (_, divergences) = fastz_conformance::check_bitvec_case(&case, &cfg, &scoring);
        for d in divergences {
            caught.push((d.category, d.invariant));
        }
    }
    caught
}

#[test]
fn clean_backend_passes_the_drill() {
    let caught = drill(BitvecMutation::None);
    assert!(caught.is_empty(), "faithful engine diverged: {caught:?}");
}

/// Each planted bug must be caught, and the divergence record must
/// carry provenance: a stable invariant identifier and a replayable
/// (category, seed) — the assertions below additionally document which
/// invariant is expected to trip for each bug class.
fn assert_caught(mutation: BitvecMutation, expect_any_of: &[&str]) {
    let caught = drill(mutation);
    assert!(
        !caught.is_empty(),
        "planted bug {} went unnoticed across {PAIRS} pairs × 6 families",
        mutation.name()
    );
    assert!(
        caught.iter().any(|(_, inv)| expect_any_of.contains(inv)),
        "planted bug {} was caught, but never by {:?} (got {:?})",
        mutation.name(),
        expect_any_of,
        caught
    );
}

#[test]
fn window_edge_off_by_one_is_caught() {
    // A short text-base advance desynchronizes the committed script
    // from the window chain: the re-walked script disagrees with the
    // engine's claimed consumption or score.
    assert_caught(
        BitvecMutation::WindowEdgeOffByOne,
        &[
            "bitvec-script-consumption",
            "bitvec-script-score",
            "bitvec-script-bounds",
        ],
    );
}

#[test]
fn wrong_shift_in_bit_is_caught() {
    // A wrong shift-in bit corrupts the DP near the column/budget
    // diagonal; the single-window exact domain exposes it against the
    // dense edit oracle.
    assert_caught(
        BitvecMutation::WrongShiftInBit,
        &["unit-overlap-exact", "bitvec-script-score"],
    );
}

#[test]
fn sene_skipping_live_windows_is_caught() {
    // Probing the budget-0 row makes SENE abandon windows that are
    // still live at budget k, truncating real extensions below the
    // dense optimum.
    assert_caught(BitvecMutation::SeneSkipsLive, &["unit-overlap-exact"]);
}

#[test]
fn dent_dropping_real_rows_is_caught() {
    // Discarding rows with live low bits starves the traceback, which
    // degrades to fallback steps the self-consistency walk rejects.
    assert_caught(
        BitvecMutation::DentDropsReal,
        &[
            "bitvec-script-score",
            "bitvec-script-edits",
            "unit-overlap-exact",
        ],
    );
}

#[test]
fn saturating_wraparound_is_caught() {
    // Raw wrapping arithmetic either floors every candidate (the
    // engine reports 0 where the oracle finds a real alignment) or
    // wraps to a huge score the script cannot justify.
    assert_caught(
        BitvecMutation::SaturatingWrap,
        &["unit-overlap-exact", "bitvec-script-score"],
    );
}

#[test]
fn reversed_pattern_bitmask_is_caught() {
    // Reversed match masks align the window against the mirrored
    // pattern; scores and scripts disagree with every oracle.
    assert_caught(
        BitvecMutation::ReversedPatternMask,
        &["unit-overlap-exact", "bitvec-script-score"],
    );
}
