//! Dense full-matrix reference implementation of y-drop extension.
//!
//! The production engines (`fastz_align::ydrop`, the warp engine) carry
//! interval tracking, scratch reuse, strip mining, spill buffers and
//! register rotation — all performance machinery that can hide bugs.
//! This oracle is the same DP written the boring way: a dense
//! `(m+1)×(n+1)` sweep with the Gotoh recurrences of paper Fig. 1 and
//! the same two pruning rules, storing every cell. It exists to be
//! obviously correct, so the optimized engines can be checked against
//! it cell for cell.
//!
//! Equivalence argument (why dense == interval): a cell the interval
//! engine never computes has all-dead inputs here, and a dead input is
//! the same `NEG_INF` sentinel the engine substitutes at its interval
//! edges, so the dense sweep marks exactly the same cells dead and
//! stores exactly the same values for the live ones. The suite verifies
//! this on every corpus case rather than trusting the argument.

use fastz_align::ydrop::NEG_INF;
use fastz_align::{CellScores, PruneMode};
use fastz_genome::Scoring;

/// Result of one dense oracle run.
#[derive(Clone, Debug)]
pub struct OracleRun {
    /// Best score found (the origin scores 0).
    pub best_score: i32,
    /// Query bases consumed at the best cell.
    pub best_i: usize,
    /// Target bases consumed at the best cell.
    pub best_j: usize,
    /// Live cells in row-major order: `(i, j, scores)`.
    pub live: Vec<(usize, usize, CellScores)>,
    /// Rows actually swept (the sweep stops after the first all-dead
    /// row, like the engines).
    pub rows: usize,
}

impl OracleRun {
    /// The S value at `(i, j)` if the cell is live.
    pub fn s(&self, i: usize, j: usize) -> Option<i32> {
        self.live
            .iter()
            .find(|&&(li, lj, _)| li == i && lj == j)
            .map(|&(_, _, c)| c.s)
    }
}

/// Runs the dense reference DP. Intended for bounded inputs (the suite
/// caps `m·n`); memory is one dense row triple, but `live` holds every
/// unpruned cell.
pub fn oracle_extend(target: &[u8], query: &[u8], scoring: &Scoring, mode: PruneMode) -> OracleRun {
    let so_se = scoring.gaps.open_score();
    let se = scoring.gaps.extend_score();
    let ydrop = scoring.ydrop;
    let n = target.len();
    let m = query.len();

    let mut best_score = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);
    let mut live: Vec<(usize, usize, CellScores)> = Vec::new();

    // Row 0: the origin plus the I gap chain, live while within y-drop
    // of the origin's score.
    let mut s_prev = vec![NEG_INF; n + 1];
    let mut d_prev = vec![NEG_INF; n + 1];
    for (j, slot) in s_prev.iter_mut().enumerate() {
        let (s, i_chain) = if j == 0 {
            (0, NEG_INF)
        } else {
            let v = so_se + se * (j as i32 - 1);
            (v, v)
        };
        if j == 0 || s >= -ydrop {
            *slot = s;
            live.push((
                0,
                j,
                CellScores {
                    s,
                    i: i_chain,
                    d: NEG_INF,
                },
            ));
        } else {
            break; // the chain only decays further
        }
    }

    let mut rows = 1usize;
    for i in 1..=m {
        let row_start_best = best_score;
        let mut running_best = best_score;
        let mut s_row = vec![NEG_INF; n + 1];
        let mut d_row = vec![NEG_INF; n + 1];
        let mut any_live = false;
        let mut s_left = NEG_INF;
        let mut i_left = NEG_INF;
        for j in 0..=n {
            let i_val = (s_left + so_se).max(i_left + se);
            let d_val = (s_prev[j] + so_se).max(d_prev[j] + se);
            let diag_val = if j >= 1 {
                s_prev[j - 1] + scoring.subst.score(target[j - 1], query[i - 1])
            } else {
                NEG_INF
            };
            let s_val = diag_val.max(i_val).max(d_val);

            let threshold = match mode {
                PruneMode::Exact => running_best - ydrop,
                PruneMode::Conservative => row_start_best - ydrop,
            };
            let dead = s_val < threshold && i_val < threshold && d_val < threshold;
            if dead {
                s_left = NEG_INF;
                i_left = NEG_INF;
                continue; // row buffers already hold NEG_INF
            }
            any_live = true;
            // Same NEG_INF floor clamp as the engines.
            let (s_c, i_c, d_c) = (s_val, i_val.max(NEG_INF), d_val.max(NEG_INF));
            s_row[j] = s_c;
            d_row[j] = d_c;
            live.push((
                i,
                j,
                CellScores {
                    s: s_c,
                    i: i_c,
                    d: d_c,
                },
            ));
            if s_c > best_score {
                best_score = s_c;
                best_i = i;
                best_j = j;
            }
            if s_c > running_best {
                running_best = s_c;
            }
            s_left = s_c;
            i_left = i_c;
        }
        if !any_live {
            break;
        }
        rows = i + 1;
        s_prev = s_row;
        d_prev = d_row;
    }

    OracleRun {
        best_score,
        best_i,
        best_j,
        live,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::{GapPenalties, Sequence, SubstMatrix};

    fn scoring() -> Scoring {
        Scoring {
            subst: SubstMatrix::match_mismatch(10, -15),
            gaps: GapPenalties::new(30, 5),
            ydrop: 120,
            xdrop: 40,
            hsp_threshold: 50,
            gapped_threshold: 50,
        }
    }

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("x", s).unwrap().codes().to_vec()
    }

    #[test]
    fn perfect_match_scores_full_length() {
        let t = codes(b"ACGTACGTAC");
        let r = oracle_extend(&t, &t, &scoring(), PruneMode::Exact);
        assert_eq!(r.best_score, 100);
        assert_eq!((r.best_i, r.best_j), (10, 10));
    }

    #[test]
    fn gap_is_bridged_like_the_engine() {
        let t = codes(b"ACGTACTTACGTAC");
        let q = codes(b"ACGTACACGTAC");
        let r = oracle_extend(&t, &q, &scoring(), PruneMode::Exact);
        assert_eq!(r.best_score, 80); // 12 matches − (30 + 2·5)
        assert_eq!((r.best_i, r.best_j), (12, 14));
    }

    #[test]
    fn conservative_is_a_superset_of_exact() {
        let t = codes(b"ACGTACGTTTACGGACGTACCGTAACGT");
        let q = codes(b"ACGTACGTAAACGGACGTACGGTAACGA");
        let e = oracle_extend(&t, &q, &scoring(), PruneMode::Exact);
        let c = oracle_extend(&t, &q, &scoring(), PruneMode::Conservative);
        assert!(c.live.len() >= e.live.len());
        assert!(c.best_score >= e.best_score);
    }
}
