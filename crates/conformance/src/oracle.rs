//! Dense full-matrix reference implementation of y-drop extension.
//!
//! The production engines (`fastz_align::ydrop`, the warp engine) carry
//! interval tracking, scratch reuse, strip mining, spill buffers and
//! register rotation — all performance machinery that can hide bugs.
//! This oracle is the same DP written the boring way: a dense
//! `(m+1)×(n+1)` sweep with the Gotoh recurrences of paper Fig. 1 and
//! the same two pruning rules, storing every cell. It exists to be
//! obviously correct, so the optimized engines can be checked against
//! it cell for cell.
//!
//! Equivalence argument (why dense == interval): a cell the interval
//! engine never computes has all-dead inputs here, and a dead input is
//! the same `NEG_INF` sentinel the engine substitutes at its interval
//! edges, so the dense sweep marks exactly the same cells dead and
//! stores exactly the same values for the live ones. The suite verifies
//! this on every corpus case rather than trusting the argument.

use fastz_align::ydrop::NEG_INF;
use fastz_align::{CellScores, PruneMode};
use fastz_genome::Scoring;

/// Result of one dense oracle run.
#[derive(Clone, Debug)]
pub struct OracleRun {
    /// Best score found (the origin scores 0).
    pub best_score: i32,
    /// Query bases consumed at the best cell.
    pub best_i: usize,
    /// Target bases consumed at the best cell.
    pub best_j: usize,
    /// Live cells in row-major order: `(i, j, scores)`.
    pub live: Vec<(usize, usize, CellScores)>,
    /// Rows actually swept (the sweep stops after the first all-dead
    /// row, like the engines).
    pub rows: usize,
}

impl OracleRun {
    /// The S value at `(i, j)` if the cell is live.
    pub fn s(&self, i: usize, j: usize) -> Option<i32> {
        self.live
            .iter()
            .find(|&&(li, lj, _)| li == i && lj == j)
            .map(|&(_, _, c)| c.s)
    }
}

/// Runs the dense reference DP. Intended for bounded inputs (the suite
/// caps `m·n`); memory is one dense row triple, but `live` holds every
/// unpruned cell.
pub fn oracle_extend(target: &[u8], query: &[u8], scoring: &Scoring, mode: PruneMode) -> OracleRun {
    let so_se = scoring.gaps.open_score();
    let se = scoring.gaps.extend_score();
    let ydrop = scoring.ydrop;
    let n = target.len();
    let m = query.len();

    let mut best_score = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);
    let mut live: Vec<(usize, usize, CellScores)> = Vec::new();

    // Row 0: the origin plus the I gap chain, live while within y-drop
    // of the origin's score.
    let mut s_prev = vec![NEG_INF; n + 1];
    let mut d_prev = vec![NEG_INF; n + 1];
    for (j, slot) in s_prev.iter_mut().enumerate() {
        let (s, i_chain) = if j == 0 {
            (0, NEG_INF)
        } else {
            let v = so_se + se * (j as i32 - 1);
            (v, v)
        };
        if j == 0 || s >= -ydrop {
            *slot = s;
            live.push((
                0,
                j,
                CellScores {
                    s,
                    i: i_chain,
                    d: NEG_INF,
                },
            ));
        } else {
            break; // the chain only decays further
        }
    }

    let mut rows = 1usize;
    for i in 1..=m {
        let row_start_best = best_score;
        let mut running_best = best_score;
        let mut s_row = vec![NEG_INF; n + 1];
        let mut d_row = vec![NEG_INF; n + 1];
        let mut any_live = false;
        let mut s_left = NEG_INF;
        let mut i_left = NEG_INF;
        for j in 0..=n {
            let i_val = (s_left + so_se).max(i_left + se);
            let d_val = (s_prev[j] + so_se).max(d_prev[j] + se);
            let diag_val = if j >= 1 {
                s_prev[j - 1] + scoring.subst.score(target[j - 1], query[i - 1])
            } else {
                NEG_INF
            };
            let s_val = diag_val.max(i_val).max(d_val);

            let threshold = match mode {
                PruneMode::Exact => running_best - ydrop,
                PruneMode::Conservative => row_start_best - ydrop,
            };
            let dead = s_val < threshold && i_val < threshold && d_val < threshold;
            if dead {
                s_left = NEG_INF;
                i_left = NEG_INF;
                continue; // row buffers already hold NEG_INF
            }
            any_live = true;
            // Same NEG_INF floor clamp as the engines.
            let (s_c, i_c, d_c) = (s_val, i_val.max(NEG_INF), d_val.max(NEG_INF));
            s_row[j] = s_c;
            d_row[j] = d_c;
            live.push((
                i,
                j,
                CellScores {
                    s: s_c,
                    i: i_c,
                    d: d_c,
                },
            ));
            if s_c > best_score {
                best_score = s_c;
                best_i = i;
                best_j = j;
            }
            if s_c > running_best {
                running_best = s_c;
            }
            s_left = s_c;
            i_left = i_c;
        }
        if !any_live {
            break;
        }
        rows = i + 1;
        s_prev = s_row;
        d_prev = d_row;
    }

    OracleRun {
        best_score,
        best_i,
        best_j,
        live,
        rows,
    }
}

/// Result of the dense edit-distance (unit-cost) oracle.
///
/// This is the reference the bitvector backend is checked against: the
/// full `(m+1)×(n+1)` Levenshtein matrix, written the boring way, plus
/// the best cell under the unit-cost *score* identity
/// `score(i, j) = (i + j) − 3·ED(i, j)` (+2 per match, −1 per
/// mismatch, −2 per gap base — exactly the regime the bitvector engine
/// optimizes, and exactly what the affine engine computes under
/// [`crate::unit_scoring`]).
#[derive(Clone, Debug)]
pub struct EditOracleRun {
    /// `(m+1)·(n+1)` distances, row-major (`i` = query rows).
    dist: Vec<u32>,
    /// Row stride (`n + 1`).
    cols: usize,
    /// Best unit-cost score over all cells (the origin scores 0, so
    /// this is never negative).
    pub best_score: i32,
    /// Query bases consumed at the best cell.
    pub best_i: usize,
    /// Target bases consumed at the best cell.
    pub best_j: usize,
}

impl EditOracleRun {
    /// Edit distance of the `(i, j)` prefix pair.
    pub fn ed(&self, i: usize, j: usize) -> u32 {
        self.dist[i * self.cols + j]
    }

    /// Unit-cost score of the `(i, j)` prefix pair.
    pub fn unit_score(&self, i: usize, j: usize) -> i32 {
        (i + j) as i32 - 3 * self.ed(i, j) as i32
    }
}

/// Runs the dense unit-cost edit-distance DP over codes ("match" is
/// code equality, the same convention the bitvector match masks use).
/// Intended for bounded inputs; the suite caps `m·n` before calling.
pub fn edit_oracle(target: &[u8], query: &[u8]) -> EditOracleRun {
    let n = target.len();
    let m = query.len();
    let cols = n + 1;
    let mut dist = vec![0u32; (m + 1) * cols];
    for (j, slot) in dist[..cols].iter_mut().enumerate() {
        *slot = j as u32;
    }
    let mut best_score = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);
    for i in 1..=m {
        dist[i * cols] = i as u32;
        for j in 1..=n {
            let sub = u32::from(target[j - 1] != query[i - 1]);
            let d = (dist[(i - 1) * cols + j - 1] + sub)
                .min(dist[(i - 1) * cols + j] + 1)
                .min(dist[i * cols + j - 1] + 1);
            dist[i * cols + j] = d;
            let score = (i + j) as i32 - 3 * d as i32;
            if score > best_score {
                best_score = score;
                best_i = i;
                best_j = j;
            }
        }
    }
    EditOracleRun {
        dist,
        cols,
        best_score,
        best_i,
        best_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::{GapPenalties, Sequence, SubstMatrix};

    fn scoring() -> Scoring {
        Scoring {
            subst: SubstMatrix::match_mismatch(10, -15),
            gaps: GapPenalties::new(30, 5),
            ydrop: 120,
            xdrop: 40,
            hsp_threshold: 50,
            gapped_threshold: 50,
        }
    }

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("x", s).unwrap().codes().to_vec()
    }

    #[test]
    fn perfect_match_scores_full_length() {
        let t = codes(b"ACGTACGTAC");
        let r = oracle_extend(&t, &t, &scoring(), PruneMode::Exact);
        assert_eq!(r.best_score, 100);
        assert_eq!((r.best_i, r.best_j), (10, 10));
    }

    #[test]
    fn gap_is_bridged_like_the_engine() {
        let t = codes(b"ACGTACTTACGTAC");
        let q = codes(b"ACGTACACGTAC");
        let r = oracle_extend(&t, &q, &scoring(), PruneMode::Exact);
        assert_eq!(r.best_score, 80); // 12 matches − (30 + 2·5)
        assert_eq!((r.best_i, r.best_j), (12, 14));
    }

    #[test]
    fn edit_oracle_matches_hand_counts() {
        let t = codes(b"ACGTACGT");
        let r = edit_oracle(&t, &t);
        assert_eq!(r.ed(8, 8), 0);
        assert_eq!(r.best_score, 16); // 8 matches · +2
        assert_eq!((r.best_i, r.best_j), (8, 8));

        // One substitution: ED(8,8) = 1, best full-length score 16−3.
        let q = codes(b"ACGAACGT");
        let r = edit_oracle(&t, &q);
        assert_eq!(r.ed(8, 8), 1);
        assert_eq!(r.unit_score(8, 8), 13);

        // One deletion from the query: kitten-style banding sanity.
        let q = codes(b"ACGTCGT");
        let r = edit_oracle(&t, &q);
        assert_eq!(r.ed(7, 8), 1);
    }

    #[test]
    fn edit_oracle_agrees_with_affine_unit_regime() {
        // Under unit scoring the affine DP and the edit identity must
        // produce the same best score: the overlap-domain contract in
        // miniature.
        let t = codes(b"ACGTACGTTTACGGACGTAC");
        let q = codes(b"ACGTACGAAACGGACGTTAC");
        let unit = crate::unit_scoring();
        let affine = oracle_extend(&t, &q, &unit, PruneMode::Exact);
        let edit = edit_oracle(&t, &q);
        assert_eq!(affine.best_score, edit.best_score);
    }

    #[test]
    fn conservative_is_a_superset_of_exact() {
        let t = codes(b"ACGTACGTTTACGGACGTACCGTAACGT");
        let q = codes(b"ACGTACGTAAACGGACGTACGGTAACGA");
        let e = oracle_extend(&t, &q, &scoring(), PruneMode::Exact);
        let c = oracle_extend(&t, &q, &scoring(), PruneMode::Conservative);
        assert!(c.live.len() >= e.live.len());
        assert!(c.best_score >= e.best_score);
    }
}
