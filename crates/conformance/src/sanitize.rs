//! Sanitizer conformance drill (the CLI's `--sanitize` switch).
//!
//! Two claims are checked. First, the warp engine's shared-memory
//! choreography is clean: every corpus family — the five fuzz families
//! plus the bin-boundary sweep — runs inspector and executor
//! configurations on a sanitizer-attached scratchpad that is reused
//! across cases exactly like a pool arena, and the drill demands zero
//! findings (no uninitialized reads, no out-of-reservation reads, no
//! cross-stage hazards, no fully serialized bank groups, no warp-lint
//! violations). Second, the sanitizer is a pure observer: a sanitized
//! full-pipeline run must reproduce the unsanitized run's alignments
//! and bit-identical modeled time while itself coming back clean.

use fastz_core::{run_fastz, warp_extend_in, FastZConfig, OptFlags, WarpConfig, WavefrontBackend};
use fastz_genome::evolve::{default_classes, generate_pair, PairParams};
use fastz_genome::Scoring;
use fastz_gpu_sim::{DeviceSpec, SharedMem};
use fastz_seed::{Workload, WorkloadParams};

use crate::corpus::{bin_boundary_cases, fuzz_corpus, Case};
use crate::engines::EXECUTOR_CELL_CAP;
use crate::report::Divergence;

/// Engine-level cases per drill: enough to cycle every fuzz family
/// several times while keeping the drill fast next to the main suite.
const ENGINE_CASES: usize = 30;

/// Bin-boundary extents above this are skipped by the engine drill
/// (the 32769-extent case alone runs ~10⁹ executor cells).
const MAX_DRILL_EXTENT: usize = 2_049;

fn diverge(case: &Case, message: String) -> Divergence {
    Divergence {
        category: case.category,
        seed: case.seed,
        invariant: "sanitize-clean",
        engines: "warp engine under shadow sanitizer",
        message,
        first_divergent_cell: None,
    }
}

/// Runs the corpus-drill loop — every case through inspector and
/// (affordable) executor on one reused sanitizer-attached arena — under
/// `backend`, returning the merged sanitizer report and the per-case
/// inspector optima (for cross-backend functional comparison).
fn run_corpus_drill(
    cases: &[Case],
    scoring: &Scoring,
    backend: WavefrontBackend,
) -> (fastz_gpu_sim::SanitizeReport, Vec<(i32, usize, usize)>) {
    let flags = OptFlags::fastz();
    let insp_cfg = WarpConfig::inspector(&flags).with_backend(backend);

    // One arena for the whole drill, like a pool worker: stale bytes
    // from every previous case are still in the scratchpad and the
    // traceback buffer when the next case runs.
    let mut shared = SharedMem::for_device(&DeviceSpec::rtx3080_ampere());
    shared.attach_sanitizer();
    let mut tbm = Vec::new();
    let mut optima = Vec::with_capacity(cases.len());

    for (idx, case) in cases.iter().enumerate() {
        let t = case.target.as_slice();
        let q = case.query.as_slice();

        // Inspector side (eager window + wavefront).
        shared.clear();
        shared.sanitize_context("inspector", idx as u64);
        let insp = warp_extend_in(t, q, scoring, &insp_cfg, &mut shared, &mut tbm);
        optima.push((insp.best_score, insp.best_i, insp.best_j));

        // Executor side (trimmed, full traceback) when affordable.
        if insp.best_i.saturating_mul(insp.best_j) <= EXECUTOR_CELL_CAP {
            let exec_cfg =
                WarpConfig::executor(&flags, insp.best_i, insp.best_j).with_backend(backend);
            shared.clear();
            shared.sanitize_context("executor", idx as u64);
            let _ = warp_extend_in(t, q, scoring, &exec_cfg, &mut shared, &mut tbm);
        }
    }

    let report = shared
        .take_sanitize_report()
        .expect("drill arena has a sanitizer attached");
    (report, optima)
}

/// Runs the warp engine over every corpus family on one shared,
/// sanitizer-attached arena; returns `(checks_evaluated, divergences)`.
pub fn check_sanitize_corpus(
    master_seed: u64,
    max_extent: usize,
    scoring: &Scoring,
    backend: WavefrontBackend,
) -> (usize, Vec<Divergence>) {
    let mut cases = fuzz_corpus(master_seed, ENGINE_CASES);
    cases.extend(bin_boundary_cases(max_extent.min(MAX_DRILL_EXTENT)));

    let mut out = Vec::new();
    let mut checks = cases.len();
    let (report, _) = run_corpus_drill(&cases, scoring, backend);
    checks += 1;
    if !report.is_clean() {
        // Blame each finding on the case it occurred in (the problem id
        // set above is the case index).
        for f in &report.findings {
            let case = &cases[(f.problem as usize).min(cases.len() - 1)];
            out.push(diverge(
                case,
                format!(
                    "sanitizer finding in phase `{}` stage `{}`: {}",
                    f.phase, f.stage, f.detail
                ),
            ));
        }
        if report.findings.is_empty() {
            // Counts overflowed the detail cap with nothing retained —
            // still a failure, still reported.
            out.push(diverge(
                &cases[0],
                format!(
                    "{} sanitizer findings (details truncated)",
                    report.total_findings()
                ),
            ));
        }
    }
    (checks, out)
}

/// Runs the full corpus drill once per wavefront backend and demands
/// that the two merged sanitizer reports — findings, their phase /
/// stage / problem provenance, and the traffic totals — are equal, and
/// that the per-case inspector optima match; returns
/// `(checks_evaluated, divergences)`.
pub fn check_sanitize_backend_equality(
    master_seed: u64,
    max_extent: usize,
    scoring: &Scoring,
) -> (usize, Vec<Divergence>) {
    let mut cases = fuzz_corpus(master_seed, ENGINE_CASES);
    cases.extend(bin_boundary_cases(max_extent.min(MAX_DRILL_EXTENT)));

    let (rep_interp, opt_interp) = run_corpus_drill(&cases, scoring, WavefrontBackend::Interpreter);
    let (rep_simd, opt_simd) = run_corpus_drill(&cases, scoring, WavefrontBackend::Simd);

    let mut out = Vec::new();
    let mut checks = 0;
    checks += 1;
    if rep_interp != rep_simd {
        out.push(diverge(
            &cases[0],
            format!(
                "sanitizer reports differ between backends: interpreter {:?} vs simd {:?}",
                rep_interp, rep_simd
            ),
        ));
    }
    checks += 1;
    if opt_interp != opt_simd {
        let first = opt_interp
            .iter()
            .zip(&opt_simd)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        out.push(diverge(
            &cases[first.min(cases.len() - 1)],
            format!(
                "sanitized inspector optima diverge at case {first}: {:?} vs {:?}",
                opt_interp[first], opt_simd[first]
            ),
        ));
    }
    (checks, out)
}

/// Runs the full pipeline twice — sanitized and not — on the standard
/// conformance workload and demands a clean report plus identical
/// functional output; returns `(checks_evaluated, divergences)`.
pub fn check_sanitize_pipeline(
    seed: u64,
    scoring: &Scoring,
    backend: WavefrontBackend,
) -> (usize, Vec<Divergence>) {
    let pair = generate_pair(&PairParams {
        label: "conformance".to_string(),
        target_len: 30_000,
        query_len: 30_000,
        segments: 60,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 400,
            ..WorkloadParams::default()
        },
    );
    let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
    cfg.sim_threads = 1;
    cfg.backend = backend;
    let base = run_fastz(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
    );
    cfg.sanitize = true;
    let san = run_fastz(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
    );

    let pdiverge = |invariant: &'static str, message: String| Divergence {
        category: crate::corpus::Category::CleanHomology,
        seed,
        invariant,
        engines: "pipeline (run_fastz, sanitize on vs off)",
        message,
        first_divergent_cell: None,
    };

    let mut out = Vec::new();
    let mut checks = 0;

    checks += 1;
    match &san.sanitize {
        None => out.push(pdiverge(
            "sanitize-report-present",
            "sanitize: true produced no report".to_string(),
        )),
        Some(rep) => {
            checks += 1;
            if !rep.is_clean() {
                for f in rep.findings.iter().take(8) {
                    out.push(pdiverge(
                        "sanitize-clean",
                        format!(
                            "pipeline finding (problem {}, phase `{}`, stage `{}`): {}",
                            f.problem, f.phase, f.stage, f.detail
                        ),
                    ));
                }
            }
            checks += 1;
            if rep.shared_writes == 0 {
                out.push(pdiverge(
                    "sanitize-coverage",
                    "sanitized pipeline observed no shared-memory traffic".to_string(),
                ));
            }
        }
    }

    checks += 1;
    if san.alignments != base.alignments {
        out.push(pdiverge(
            "sanitize-observer-alignments",
            format!(
                "sanitized run produced {} alignments, unsanitized {}",
                san.alignments.len(),
                base.alignments.len()
            ),
        ));
    }
    checks += 1;
    if san.modeled_time_s.to_bits() != base.modeled_time_s.to_bits() {
        out.push(pdiverge(
            "sanitize-observer-modeled-time",
            format!(
                "modeled time diverged: sanitized {} vs unsanitized {}",
                san.modeled_time_s, base.modeled_time_s
            ),
        ));
    }
    (checks, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite_scoring;

    #[test]
    fn corpus_drill_is_clean() {
        for backend in [WavefrontBackend::Interpreter, WavefrontBackend::Simd] {
            let (checks, divergences) =
                check_sanitize_corpus(42, MAX_DRILL_EXTENT, &suite_scoring(), backend);
            assert!(checks > ENGINE_CASES);
            assert!(divergences.is_empty(), "{backend:?}: {divergences:?}");
        }
    }

    #[test]
    fn pipeline_drill_is_clean() {
        for backend in [WavefrontBackend::Interpreter, WavefrontBackend::Simd] {
            let (checks, divergences) = check_sanitize_pipeline(42, &suite_scoring(), backend);
            assert_eq!(checks, 5);
            assert!(divergences.is_empty(), "{backend:?}: {divergences:?}");
        }
    }

    #[test]
    fn backend_reports_are_equal() {
        let (checks, divergences) =
            check_sanitize_backend_equality(42, MAX_DRILL_EXTENT, &suite_scoring());
        assert_eq!(checks, 2);
        assert!(divergences.is_empty(), "{divergences:?}");
    }
}
