//! Divergence records and the hand-rolled JSON report (the workspace is
//! built offline with no serde; the writer below emits the small, flat
//! schema the CLI documents).

use std::fmt::Write as _;

use crate::corpus::Category;

/// The first cell at which two engines disagree, with both values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellDiff {
    /// Query bases consumed.
    pub i: usize,
    /// Target bases consumed.
    pub j: usize,
    /// Value on the left-hand engine (`i64::MIN` encodes "cell absent").
    pub lhs: i64,
    /// Value on the right-hand engine.
    pub rhs: i64,
}

/// Marker for "the cell is not live in this engine" inside a
/// [`CellDiff`].
pub const ABSENT: i64 = i64::MIN;

/// One invariant violation found by the suite.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Corpus family of the offending case.
    pub category: Category,
    /// Replay seed: `make_case(category, seed)` rebuilds the pair.
    pub seed: u64,
    /// Which invariant failed (stable kebab-case identifier).
    pub invariant: &'static str,
    /// The engine pair (or engine vs oracle) that disagreed.
    pub engines: &'static str,
    /// Human-readable description with the observed values.
    pub message: String,
    /// First divergent cell in LASTZ (row-major) completion order, when
    /// cell-level data was available.
    pub first_divergent_cell: Option<CellDiff>,
}

/// Suite totals plus every divergence.
#[derive(Clone, Debug, Default)]
pub struct SuiteReport {
    /// Fuzz pairs requested.
    pub pairs: usize,
    /// Master seed.
    pub seed: u64,
    /// Cases actually run (fuzz + fixed families + pipeline).
    pub cases: usize,
    /// Individual invariant checks evaluated.
    pub checks: usize,
    /// All violations.
    pub divergences: Vec<Divergence>,
}

impl SuiteReport {
    /// True when every check passed.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_cell(out: &mut String, cell: &CellDiff) {
    let _ = write!(out, "{{\"i\":{},\"j\":{},", cell.i, cell.j);
    out.push_str("\"lhs\":");
    if cell.lhs == ABSENT {
        out.push_str("null");
    } else {
        let _ = write!(out, "{}", cell.lhs);
    }
    out.push_str(",\"rhs\":");
    if cell.rhs == ABSENT {
        out.push_str("null");
    } else {
        let _ = write!(out, "{}", cell.rhs);
    }
    out.push('}');
}

/// Serializes the report (`null` cell values mean "not live in that
/// engine").
pub fn to_json(report: &SuiteReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"tool\": \"fastz-conformance\",\n  \"pairs\": {},\n  \"seed\": {},\n  \"cases\": {},\n  \"checks\": {},\n  \"divergence_count\": {},\n",
        report.pairs,
        report.seed,
        report.cases,
        report.checks,
        report.divergences.len()
    );
    out.push_str("  \"divergences\": [\n");
    for (idx, d) in report.divergences.iter().enumerate() {
        out.push_str("    {");
        out.push_str("\"category\": ");
        push_json_str(&mut out, d.category.name());
        let _ = write!(out, ", \"replay_seed\": {}", d.seed);
        out.push_str(", \"invariant\": ");
        push_json_str(&mut out, d.invariant);
        out.push_str(", \"engines\": ");
        push_json_str(&mut out, d.engines);
        out.push_str(", \"message\": ");
        push_json_str(&mut out, &d.message);
        out.push_str(", \"first_divergent_cell\": ");
        match &d.first_divergent_cell {
            Some(cell) => push_cell(&mut out, cell),
            None => out.push_str("null"),
        }
        out.push('}');
        if idx + 1 < report.divergences.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_nests() {
        let report = SuiteReport {
            pairs: 2,
            seed: 42,
            cases: 3,
            checks: 9,
            divergences: vec![Divergence {
                category: Category::Garbage,
                seed: 7,
                invariant: "warp-matches-conservative",
                engines: "warp vs scalar-conservative",
                message: "score 10 != 20 \"quoted\"".into(),
                first_divergent_cell: Some(CellDiff {
                    i: 3,
                    j: 4,
                    lhs: 10,
                    rhs: ABSENT,
                }),
            }],
        };
        let json = to_json(&report);
        assert!(json.contains("\"divergence_count\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(
            json.contains("\"first_divergent_cell\": {\"i\":3,\"j\":4,\"lhs\":10,\"rhs\":null}")
        );
    }

    #[test]
    fn clean_report_has_empty_array() {
        let report = SuiteReport {
            pairs: 1,
            seed: 1,
            cases: 1,
            checks: 4,
            divergences: vec![],
        };
        let json = to_json(&report);
        assert!(json.contains("\"divergences\": [\n  ]"));
        assert!(report.is_clean());
    }
}
