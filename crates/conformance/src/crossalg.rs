//! Cross-algorithm conformance: "algorithms agree where their
//! guarantees overlap".
//!
//! The rest of the suite checks that *engines implementing the same
//! algorithm* agree (scalar vs warp vs pipeline, interpreter vs SIMD).
//! This module checks a stronger, narrower contract between two
//! *different algorithms*: affine-gap y-drop extension and
//! GenASM/Scrooge-style bitvector edit alignment.
//!
//! The contract, exactly as the drill asserts it:
//!
//! 1. **Script self-consistency** (every case, every config): the
//!    bitvector's returned edit script, re-walked over the inputs,
//!    reproduces its claimed consumption `(best_i, best_j)`, its
//!    claimed unit-regime score (`+2` match, `−1` mismatch, `−2` per
//!    gap base), and its claimed edit count — and the score is never
//!    negative (the origin scores 0).
//! 2. **Exact agreement on the unit-cost overlap domain**: on a prefix
//!    subcase small enough that one 64-row window with edit budget
//!    `k = 63` covers every cell that could carry the optimum
//!    (`query ≤ 48`, `target ≤ query + 56`; any cell with `ED > 63`
//!    scores below 0 there and cannot win), three independent
//!    algorithms must produce the *same best score*: the bitvector
//!    engine, the dense edit-distance oracle through the identity
//!    `score(i,j) = (i+j) − 3·ED(i,j)`, and the affine Gotoh oracle
//!    under [`crate::unit_scoring`] (where every path scores exactly
//!    `(i+j) − 3·ED_path`).
//! 3. **Bounded divergence elsewhere** (full case, dense oracles capped
//!    at `(m+1)·(n+1) ≤ 2^19` cells): where the algorithms' guarantees
//!    do not overlap, only inequalities hold, and the drill asserts
//!    each one:
//!    * `windowed bitvector ≤ dense unit optimum` — the greedy window
//!      chain emits a real alignment path, so its unit score cannot
//!      exceed `max_{i,j} (i+j) − 3·ED(i,j)`;
//!    * `y-drop ≤ unpruned affine` — pruning only loses score;
//!    * `affine(bitvector script) ≤ unpruned affine` — the bitvector's
//!      script re-scored under the affine matrix is one path of the
//!      affine DP;
//!    * `unpruned affine best ≤ (M·(i+j) − c₂·ED(i,j)) / 2` at its own
//!      best cell, with `M` the best substitution score and
//!      `c₂ = min(2·(M − X̂), M + 2E)` (`X̂` = best mismatch score,
//!      `E` = gap extension): every affine path with `ED_path` edits
//!      obeys it, and `ED(i,j) ≤ ED_path`.
//!
//! The same checks double as the mutation corpus's detector: each
//! planted [`fastz_core::BitvecMutation`] must trip at least one of
//! them (see `tests/bitvec_mutation.rs`).

use crate::corpus::Case;
use crate::invariants::rescore_ops;
use crate::oracle::{edit_oracle, oracle_extend};
use crate::report::{CellDiff, Divergence};
use crate::unit_scoring;
use fastz_align::{EditOp, PruneMode};
use fastz_core::{bitvec_extend, BitvecConfig};
use fastz_genome::Scoring;

/// Dense-oracle cell budget: full-case inequality checks only run when
/// `(m+1)·(n+1)` fits (fuzz cases always do; the largest bin-boundary
/// extents are covered by checks 1–2 only).
const DENSE_CELL_CAP: usize = 1 << 19;

/// Query prefix length of the exact-overlap subcase.
const OVERLAP_QUERY: usize = 48;
/// Extra target bases past the query prefix in the overlap subcase
/// (must stay ≤ `63 − 7` so a k=63 window reaches every column and no
/// `ED > 63` cell can score ≥ 0).
const OVERLAP_TARGET_SLACK: usize = 56;

fn diverge(
    case: &Case,
    invariant: &'static str,
    engines: &'static str,
    message: String,
    cell: Option<CellDiff>,
) -> Divergence {
    Divergence {
        category: case.category,
        seed: case.seed,
        invariant,
        engines,
        message,
        first_divergent_cell: cell,
    }
}

/// Re-walks an edit script under the unit-cost regime. Returns
/// `(target consumed, query consumed, unit score, edit count)`, or
/// `None` if the script runs off either sequence.
fn unit_walk(t: &[u8], q: &[u8], ops: &[EditOp]) -> Option<(usize, usize, i32, u32)> {
    let (mut ti, mut qi, mut score, mut edits) = (0usize, 0usize, 0i32, 0u32);
    for op in ops {
        match *op {
            EditOp::Diag(k) => {
                for _ in 0..k {
                    if ti >= t.len() || qi >= q.len() {
                        return None;
                    }
                    if t[ti] == q[qi] {
                        score += 2;
                    } else {
                        score -= 1;
                        edits += 1;
                    }
                    ti += 1;
                    qi += 1;
                }
            }
            EditOp::GapQ(k) => {
                ti += k as usize;
                score -= 2 * k as i32;
                edits += k;
            }
            EditOp::GapT(k) => {
                qi += k as usize;
                score -= 2 * k as i32;
                edits += k;
            }
        }
    }
    if ti > t.len() || qi > q.len() {
        return None;
    }
    Some((ti, qi, score, edits))
}

/// The `c₂` constant of the affine-vs-edit upper bound for `scoring`:
/// `affine path score ≤ (M·(i+j) − c₂·ED_path) / 2` holds per path
/// whenever `c₂ ≤ min(2·(M − X̂), M + 2E)`.
fn edit_bound_c2(scoring: &Scoring) -> (i32, i32) {
    let mut m_best = i32::MIN;
    let mut x_best = i32::MIN;
    for a in 0..5u8 {
        for b in 0..5u8 {
            let s = scoring.subst.score(a, b);
            if a == b {
                m_best = m_best.max(s);
            } else {
                x_best = x_best.max(s);
            }
        }
    }
    let e = -scoring.gaps.extend_score();
    (m_best, (2 * (m_best - x_best)).min(m_best + 2 * e))
}

/// Checks the whole cross-algorithm contract on one corpus case with
/// the given bitvector config (the mutation corpus passes planted-bug
/// configs; the suite passes the default). Returns
/// `(checks run, divergences)`.
pub fn check_bitvec_case(
    case: &Case,
    cfg: &BitvecConfig,
    scoring: &Scoring,
) -> (usize, Vec<Divergence>) {
    let mut checks = 0usize;
    let mut divergences = Vec::new();
    let t = &case.target;
    let q = &case.query;

    // ── Check 1: script self-consistency on the full case. ──────────
    let bv = bitvec_extend(t, q, cfg);
    checks += 5;
    let walk = unit_walk(t, q, &bv.ops);
    let script_in_bounds = walk.is_some();
    match walk {
        None => divergences.push(diverge(
            case,
            "bitvec-script-bounds",
            "bitvector/self",
            format!(
                "script walks off the inputs (target {} / query {})",
                t.len(),
                q.len()
            ),
            None,
        )),
        Some((ti, qi, score, edits)) => {
            if (qi, ti) != (bv.best_i, bv.best_j) {
                divergences.push(diverge(
                    case,
                    "bitvec-script-consumption",
                    "bitvector/self",
                    format!(
                        "script consumes (i={qi}, j={ti}) but the engine claims (i={}, j={})",
                        bv.best_i, bv.best_j
                    ),
                    Some(CellDiff {
                        i: qi,
                        j: ti,
                        lhs: bv.best_i as i64,
                        rhs: bv.best_j as i64,
                    }),
                ));
            }
            if score != bv.best_score {
                divergences.push(diverge(
                    case,
                    "bitvec-script-score",
                    "bitvector/self",
                    format!(
                        "script re-walks to unit score {score} but the engine claims {}",
                        bv.best_score
                    ),
                    Some(CellDiff {
                        i: bv.best_i,
                        j: bv.best_j,
                        lhs: i64::from(bv.best_score),
                        rhs: i64::from(score),
                    }),
                ));
            }
            if edits != bv.edit_distance {
                divergences.push(diverge(
                    case,
                    "bitvec-script-edits",
                    "bitvector/self",
                    format!(
                        "script carries {edits} edits but the engine claims {}",
                        bv.edit_distance
                    ),
                    None,
                ));
            }
        }
    }
    if bv.best_score < 0 {
        divergences.push(diverge(
            case,
            "bitvec-score-nonnegative",
            "bitvector/self",
            format!("best score {} below the origin's 0", bv.best_score),
            None,
        ));
    }

    // ── Check 2: exact agreement on the unit-cost overlap domain. ───
    let qlen = q.len().min(OVERLAP_QUERY);
    let tlen = t.len().min(qlen + OVERLAP_TARGET_SLACK);
    let (ot, oq) = (&t[..tlen], &q[..qlen]);
    let exact_cfg = BitvecConfig {
        window: 64,
        overlap: 16,
        k: 63,
        mutation: cfg.mutation,
    };
    let bv_exact = bitvec_extend(ot, oq, &exact_cfg);
    let edit = edit_oracle(ot, oq);
    let unit = unit_scoring();
    let affine_unit = oracle_extend(ot, oq, &unit, PruneMode::Exact);
    checks += 2;
    if edit.best_score != affine_unit.best_score {
        divergences.push(diverge(
            case,
            "unit-oracle-identity",
            "edit-oracle/affine-oracle",
            format!(
                "edit identity optimum {} vs affine unit-regime optimum {}",
                edit.best_score, affine_unit.best_score
            ),
            Some(CellDiff {
                i: edit.best_i,
                j: edit.best_j,
                lhs: i64::from(edit.best_score),
                rhs: i64::from(affine_unit.best_score),
            }),
        ));
    }
    if bv_exact.best_score != edit.best_score {
        divergences.push(diverge(
            case,
            "unit-overlap-exact",
            "bitvector/edit-oracle",
            format!(
                "single-window bitvector best {} vs dense edit-identity best {} \
                 (overlap domain {qlen}×{tlen}, k=63)",
                bv_exact.best_score, edit.best_score
            ),
            Some(CellDiff {
                i: edit.best_i,
                j: edit.best_j,
                lhs: i64::from(bv_exact.best_score),
                rhs: i64::from(edit.best_score),
            }),
        ));
    }

    // ── Check 3: bounded-divergence inequalities on the full case. ──
    if (t.len() + 1) * (q.len() + 1) <= DENSE_CELL_CAP {
        let edit_full = edit_oracle(t, q);
        let noprune_scoring = Scoring {
            ydrop: 1 << 20,
            ..scoring.clone()
        };
        let ydrop_run = oracle_extend(t, q, scoring, PruneMode::Exact);
        let noprune = oracle_extend(t, q, &noprune_scoring, PruneMode::Exact);
        checks += 4;
        if bv.best_score > edit_full.best_score {
            divergences.push(diverge(
                case,
                "bitvec-windowed-le-unit-optimum",
                "bitvector/edit-oracle",
                format!(
                    "windowed bitvector best {} exceeds the dense unit optimum {}",
                    bv.best_score, edit_full.best_score
                ),
                Some(CellDiff {
                    i: bv.best_i,
                    j: bv.best_j,
                    lhs: i64::from(bv.best_score),
                    rhs: i64::from(edit_full.best_score),
                }),
            ));
        }
        if ydrop_run.best_score > noprune.best_score {
            divergences.push(diverge(
                case,
                "ydrop-le-unpruned",
                "affine-oracle/affine-oracle",
                format!(
                    "y-drop best {} exceeds the unpruned optimum {}",
                    ydrop_run.best_score, noprune.best_score
                ),
                None,
            ));
        }
        // `rescore_ops` indexes the sequences directly, so it only runs
        // on scripts check 1 already proved in-bounds (a mutation that
        // desynchronizes the script is reported there instead).
        let affine_script = if script_in_bounds {
            rescore_ops(t, q, scoring, &bv.ops).2
        } else {
            i32::MIN
        };
        if affine_script > noprune.best_score {
            divergences.push(diverge(
                case,
                "bitvec-script-affine-le-unpruned",
                "bitvector/affine-oracle",
                format!(
                    "bitvector script re-scores to {affine_script} under the affine matrix, \
                     above the unpruned affine optimum {}",
                    noprune.best_score
                ),
                None,
            ));
        }
        let (m_best, c2) = edit_bound_c2(scoring);
        let (bi, bj) = (noprune.best_i, noprune.best_j);
        let bound_num = m_best * (bi + bj) as i32 - c2 * edit_full.ed(bi, bj) as i32;
        // `S ≤ bound_num / 2` checked as `2·S ≤ bound_num` to stay in
        // integers (bound_num may be odd).
        if 2 * noprune.best_score > bound_num {
            divergences.push(diverge(
                case,
                "affine-edit-upper-bound",
                "affine-oracle/edit-oracle",
                format!(
                    "unpruned affine best {} at (i={bi}, j={bj}) exceeds the edit-distance \
                     bound {}/2 (M={m_best}, c2={c2}, ED={})",
                    noprune.best_score,
                    bound_num,
                    edit_full.ed(bi, bj)
                ),
                Some(CellDiff {
                    i: bi,
                    j: bj,
                    lhs: i64::from(2 * noprune.best_score),
                    rhs: i64::from(bound_num),
                }),
            ));
        }
    }

    (checks, divergences)
}
