//! `conformance` — fuzz the four FastZ engines against each other and
//! the dense DP oracle, emitting a JSON divergence report.
//!
//! ```text
//! conformance [--pairs N] [--seed S] [--out FILE] [--max-extent E]
//!             [--corrupt DELTA] [--fault-seed S] [--sanitize]
//!             [--engine interpreter|simd|bitvector]
//!             [--replay CATEGORY:SEED]
//! ```
//!
//! Exit status: 0 when every invariant held, 1 when any divergence was
//! found, 2 on usage errors.

use std::process::ExitCode;

use fastz_conformance::{replay, report, run_suite, Category, SuiteConfig};
use fastz_core::WavefrontBackend;

struct Args {
    config: SuiteConfig,
    out: Option<String>,
    metrics_out: Option<String>,
    replay: Option<(Category, u64)>,
    serve: bool,
    index: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: conformance [--pairs N] [--seed S] [--out FILE] [--max-extent E]\n\
         \x20                  [--corrupt DELTA] [--fault-seed S] [--metrics-out FILE]\n\
         \x20                  [--sanitize] [--serve] [--index persist]\n\
         \x20                  [--engine interpreter|simd|bitvector]\n\
         \x20                  [--replay CATEGORY:SEED]\n\
         \n\
         Fuzzes N reproducible pairs through the scalar exact, scalar\n\
         conservative, warp, and pipeline engines, checks the paper's\n\
         invariants cell-for-cell against a dense DP oracle, and writes a\n\
         JSON divergence report (first divergent cell, engine pair, replay\n\
         seed). --corrupt adds DELTA to the warp engine's match score to\n\
         demonstrate the report end to end. --fault-seed drills the\n\
         resilient pipeline under a seeded fault plan (hangs, bit flips,\n\
         stalls, shmem pressure, device loss) and demands fault-free\n\
         results with complete fault accounting. --metrics-out re-runs\n\
         the metrics engine-invariance drill (warp vs scalar strip\n\
         widths, identical semantic counters) and writes the warp run's\n\
         observability report as JSON. --sanitize drills every corpus\n\
         family through the warp engine on a shadow-sanitizer-attached\n\
         arena (initcheck, racecheck, bank conflicts, warp lints) plus a\n\
         sanitized pipeline workload, all of which must report zero\n\
         findings. --serve drills the alignment service: every request's\n\
         alignments and modeled-GPU-time bits must be identical served\n\
         solo or co-batched, the deduped union of a split workload must\n\
         equal the direct pipeline run, and seeded service chaos must\n\
         change nothing observable while accounting for every fault.\n\
         --index persist drills the persistent sharded seed index on\n\
         every corpus family: a save → validate → load round trip must\n\
         reproduce the in-memory index's anchors exactly, and the\n\
         pipeline over the persisted workload must match alignments,\n\
         bin counts, and modeled-GPU-time bits across sim-thread and\n\
         dispatch settings.\n\
         --engine picks the warp engine's wavefront backend\n\
         (interpreter or simd) for the whole suite; every invariant must\n\
         hold identically on either. --engine bitvector instead turns on\n\
         the cross-algorithm drill: the GenASM/Scrooge-style bitvector\n\
         backend against the dense edit-distance oracle and the affine\n\
         y-drop oracle on every corpus case — exact score agreement on\n\
         the unit-cost overlap domain, documented inequalities\n\
         elsewhere. --replay re-runs one case by its reported category\n\
         and seed."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        config: SuiteConfig::default(),
        out: None,
        metrics_out: None,
        replay: None,
        serve: false,
        index: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage();
            })
        };
        match flag.as_str() {
            "--pairs" => args.config.pairs = value("--pairs").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.config.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value("--out")),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")),
            "--max-extent" => {
                args.config.max_extent = value("--max-extent").parse().unwrap_or_else(|_| usage())
            }
            "--corrupt" => {
                args.config.corrupt_warp_match =
                    value("--corrupt").parse().unwrap_or_else(|_| usage())
            }
            "--fault-seed" => {
                args.config.fault_seed =
                    Some(value("--fault-seed").parse().unwrap_or_else(|_| usage()))
            }
            "--sanitize" => args.config.sanitize = true,
            "--serve" => args.serve = true,
            "--index" => match value("--index").as_str() {
                "persist" => args.index = true,
                other => {
                    eprintln!("unknown index drill {other} (want persist)");
                    usage();
                }
            },
            "--engine" => match value("--engine").as_str() {
                "interpreter" => args.config.backend = WavefrontBackend::Interpreter,
                "simd" => args.config.backend = WavefrontBackend::Simd,
                "bitvector" => args.config.bitvector = true,
                other => {
                    eprintln!("unknown engine {other} (want interpreter, simd, or bitvector)");
                    usage();
                }
            },
            "--replay" => {
                let spec = value("--replay");
                let Some((cat, seed)) = spec.split_once(':') else {
                    eprintln!("--replay wants CATEGORY:SEED, got {spec}");
                    usage();
                };
                let Some(category) = Category::from_name(cat) else {
                    eprintln!("unknown category {cat}");
                    usage();
                };
                let seed = seed.parse().unwrap_or_else(|_| usage());
                args.replay = Some((category, seed));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some((category, seed)) = args.replay {
        let (case, checks, divergences) = replay(category, seed);
        println!(
            "replay {}:{} — target {} bp, query {} bp, {} checks",
            category.name(),
            seed,
            case.target.len(),
            case.query.len(),
            checks
        );
        for d in &divergences {
            println!(
                "  DIVERGENCE [{}] {}: {}{}",
                d.invariant,
                d.engines,
                d.message,
                d.first_divergent_cell
                    .map(|c| format!(" (first divergent cell ({}, {}))", c.i, c.j))
                    .unwrap_or_default()
            );
        }
        return if divergences.is_empty() {
            println!("  clean");
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut suite = run_suite(&args.config);

    if args.serve {
        let (checks, divergences) = fastz_conformance::serve::check_serve(
            args.config.seed,
            &fastz_conformance::suite_scoring(),
        );
        eprintln!(
            "serve drill: {} checks, {} divergences",
            checks,
            divergences.len()
        );
        suite.checks += checks;
        suite.divergences.extend(divergences);
    }

    if args.index {
        let (checks, divergences) = fastz_conformance::check_index_persist(
            args.config.seed,
            &fastz_conformance::suite_scoring(),
        );
        eprintln!(
            "index drill: {} checks, {} divergences",
            checks,
            divergences.len()
        );
        suite.checks += checks;
        suite.divergences.extend(divergences);
    }

    if let Some(path) = &args.metrics_out {
        let (_, divergences, recorder) = fastz_conformance::pipeline::check_pipeline_metrics(
            args.config.seed,
            &fastz_conformance::suite_scoring(),
        );
        if !divergences.is_empty() {
            eprintln!(
                "metrics drill diverged ({} divergences); report written anyway",
                divergences.len()
            );
        }
        let json = fastz_obs::export::json_report(&recorder);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("metrics report written to {path}");
    }

    let json = report::to_json(&suite);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!("report written to {path}");
        }
        None => print!("{json}"),
    }
    eprintln!(
        "{} cases, {} checks, {} divergences",
        suite.cases,
        suite.checks,
        suite.divergences.len()
    );
    for d in suite.divergences.iter().take(10) {
        eprintln!(
            "  [{}] {} ({}:{}): {}",
            d.invariant,
            d.engines,
            d.category.name(),
            d.seed,
            d.message
        );
    }
    if suite.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
