//! Runs one corpus case through every engine, collecting traces.

use fastz_align::ydrop::{ydrop_extend_traced, YDropScratch};
use fastz_align::{DenseTrace, OneSidedExtension, PruneMode};
use fastz_core::{warp_extend_traced, OptFlags, WarpConfig, WarpExtension, WavefrontBackend};
use fastz_genome::Scoring;
use fastz_gpu_sim::SharedMem;

use crate::corpus::Case;
use crate::oracle::{oracle_extend, OracleRun};
use crate::report::Divergence;

/// Cell-level checking is bounded: above this many matrix cells the
/// dense oracle and the per-cell traces are skipped and only the
/// interface-level invariants (scores, cells, stats, tracebacks) run.
pub const CELL_CHECK_CAP: usize = 1 << 20;

/// Executor runs allocate an `best_i × best_j` traceback; skip the
/// executor stage when that exceeds this cap (the huge bin-boundary
/// cases would otherwise allocate gigabytes).
pub const EXECUTOR_CELL_CAP: usize = 1 << 24;

/// Everything the checkers need about one case.
pub struct CaseRun {
    /// Scalar exact engine result.
    pub exact: OneSidedExtension,
    /// Scalar conservative engine result.
    pub cons: OneSidedExtension,
    /// Warp inspector result.
    pub warp: WarpExtension,
    /// Warp executor result (trimmed to the inspector optimum), when
    /// within [`EXECUTOR_CELL_CAP`].
    pub exec: Option<WarpExtension>,
    /// Per-cell traces (exact, conservative, warp) when within
    /// [`CELL_CHECK_CAP`].
    pub exact_trace: Option<DenseTrace>,
    /// Conservative scalar trace.
    pub cons_trace: Option<DenseTrace>,
    /// Warp inspector trace.
    pub warp_trace: Option<DenseTrace>,
    /// Dense reference runs, when within [`CELL_CHECK_CAP`].
    pub oracle_exact: Option<OracleRun>,
    /// Dense reference, conservative pruning.
    pub oracle_cons: Option<OracleRun>,
}

/// Runs all engines on `case`. `warp_scoring` is normally `scoring`;
/// the CLI's `--corrupt` mode passes a perturbed copy to the warp
/// engine only, to demonstrate divergence reporting end to end.
pub fn run_case(case: &Case, scoring: &Scoring, warp_scoring: &Scoring) -> CaseRun {
    run_case_on(case, scoring, warp_scoring, WavefrontBackend::Interpreter)
}

/// [`run_case`] with the warp engine on an explicit wavefront backend
/// (the CLI's `--engine simd` drives the whole suite through the SIMD
/// path; results must be identical by the backend contract).
pub fn run_case_on(
    case: &Case,
    scoring: &Scoring,
    warp_scoring: &Scoring,
    backend: WavefrontBackend,
) -> CaseRun {
    let t = &case.target;
    let q = &case.query;
    let full = (t.len() + 1).saturating_mul(q.len() + 1) <= CELL_CHECK_CAP;

    let mut scratch = YDropScratch::default();
    let mut exact_trace = DenseTrace::default();
    let mut cons_trace = DenseTrace::default();
    let mut warp_trace = DenseTrace::default();

    let exact;
    let cons;
    let warp;
    let flags = OptFlags::fastz();
    let insp_cfg = WarpConfig::inspector(&flags).with_backend(backend);
    let mut shared = SharedMem::new(96 * 1024);
    if full {
        exact = ydrop_extend_traced(
            t,
            q,
            scoring,
            PruneMode::Exact,
            true,
            &mut scratch,
            &mut exact_trace,
        );
        cons = ydrop_extend_traced(
            t,
            q,
            scoring,
            PruneMode::Conservative,
            true,
            &mut scratch,
            &mut cons_trace,
        );
        warp = warp_extend_traced(t, q, warp_scoring, &insp_cfg, &mut shared, &mut warp_trace);
    } else {
        use fastz_align::NoTrace;
        exact = ydrop_extend_traced(
            t,
            q,
            scoring,
            PruneMode::Exact,
            false,
            &mut scratch,
            &mut NoTrace,
        );
        cons = ydrop_extend_traced(
            t,
            q,
            scoring,
            PruneMode::Conservative,
            false,
            &mut scratch,
            &mut NoTrace,
        );
        warp = warp_extend_traced(t, q, warp_scoring, &insp_cfg, &mut shared, &mut NoTrace);
    }

    let exec = if warp.best_i.saturating_mul(warp.best_j) <= EXECUTOR_CELL_CAP {
        let exec_cfg = WarpConfig::executor(&flags, warp.best_i, warp.best_j).with_backend(backend);
        let mut shared = SharedMem::new(96 * 1024);
        Some(fastz_core::warp_extend(
            t,
            q,
            warp_scoring,
            &exec_cfg,
            &mut shared,
        ))
    } else {
        None
    };

    let (oracle_exact, oracle_cons) = if full {
        (
            Some(oracle_extend(t, q, scoring, PruneMode::Exact)),
            Some(oracle_extend(t, q, scoring, PruneMode::Conservative)),
        )
    } else {
        (None, None)
    };

    CaseRun {
        exact,
        cons,
        warp,
        exec,
        exact_trace: full.then_some(exact_trace),
        cons_trace: full.then_some(cons_trace),
        warp_trace: full.then_some(warp_trace),
        oracle_exact,
        oracle_cons,
    }
}

/// The wavefront-backend identity drill: runs the warp engine on the
/// same case under the interpreter and the SIMD backend (inspector and,
/// within [`EXECUTOR_CELL_CAP`], executor) and demands bit-identical
/// results — optimum, edit scripts, work counters (hence modeled GPU
/// time), and explored extents.
pub fn check_backend_identity(case: &Case, scoring: &Scoring) -> (usize, Vec<Divergence>) {
    let t = &case.target;
    let q = &case.query;
    let flags = OptFlags::fastz();
    let mut checks = 0usize;
    let mut divergences = Vec::new();
    let mut diverge = |invariant: &'static str, message: String| {
        divergences.push(Divergence {
            category: case.category,
            seed: case.seed,
            invariant,
            engines: "warp-interpreter vs warp-simd",
            message,
            first_divergent_cell: None,
        });
    };

    let run = |cfg: &WarpConfig| {
        let mut shared = SharedMem::new(96 * 1024);
        fastz_core::warp_extend(t, q, scoring, cfg, &mut shared)
    };
    let insp_cfg = WarpConfig::inspector(&flags);
    let a = run(&insp_cfg);
    let b = run(&insp_cfg.with_backend(WavefrontBackend::Simd));
    checks += 1;
    if (a.best_score, a.best_i, a.best_j) != (b.best_score, b.best_i, b.best_j) {
        diverge(
            "backend-identical-optimum",
            format!(
                "inspector optimum ({}, {}, {}) != ({}, {}, {})",
                a.best_score, a.best_i, a.best_j, b.best_score, b.best_i, b.best_j
            ),
        );
    }
    checks += 1;
    if a.eager_ops != b.eager_ops {
        diverge(
            "backend-identical-eager-ops",
            "eager traceback scripts differ between backends".into(),
        );
    }
    checks += 1;
    if a.counters != b.counters {
        diverge(
            "backend-identical-counters",
            format!(
                "inspector counters differ: {:?} != {:?}",
                a.counters, b.counters
            ),
        );
    }
    checks += 1;
    if (a.explored_rows, a.explored_cols) != (b.explored_rows, b.explored_cols) {
        diverge(
            "backend-identical-extent",
            format!(
                "explored extents ({}, {}) != ({}, {})",
                a.explored_rows, a.explored_cols, b.explored_rows, b.explored_cols
            ),
        );
    }

    if a.best_i.saturating_mul(a.best_j) <= EXECUTOR_CELL_CAP {
        let exec_cfg = WarpConfig::executor(&flags, a.best_i, a.best_j);
        let ea = run(&exec_cfg);
        let eb = run(&exec_cfg.with_backend(WavefrontBackend::Simd));
        checks += 1;
        if ea.ops != eb.ops {
            diverge(
                "backend-identical-executor-ops",
                "executor edit scripts differ between backends".into(),
            );
        }
        checks += 1;
        if ea.counters != eb.counters {
            diverge(
                "backend-identical-executor-counters",
                format!(
                    "executor counters differ: {:?} != {:?}",
                    ea.counters, eb.counters
                ),
            );
        }
    }

    (checks, divergences)
}
