//! Persistent-index conformance: seeding through a persisted sharded
//! index must be *transparent* to the pipeline.
//!
//! Checks, per drill seed, on every corpus family:
//!
//! 1. **Anchor identity** — the workload built through a sharded index
//!    that made a full save → validate → load round trip equals the
//!    workload built through a fresh in-memory [`SeedIndex`], anchor for
//!    anchor (raw counts, filtered counts, order).
//! 2. **Pipeline bit identity** — the full pipeline over both workloads
//!    produces identical alignments, identical bin counts, and
//!    bit-identical modeled GPU time, across `sim_threads` values and
//!    both host dispatch modes (the knobs documented as wall-clock-only
//!    must stay wall-clock-only when anchors come off disk).
//! 3. **Shard-count invariance** — the loaded index's lookups are the
//!    same whole-index sequence at every shard count.

use fastz_core::{run_fastz, FastZConfig, HostDispatch, OptFlags};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::DeviceSpec;
use fastz_seed::{SeedIndex, SeedShape, ShardedSeedIndex, Workload, WorkloadParams};

use crate::corpus::{make_case, Category};
use crate::report::Divergence;

fn diverge(category: Category, seed: u64, invariant: &'static str, message: String) -> Divergence {
    Divergence {
        category,
        seed,
        invariant,
        engines: "persisted sharded index vs in-memory index",
        message,
        first_divergent_cell: None,
    }
}

/// The families the drill sweeps — all six, with a fixed representative
/// seed for the prescribed-extent bin-boundary family (bound 2048,
/// exact) and the drill seed elsewhere.
fn family_cases(seed: u64) -> Vec<(Category, u64)> {
    let mut cases: Vec<(Category, u64)> = Category::FUZZ.iter().map(|&c| (c, seed)).collect();
    cases.push((Category::BinBoundary, (1 << 2) | 1));
    cases
}

/// Runs the persistent-index drill for `seed`; returns
/// `(checks, divergences)`.
pub fn check_index_persist(seed: u64, scoring: &Scoring) -> (usize, Vec<Divergence>) {
    let mut checks = 0usize;
    let mut div = Vec::new();

    let dir = std::env::temp_dir().join(format!("fastz-conformance-index-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        div.push(diverge(
            Category::CleanHomology,
            seed,
            "index-drill-setup",
            format!("cannot create {}: {e}", dir.display()),
        ));
        return (checks, div);
    }

    // Corpus cases are short, so seed with a short exact shape — every
    // family (including the disjoint-alphabet edge families) produces
    // windows, and garbage pairs still exercise the near-empty path.
    let shape = SeedShape::exact(8);
    let params = WorkloadParams {
        shape: shape.clone(),
        ..WorkloadParams::default()
    };

    for (category, case_seed) in family_cases(seed) {
        let case = make_case(category, case_seed);
        let name = format!("idx-drill-{}", category.name());
        let target = Sequence::from_codes(name.clone(), case.target.clone());
        let query = Sequence::from_codes(format!("{name}-q"), case.query.clone());

        // In-memory reference workload.
        let fresh = SeedIndex::build(&target, shape.clone());
        let wl_mem = Workload::build_with_index(&fresh, &query, &params);

        // Persisted workload: build sharded, save, load back, seed.
        let persisted = (|| {
            let built = ShardedSeedIndex::build(&target, shape.clone(), 3)?;
            built.save(&ShardedSeedIndex::artifact_path(&dir, &target, &shape, 3))?;
            ShardedSeedIndex::load_or_build(&dir, &target, shape.clone(), 3)
        })();
        let (loaded, origin) = match persisted {
            Ok(pair) => pair,
            Err(e) => {
                div.push(diverge(
                    category,
                    case_seed,
                    "index-round-trip",
                    format!("save/load failed: {e}"),
                ));
                continue;
            }
        };
        checks += 1;
        if origin != fastz_seed::IndexOrigin::LoadedFromDisk {
            div.push(diverge(
                category,
                case_seed,
                "index-round-trip",
                "saved artifact was not loaded back (rebuilt instead)".to_string(),
            ));
        }
        let wl_disk = Workload::build_with_index(&loaded, &query, &params);

        // 1. Anchor identity.
        checks += 1;
        if wl_mem.anchors != wl_disk.anchors
            || wl_mem.raw_anchors != wl_disk.raw_anchors
            || wl_mem.filtered_anchors != wl_disk.filtered_anchors
        {
            div.push(diverge(
                category,
                case_seed,
                "index-anchor-identity",
                format!(
                    "in-memory {} raw / {} anchors vs persisted {} raw / {} anchors",
                    wl_mem.raw_anchors,
                    wl_mem.anchors.len(),
                    wl_disk.raw_anchors,
                    wl_disk.anchors.len()
                ),
            ));
            continue;
        }

        // 3. Shard-count invariance of the loaded artifact's lookups.
        checks += 1;
        for shards in [1usize, 5] {
            let other = match ShardedSeedIndex::build(&target, shape.clone(), shards) {
                Ok(i) => i,
                Err(e) => {
                    div.push(diverge(
                        category,
                        case_seed,
                        "index-shard-invariance",
                        format!("{shards}-shard build failed: {e}"),
                    ));
                    continue;
                }
            };
            let wl_other = Workload::build_with_index(&other, &query, &params);
            if wl_other.anchors != wl_mem.anchors {
                div.push(diverge(
                    category,
                    case_seed,
                    "index-shard-invariance",
                    format!("{shards}-shard anchors differ from the in-memory index"),
                ));
            }
        }

        // 2. Pipeline bit identity across the wall-clock-only knobs.
        let span = wl_mem.shape.span();
        let mut reference: Option<(Vec<_>, _, u64)> = None;
        for (sim_threads, dispatch) in [
            (1usize, HostDispatch::Static),
            (2, HostDispatch::Stealing),
            (0, HostDispatch::Stealing),
        ] {
            let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
            cfg.flags = OptFlags::fastz();
            cfg.sim_threads = sim_threads;
            cfg.host_dispatch = dispatch;
            let mem = run_fastz(&target, &query, &wl_mem.anchors, span, &cfg);
            let disk = run_fastz(&target, &query, &wl_disk.anchors, span, &cfg);
            checks += 3;
            if mem.alignments != disk.alignments {
                div.push(diverge(
                    category,
                    case_seed,
                    "index-pipeline-alignments",
                    format!(
                        "{} vs {} alignments (sim_threads {sim_threads}, {dispatch:?})",
                        mem.alignments.len(),
                        disk.alignments.len()
                    ),
                ));
            }
            if mem.bin_counts != disk.bin_counts {
                div.push(diverge(
                    category,
                    case_seed,
                    "index-pipeline-bins",
                    format!(
                        "bin counts {:?} vs {:?} (sim_threads {sim_threads}, {dispatch:?})",
                        mem.bin_counts, disk.bin_counts
                    ),
                ));
            }
            if mem.modeled_time_s.to_bits() != disk.modeled_time_s.to_bits() {
                div.push(diverge(
                    category,
                    case_seed,
                    "index-pipeline-modeled-bits",
                    format!(
                        "modeled {:.9e} s vs {:.9e} s (sim_threads {sim_threads}, {dispatch:?})",
                        mem.modeled_time_s, disk.modeled_time_s
                    ),
                ));
            }
            // The knobs themselves must stay wall-clock-only on the
            // persisted path: every (sim_threads, dispatch) combination
            // agrees with the first.
            checks += 1;
            match &reference {
                None => {
                    reference = Some((
                        disk.alignments.clone(),
                        disk.bin_counts,
                        disk.modeled_time_s.to_bits(),
                    ));
                }
                Some((al, bins, bits)) => {
                    if al != &disk.alignments
                        || bins != &disk.bin_counts
                        || *bits != disk.modeled_time_s.to_bits()
                    {
                        div.push(diverge(
                            category,
                            case_seed,
                            "index-knob-invariance",
                            format!(
                                "persisted-path results vary with sim_threads {sim_threads} / \
                                 {dispatch:?}"
                            ),
                        ));
                    }
                }
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    (checks, div)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_drill_is_clean() {
        let (checks, div) = check_index_persist(7, &crate::suite_scoring());
        assert!(div.is_empty(), "divergences: {div:?}");
        // 6 families × (round-trip + anchors + shard-invariance +
        // 3 knob combos × 4 checks).
        assert!(checks >= 6 * 15, "only {checks} checks ran");
    }
}
