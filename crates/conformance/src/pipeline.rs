//! Full-pipeline conformance: runs `run_fastz` on small synthetic
//! workloads and checks the report's internal accounting plus every
//! emitted alignment against an independent rescoring.

use fastz_core::{run_fastz, FastZConfig, OptFlags};
use fastz_genome::evolve::{default_classes, generate_pair, PairParams};
use fastz_genome::Scoring;
use fastz_gpu_sim::DeviceSpec;
use fastz_seed::{Workload, WorkloadParams};

use crate::corpus::Category;
use crate::report::Divergence;

fn diverge(seed: u64, invariant: &'static str, message: String) -> Divergence {
    Divergence {
        category: Category::CleanHomology,
        seed,
        invariant,
        engines: "pipeline (run_fastz)",
        message,
        first_divergent_cell: None,
    }
}

/// Runs one pipeline workload seeded by `seed`; returns
/// `(checks_evaluated, divergences)`.
pub fn check_pipeline(seed: u64, scoring: &Scoring) -> (usize, Vec<Divergence>) {
    // A scaled-down demo pair: big enough to fill several bins, small
    // enough that the suite's pipeline stage stays fast in debug builds.
    let pair = generate_pair(&PairParams {
        label: "conformance".to_string(),
        target_len: 30_000,
        query_len: 30_000,
        segments: 60,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 400,
            ..WorkloadParams::default()
        },
    );
    let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = 1;
    let report = run_fastz(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
    );

    let mut out = Vec::new();
    let mut checks = 0;

    // Accounting: every seed spawns two one-sided problems, and every
    // problem is resolved either eagerly or by the executor.
    checks += 1;
    let s = &report.stats;
    if s.problems != 2 * s.seeds {
        out.push(diverge(
            seed,
            "pipeline-accounting",
            format!(
                "{} problems for {} seeds (expected 2 per seed)",
                s.problems, s.seeds
            ),
        ));
    }
    checks += 1;
    if s.eager_resolved + s.executor_problems != s.problems {
        out.push(diverge(
            seed,
            "pipeline-accounting",
            format!(
                "eager ({}) + executor ({}) != problems ({})",
                s.eager_resolved, s.executor_problems, s.problems
            ),
        ));
    }
    checks += 1;
    // The Table 2 classification is per seed (one extent per anchor,
    // the max over its two one-sided problems), not per problem.
    if report.bin_counts.total() != s.seeds {
        out.push(diverge(
            seed,
            "pipeline-accounting",
            format!(
                "bin counts total {} != seeds {}",
                report.bin_counts.total(),
                s.seeds
            ),
        ));
    }

    // Every alignment must be geometrically consistent and rescore to
    // its reported score.
    checks += 1;
    for aln in &report.alignments {
        if !aln.is_consistent(&pair.target, &pair.query) {
            out.push(diverge(
                seed,
                "pipeline-alignment",
                format!(
                    "inconsistent alignment at t = {}, q = {}",
                    aln.target_start, aln.query_start
                ),
            ));
            continue;
        }
        let rescored = aln.rescore(&pair.target, &pair.query, scoring);
        if rescored != aln.score {
            out.push(diverge(
                seed,
                "pipeline-alignment",
                format!(
                    "alignment at t = {}, q = {} reports score {} but rescores to {}",
                    aln.target_start, aln.query_start, aln.score, rescored
                ),
            ));
        }
        if aln.score < scoring.gapped_threshold {
            out.push(diverge(
                seed,
                "pipeline-alignment",
                format!(
                    "alignment at t = {}, q = {} scores {} below the gapped threshold {}",
                    aln.target_start, aln.query_start, aln.score, scoring.gapped_threshold
                ),
            ));
        }
    }

    (checks, out)
}
