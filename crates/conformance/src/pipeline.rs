//! Full-pipeline conformance: runs `run_fastz` on small synthetic
//! workloads and checks the report's internal accounting plus every
//! emitted alignment against an independent rescoring. The resilience
//! drill ([`check_pipeline_resilient`]) re-runs the same workload under
//! a seeded fault plan and demands the exact fault-free alignment set
//! plus complete fault accounting.

use fastz_core::{
    run_fastz, run_fastz_multi_gpu_resilient, run_fastz_observed, run_fastz_resilient, FastZConfig,
    OptFlags, Partition, ResilienceConfig,
};
use fastz_genome::evolve::{default_classes, generate_pair, PairParams};
use fastz_genome::Scoring;
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_obs::Recorder;
use fastz_seed::{Anchor, Workload, WorkloadParams};

use crate::corpus::Category;
use crate::report::Divergence;

fn diverge(seed: u64, invariant: &'static str, message: String) -> Divergence {
    Divergence {
        category: Category::CleanHomology,
        seed,
        invariant,
        engines: "pipeline (run_fastz)",
        message,
        first_divergent_cell: None,
    }
}

fn diverge_resilient(seed: u64, message: String) -> Divergence {
    Divergence {
        category: Category::CleanHomology,
        seed,
        invariant: "pipeline-resilience",
        engines: "pipeline (run_fastz_resilient)",
        message,
        first_divergent_cell: None,
    }
}

/// Runs one pipeline workload seeded by `seed`; returns
/// `(checks_evaluated, divergences)`.
pub fn check_pipeline(seed: u64, scoring: &Scoring) -> (usize, Vec<Divergence>) {
    // A scaled-down demo pair: big enough to fill several bins, small
    // enough that the suite's pipeline stage stays fast in debug builds.
    let pair = generate_pair(&PairParams {
        label: "conformance".to_string(),
        target_len: 30_000,
        query_len: 30_000,
        segments: 60,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 400,
            ..WorkloadParams::default()
        },
    );
    let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = 1;
    let report = run_fastz(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
    );

    let mut out = Vec::new();
    let mut checks = 0;

    // Accounting: every seed spawns two one-sided problems, and every
    // problem is resolved either eagerly or by the executor.
    checks += 1;
    let s = &report.stats;
    if s.problems != 2 * s.seeds {
        out.push(diverge(
            seed,
            "pipeline-accounting",
            format!(
                "{} problems for {} seeds (expected 2 per seed)",
                s.problems, s.seeds
            ),
        ));
    }
    checks += 1;
    if s.eager_resolved + s.executor_problems != s.problems {
        out.push(diverge(
            seed,
            "pipeline-accounting",
            format!(
                "eager ({}) + executor ({}) != problems ({})",
                s.eager_resolved, s.executor_problems, s.problems
            ),
        ));
    }
    checks += 1;
    // The Table 2 classification is per seed (one extent per anchor,
    // the max over its two one-sided problems), not per problem.
    if report.bin_counts.total() != s.seeds {
        out.push(diverge(
            seed,
            "pipeline-accounting",
            format!(
                "bin counts total {} != seeds {}",
                report.bin_counts.total(),
                s.seeds
            ),
        ));
    }

    // Every alignment must be geometrically consistent and rescore to
    // its reported score.
    checks += 1;
    for aln in &report.alignments {
        if !aln.is_consistent(&pair.target, &pair.query) {
            out.push(diverge(
                seed,
                "pipeline-alignment",
                format!(
                    "inconsistent alignment at t = {}, q = {}",
                    aln.target_start, aln.query_start
                ),
            ));
            continue;
        }
        let rescored = aln.rescore(&pair.target, &pair.query, scoring);
        if rescored != aln.score {
            out.push(diverge(
                seed,
                "pipeline-alignment",
                format!(
                    "alignment at t = {}, q = {} reports score {} but rescores to {}",
                    aln.target_start, aln.query_start, aln.score, rescored
                ),
            ));
        }
        if aln.score < scoring.gapped_threshold {
            out.push(diverge(
                seed,
                "pipeline-alignment",
                format!(
                    "alignment at t = {}, q = {} scores {} below the gapped threshold {}",
                    aln.target_start, aln.query_start, aln.score, scoring.gapped_threshold
                ),
            ));
        }
    }

    (checks, out)
}

fn diverge_metrics(seed: u64, message: String) -> Divergence {
    Divergence {
        category: Category::CleanHomology,
        seed,
        invariant: "pipeline-metrics",
        engines: "pipeline warp (width 32) vs scalar (width 1)",
        message,
        first_divergent_cell: None,
    }
}

/// Metrics engine-invariance drill: the observed pipeline at strip
/// width 32 (warp) and strip width 1 (scalar) must emit identical
/// *semantic* metrics — seeds, problems, eager hits, bin counts,
/// alignments, the seed-extent histogram — while the per-phase work
/// counters (steps, ALU ops, …, the `{phase="…"}`-labeled series) are
/// expected to differ, since strip mining changes how much machine work
/// produces the same answer. Returns the warp run's recorder so the CLI
/// can export it (`--metrics-out`).
pub fn check_pipeline_metrics(seed: u64, scoring: &Scoring) -> (usize, Vec<Divergence>, Recorder) {
    // Smaller than the main pipeline workload: this drill runs the
    // whole pipeline twice (once per engine width).
    let pair = generate_pair(&PairParams {
        label: "metrics-drill".to_string(),
        target_len: 20_000,
        query_len: 20_000,
        segments: 40,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 200,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = 1;
    let rcfg = ResilienceConfig::disabled();

    let mut warp_rec = Recorder::new();
    let warp = run_fastz_observed(
        &pair.target,
        &pair.query,
        &wl.anchors,
        span,
        &cfg,
        &rcfg,
        &mut warp_rec,
    );
    cfg.strip_width = 1;
    let mut scalar_rec = Recorder::new();
    let scalar = run_fastz_observed(
        &pair.target,
        &pair.query,
        &wl.anchors,
        span,
        &cfg,
        &rcfg,
        &mut scalar_rec,
    );

    let mut out = Vec::new();
    let mut checks = 0;

    checks += 1;
    if warp.alignments != scalar.alignments {
        out.push(diverge_metrics(
            seed,
            format!(
                "strip-width invariance broken: warp emitted {} alignments, scalar {}",
                warp.alignments.len(),
                scalar.alignments.len()
            ),
        ));
    }

    // Semantic counters: everything except the `{phase="…"}`-labeled
    // work series (those measure machine effort, which legitimately
    // depends on the strip width).
    let semantic = |rec: &Recorder| -> Vec<(String, u64)> {
        rec.registry
            .counters()
            .into_iter()
            .filter(|(name, _)| !name.contains("{phase="))
            .collect()
    };
    checks += 1;
    let warp_sem = semantic(&warp_rec);
    let scalar_sem = semantic(&scalar_rec);
    if warp_sem != scalar_sem {
        let diff: Vec<String> = warp_sem
            .iter()
            .zip(scalar_sem.iter())
            .filter(|(a, b)| a != b)
            .map(|((n, w), (_, s))| format!("{n}: warp {w} vs scalar {s}"))
            .collect();
        out.push(diverge_metrics(
            seed,
            format!(
                "semantic counters differ across engines: {}",
                diff.join("; ")
            ),
        ));
    }
    checks += 1;
    let extent_hist = fastz_obs::names::SEED_EXTENT_HIST;
    if warp_rec.registry.histogram(extent_hist) != scalar_rec.registry.histogram(extent_hist) {
        out.push(diverge_metrics(
            seed,
            "seed-extent histograms differ across engines".to_string(),
        ));
    }
    // Sanity on the drill itself: the work counters MUST differ, or the
    // scalar run silently used the warp engine and the invariance
    // comparison above proved nothing.
    checks += 1;
    let work = |rec: &Recorder| -> Vec<(String, u64)> {
        rec.registry
            .counters()
            .into_iter()
            .filter(|(name, _)| name.contains("{phase="))
            .collect()
    };
    if work(&warp_rec) == work(&scalar_rec) {
        out.push(diverge_metrics(
            seed,
            "work counters identical across strip widths — drill is vacuous".to_string(),
        ));
    }

    (checks, out, warp_rec)
}

/// Fault-injection drill (the CLI's `--fault-seed`): the resilient
/// pipeline under a seeded fault plan — hangs, bit flips, stalls,
/// shared-memory pressure, and (multi-GPU) device loss over every bin
/// class — must complete without panicking, emit a deduped alignment
/// set byte-identical to the fault-free run, and account for every
/// injected fault (`injected == detected + tolerated`).
pub fn check_pipeline_resilient(
    seed: u64,
    fault_seed: u64,
    scoring: &Scoring,
) -> (usize, Vec<Divergence>) {
    let pair = generate_pair(&PairParams {
        label: "resilience-drill".to_string(),
        target_len: 30_000,
        query_len: 30_000,
        segments: 60,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 400,
            ..WorkloadParams::default()
        },
    );
    let anchors: &[Anchor] = &wl.anchors;
    let span = wl.shape.span();
    let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = 1;

    let clean = run_fastz(&pair.target, &pair.query, anchors, span, &cfg);
    let rcfg = ResilienceConfig::with_plan(FaultPlan::from_seed(fault_seed));
    let faulted = run_fastz_resilient(&pair.target, &pair.query, anchors, span, &cfg, &rcfg);

    let mut out = Vec::new();
    let mut checks = 0;

    checks += 1;
    if faulted.alignments != clean.alignments {
        out.push(diverge_resilient(
            seed,
            format!(
                "faulted run produced {} alignments, fault-free {} (sets differ)",
                faulted.alignments.len(),
                clean.alignments.len()
            ),
        ));
    }
    checks += 1;
    let r = &faulted.resilience;
    if !r.accounts_for_all_faults() {
        out.push(diverge_resilient(
            seed,
            format!(
                "fault accounting broken: injected {} != detected {} + tolerated {}",
                r.injected.total(),
                r.detected.total(),
                r.tolerated.total()
            ),
        ));
    }
    checks += 1;
    if r.injected.total() == 0 {
        out.push(diverge_resilient(
            seed,
            "drill injected no faults (plan or workload too small)".to_string(),
        ));
    }
    checks += 1;
    if r.overhead_s <= 0.0 || faulted.modeled_time_s <= clean.modeled_time_s {
        out.push(diverge_resilient(
            seed,
            format!(
                "fault recovery charged no modeled time (overhead {} s)",
                r.overhead_s
            ),
        ));
    }
    checks += 1;
    if !r.skipped_seeds.is_empty() {
        // The drill plan's max_consecutive is below the retry budget, so
        // every problem must converge without being skipped.
        out.push(diverge_resilient(
            seed,
            format!(
                "{} seeds skipped under a convergent plan",
                r.skipped_seeds.len()
            ),
        ));
    }

    // Multi-GPU: device loss with re-dispatch to survivors.
    let devices = vec![DeviceSpec::rtx3080_ampere(); 3];
    let multi = run_fastz_multi_gpu_resilient(
        &pair.target,
        &pair.query,
        anchors,
        span,
        &cfg,
        &devices,
        Partition::Strided,
        &rcfg,
    );
    checks += 1;
    if multi.alignments != clean.alignments {
        out.push(diverge_resilient(
            seed,
            format!(
                "multi-GPU faulted run produced {} alignments, fault-free single-GPU {}",
                multi.alignments.len(),
                clean.alignments.len()
            ),
        ));
    }
    checks += 1;
    if !multi.resilience.accounts_for_all_faults() {
        out.push(diverge_resilient(
            seed,
            "multi-GPU fault accounting broken".to_string(),
        ));
    }
    checks += 1;
    if multi.lost_devices.len() >= devices.len() {
        out.push(diverge_resilient(
            seed,
            "last-survivor guard failed: every device was lost".to_string(),
        ));
    }

    (checks, out)
}
