//! # fastz-conformance
//!
//! Differential conformance oracle for the FastZ engines.
//!
//! The same seed-extension workload is run through four engines — the
//! scalar exact y-drop engine, the scalar conservative engine, the
//! warp engine, and the full pipeline — on seeded reproducible corpora,
//! and the paper's invariants are checked cell for cell against a dense
//! reference DP ([`oracle`]). Violations come back as structured
//! [`report::Divergence`] records (engine pair, first divergent cell,
//! replay seed) that the `conformance` CLI serializes as JSON.

#![warn(missing_docs)]

pub mod corpus;
pub mod crossalg;
pub mod engines;
pub mod index;
pub mod invariants;
pub mod oracle;
pub mod pipeline;
pub mod report;
pub mod sanitize;
pub mod serve;

pub use corpus::{bin_boundary_cases, fuzz_corpus, make_case, Case, Category};
pub use crossalg::check_bitvec_case;
pub use engines::{run_case, CaseRun};
pub use index::check_index_persist;
pub use invariants::{check_case, rescore_ops};
pub use oracle::{edit_oracle, oracle_extend, EditOracleRun, OracleRun};
pub use report::{CellDiff, Divergence, SuiteReport};

use fastz_core::WavefrontBackend;
use fastz_genome::{GapPenalties, Scoring, SubstMatrix};

/// The scoring scheme the suite runs under (match/mismatch 10/−15,
/// gaps 30 + 5k, y-drop 120 — the workspace's standard test scoring).
pub fn suite_scoring() -> Scoring {
    Scoring {
        subst: SubstMatrix::match_mismatch(10, -15),
        gaps: GapPenalties::new(30, 5),
        ydrop: 120,
        xdrop: 40,
        hsp_threshold: 50,
        gapped_threshold: 50,
    }
}

/// The unit-cost scoring regime where the affine y-drop algorithm and
/// the bitvector edit-distance algorithm must agree *exactly*: +2 per
/// match, −1 per mismatch, −2 per gap base (`GapPenalties::new(0, 2)`
/// makes open free so every gap base costs exactly 2), and a y-drop so
/// large pruning never fires on suite-sized inputs. Under this regime
/// every alignment path scores `(i + j) − 3·ED_path`, so the affine
/// optimum over the full rectangle equals
/// `max_{i,j} (i + j) − 3·ED(i, j)` — the quantity the bitvector
/// engine maximizes.
pub fn unit_scoring() -> Scoring {
    Scoring {
        subst: SubstMatrix::match_mismatch(2, -1),
        gaps: GapPenalties::new(0, 2),
        ydrop: 1 << 20,
        xdrop: 1 << 20,
        hsp_threshold: 0,
        gapped_threshold: 0,
    }
}

/// Suite configuration.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Fuzz pairs to generate.
    pub pairs: usize,
    /// Master seed.
    pub seed: u64,
    /// Largest bin-boundary extent to include (the 32769-extent case
    /// runs millions of DP cells; CI may cap this).
    pub max_extent: usize,
    /// Number of full-pipeline workloads to run.
    pub pipeline_workloads: usize,
    /// Optional scoring perturbation applied to the warp engine only
    /// (the CLI's `--corrupt` switch): added to the match score.
    pub corrupt_warp_match: i32,
    /// Optional fault-injection drill (the CLI's `--fault-seed`): each
    /// pipeline workload re-runs under this seeded fault plan and must
    /// reproduce the fault-free alignments with complete fault
    /// accounting.
    pub fault_seed: Option<u64>,
    /// Run the sanitizer drill (the CLI's `--sanitize`): every corpus
    /// family through the warp engine on a sanitizer-attached arena,
    /// plus a sanitized pipeline workload — all of which must report
    /// zero findings and unperturbed functional output.
    pub sanitize: bool,
    /// Wavefront backend the warp engine runs on throughout the suite
    /// (the CLI's `--engine`). Every invariant must hold identically on
    /// either backend, and the per-case backend-identity drill compares
    /// the two directly regardless of this setting.
    pub backend: WavefrontBackend,
    /// Run the cross-algorithm bitvector drill on every corpus case
    /// (the CLI's `--engine bitvector`): the GenASM-style bitvector
    /// backend against the dense edit-distance oracle and the affine
    /// y-drop oracle — exact agreement on the unit-cost overlap
    /// domain, documented inequalities elsewhere (see
    /// [`crossalg`]).
    pub bitvector: bool,
}

impl Default for SuiteConfig {
    fn default() -> SuiteConfig {
        SuiteConfig {
            pairs: 500,
            seed: 42,
            max_extent: usize::MAX,
            pipeline_workloads: 2,
            corrupt_warp_match: 0,
            fault_seed: None,
            sanitize: false,
            backend: WavefrontBackend::default(),
            bitvector: false,
        }
    }
}

/// Runs the whole suite: fuzz corpus + fixed bin-boundary sweep +
/// pipeline workloads.
pub fn run_suite(config: &SuiteConfig) -> SuiteReport {
    let scoring = suite_scoring();
    let warp_scoring = if config.corrupt_warp_match != 0 {
        Scoring {
            subst: SubstMatrix::match_mismatch(10 + config.corrupt_warp_match, -15),
            ..scoring.clone()
        }
    } else {
        scoring.clone()
    };

    let mut report = SuiteReport {
        pairs: config.pairs,
        seed: config.seed,
        ..SuiteReport::default()
    };

    let mut cases = fuzz_corpus(config.seed, config.pairs);
    cases.extend(bin_boundary_cases(config.max_extent));
    for case in &cases {
        let run = engines::run_case_on(case, &scoring, &warp_scoring, config.backend);
        let (checks, divergences) = check_case(case, &run, &scoring);
        report.cases += 1;
        report.checks += checks;
        report.divergences.extend(divergences);

        // Wavefront-backend identity drill: interpreter and SIMD must be
        // bit-identical on every case (skipped under --corrupt, whose
        // perturbed scoring targets the suite's own divergence plumbing,
        // not the backend contract).
        if config.corrupt_warp_match == 0 {
            let (checks, divergences) = engines::check_backend_identity(case, &scoring);
            report.checks += checks;
            report.divergences.extend(divergences);
        }

        // Cross-algorithm drill: the bitvector edit-distance backend
        // against the dense edit oracle and the affine y-drop oracle,
        // under the agreement/inequality contract (skipped under
        // --corrupt, which perturbs the warp engine only).
        if config.bitvector && config.corrupt_warp_match == 0 {
            let (checks, divergences) =
                crossalg::check_bitvec_case(case, &fastz_core::BitvecConfig::default(), &scoring);
            report.checks += checks;
            report.divergences.extend(divergences);
        }
    }

    for k in 0..config.pipeline_workloads {
        let (checks, divergences) =
            pipeline::check_pipeline(config.seed.wrapping_add(k as u64), &scoring);
        report.cases += 1;
        report.checks += checks;
        report.divergences.extend(divergences);
    }

    // Metrics engine-invariance drill: the observed pipeline at warp and
    // scalar strip widths must agree on every semantic metric.
    for k in 0..config.pipeline_workloads {
        let (checks, divergences, _recorder) =
            pipeline::check_pipeline_metrics(config.seed.wrapping_add(k as u64), &scoring);
        report.cases += 1;
        report.checks += checks;
        report.divergences.extend(divergences);
    }

    // Sanitizer drill: all six corpus families through the warp engine
    // on a sanitizer-attached arena, plus sanitized pipeline workloads.
    if config.sanitize {
        let (checks, divergences) = sanitize::check_sanitize_corpus(
            config.seed,
            config.max_extent,
            &scoring,
            config.backend,
        );
        report.cases += 1;
        report.checks += checks;
        report.divergences.extend(divergences);
        // Backend equality of the merged sanitizer reports (findings,
        // provenance, traffic totals) over the same drill corpus.
        let (checks, divergences) =
            sanitize::check_sanitize_backend_equality(config.seed, config.max_extent, &scoring);
        report.cases += 1;
        report.checks += checks;
        report.divergences.extend(divergences);
        for k in 0..config.pipeline_workloads.max(1) {
            let (checks, divergences) = sanitize::check_sanitize_pipeline(
                config.seed.wrapping_add(k as u64),
                &scoring,
                config.backend,
            );
            report.cases += 1;
            report.checks += checks;
            report.divergences.extend(divergences);
        }
    }

    if let Some(fault_seed) = config.fault_seed {
        for k in 0..config.pipeline_workloads.max(1) {
            let (checks, divergences) = pipeline::check_pipeline_resilient(
                config.seed.wrapping_add(k as u64),
                fault_seed.wrapping_add(k as u64),
                &scoring,
            );
            report.cases += 1;
            report.checks += checks;
            report.divergences.extend(divergences);
        }
    }

    report
}

/// Replays a single case (the CLI's `--replay category:seed`),
/// returning the case and its divergences.
pub fn replay(category: Category, seed: u64) -> (Case, usize, Vec<Divergence>) {
    let scoring = suite_scoring();
    let case = make_case(category, seed);
    let run = run_case(&case, &scoring, &scoring);
    let (checks, divergences) = check_case(&case, &run, &scoring);
    (case, checks, divergences)
}
