//! Service conformance: the alignment service must be a *transparent*
//! wrapper around the pipeline.
//!
//! Checks, per drill seed:
//!
//! 1. **Solo/co-batched bit identity** — every request's alignments and
//!    modeled-GPU-time bits are identical whether the request was served
//!    alone or co-batched into shared bin launches with the rest of the
//!    corpus (cross-request batching is schedule-level only).
//! 2. **Request-split transparency** — the deduped union of all served
//!    requests' alignments equals a direct `run_fastz` over the same
//!    anchors (splitting a workload across requests loses nothing).
//! 3. **Chaos transparency** — under a seeded fault plan, every request
//!    still terminates served, its alignment set is unchanged, and
//!    `injected == detected + tolerated` holds end to end.

use fastz_core::{run_fastz, FastZConfig, OptFlags};
use fastz_genome::evolve::{default_classes, generate_pair, PairParams};
use fastz_genome::Scoring;
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_seed::{Workload, WorkloadParams};
use fastz_serve::{AlignRequest, AlignService, ServeConfig};

use crate::corpus::Category;
use crate::report::Divergence;

fn diverge(seed: u64, invariant: &'static str, message: String) -> Divergence {
    Divergence {
        category: Category::CleanHomology,
        seed,
        invariant,
        engines: "serve (AlignService) vs pipeline (run_fastz)",
        message,
        first_divergent_cell: None,
    }
}

/// Runs the service drill for `seed`; returns `(checks, divergences)`.
pub fn check_serve(seed: u64, scoring: &Scoring) -> (usize, Vec<Divergence>) {
    let mut checks = 0usize;
    let mut div = Vec::new();

    let pair = generate_pair(&PairParams {
        label: "serve-drill".to_string(),
        target_len: 16_000,
        query_len: 16_000,
        segments: 32,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 120,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();

    let mut cfg = FastZConfig::new(scoring.clone(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();

    // Split the corpus into co-batchable requests.
    let per = wl.anchors.len().div_ceil(5).max(1);
    let reqs: Vec<AlignRequest> = wl
        .anchors
        .chunks(per)
        .enumerate()
        .map(|(i, c)| AlignRequest::new(i as u64, c.to_vec(), span))
        .collect();

    let mut scfg = ServeConfig::new(cfg.clone());
    scfg.admission.queue_cap = 1024;
    scfg.admission.work_budget = 1e12;
    let service = AlignService::new(&pair.target, &pair.query, scfg.clone());
    let batched = service.run(&reqs);

    // 1. Solo vs co-batched: identical bits per request.
    for req in &reqs {
        checks += 2;
        let solo = service.run(std::slice::from_ref(req));
        let s = &solo.records[0];
        let Some(b) = batched.records.iter().find(|r| r.id == req.id) else {
            div.push(diverge(
                seed,
                "serve-request-lost",
                format!("request {} has no record in the co-batched run", req.id),
            ));
            continue;
        };
        if s.alignments != b.alignments {
            div.push(diverge(
                seed,
                "serve-solo-batched-alignments",
                format!(
                    "request {}: {} alignments solo vs {} co-batched",
                    req.id,
                    s.alignments.len(),
                    b.alignments.len()
                ),
            ));
        }
        if s.modeled_time_s.to_bits() != b.modeled_time_s.to_bits() {
            div.push(diverge(
                seed,
                "serve-solo-batched-modeled-bits",
                format!(
                    "request {}: modeled time {:.9e} s solo vs {:.9e} s co-batched",
                    req.id, s.modeled_time_s, b.modeled_time_s
                ),
            ));
        }
    }

    // 2. Union of served requests == direct pipeline over all anchors.
    checks += 1;
    let direct = run_fastz(&pair.target, &pair.query, &wl.anchors, span, &cfg);
    let mut union: Vec<_> = batched
        .records
        .iter()
        .flat_map(|r| r.alignments.iter().cloned())
        .collect();
    union = fastz_align::dedupe_alignments(union);
    let mut expect = direct.alignments.clone();
    expect = fastz_align::dedupe_alignments(expect);
    if union != expect {
        div.push(diverge(
            seed,
            "serve-split-transparency",
            format!(
                "deduped union of {} requests has {} alignments, direct run has {}",
                reqs.len(),
                union.len(),
                expect.len()
            ),
        ));
    }

    // 3. Chaos transparency: seeded faults change nothing observable.
    checks += 2;
    let chaotic_service = AlignService::new(
        &pair.target,
        &pair.query,
        scfg.with_chaos(FaultPlan::from_seed(seed ^ 0x5EED)),
    );
    let chaotic = chaotic_service.run(&reqs);
    if !chaotic.resilience.accounts_for_all_faults() {
        div.push(diverge(
            seed,
            "serve-fault-accounting",
            format!(
                "injected {:?} != detected {:?} + tolerated {:?}",
                chaotic.resilience.injected,
                chaotic.resilience.detected,
                chaotic.resilience.tolerated
            ),
        ));
    }
    for r in &chaotic.records {
        let quiet = batched.records.iter().find(|q| q.id == r.id);
        if !r.outcome.served() {
            div.push(diverge(
                seed,
                "serve-chaos-outcome",
                format!(
                    "request {} ended {} under chaos with no overload",
                    r.id,
                    r.outcome.class()
                ),
            ));
        } else if quiet.map(|q| &q.alignments) != Some(&r.alignments) {
            div.push(diverge(
                seed,
                "serve-chaos-alignments",
                format!("request {}'s alignment set changed under chaos", r.id),
            ));
        }
    }

    (checks, div)
}
