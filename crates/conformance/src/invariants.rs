//! The invariant checkers: each takes one case's engine outputs and
//! returns every violation as a structured [`Divergence`].
//!
//! The invariants are the paper's correctness claims, stated engine
//! against engine:
//!
//! * the scalar engines must agree with the dense oracle bit for bit;
//! * conservative pruning explores a superset of exact pruning and
//!   values every shared cell at least as high (§3.4);
//! * the warp engine's LASTZ-order-safe threshold makes it a superset
//!   of the exact engine too, and in practice it lands on the same
//!   optimum as the scalar conservative engine;
//! * the executor's trimmed recomputation reproduces the inspector's
//!   optimum and its traceback rescores exactly (§3.1);
//! * eager traceback fires iff the optimum fits the 16×16 window
//!   (§3.1.2);
//! * the work counters are self-consistent.

use fastz_align::{DenseTrace, EditOp, OneSidedExtension};
use fastz_core::{bin_allocation, classify, BinClass, EAGER_BOUND};
use fastz_genome::Scoring;
use fastz_gpu_sim::WARP_SIZE;

use crate::corpus::Case;
use crate::engines::CaseRun;
use crate::oracle::OracleRun;
use crate::report::{CellDiff, Divergence, ABSENT};

/// Replays an edit script against the raw code slices, returning
/// `(target_consumed, query_consumed, score)` — the independent
/// rescoring every traceback claim is checked against.
pub fn rescore_ops(t: &[u8], q: &[u8], scoring: &Scoring, ops: &[EditOp]) -> (usize, usize, i32) {
    let (mut ti, mut qi, mut score) = (0usize, 0usize, 0i32);
    for op in ops {
        match *op {
            EditOp::Diag(k) => {
                for _ in 0..k {
                    score += scoring.subst.score(t[ti], q[qi]);
                    ti += 1;
                    qi += 1;
                }
            }
            EditOp::GapQ(k) => {
                score -= scoring.gaps.gap_cost(k as usize);
                ti += k as usize;
            }
            EditOp::GapT(k) => {
                score -= scoring.gaps.gap_cost(k as usize);
                qi += k as usize;
            }
        }
    }
    (ti, qi, score)
}

fn diverge(
    case: &Case,
    invariant: &'static str,
    engines: &'static str,
    message: String,
    cell: Option<CellDiff>,
) -> Divergence {
    Divergence {
        category: case.category,
        seed: case.seed,
        invariant,
        engines,
        message,
        first_divergent_cell: cell,
    }
}

/// First cell (row-major) where the engine trace and the oracle
/// disagree on liveness or S value.
fn first_trace_oracle_diff(trace: &DenseTrace, oracle: &OracleRun) -> Option<CellDiff> {
    let mut engine = trace.cells.iter();
    let mut reference = oracle.live.iter();
    let (mut e, mut o) = (engine.next(), reference.next());
    loop {
        match (e, o) {
            (None, None) => return None,
            (Some((&(i, j), c)), None) => {
                return Some(CellDiff {
                    i,
                    j,
                    lhs: c.s as i64,
                    rhs: ABSENT,
                })
            }
            (None, Some(&(i, j, c))) => {
                return Some(CellDiff {
                    i,
                    j,
                    lhs: ABSENT,
                    rhs: c.s as i64,
                })
            }
            (Some((&(ei, ej), ec)), Some(&(oi, oj, oc))) => {
                if (ei, ej) == (oi, oj) {
                    if ec.s != oc.s {
                        return Some(CellDiff {
                            i: ei,
                            j: ej,
                            lhs: ec.s as i64,
                            rhs: oc.s as i64,
                        });
                    }
                    e = engine.next();
                    o = reference.next();
                } else if (ei, ej) < (oi, oj) {
                    return Some(CellDiff {
                        i: ei,
                        j: ej,
                        lhs: ec.s as i64,
                        rhs: ABSENT,
                    });
                } else {
                    return Some(CellDiff {
                        i: oi,
                        j: oj,
                        lhs: ABSENT,
                        rhs: oc.s as i64,
                    });
                }
            }
        }
    }
}

/// First cell live in `subset` that `superset` pruned or valued lower.
/// `min_coord` skips rows and columns the superset engine does not
/// model (the warp engine derives row 0 and column 0 analytically —
/// the boundary gap chains live in its spill buffer — and never
/// records either through its cell sink).
fn first_superset_violation(
    subset: &DenseTrace,
    superset: &DenseTrace,
    min_coord: usize,
) -> Option<CellDiff> {
    for (&(i, j), sub) in subset.cells.iter() {
        if i < min_coord || j < min_coord {
            continue;
        }
        match superset.cells.get(&(i, j)) {
            None => {
                return Some(CellDiff {
                    i,
                    j,
                    lhs: sub.s as i64,
                    rhs: ABSENT,
                })
            }
            Some(sup) if sup.s < sub.s => {
                return Some(CellDiff {
                    i,
                    j,
                    lhs: sub.s as i64,
                    rhs: sup.s as i64,
                })
            }
            Some(_) => {}
        }
    }
    None
}

/// Scalar engines against the dense oracle: identical optimum and
/// identical live cells.
fn check_oracle_agreement(case: &Case, run: &CaseRun, out: &mut Vec<Divergence>) -> usize {
    let mut checks = 0;
    let pairs: [(
        &'static str,
        &OneSidedExtension,
        &Option<DenseTrace>,
        &Option<OracleRun>,
    ); 2] = [
        (
            "scalar-exact vs oracle-exact",
            &run.exact,
            &run.exact_trace,
            &run.oracle_exact,
        ),
        (
            "scalar-conservative vs oracle-conservative",
            &run.cons,
            &run.cons_trace,
            &run.oracle_cons,
        ),
    ];
    for (engines, engine, trace, oracle) in pairs {
        let (Some(trace), Some(oracle)) = (trace.as_ref(), oracle.as_ref()) else {
            continue;
        };
        checks += 2;
        let got = (engine.best_score, engine.best_i, engine.best_j);
        let want = (oracle.best_score, oracle.best_i, oracle.best_j);
        let cell_diff = first_trace_oracle_diff(trace, oracle);
        if got != want {
            out.push(diverge(
                case,
                "oracle-agreement",
                engines,
                format!("engine optimum {got:?} != oracle optimum {want:?}"),
                cell_diff,
            ));
        } else if let Some(cell) = cell_diff {
            out.push(diverge(
                case,
                "oracle-agreement",
                engines,
                format!(
                    "optimum agrees but cell ({}, {}) differs: engine {} vs oracle {}",
                    cell.i, cell.j, cell.lhs, cell.rhs
                ),
                Some(cell),
            ));
        }
    }
    checks
}

/// Conservative pruning is a superset of exact pruning, cell for cell.
fn check_conservative_superset(case: &Case, run: &CaseRun, out: &mut Vec<Divergence>) -> usize {
    let engines = "scalar-exact vs scalar-conservative";
    let mut checks = 2;
    if run.cons.best_score < run.exact.best_score {
        out.push(diverge(
            case,
            "conservative-superset",
            engines,
            format!(
                "conservative score {} < exact score {}",
                run.cons.best_score, run.exact.best_score
            ),
            None,
        ));
    }
    if run.cons.stats.cells < run.exact.stats.cells {
        out.push(diverge(
            case,
            "conservative-superset",
            engines,
            format!(
                "conservative computed {} cells < exact {}",
                run.cons.stats.cells, run.exact.stats.cells
            ),
            None,
        ));
    }
    if let (Some(exact), Some(cons)) = (run.exact_trace.as_ref(), run.cons_trace.as_ref()) {
        checks += 1;
        if let Some(cell) = first_superset_violation(exact, cons, 0) {
            out.push(diverge(
                case,
                "conservative-superset",
                engines,
                format!(
                    "cell ({}, {}) live in exact (S = {}) but conservative has {}",
                    cell.i,
                    cell.j,
                    cell.lhs,
                    if cell.rhs == ABSENT {
                        "pruned it".to_string()
                    } else {
                        format!("S = {}", cell.rhs)
                    }
                ),
                Some(cell),
            ));
        }
    }
    checks
}

/// The warp engine's threshold is LASTZ-order safe, so it must also be
/// a superset of the exact engine.
fn check_warp_superset(case: &Case, run: &CaseRun, out: &mut Vec<Divergence>) -> usize {
    let engines = "scalar-exact vs warp";
    let mut checks = 1;
    if run.warp.best_score < run.exact.best_score {
        out.push(diverge(
            case,
            "warp-superset",
            engines,
            format!(
                "warp score {} < exact score {}",
                run.warp.best_score, run.exact.best_score
            ),
            None,
        ));
    }
    if let (Some(exact), Some(warp)) = (run.exact_trace.as_ref(), run.warp_trace.as_ref()) {
        checks += 1;
        // Row 0 and column 0 are analytic in the warp engine; compare
        // cells with both coordinates >= 1.
        if let Some(cell) = first_superset_violation(exact, warp, 1) {
            out.push(diverge(
                case,
                "warp-superset",
                engines,
                format!(
                    "cell ({}, {}) live in exact (S = {}) but warp has {}",
                    cell.i,
                    cell.j,
                    cell.lhs,
                    if cell.rhs == ABSENT {
                        "pruned it".to_string()
                    } else {
                        format!("S = {}", cell.rhs)
                    }
                ),
                Some(cell),
            ));
        }
    }
    checks
}

/// Warp and scalar-conservative land on the same optimum score, and
/// each engine's best cell is an optimum in the other's cell map.
fn check_warp_matches_conservative(case: &Case, run: &CaseRun, out: &mut Vec<Divergence>) -> usize {
    let engines = "warp vs scalar-conservative";
    let mut checks = 1;
    if run.warp.best_score != run.cons.best_score {
        // Diagnose with the first cell where the engines' cell maps
        // disagree, if traces exist.
        let cell = match (run.warp_trace.as_ref(), run.cons_trace.as_ref()) {
            (Some(w), Some(c)) => {
                first_superset_violation(c, w, 1).or_else(|| first_superset_violation(w, c, 1))
            }
            _ => None,
        };
        out.push(diverge(
            case,
            "warp-matches-conservative",
            engines,
            format!(
                "warp score {} != conservative score {}",
                run.warp.best_score, run.cons.best_score
            ),
            cell,
        ));
    } else if run.warp.best_score > 0 {
        // Scores agree; the best cells may legitimately differ only if
        // both are optima under the other engine's values (tie-breaking
        // order differs between row-major and strip-mined sweeps).
        if let (Some(w), Some(c)) = (run.warp_trace.as_ref(), run.cons_trace.as_ref()) {
            checks += 1;
            let wb = (run.warp.best_i, run.warp.best_j);
            let cb = (run.cons.best_i, run.cons.best_j);
            let w_in_c = c.s(wb.0, wb.1) == Some(run.cons.best_score);
            let c_in_w = w.s(cb.0, cb.1) == Some(run.warp.best_score);
            if !w_in_c || !c_in_w {
                let (i, j) = if !w_in_c { wb } else { cb };
                out.push(diverge(
                    case,
                    "warp-matches-conservative",
                    engines,
                    format!(
                        "best cells disagree beyond tie-breaking: warp {:?}, conservative {:?}",
                        wb, cb
                    ),
                    Some(CellDiff {
                        i,
                        j,
                        lhs: run.warp.best_score as i64,
                        rhs: if !w_in_c {
                            c.s(wb.0, wb.1).map_or(ABSENT, |v| v as i64)
                        } else {
                            w.s(cb.0, cb.1).map_or(ABSENT, |v| v as i64)
                        },
                    }),
                ));
            }
        }
    }
    checks
}

/// The trimmed executor reproduces the inspector's optimum and its
/// traceback rescores to exactly that score.
fn check_executor(
    case: &Case,
    run: &CaseRun,
    scoring: &Scoring,
    out: &mut Vec<Divergence>,
) -> usize {
    let engines = "warp-inspector vs warp-executor";
    let Some(exec) = run.exec.as_ref() else {
        return 0;
    };
    let mut checks = 1;
    let insp = &run.warp;
    if (exec.best_score, exec.best_i, exec.best_j) != (insp.best_score, insp.best_i, insp.best_j) {
        out.push(diverge(
            case,
            "executor-rescore",
            engines,
            format!(
                "executor optimum ({}, {}, {}) != inspector optimum ({}, {}, {})",
                exec.best_score,
                exec.best_i,
                exec.best_j,
                insp.best_score,
                insp.best_i,
                insp.best_j
            ),
            None,
        ));
    }
    checks += 1;
    match exec.ops.as_ref() {
        None => out.push(diverge(
            case,
            "executor-rescore",
            engines,
            "executor returned no traceback".to_string(),
            None,
        )),
        Some(ops) => {
            let (ti, qi, score) = rescore_ops(&case.target, &case.query, scoring, ops);
            if (ti, qi, score) != (exec.best_j, exec.best_i, exec.best_score) {
                out.push(diverge(
                    case,
                    "executor-rescore",
                    engines,
                    format!(
                        "traceback rescored to (t = {ti}, q = {qi}, score = {score}), engine \
                         reported (t = {}, q = {}, score = {})",
                        exec.best_j, exec.best_i, exec.best_score
                    ),
                    None,
                ));
            }
        }
    }
    checks
}

/// Eager traceback fires iff the optimum fits the shared-memory window,
/// and its edit script rescores exactly.
fn check_eager(case: &Case, run: &CaseRun, scoring: &Scoring, out: &mut Vec<Divergence>) -> usize {
    let engines = "warp-inspector (eager window)";
    let mut checks = 1;
    let w = &run.warp;
    let fits = w.best_i <= EAGER_BOUND && w.best_j <= EAGER_BOUND;
    if w.eager_ops.is_some() != fits {
        out.push(diverge(
            case,
            "eager-window",
            engines,
            format!(
                "eager traceback {} but optimum ({}, {}) {} the {EAGER_BOUND}x{EAGER_BOUND} window",
                if w.eager_ops.is_some() {
                    "fired"
                } else {
                    "did not fire"
                },
                w.best_i,
                w.best_j,
                if fits { "fits" } else { "does not fit" }
            ),
            None,
        ));
    }
    if let Some(ops) = w.eager_ops.as_ref() {
        checks += 1;
        let (ti, qi, score) = rescore_ops(&case.target, &case.query, scoring, ops);
        if (ti, qi, score) != (w.best_j, w.best_i, w.best_score) {
            out.push(diverge(
                case,
                "eager-window",
                engines,
                format!(
                    "eager script rescored to (t = {ti}, q = {qi}, score = {score}), engine \
                     reported (t = {}, q = {}, score = {})",
                    w.best_j, w.best_i, w.best_score
                ),
                None,
            ));
        }
    }
    checks
}

/// Per-engine statistics and counters must be self-consistent.
fn check_stats(case: &Case, run: &CaseRun, out: &mut Vec<Divergence>) -> usize {
    let m = case.query.len();
    let n = case.target.len();
    let mut checks = 0;

    let scalar_engines: [(&'static str, &OneSidedExtension, Option<&DenseTrace>); 2] = [
        (
            "scalar-exact (ExtensionStats)",
            &run.exact,
            run.exact_trace.as_ref(),
        ),
        (
            "scalar-conservative (ExtensionStats)",
            &run.cons,
            run.cons_trace.as_ref(),
        ),
    ];
    for (engines, ext, trace) in scalar_engines {
        checks += 1;
        let s = &ext.stats;
        let live = trace.map(|t| t.len() as u64).unwrap_or(0);
        let bad = s.rows > m + 1
            || s.max_cols > n + 1
            || (s.cells as usize) < s.rows.min(m + 1)
            || live > s.cells
            || ext.best_i > m
            || ext.best_j > n;
        if bad {
            out.push(diverge(
                case,
                "stats-consistency",
                engines,
                format!(
                    "inconsistent stats: rows = {}, max_cols = {}, cells = {}, live cells = {}, \
                     optimum = ({}, {}), matrix = {}x{}",
                    s.rows, s.max_cols, s.cells, live, ext.best_i, ext.best_j, m, n
                ),
                None,
            ));
        }
    }

    checks += 1;
    let c = &run.warp.counters;
    let live = run.warp_trace.as_ref().map(|t| t.len() as u64).unwrap_or(0);
    let bad = c.alu_ops != c.steps * 9 * WARP_SIZE as u64
        || c.cells > c.steps * WARP_SIZE as u64
        || c.shuffles < 3 * c.steps
        || !c.shuffles.is_multiple_of(3)
        || c.divergent_steps > c.steps
        || live > c.cells
        || run.warp.explored_rows > m
        || run.warp.explored_cols > n
        || run.warp.best_i > run.warp.explored_rows
        || run.warp.best_j > run.warp.explored_cols;
    if bad {
        out.push(diverge(
            case,
            "stats-consistency",
            "warp (WarpCounters)",
            format!(
                "inconsistent counters: steps = {}, cells = {}, alu_ops = {}, shuffles = {}, \
                 divergent = {}, live cells = {}, explored = ({}, {}), optimum = ({}, {})",
                c.steps,
                c.cells,
                c.alu_ops,
                c.shuffles,
                c.divergent_steps,
                live,
                run.warp.explored_rows,
                run.warp.explored_cols,
                run.warp.best_i,
                run.warp.best_j
            ),
            None,
        ));
    }
    checks
}

/// Planted-optimum families: the engines must find exactly the planted
/// extent, and length classification must be consistent with it.
fn check_planted(case: &Case, run: &CaseRun, out: &mut Vec<Divergence>) -> usize {
    let Some(planted) = case.planted_extent else {
        return 0;
    };
    let mut checks = 2;
    let warp_extent = run.warp.best_i.max(run.warp.best_j);
    let exact_extent = run.exact.best_i.max(run.exact.best_j);
    if warp_extent != planted || exact_extent != planted {
        out.push(diverge(
            case,
            "planted-extent",
            "planted optimum vs engines",
            format!(
                "planted extent {planted}, exact engine found {exact_extent}, warp found \
                 {warp_extent}"
            ),
            None,
        ));
        return checks;
    }

    // Independent re-derivation of the expected class (deliberately not
    // reusing `classify`'s loop).
    let expected = if planted <= 16 {
        BinClass::Eager
    } else if planted <= 512 {
        BinClass::Bin(0)
    } else if planted <= 2048 {
        BinClass::Bin(1)
    } else if planted <= 8192 {
        BinClass::Bin(2)
    } else if planted <= 32768 {
        BinClass::Bin(3)
    } else {
        BinClass::Overflow
    };
    checks += 2;
    let got = classify(warp_extent);
    if got != expected {
        out.push(diverge(
            case,
            "planted-extent",
            "binning::classify",
            format!("extent {warp_extent} classified {got:?}, expected {expected:?}"),
            None,
        ));
    }
    if bin_allocation(got) < planted {
        out.push(diverge(
            case,
            "planted-extent",
            "binning::bin_allocation",
            format!(
                "allocation {} cannot hold extent {planted}",
                bin_allocation(got)
            ),
            None,
        ));
    }
    checks
}

/// Runs every checker on one case; returns `(checks_evaluated,
/// divergences)`.
pub fn check_case(case: &Case, run: &CaseRun, scoring: &Scoring) -> (usize, Vec<Divergence>) {
    let mut out = Vec::new();
    let mut checks = 0;
    checks += check_oracle_agreement(case, run, &mut out);
    checks += check_conservative_superset(case, run, &mut out);
    checks += check_warp_superset(case, run, &mut out);
    checks += check_warp_matches_conservative(case, run, &mut out);
    checks += check_executor(case, run, scoring, &mut out);
    checks += check_eager(case, run, scoring, &mut out);
    checks += check_stats(case, run, &mut out);
    checks += check_planted(case, run, &mut out);
    (checks, out)
}
