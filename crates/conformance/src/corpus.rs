//! Seeded, reproducible corpora for the differential oracle.
//!
//! Every case is fully determined by `(category, seed)`: the CLI prints
//! the pair so a reported divergence can be replayed bit-for-bit with
//! `conformance --replay <category>:<seed>`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fastz_core::{BIN_BOUNDS, EAGER_BOUND};
use fastz_genome::evolve::random_codes;

/// Corpus family, each stressing a different part of the engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Noisy copy (substitutions only): long unique optimum.
    CleanHomology,
    /// Copy with frequent short indels: exercises the I/D chains.
    IndelDense,
    /// Two unrelated sequences: pruning must terminate the search fast.
    Garbage,
    /// Planted homology whose extent straddles a strip boundary
    /// (multiples of the 32-lane strip width ± 1): exercises the spill
    /// buffer hand-off.
    StripStraddle,
    /// Planted homology of extent 15 / 16 / 17: straddles the eager
    /// traceback window bound.
    EagerEdge,
    /// Identical pair whose extent lands on an executor bin bound ± 1
    /// (512 / 2048 / 8192 / 32768): exercises length classification.
    BinBoundary,
}

impl Category {
    /// All fuzzable families (bin-boundary cases are a fixed set, not
    /// fuzzed, because their extents are prescribed).
    pub const FUZZ: [Category; 5] = [
        Category::CleanHomology,
        Category::IndelDense,
        Category::Garbage,
        Category::StripStraddle,
        Category::EagerEdge,
    ];

    /// Stable name used in reports and `--replay`.
    pub fn name(self) -> &'static str {
        match self {
            Category::CleanHomology => "clean-homology",
            Category::IndelDense => "indel-dense",
            Category::Garbage => "garbage",
            Category::StripStraddle => "strip-straddle",
            Category::EagerEdge => "eager-edge",
            Category::BinBoundary => "bin-boundary",
        }
    }

    /// Inverse of [`Category::name`].
    pub fn from_name(name: &str) -> Option<Category> {
        [
            Category::CleanHomology,
            Category::IndelDense,
            Category::Garbage,
            Category::StripStraddle,
            Category::EagerEdge,
            Category::BinBoundary,
        ]
        .into_iter()
        .find(|c| c.name() == name)
    }
}

/// One reproducible test case: a pair of code slices fed to every
/// engine as a one-sided extension problem.
#[derive(Clone, Debug)]
pub struct Case {
    /// Corpus family.
    pub category: Category,
    /// Replay seed (fully determines the pair within the family).
    pub seed: u64,
    /// Target codes (columns).
    pub target: Vec<u8>,
    /// Query codes (rows).
    pub query: Vec<u8>,
    /// For planted families: the expected optimal extent, if the tails
    /// are guaranteed not to extend it (None when data-dependent).
    pub planted_extent: Option<usize>,
}

/// Applies `rate` substitutions to a copy of `src` (never produces the
/// original base, so every hit is a real mismatch).
fn substitute(src: &[u8], rate: f64, rng: &mut SmallRng) -> Vec<u8> {
    let mut out = src.to_vec();
    for b in out.iter_mut() {
        if rng.gen_bool(rate) {
            *b = (*b + 1 + rng.gen_range(0..3u8)) % 4;
        }
    }
    out
}

/// Builds the case for `(category, seed)`.
pub fn make_case(category: Category, seed: u64) -> Case {
    // Decorrelate the stream from the raw seed so adjacent seeds do not
    // share prefixes.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let (target, query, planted_extent) = match category {
        Category::CleanHomology => {
            let len = rng.gen_range(120..360);
            let t = random_codes(len, 0.45, &mut rng);
            let q = substitute(&t, 0.04, &mut rng);
            (t, q, None)
        }
        Category::IndelDense => {
            let len = rng.gen_range(100..300);
            let t = random_codes(len, 0.5, &mut rng);
            let mut q = substitute(&t, 0.05, &mut rng);
            for _ in 0..rng.gen_range(3..9) {
                let cut = rng.gen_range(0..q.len().saturating_sub(8).max(1));
                let gap = rng.gen_range(1..5);
                if rng.gen_bool(0.5) {
                    q.splice(cut..(cut + gap).min(q.len()), []);
                } else {
                    let ins = random_codes(gap, 0.5, &mut rng);
                    q.splice(cut..cut, ins);
                }
            }
            (t, q, None)
        }
        Category::Garbage => {
            let t = random_codes(rng.gen_range(80..240), 0.5, &mut rng);
            let q = random_codes(rng.gen_range(80..240), 0.5, &mut rng);
            (t, q, None)
        }
        Category::StripStraddle => {
            // Perfect homology of length k·32 + {-1, 0, +1}, then
            // hostile tails. The core uses only {C, G} (gc = 1.0) while
            // the tails are all-A vs all-T, so no tail base can ever
            // match anything: the optimum is provably the planted
            // segment and its extent straddles a strip boundary.
            let k = rng.gen_range(1..6usize);
            let len = (k * 32)
                .saturating_add_signed(rng.gen_range(-1..=1isize))
                .max(2);
            let core = random_codes(len, 1.0, &mut rng);
            let mut t = core.clone();
            let mut q = core;
            t.extend(std::iter::repeat_n(0u8, 64)); // all-A tail
            q.extend(std::iter::repeat_n(3u8, 64)); // all-T tail
            (t, q, Some(len))
        }
        Category::EagerEdge => {
            // Same disjoint-alphabet construction, extent 15 / 16 / 17.
            let len = EAGER_BOUND.saturating_add_signed(rng.gen_range(-1..=1isize));
            let core = random_codes(len, 1.0, &mut rng);
            let mut t = core.clone();
            let mut q = core;
            t.extend(std::iter::repeat_n(0u8, 48));
            q.extend(std::iter::repeat_n(3u8, 48));
            (t, q, Some(len))
        }
        Category::BinBoundary => {
            // seed encodes which boundary: bound index in the high bits,
            // offset −1/0/+1 in the low two bits.
            let idx = ((seed >> 2) as usize) % BIN_BOUNDS.len();
            let off = (seed & 0b11) as isize - 1; // 0→−1, 1→0, 2→+1
            let len = BIN_BOUNDS[idx].saturating_add_signed(off);
            let t = random_codes(len, 0.5, &mut rng);
            (t.clone(), t, Some(len))
        }
    };
    Case {
        category,
        seed,
        target,
        query,
        planted_extent,
    }
}

/// The fixed bin-boundary sweep: every bound in [`BIN_BOUNDS`] at −1 /
/// exact / +1 (the +1 of the last bound lands in `Overflow`).
pub fn bin_boundary_cases(max_extent: usize) -> Vec<Case> {
    let mut cases = Vec::new();
    for idx in 0..BIN_BOUNDS.len() {
        for off in 0..3u64 {
            let seed = ((idx as u64) << 2) | off;
            let case = make_case(Category::BinBoundary, seed);
            if case.planted_extent.unwrap_or(0) <= max_extent {
                cases.push(case);
            }
        }
    }
    cases
}

/// The fuzz corpus: `pairs` cases cycling through [`Category::FUZZ`],
/// each seeded from `master_seed` and its index.
pub fn fuzz_corpus(master_seed: u64, pairs: usize) -> Vec<Case> {
    (0..pairs)
        .map(|i| {
            let category = Category::FUZZ[i % Category::FUZZ.len()];
            // SplitMix-style mix so every case seed is distinct and
            // reproducible from (master_seed, i) alone.
            let mut z =
                master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            make_case(category, z ^ (z >> 31))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        for cat in Category::FUZZ {
            let a = make_case(cat, 123);
            let b = make_case(cat, 123);
            assert_eq!(a.target, b.target);
            assert_eq!(a.query, b.query);
        }
    }

    #[test]
    fn fuzz_corpus_covers_every_family() {
        let corpus = fuzz_corpus(42, 10);
        assert_eq!(corpus.len(), 10);
        for cat in Category::FUZZ {
            assert!(corpus.iter().any(|c| c.category == cat), "{cat:?} missing");
        }
    }

    #[test]
    fn bin_boundary_extents_straddle_every_bound() {
        let cases = bin_boundary_cases(usize::MAX);
        let extents: Vec<usize> = cases.iter().map(|c| c.planted_extent.unwrap()).collect();
        for b in BIN_BOUNDS {
            for e in [b - 1, b, b + 1] {
                assert!(extents.contains(&e), "extent {e} missing");
            }
        }
    }

    #[test]
    fn category_names_round_trip() {
        for cat in [
            Category::CleanHomology,
            Category::IndelDense,
            Category::Garbage,
            Category::StripStraddle,
            Category::EagerEdge,
            Category::BinBoundary,
        ] {
            assert_eq!(Category::from_name(cat.name()), Some(cat));
        }
    }
}
