//! Shared seed-index cache with multi-tenant shard residency.
//!
//! A service front end seeds every request against the same registered
//! target genome; rebuilding the k-mer index per request is the tall
//! pole of stage 1 at service scale. This cache makes the index a
//! build-once artifact:
//!
//! * **In-memory residency** — the first acquisition per
//!   `(genome id, shape, shard count)` key builds (or loads) the
//!   [`ShardedSeedIndex`]; every later acquisition is a hit against the
//!   resident copy.
//! * **Persistence** — with a directory configured, cold acquisitions
//!   go through [`ShardedSeedIndex::load_or_build`]: a validated
//!   artifact on disk is a warm load; otherwise the build is saved for
//!   the next process.
//! * **Shard scheduling** — each acquisition re-places the index's
//!   target-interval shards across the simulated device fleet with the
//!   locality-aware rebalancer ([`rebalance_shards`]): shards already
//!   resident on a device stay put unless balance demands a move, and
//!   the reuse/move counts and rebalance makespan are tracked.
//!
//! Counters surface through `obs::names` with the service's
//! zero-emission discipline: [`AlignService`](crate::AlignService)
//! emits every index series as zero on every observed run, and
//! [`IndexCache::record_metrics`] overlays the real values when a cache
//! is in play — the exported series set never depends on configuration.

use fastz_core::{rebalance_shards, ShardSchedule};
use fastz_genome::Sequence;
use fastz_obs::{names, MetricsSink};
use fastz_seed::{IndexOrigin, PersistError, SeedShape, ShardedSeedIndex};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Cache configuration.
#[derive(Clone, Debug)]
pub struct IndexCacheConfig {
    /// Artifact directory for persistence (`None` = in-memory only).
    pub dir: Option<PathBuf>,
    /// Target-interval shards per index (clamped to ≥ 1).
    pub shards: usize,
    /// Relative speed of each device in the simulated fleet the shards
    /// are scheduled across (see `fastz_core::device_speed`).
    pub device_speeds: Vec<f64>,
}

impl Default for IndexCacheConfig {
    fn default() -> Self {
        IndexCacheConfig {
            dir: None,
            shards: 4,
            device_speeds: vec![1.0],
        }
    }
}

/// Running acquisition and placement statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IndexCacheStats {
    /// Acquisitions served by a resident in-memory index.
    pub hits: u64,
    /// Acquisitions that validated and loaded a persisted artifact.
    pub disk_loads: u64,
    /// Acquisitions that built the index from the sequence.
    pub builds: u64,
    /// Shard placements kept on their resident device.
    pub shards_reused: u64,
    /// Shard placements that paid a move (cold load or migration).
    pub shards_moved: u64,
    /// Makespan of the most recent rebalance, modeled seconds.
    pub last_makespan_s: f64,
}

/// One resident index plus its current fleet placement.
struct Resident {
    index: ShardedSeedIndex,
    /// Device each shard currently lives on (input residency for the
    /// next rebalance).
    placement: Vec<Option<usize>>,
}

/// A shared seed-index cache keyed by `(genome id, shape, shards)`.
pub struct IndexCache {
    cfg: IndexCacheConfig,
    // BTreeMap, not HashMap: resident_shards() iterates the values, and
    // the bit-identity contract wants that walk (and any future series
    // derived from it) in key order.
    resident: BTreeMap<String, Resident>,
    stats: IndexCacheStats,
}

/// What one acquisition produced: a borrowed resident index, where it
/// came from, and the shard schedule chosen for this request.
pub struct Acquired<'c> {
    /// The resident sharded index.
    pub index: &'c ShardedSeedIndex,
    /// Hit / disk load / cold build for this acquisition.
    pub origin: AcquireOrigin,
    /// The placement the rebalancer chose for this request.
    pub schedule: ShardSchedule,
}

/// Where an acquisition was satisfied from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireOrigin {
    /// Already resident in memory.
    Resident,
    /// Validated artifact loaded from the persistence directory.
    LoadedFromDisk,
    /// Built from the sequence (and saved when persistence is on).
    Built,
}

impl IndexCache {
    /// An empty cache under `cfg`.
    pub fn new(cfg: IndexCacheConfig) -> IndexCache {
        IndexCache {
            cfg,
            resident: BTreeMap::new(),
            stats: IndexCacheStats::default(),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &IndexCacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &IndexCacheStats {
        &self.stats
    }

    /// Number of resident indexes.
    pub fn resident_indexes(&self) -> usize {
        self.resident.len()
    }

    /// Shards resident across the fleet (every shard of every resident
    /// index that has a device placement).
    pub fn resident_shards(&self) -> usize {
        self.resident
            .values()
            .map(|r| r.placement.iter().filter(|p| p.is_some()).count())
            .sum()
    }

    /// Acquires the index for `target` under `shape`, building or
    /// loading it on the first use and reusing the resident copy after,
    /// then schedules its shards across the fleet (preferring the
    /// devices they are already resident on).
    pub fn acquire(
        &mut self,
        target: &Sequence,
        shape: SeedShape,
    ) -> Result<Acquired<'_>, PersistError> {
        let shards = self.cfg.shards.max(1);
        let key = ShardedSeedIndex::artifact_name(target.name(), &shape, shards);
        let origin = if self.resident.contains_key(&key) {
            self.stats.hits += 1;
            AcquireOrigin::Resident
        } else {
            let (index, from) = match &self.cfg.dir {
                Some(dir) => ShardedSeedIndex::load_or_build(dir, target, shape, shards)?,
                None => (
                    ShardedSeedIndex::build(target, shape, shards)?,
                    IndexOrigin::Built,
                ),
            };
            let placement = vec![None; index.n_shards()];
            self.resident
                .insert(key.clone(), Resident { index, placement });
            match from {
                IndexOrigin::LoadedFromDisk => {
                    self.stats.disk_loads += 1;
                    AcquireOrigin::LoadedFromDisk
                }
                IndexOrigin::Built => {
                    self.stats.builds += 1;
                    AcquireOrigin::Built
                }
            }
        };

        let entry = self.resident.get_mut(&key).expect("just inserted");
        let schedule = rebalance_shards(
            &entry.index.shard_loads(),
            &self.cfg.device_speeds,
            &entry.placement,
        );
        entry.placement = schedule.assignments.iter().map(|&d| Some(d)).collect();
        self.stats.shards_reused += schedule.reused as u64;
        self.stats.shards_moved += schedule.moved as u64;
        self.stats.last_makespan_s = schedule.makespan_s;
        Ok(Acquired {
            index: &self.resident.get(&key).expect("resident").index,
            origin,
            schedule,
        })
    }

    /// Emits the cache series (overlaying the zeros the service emits —
    /// counters are additive, gauges last-write-wins, so record this
    /// *after* the service run's emission).
    pub fn record_metrics<S: MetricsSink>(&self, sink: &mut S) {
        if !S::ENABLED {
            return;
        }
        sink.counter_add(names::INDEX_CACHE_HITS_TOTAL, self.stats.hits);
        sink.counter_add(names::INDEX_CACHE_DISK_LOADS_TOTAL, self.stats.disk_loads);
        sink.counter_add(names::INDEX_CACHE_BUILDS_TOTAL, self.stats.builds);
        sink.counter_add(names::INDEX_SHARDS_REUSED_TOTAL, self.stats.shards_reused);
        sink.counter_add(names::INDEX_SHARDS_MOVED_TOTAL, self.stats.shards_moved);
        sink.gauge_set(names::INDEX_RESIDENT_SHARDS, self.resident_shards() as f64);
        sink.gauge_set(
            names::INDEX_REBALANCE_MAKESPAN_SECONDS,
            self.stats.last_makespan_s,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::evolve::random_sequence;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fastz-serve-idx-{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn repeat_acquisitions_hit_and_keep_shards_resident() {
        let t = random_sequence("svc-genome", 4_000, 0.5, 9);
        let mut cache = IndexCache::new(IndexCacheConfig {
            shards: 6,
            device_speeds: vec![1.0; 3],
            ..IndexCacheConfig::default()
        });
        let first = cache.acquire(&t, SeedShape::lastz_12of19()).unwrap();
        assert_eq!(first.origin, AcquireOrigin::Built);
        assert_eq!(first.schedule.reused, 0);
        let first_assign = first.schedule.assignments.clone();
        for _ in 0..7 {
            let again = cache.acquire(&t, SeedShape::lastz_12of19()).unwrap();
            assert_eq!(again.origin, AcquireOrigin::Resident);
            // With stable loads the warm rebalance keeps every shard on
            // its resident device.
            assert_eq!(again.schedule.moved, 0, "warm rebalance moved shards");
            assert_eq!(again.schedule.assignments, first_assign);
        }
        let s = cache.stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.hits, 7);
        assert_eq!(s.disk_loads, 0);
        assert_eq!(s.shards_moved, 6, "only the cold placement moved shards");
        assert_eq!(s.shards_reused, 7 * 6);
        assert_eq!(cache.resident_shards(), 6);
    }

    #[test]
    fn persistence_turns_cold_starts_into_disk_loads() {
        let dir = tmpdir("persist");
        let t = random_sequence("svc-genome", 3_000, 0.5, 21);
        let cfg = IndexCacheConfig {
            dir: Some(dir.clone()),
            shards: 3,
            device_speeds: vec![1.0; 2],
        };
        // First process: builds and saves.
        let mut warmup = IndexCache::new(cfg.clone());
        let a = warmup.acquire(&t, SeedShape::exact(12)).unwrap();
        assert_eq!(a.origin, AcquireOrigin::Built);
        let fp = a.index.fingerprint();
        drop(warmup);
        // Second process: loads the artifact instead of rebuilding.
        let mut cache = IndexCache::new(cfg);
        let b = cache.acquire(&t, SeedShape::exact(12)).unwrap();
        assert_eq!(b.origin, AcquireOrigin::LoadedFromDisk);
        assert_eq!(b.index.fingerprint(), fp, "identity survives the disk trip");
        assert_eq!(cache.stats().disk_loads, 1);
        assert_eq!(cache.stats().builds, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_are_distinct_residents() {
        let t1 = random_sequence("genome-one", 2_000, 0.5, 1);
        let t2 = random_sequence("genome-two", 2_000, 0.5, 2);
        let mut cache = IndexCache::new(IndexCacheConfig::default());
        cache.acquire(&t1, SeedShape::exact(10)).unwrap();
        cache.acquire(&t2, SeedShape::exact(10)).unwrap();
        cache.acquire(&t1, SeedShape::lastz_12of19()).unwrap();
        assert_eq!(cache.resident_indexes(), 3);
        assert_eq!(cache.stats().builds, 3);
        assert_eq!(cache.stats().hits, 0);
    }
}
