//! The deterministic service core: a virtual-clock event loop over the
//! FastZ pipeline.
//!
//! Every scheduling decision — admission, deadline expiry, the
//! pressure-driven degradation ladder, chaos-mode device loss — is a
//! pure function of the request sequence and *modeled* values (queue
//! depth, modeled GPU seconds, the seeded fault plan). Wall clock never
//! enters a decision, so the full outcome record is bit-identical
//! across `sim_threads`, host dispatch modes, and wavefront backends;
//! the chaos-soak test asserts exactly that.
//!
//! Requests dispatch in *waves* of up to [`ServeConfig::wave`] queued
//! requests. Each wave member's alignments and report come from the
//! unchanged per-request pipeline ([`run_fastz_in_pool`]) on one shared
//! worker pool — which is why a request's result bits cannot depend on
//! its wave-mates — while the wave's *schedule* merges every member's
//! executor tasks into shared per-bin launches ([`BinPacker`]): the
//! cross-request batching that fills bins single requests leave ragged.

use crate::queue::{AdmissionPolicy, AdmissionQueue, Queued};
use crate::request::{AlignRequest, DegradeRecord, Outcome, Priority, RequestRecord, ShedReason};
use fastz_core::{
    prefilter_anchors, run_fastz_in_pool, BinPacker, FastZConfig, FastZReport, HostPool,
    MergedLaunch, PrefilterConfig, ResilienceConfig, ResilienceReport,
};
use fastz_genome::Sequence;
use fastz_gpu_sim::fault::{scope, FaultKind, FaultPlan, FaultSite};
use fastz_gpu_sim::stream::time_stream_pipeline;
use fastz_gpu_sim::BlockResources;
use fastz_obs::{names, MetricsSink, NoObs};
use std::collections::BTreeMap;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pipeline configuration every request runs under (degraded
    /// requests override `strip_width` to 1).
    pub pipeline: FastZConfig,
    /// Base resilience policy (watchdog, retry budgets). The service
    /// replaces `plan` per request with [`FaultPlan::for_request`]
    /// derived from `chaos`.
    pub resilience: ResilienceConfig,
    /// Chaos-mode master plan; [`FaultPlan::none`] for a quiet service.
    pub chaos: FaultPlan,
    /// Admission limits.
    pub admission: AdmissionPolicy,
    /// Queue pressure at which [`Priority::Low`] degrades to the scalar
    /// engine.
    pub degrade_pressure: f64,
    /// Queue pressure at which [`Priority::Low`] sheds and
    /// [`Priority::Normal`] degrades.
    pub shed_pressure: f64,
    /// Modeled seconds of expected service time per work unit (anchor);
    /// derived deadlines are `watchdog.deadline_s(units × this)`.
    pub expected_unit_s: f64,
    /// Maximum requests dispatched per wave (cross-request batching
    /// width).
    pub wave: usize,
    /// Merged-launch batch size (tasks per shared bin kernel).
    pub batch: usize,
    /// CUDA streams for timing merged launches.
    pub streams: usize,
    /// Bitvector cheap-reject pre-filter rung: when set, every
    /// dispatched request's anchors are probed host-side before the
    /// full y-drop pipeline and anchors that provably cannot clear
    /// `gapped_threshold` are dropped. Sound by construction
    /// ([`prefilter_anchors`]), so the served alignments are
    /// bit-identical with the rung on or off; the reject counts are
    /// recorded per request ([`RequestRecord::prefiltered`]) and in
    /// the service metrics, like degradation is.
    pub prefilter: Option<PrefilterConfig>,
}

impl ServeConfig {
    /// Defaults over a pipeline configuration.
    pub fn new(pipeline: FastZConfig) -> ServeConfig {
        ServeConfig {
            pipeline,
            resilience: ResilienceConfig::disabled(),
            chaos: FaultPlan::none(),
            admission: AdmissionPolicy::default(),
            degrade_pressure: 0.5,
            shed_pressure: 0.9,
            expected_unit_s: 2e-3,
            wave: 4,
            batch: 512,
            streams: 4,
            prefilter: None,
        }
    }

    /// This config with a chaos plan.
    pub fn with_chaos(mut self, chaos: FaultPlan) -> ServeConfig {
        self.chaos = chaos;
        self
    }

    /// This config with the bitvector pre-filter rung enabled.
    pub fn with_prefilter(mut self, prefilter: PrefilterConfig) -> ServeConfig {
        self.prefilter = Some(prefilter);
        self
    }

    /// Absolute deadline for `req` on the virtual clock: the explicit
    /// relative deadline when given, else the watchdog deadline over the
    /// request's expected service time — the same machinery that prices
    /// hung-kernel detection.
    pub fn deadline_abs_s(&self, req: &AlignRequest) -> f64 {
        let rel = req.deadline_s.unwrap_or_else(|| {
            self.resilience
                .watchdog
                .deadline_s(req.work_units() * self.expected_unit_s)
        });
        req.arrival_s + rel
    }
}

/// How a wave member is dispatched, from the degradation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DispatchMode {
    Full,
    Scalar,
    Shed,
}

fn dispatch_mode(cfg: &ServeConfig, priority: Priority, pressure: f64) -> DispatchMode {
    match priority {
        Priority::High => DispatchMode::Full,
        Priority::Normal => {
            if pressure >= cfg.shed_pressure {
                DispatchMode::Scalar
            } else {
                DispatchMode::Full
            }
        }
        Priority::Low => {
            if pressure >= cfg.shed_pressure {
                DispatchMode::Shed
            } else if pressure >= cfg.degrade_pressure {
                DispatchMode::Scalar
            } else {
                DispatchMode::Full
            }
        }
    }
}

/// Everything a service run produced.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Terminal record for every submitted request, in submission order.
    pub records: Vec<RequestRecord>,
    /// Full pipeline reports of the requests that ran, by id.
    pub reports: BTreeMap<u64, FastZReport>,
    /// Aggregated fault accounting: per-request reports merged with the
    /// service-level chaos events (device losses during dispatch).
    pub resilience: ResilienceReport,
    /// Virtual makespan: the clock when the last outcome was recorded.
    pub makespan_s: f64,
    /// Modeled executor time had every request dispatched its own
    /// (ragged) bin launches.
    pub solo_exec_s: f64,
    /// Modeled executor time of the merged cross-request launches.
    pub batched_exec_s: f64,
    /// Fill ratio of every merged launch, in emission order.
    pub bin_fills: Vec<f64>,
    /// Merged launches formed.
    pub merged_launches: u64,
    /// Deepest the admission queue got.
    pub peak_depth: usize,
    /// Anchors probed by the pre-filter rung (0 when the rung is off).
    pub prefilter_probed: u64,
    /// Anchors the pre-filter rung rejected.
    pub prefilter_rejected: u64,
}

impl ServeReport {
    /// `(id, outcome class)` per request — the classification the
    /// chaos-soak test compares across `sim_threads`.
    pub fn outcome_classes(&self) -> Vec<(u64, &'static str)> {
        self.records
            .iter()
            .map(|r| (r.id, r.outcome.class()))
            .collect()
    }

    /// Count of records in a given class.
    pub fn count(&self, class: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.class() == class)
            .count()
    }

    /// Folds another report in (the streaming front end aggregates its
    /// drained batches with this).
    pub fn merge(&mut self, other: ServeReport) {
        self.records.extend(other.records);
        self.reports.extend(other.reports);
        self.resilience.merge(&other.resilience);
        self.makespan_s = self.makespan_s.max(other.makespan_s);
        self.solo_exec_s += other.solo_exec_s;
        self.batched_exec_s += other.batched_exec_s;
        self.bin_fills.extend(other.bin_fills);
        self.merged_launches += other.merged_launches;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.prefilter_probed += other.prefilter_probed;
        self.prefilter_rejected += other.prefilter_rejected;
    }
}

/// The alignment service over one registered (target, query) pair.
pub struct AlignService<'g> {
    target: &'g Sequence,
    query: &'g Sequence,
    cfg: ServeConfig,
}

impl<'g> AlignService<'g> {
    /// A service aligning against the given pair.
    pub fn new(target: &'g Sequence, query: &'g Sequence, cfg: ServeConfig) -> AlignService<'g> {
        AlignService { target, query, cfg }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Serves `requests` (unobserved).
    pub fn run(&self, requests: &[AlignRequest]) -> ServeReport {
        self.run_observed(requests, &mut NoObs)
    }

    /// Serves `requests`, emitting service metrics into `sink`. Request
    /// ids must be unique — they key fault schedules and result demux.
    pub fn run_observed<S: MetricsSink>(
        &self,
        requests: &[AlignRequest],
        sink: &mut S,
    ) -> ServeReport {
        let cfg = &self.cfg;
        let threads = if cfg.pipeline.sim_threads > 0 {
            cfg.pipeline.sim_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        };
        let mut report = std::thread::scope(|scope| {
            let pool = HostPool::new(
                scope,
                threads,
                &cfg.pipeline.device,
                cfg.pipeline.host_dispatch,
                cfg.pipeline.sanitize,
            );
            self.event_loop(requests, &pool)
        });
        self.emit(&report, sink);
        report.records.sort_by_key(|r| {
            requests
                .iter()
                .position(|q| q.id == r.id)
                .unwrap_or(usize::MAX)
        });
        report
    }

    /// The deterministic event loop (see the module docs for the model).
    fn event_loop(&self, requests: &[AlignRequest], pool: &HostPool<'_>) -> ServeReport {
        let cfg = &self.cfg;
        // Arrival order: virtual time, submission order within a tie.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by(|&a, &b| {
            requests[a]
                .arrival_s
                .total_cmp(&requests[b].arrival_s)
                .then(a.cmp(&b))
        });

        let mut out = ServeReport::default();
        let mut queue = AdmissionQueue::new(cfg.admission);
        let mut now_s = 0.0f64;
        let mut next = 0usize;

        while next < order.len() || !queue.is_empty() {
            // Admit everything that has arrived by `now_s`.
            while next < order.len() && requests[order[next]].arrival_s <= now_s {
                let req = requests[order[next]].clone();
                next += 1;
                let deadline = cfg.deadline_abs_s(&req);
                let (id, priority) = (req.id, req.priority);
                if let Err(reason) = queue.try_admit(req, deadline) {
                    out.records.push(RequestRecord {
                        id,
                        priority,
                        outcome: Outcome::ShedError(reason),
                        alignments: Vec::new(),
                        modeled_time_s: 0.0,
                        prefiltered: 0,
                        decided_s: now_s,
                    });
                }
            }
            if queue.is_empty() {
                if next < order.len() {
                    now_s = now_s.max(requests[order[next]].arrival_s);
                    continue;
                }
                break;
            }

            // Drain queue entries whose deadline already passed.
            for id in queue.expired(now_s) {
                let q = queue.remove(id).expect("expired id is queued");
                out.records.push(RequestRecord {
                    id,
                    priority: q.request.priority,
                    outcome: Outcome::DeadlineError {
                        deadline_s: q.deadline_abs_s,
                        finished_s: None,
                    },
                    alignments: Vec::new(),
                    modeled_time_s: 0.0,
                    prefiltered: 0,
                    decided_s: now_s,
                });
            }
            if queue.is_empty() {
                continue;
            }

            // Form a wave. Pressure is sampled once, before popping, so
            // every member of the wave sees the same overload state.
            let pressure = queue.pressure();
            let mut wave: Vec<Queued> = Vec::new();
            while wave.len() < cfg.wave.max(1) {
                match queue.pop() {
                    Some(q) => wave.push(q),
                    None => break,
                }
            }

            // Dispatch each member through the degradation ladder and
            // the unchanged per-request pipeline.
            let mut ran: Vec<(Queued, bool, usize, FastZReport)> = Vec::new();
            let mut wave_service_s = 0.0f64;
            let mut packer = BinPacker::new(cfg.batch);
            for q in wave {
                let mode = dispatch_mode(cfg, q.request.priority, pressure);
                if mode == DispatchMode::Shed {
                    out.records.push(RequestRecord {
                        id: q.request.id,
                        priority: q.request.priority,
                        outcome: Outcome::ShedError(ShedReason::Overload),
                        alignments: Vec::new(),
                        modeled_time_s: 0.0,
                        prefiltered: 0,
                        decided_s: now_s,
                    });
                    continue;
                }
                let mut pipe_cfg = cfg.pipeline.clone();
                if mode == DispatchMode::Scalar {
                    pipe_cfg.strip_width = 1;
                }
                let rcfg = ResilienceConfig {
                    plan: cfg.chaos.for_request(q.request.id),
                    checkpoint: None,
                    ..cfg.resilience.clone()
                };
                // Pre-filter rung: probe the anchors host-side and drop
                // the provably-hopeless ones before the full pipeline.
                let (anchors, prefiltered) = match &cfg.prefilter {
                    Some(pf) => {
                        let (kept, rejected) = prefilter_anchors(
                            self.target,
                            self.query,
                            &q.request.anchors,
                            q.request.seed_span,
                            &pipe_cfg.scoring,
                            pipe_cfg.max_extension,
                            pf,
                        );
                        out.prefilter_probed += q.request.anchors.len() as u64;
                        out.prefilter_rejected += rejected as u64;
                        (kept, rejected)
                    }
                    None => (q.request.anchors.clone(), 0),
                };
                let rep = run_fastz_in_pool(
                    self.target,
                    self.query,
                    &anchors,
                    q.request.seed_span,
                    &pipe_cfg,
                    &rcfg,
                    &mut NoObs,
                    pool,
                );
                wave_service_s += rep.modeled_time_s;

                // Service-level chaos: the device serving this request's
                // dispatch is lost. Detected, and the request re-runs
                // wholesale on a replacement — charged as a second
                // service time, accounted as detected device loss.
                let site = FaultSite::new(0, scope::SERVICE, q.request.id);
                if cfg.chaos.fires(FaultKind::DeviceLoss, site, 0) {
                    out.resilience.injected.device_losses += 1;
                    out.resilience.detected.device_losses += 1;
                    out.resilience.devices_lost += 1;
                    out.resilience.redispatched_anchors += q.request.anchors.len();
                    out.resilience.overhead_s += rep.modeled_time_s;
                    wave_service_s += rep.modeled_time_s;
                }

                packer.push_report(q.request.id, &rep.executor_kernels, &rep.executor_bin_slots);
                ran.push((q, mode == DispatchMode::Scalar, prefiltered, rep));
            }

            // Merge the wave's executor tasks into shared bin launches
            // and re-time the executor portion of the wave schedule.
            let launches: Vec<MergedLaunch> = packer.launches(BlockResources::fastz_executor());
            let merged_kernels: Vec<_> = launches.iter().map(|l| l.kernel.clone()).collect();
            let batched_s =
                time_stream_pipeline(&cfg.pipeline.device, &merged_kernels, cfg.streams).time_s;
            let wave_solo_s: f64 = ran
                .iter()
                .map(|(_, _, _, rep)| {
                    time_stream_pipeline(&cfg.pipeline.device, &rep.executor_kernels, cfg.streams)
                        .time_s
                })
                .sum();
            out.solo_exec_s += wave_solo_s;
            out.batched_exec_s += batched_s;
            out.merged_launches += launches.len() as u64;
            out.bin_fills.extend(launches.iter().map(|l| l.fill));
            // The wave occupies the device for its members' modeled time
            // with the ragged per-request executor schedule replaced by
            // the merged one (never negative: merging cannot make the
            // executor slower than the batched schedule itself).
            wave_service_s = (wave_service_s - wave_solo_s + batched_s).max(batched_s);
            now_s += wave_service_s;

            // Classify the wave's members at the wave's completion time.
            for (q, scalar, prefiltered, rep) in ran {
                let degrade = DegradeRecord {
                    scalar,
                    fallbacks: rep.resilience.fallbacks,
                    skipped_seeds: rep.resilience.skipped_seeds.len(),
                };
                let outcome = if now_s > q.deadline_abs_s {
                    Outcome::DeadlineError {
                        deadline_s: q.deadline_abs_s,
                        finished_s: Some(now_s),
                    }
                } else if degrade != DegradeRecord::default() {
                    Outcome::Degraded(degrade)
                } else {
                    Outcome::Completed
                };
                out.records.push(RequestRecord {
                    id: q.request.id,
                    priority: q.request.priority,
                    outcome,
                    alignments: rep.alignments.clone(),
                    modeled_time_s: rep.modeled_time_s,
                    prefiltered,
                    decided_s: now_s,
                });
                out.resilience.merge(&rep.resilience);
                out.reports.insert(q.request.id, rep);
            }
        }

        out.makespan_s = now_s;
        out.peak_depth = queue.peak_depth();
        out
    }

    /// Emits the service metric set. Zero-emission discipline: every
    /// series is emitted on every run — zeros when a class never fired —
    /// so the exported set never depends on traffic shape.
    fn emit<S: MetricsSink>(&self, report: &ServeReport, sink: &mut S) {
        if !S::ENABLED {
            return;
        }
        sink.gauge_set(names::SERVE_QUEUE_DEPTH, 0.0);
        sink.gauge_set(names::SERVE_QUEUE_DEPTH_PEAK, report.peak_depth as f64);
        for p in Priority::ALL {
            let of = |f: &dyn Fn(&RequestRecord) -> bool| {
                report
                    .records
                    .iter()
                    .filter(|r| r.priority == p && f(r))
                    .count() as u64
            };
            let admitted = of(&|r| !matches!(r.outcome, Outcome::ShedError(_)));
            sink.counter_add(
                &names::priority(names::SERVE_ADMITTED_TOTAL, p.name()),
                admitted,
            );
            sink.counter_add(
                &names::priority(names::SERVE_COMPLETED_TOTAL, p.name()),
                of(&|r| matches!(r.outcome, Outcome::Completed)),
            );
            sink.counter_add(
                &names::priority(names::SERVE_DEGRADED_TOTAL, p.name()),
                of(&|r| matches!(r.outcome, Outcome::Degraded(_))),
            );
            sink.counter_add(
                &names::priority(names::SERVE_DEADLINE_MISSED_TOTAL, p.name()),
                of(&|r| matches!(r.outcome, Outcome::DeadlineError { .. })),
            );
            for reason in ShedReason::NAMES {
                sink.counter_add(
                    &names::shed(p.name(), reason),
                    of(&|r| match &r.outcome {
                        Outcome::ShedError(s) => s.name() == reason,
                        _ => false,
                    }),
                );
            }
        }
        sink.counter_add(names::SERVE_MERGED_LAUNCHES_TOTAL, report.merged_launches);
        sink.counter_add(names::SERVE_PREFILTER_PROBED_TOTAL, report.prefilter_probed);
        sink.counter_add(
            names::SERVE_PREFILTER_REJECTED_TOTAL,
            report.prefilter_rejected,
        );
        for &fill in &report.bin_fills {
            sink.observe(
                names::SERVE_BIN_FILL_HIST,
                &names::SERVE_BIN_FILL_BUCKETS,
                fill,
            );
        }
        // Index-cache series ride the same zero-emission discipline: the
        // service emits each as zero every run so the exported set never
        // depends on whether an IndexCache front end is in play; when one
        // is, `IndexCache::record_metrics` overlays the real values
        // (counters are additive, gauges recorded after so last-wins).
        sink.counter_add(names::INDEX_CACHE_HITS_TOTAL, 0);
        sink.counter_add(names::INDEX_CACHE_DISK_LOADS_TOTAL, 0);
        sink.counter_add(names::INDEX_CACHE_BUILDS_TOTAL, 0);
        sink.counter_add(names::INDEX_SHARDS_REUSED_TOTAL, 0);
        sink.counter_add(names::INDEX_SHARDS_MOVED_TOTAL, 0);
        sink.gauge_set(names::INDEX_RESIDENT_SHARDS, 0.0);
        sink.gauge_set(names::INDEX_REBALANCE_MAKESPAN_SECONDS, 0.0);
    }
}
