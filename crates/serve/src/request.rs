//! Request, priority, and outcome types for the alignment service.

use fastz_align::Alignment;
use fastz_seed::Anchor;

/// Request priority: how the service treats the request under overload.
///
/// Priority maps onto the pipeline's warp→scalar→skip resilience ladder:
/// as queue pressure rises, [`Priority::Low`] work degrades to the
/// scalar (strip-width-1) engine first and is the first to be shed
/// outright; [`Priority::Normal`] degrades only near saturation;
/// [`Priority::High`] is never degraded by pressure (faults can still
/// degrade individual problems, which the outcome records).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Never degraded by pressure; last to feel overload.
    High,
    /// Degrades to the scalar engine near queue saturation.
    Normal,
    /// First to degrade, first to shed.
    Low,
}

impl Priority {
    /// All priorities, in dispatch order (highest first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Stable display / metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Dispatch rank: lower runs first.
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One alignment request: a batch of seed anchors to extend over the
/// service's registered (target, query) pair.
#[derive(Clone, Debug)]
pub struct AlignRequest {
    /// Caller-assigned id, unique per service run. The id keys the
    /// request's fault schedule ([`fastz_gpu_sim::FaultPlan::for_request`])
    /// and its result demux, so a request keeps the same id — and
    /// therefore bit-identical results — whether it is served solo or
    /// co-batched.
    pub id: u64,
    /// Seed anchors to extend.
    pub anchors: Vec<Anchor>,
    /// Seed span (matches the pipeline argument).
    pub seed_span: usize,
    /// Overload treatment class.
    pub priority: Priority,
    /// Virtual submission time in modeled seconds. The service clock is
    /// the modeled-GPU-time axis, never wall clock, so outcome
    /// classification is deterministic across host thread counts.
    pub arrival_s: f64,
    /// Relative deadline in modeled seconds; `None` derives one from the
    /// watchdog policy and the request's estimated work.
    pub deadline_s: Option<f64>,
}

impl AlignRequest {
    /// A [`Priority::Normal`] request with a derived deadline.
    pub fn new(id: u64, anchors: Vec<Anchor>, seed_span: usize) -> AlignRequest {
        AlignRequest {
            id,
            anchors,
            seed_span,
            priority: Priority::Normal,
            arrival_s: 0.0,
            deadline_s: None,
        }
    }

    /// This request with a different priority.
    pub fn with_priority(mut self, priority: Priority) -> AlignRequest {
        self.priority = priority;
        self
    }

    /// This request arriving at `arrival_s` on the virtual clock.
    pub fn at(mut self, arrival_s: f64) -> AlignRequest {
        self.arrival_s = arrival_s;
        self
    }

    /// Modeled work units for admission control (anchor count: two
    /// extension problems per anchor, cost proportional).
    pub fn work_units(&self) -> f64 {
        self.anchors.len() as f64
    }
}

/// Why a request was shed instead of served.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull {
        /// Queue depth at rejection.
        depth: usize,
        /// Configured capacity.
        cap: usize,
    },
    /// Admitting the request would exceed the in-flight modeled-work
    /// budget.
    WorkBudget {
        /// Work units already queued.
        queued: f64,
        /// The request's work units.
        incoming: f64,
        /// Configured budget.
        budget: f64,
    },
    /// Dropped at dispatch time: low-priority work under saturation
    /// pressure (the shed rung of the degradation ladder).
    Overload,
}

impl ShedReason {
    /// Stable metric-label name.
    pub fn name(&self) -> &'static str {
        match self {
            ShedReason::QueueFull { .. } => "queue-full",
            ShedReason::WorkBudget { .. } => "budget",
            ShedReason::Overload => "overload",
        }
    }

    /// All label names (zero-emission discipline enumerates them).
    pub const NAMES: [&'static str; 3] = ["queue-full", "budget", "overload"];
}

/// What the degraded path did to a request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DegradeRecord {
    /// The whole request ran on the scalar (strip-width-1) engine.
    pub scalar: bool,
    /// Problems the fault ladder degraded warp→scalar.
    pub fallbacks: u64,
    /// Seeds the skip-with-record rung dropped.
    pub skipped_seeds: usize,
}

/// Terminal state of a request. Every submitted request ends in exactly
/// one of these — the chaos-soak invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Served at full fidelity.
    Completed,
    /// Served, but degraded (scalar engine, fault fallbacks, or skipped
    /// seeds) — results are still exact for everything not skipped.
    Degraded(DegradeRecord),
    /// Admitted but missed its deadline: expired in the queue
    /// (`finished_s == None`) or finished too late.
    DeadlineError {
        /// Absolute deadline on the virtual clock.
        deadline_s: f64,
        /// Completion time, when the request did run.
        finished_s: Option<f64>,
    },
    /// Rejected: never ran, with the reason.
    ShedError(ShedReason),
}

impl Outcome {
    /// Stable classification label (the chaos-soak test compares these
    /// across `sim_threads` and dispatch modes).
    pub fn class(&self) -> &'static str {
        match self {
            Outcome::Completed => "completed",
            Outcome::Degraded(_) => "degraded",
            Outcome::DeadlineError { .. } => "deadline-error",
            Outcome::ShedError(_) => "shed-error",
        }
    }

    /// True for the two served states.
    pub fn served(&self) -> bool {
        matches!(self, Outcome::Completed | Outcome::Degraded(_))
    }
}

/// The per-request record the service hands back.
#[derive(Clone, Debug)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Request priority.
    pub priority: Priority,
    /// Terminal state.
    pub outcome: Outcome,
    /// Alignments (empty unless the request was served; a late finish
    /// still reports what it computed, flagged by the outcome).
    pub alignments: Vec<Alignment>,
    /// The request's own modeled GPU time — bit-identical to a solo run
    /// of the same request (0 when it never ran).
    pub modeled_time_s: f64,
    /// Anchors the bitvector pre-filter rung rejected before dispatch
    /// (0 when the rung is off or the request never ran). Rejections
    /// are provably below `gapped_threshold`, so they never change the
    /// request's alignments — recorded like degradation is.
    pub prefiltered: usize,
    /// Virtual time the terminal state was recorded.
    pub decided_s: f64,
}
