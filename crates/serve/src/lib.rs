//! # fastz-serve
//!
//! Alignment-as-a-service over the FastZ pipeline: a long-running front
//! end that takes concurrent anchor-batch requests against a registered
//! genome pair and survives hostile load.
//!
//! The pieces:
//!
//! * **Admission control** ([`AdmissionQueue`]): a bounded queue (depth
//!   cap + modeled-work budget); rejected requests get a structured
//!   [`ShedReason`], never silence.
//! * **Deadlines**: per-request, derived from the watchdog policy (the
//!   same machinery that detects hung kernels) or set explicitly;
//!   enforced on the *virtual* modeled-time clock.
//! * **Graceful degradation**: request [`Priority`] maps onto the
//!   pipeline's warp→scalar→skip resilience ladder — under queue
//!   pressure, low-priority requests run on the scalar engine (exact
//!   results, slower model) and then shed; high priority is insulated.
//! * **Cross-request batched binning** ([`AlignService`]): executor
//!   tasks from a dispatch wave of concurrent requests merge into
//!   shared 512/2048/8192/32768-bin launches with per-request demux
//!   (`fastz_core::BinPacker`), filling bins single requests leave
//!   ragged. The merge is schedule-level only: every request's
//!   alignments and modeled-GPU-time bits come from the unchanged
//!   per-request pipeline and are identical solo or co-batched.
//! * **Chaos mode**: a seeded [`fastz_gpu_sim::FaultPlan`] reseeded per
//!   request hangs kernels, flips bits, and loses devices while the
//!   queue is saturated. Invariant: every admitted request terminates
//!   in exactly one of {completed, degraded-with-record,
//!   deadline-error, shed-error} and `injected == detected + tolerated`
//!   holds end to end.
//! * **Streaming delivery** ([`stream::spawn`]): a threaded front end
//!   with bounded channels on both hops — backpressure from consumer to
//!   submitter.

#![warn(missing_docs)]

pub mod index_cache;
pub mod queue;
pub mod request;
pub mod service;
pub mod stream;

pub use index_cache::{AcquireOrigin, Acquired, IndexCache, IndexCacheConfig, IndexCacheStats};
pub use queue::{AdmissionPolicy, AdmissionQueue, Queued};
pub use request::{AlignRequest, DegradeRecord, Outcome, Priority, RequestRecord, ShedReason};
pub use service::{AlignService, ServeConfig, ServeReport};
pub use stream::{spawn, Delivery, ServiceHandle};
