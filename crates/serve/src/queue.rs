//! Bounded admission queue with a modeled-work budget.
//!
//! Admission control is two-dimensional: a *depth* cap bounds latency
//! (a request that would wait behind `queue_cap` others is better told
//! "no" immediately) and a *work* budget bounds memory and modeled GPU
//! time in flight (a thousand one-anchor requests and one thousand-
//! anchor request are not the same load). Both rejections carry the
//! numbers that triggered them.

use crate::request::{AlignRequest, ShedReason};

/// Admission-control limits.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionPolicy {
    /// Maximum queued (admitted, not yet dispatched) requests.
    pub queue_cap: usize,
    /// Maximum summed [`AlignRequest::work_units`] across the queue.
    pub work_budget: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            queue_cap: 32,
            work_budget: 4096.0,
        }
    }
}

/// One queued entry: the request plus its admission-time bookkeeping.
#[derive(Clone, Debug)]
pub struct Queued {
    /// The admitted request.
    pub request: AlignRequest,
    /// Absolute deadline on the virtual clock.
    pub deadline_abs_s: f64,
    /// FIFO sequence number (tie-break within a priority).
    pub seq: u64,
}

/// The bounded admission queue. Dispatch order is priority-major
/// (High before Normal before Low), FIFO within a priority — a pure
/// function of the admission sequence, so scheduling decisions are
/// deterministic.
#[derive(Clone, Debug, Default)]
pub struct AdmissionQueue {
    policy: AdmissionPolicy,
    items: Vec<Queued>,
    queued_work: f64,
    next_seq: u64,
    peak_depth: usize,
}

impl AdmissionQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> AdmissionQueue {
        AdmissionQueue {
            policy,
            ..AdmissionQueue::default()
        }
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Deepest the queue has been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Summed work units currently queued.
    pub fn queued_work(&self) -> f64 {
        self.queued_work
    }

    /// Saturation pressure in `[0, 1]`: depth over capacity. The
    /// degradation ladder keys on this.
    pub fn pressure(&self) -> f64 {
        self.items.len() as f64 / self.policy.queue_cap.max(1) as f64
    }

    /// Admits `request` (with its precomputed absolute deadline) or
    /// rejects it with the reason.
    pub fn try_admit(
        &mut self,
        request: AlignRequest,
        deadline_abs_s: f64,
    ) -> Result<(), ShedReason> {
        if self.items.len() >= self.policy.queue_cap {
            return Err(ShedReason::QueueFull {
                depth: self.items.len(),
                cap: self.policy.queue_cap,
            });
        }
        let incoming = request.work_units();
        if self.queued_work + incoming > self.policy.work_budget {
            return Err(ShedReason::WorkBudget {
                queued: self.queued_work,
                incoming,
                budget: self.policy.work_budget,
            });
        }
        self.queued_work += incoming;
        self.items.push(Queued {
            request,
            deadline_abs_s,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        self.peak_depth = self.peak_depth.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the next request to dispatch: highest
    /// priority, FIFO within it. `None` when empty.
    pub fn pop(&mut self) -> Option<Queued> {
        let best = self
            .items
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.request.priority.rank(), q.seq))?
            .0;
        let q = self.items.remove(best);
        self.queued_work -= q.request.work_units();
        Some(q)
    }

    /// Queued ids whose deadline has already passed at `now_s`; they
    /// should be drained as deadline errors without running.
    pub fn expired(&self, now_s: f64) -> Vec<u64> {
        self.items
            .iter()
            .filter(|q| now_s >= q.deadline_abs_s)
            .map(|q| q.request.id)
            .collect()
    }

    /// Removes one queued request by id (deadline-expiry drain).
    pub fn remove(&mut self, id: u64) -> Option<Queued> {
        let at = self.items.iter().position(|q| q.request.id == id)?;
        let q = self.items.remove(at);
        self.queued_work -= q.request.work_units();
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64, anchors: usize, priority: Priority) -> AlignRequest {
        AlignRequest::new(
            id,
            vec![
                fastz_seed::Anchor {
                    target_pos: 0,
                    query_pos: 0,
                };
                anchors
            ],
            19,
        )
        .with_priority(priority)
    }

    #[test]
    fn depth_cap_and_work_budget_reject_with_reason() {
        let mut q = AdmissionQueue::new(AdmissionPolicy {
            queue_cap: 2,
            work_budget: 10.0,
        });
        q.try_admit(req(0, 4, Priority::Normal), 1.0).unwrap();
        q.try_admit(req(1, 4, Priority::Normal), 1.0).unwrap();
        match q.try_admit(req(2, 1, Priority::High), 1.0) {
            Err(ShedReason::QueueFull { depth: 2, cap: 2 }) => {}
            other => panic!("expected queue-full, got {other:?}"),
        }
        q.pop().unwrap();
        match q.try_admit(req(3, 8, Priority::High), 1.0) {
            Err(ShedReason::WorkBudget { .. }) => {}
            other => panic!("expected budget rejection, got {other:?}"),
        }
        assert_eq!(q.depth(), 1);
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn dispatch_is_priority_major_fifo_within() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::default());
        for (id, p) in [
            (0, Priority::Low),
            (1, Priority::Normal),
            (2, Priority::High),
            (3, Priority::Normal),
            (4, Priority::High),
        ] {
            q.try_admit(req(id, 1, p), 1.0).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.request.id)).collect();
        assert_eq!(order, [2, 4, 1, 3, 0]);
        assert_eq!(q.queued_work(), 0.0);
    }

    #[test]
    fn expired_entries_are_drainable() {
        let mut q = AdmissionQueue::new(AdmissionPolicy::default());
        q.try_admit(req(0, 1, Priority::Normal), 0.5).unwrap();
        q.try_admit(req(1, 1, Priority::Normal), 2.0).unwrap();
        assert_eq!(q.expired(1.0), [0]);
        assert!(q.remove(0).is_some());
        assert!(q.remove(0).is_none());
        assert!(q.expired(1.0).is_empty());
    }
}
