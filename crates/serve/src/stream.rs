//! Threaded streaming front end over the deterministic service core.
//!
//! [`ServiceHandle::submit`] hands a request to the service thread and
//! returns a bounded per-request channel on which results stream back:
//! alignment chunks first, then the terminal [`RequestRecord`]. Both
//! channel hops are bounded (`sync_channel`), so backpressure is
//! end-to-end — a slow consumer stalls its own result stream, a full
//! submission queue stalls submitters, and neither can balloon memory.
//!
//! The service thread drains whatever submissions are waiting and runs
//! them as one batch through [`AlignService::run`] — the same
//! deterministic core the chaos-soak test drives — so admission
//! control, deadlines, priority degradation, and cross-request batched
//! binning all apply to live traffic exactly as they do offline. Wall
//! clock still never enters outcome decisions; the virtual arrival time
//! of a drained batch is the order it was submitted in.

use crate::request::{AlignRequest, RequestRecord};
use crate::service::{AlignService, ServeConfig, ServeReport};
use fastz_align::Alignment;
use fastz_genome::Sequence;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// One message on a request's result stream.
#[derive(Clone, Debug)]
pub enum Delivery {
    /// A chunk of the request's alignments (streamed in order).
    Alignments(Vec<Alignment>),
    /// The terminal record; always the last message.
    Done(RequestRecord),
}

struct Job {
    request: AlignRequest,
    results: SyncSender<Delivery>,
}

/// Client handle to a running service thread.
pub struct ServiceHandle {
    jobs: SyncSender<Job>,
    join: JoinHandle<ServeReport>,
    next_id: std::sync::atomic::AtomicU64,
    chunk: usize,
}

/// Spawns the service thread over an owned (target, query) pair.
///
/// `chunk` is the alignment-streaming granularity; the submission queue
/// is bounded by the admission policy's queue capacity.
pub fn spawn(target: Sequence, query: Sequence, cfg: ServeConfig, chunk: usize) -> ServiceHandle {
    let cap = cfg.admission.queue_cap.max(1);
    let chunk = chunk.max(1);
    let (jobs_tx, jobs_rx) = sync_channel::<Job>(cap);
    let join = std::thread::spawn(move || {
        let service = AlignService::new(&target, &query, cfg);
        let mut total = ServeReport::default();
        // Block for the first job of each batch, then drain whatever
        // else queued up behind it: concurrent traffic is served
        // co-batched, a lone request is served solo — with identical
        // per-request bits either way.
        while let Ok(first) = jobs_rx.recv() {
            let mut jobs = vec![first];
            while let Ok(job) = jobs_rx.try_recv() {
                jobs.push(job);
            }
            let requests: Vec<AlignRequest> = jobs.iter().map(|j| j.request.clone()).collect();
            let report = service.run(&requests);
            for job in &jobs {
                let record = report
                    .records
                    .iter()
                    .find(|r| r.id == job.request.id)
                    .expect("every submitted request has exactly one record")
                    .clone();
                for piece in record.alignments.chunks(chunk) {
                    // A receiver that hung up forfeits its stream; the
                    // service keeps going.
                    if job
                        .results
                        .send(Delivery::Alignments(piece.to_vec()))
                        .is_err()
                    {
                        break;
                    }
                }
                let _ = job.results.send(Delivery::Done(record));
            }
            total.merge(report);
        }
        total
    });
    ServiceHandle {
        jobs: jobs_tx,
        join,
        next_id: std::sync::atomic::AtomicU64::new(0),
        chunk,
    }
}

impl ServiceHandle {
    /// Streaming granularity (alignments per chunk).
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Submits a request, assigning it the next service-unique id, and
    /// returns its bounded result stream. Blocks when the submission
    /// queue is full (backpressure).
    pub fn submit(&self, mut request: AlignRequest) -> Receiver<Delivery> {
        request.id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (tx, rx) = sync_channel(2);
        self.jobs
            .send(Job {
                request,
                results: tx,
            })
            .expect("service thread alive while handle exists");
        rx
    }

    /// Closes the submission queue, waits for in-flight work, and
    /// returns the aggregated report.
    pub fn finish(self) -> ServeReport {
        drop(self.jobs);
        self.join.join().expect("service thread panicked")
    }
}
