//! Chaos-soak: ≥4× sustained overload with an active fault plan.
//!
//! Invariants under test:
//! * no request is lost — every submitted request terminates in exactly
//!   one of {completed, degraded-with-record, deadline-error, shed-error};
//! * the fault-accounting identity `injected == detected + tolerated`
//!   holds end to end (per-request pipelines plus service-level chaos);
//! * the whole outcome record — classes, alignments, and modeled-time
//!   bits — is identical across `sim_threads` and host dispatch modes;
//! * a request's alignments and modeled-GPU-time bits are identical
//!   whether it was served solo or co-batched with other requests.

use fastz_core::{FastZConfig, HostDispatch, OptFlags};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_seed::{Anchor, Workload, WorkloadParams};
use fastz_serve::{
    AdmissionPolicy, AlignRequest, AlignService, Delivery, Outcome, Priority, ServeConfig,
    ServeReport,
};

fn corpus() -> (Sequence, Sequence, Vec<Anchor>, usize) {
    let pair = generate_pair(&PairParams {
        target_len: 12_000,
        query_len: 12_000,
        segments: 24,
        ..PairParams::small_demo("serve", 11)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 160,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    (pair.target, pair.query, wl.anchors, span)
}

fn pipeline_cfg(sim_threads: usize, dispatch: HostDispatch) -> FastZConfig {
    let mut cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = sim_threads;
    cfg.host_dispatch = dispatch;
    cfg
}

/// Splits the corpus anchors into about `n` requests with cycling
/// priorities (the corpus may not fill all `n`; callers use the
/// returned length).
fn requests(anchors: &[Anchor], seed_span: usize, n: usize, spacing_s: f64) -> Vec<AlignRequest> {
    let per = anchors.len().div_ceil(n);
    anchors
        .chunks(per)
        .enumerate()
        .map(|(i, chunk)| {
            let priority = Priority::ALL[i % Priority::ALL.len()];
            AlignRequest::new(i as u64, chunk.to_vec(), seed_span)
                .with_priority(priority)
                .at(i as f64 * spacing_s)
        })
        .collect()
}

fn overload_cfg(sim_threads: usize, dispatch: HostDispatch, chaos: FaultPlan) -> ServeConfig {
    let mut cfg = ServeConfig::new(pipeline_cfg(sim_threads, dispatch)).with_chaos(chaos);
    cfg.admission = AdmissionPolicy {
        queue_cap: 5,
        work_budget: 1e9,
    };
    cfg.wave = 3;
    cfg
}

/// Measures one request's solo service time, to calibrate a ≥4×
/// overload arrival rate (deterministic: modeled time, not wall clock).
fn solo_service_s(target: &Sequence, query: &Sequence, reqs: &[AlignRequest]) -> f64 {
    let cfg = overload_cfg(1, HostDispatch::Stealing, FaultPlan::none());
    let service = AlignService::new(target, query, cfg);
    let probe = service.run(&reqs[..1]);
    assert!(probe.makespan_s > 0.0);
    probe.makespan_s
}

fn soak(sim_threads: usize, dispatch: HostDispatch) -> (ServeReport, usize) {
    let (target, query, anchors, span) = corpus();
    let reqs = requests(&anchors, span, 16, 0.0);
    // Sustained ≥4× overload: requests arrive 4× faster than one can be
    // served solo.
    let spacing = solo_service_s(&target, &query, &reqs) / 4.0;
    let reqs = requests(&anchors, span, 16, spacing);
    let n = reqs.len();
    let cfg = overload_cfg(sim_threads, dispatch, FaultPlan::from_seed(0xC4A05));
    (AlignService::new(&target, &query, cfg).run(&reqs), n)
}

#[test]
fn chaos_soak_no_request_lost_and_faults_account() {
    let (report, n) = soak(1, HostDispatch::Stealing);
    assert!(n >= 8, "corpus produced a real request stream");

    // Exactly one terminal record per submitted request.
    assert_eq!(report.records.len(), n, "no request lost");
    let mut ids: Vec<u64> = report.records.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "exactly one outcome per request");

    // Every record is in one of the four terminal classes, and served
    // requests actually carry results.
    for r in &report.records {
        match &r.outcome {
            Outcome::Completed | Outcome::Degraded(_) => {
                assert!(r.modeled_time_s > 0.0, "served request has modeled time");
            }
            Outcome::DeadlineError { finished_s, .. } => {
                assert!(finished_s.is_none_or(|f| f > 0.0));
            }
            Outcome::ShedError(_) => {
                assert!(r.alignments.is_empty(), "shed request returns no data");
            }
        }
    }

    // The overload was real: admission or the ladder shed something,
    // and something still got served.
    assert!(report.peak_depth > 0);
    assert!(report.count("shed-error") > 0, "4x overload must shed");
    assert!(
        report.count("completed") + report.count("degraded") > 0,
        "overload must not starve everything"
    );

    // Fault accounting holds across per-request pipelines plus the
    // service-level chaos events.
    assert!(report.resilience.accounts_for_all_faults());
    assert!(
        report.resilience.injected.total() > 0,
        "the chaos plan actually fired"
    );
}

#[test]
fn outcomes_bit_identical_across_sim_threads_and_dispatch() {
    let (base, _) = soak(1, HostDispatch::Stealing);
    for (report, _) in [
        soak(2, HostDispatch::Stealing),
        soak(3, HostDispatch::Static),
    ] {
        assert_eq!(report.outcome_classes(), base.outcome_classes());
        assert_eq!(report.records.len(), base.records.len());
        for (a, b) in report.records.iter().zip(&base.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.alignments, b.alignments, "request {} alignments", a.id);
            assert_eq!(
                a.modeled_time_s.to_bits(),
                b.modeled_time_s.to_bits(),
                "request {} modeled-time bits",
                a.id
            );
            assert_eq!(a.decided_s.to_bits(), b.decided_s.to_bits());
        }
        assert_eq!(report.resilience, base.resilience);
        assert_eq!(report.makespan_s.to_bits(), base.makespan_s.to_bits());
        assert_eq!(report.bin_fills, base.bin_fills);
    }
}

#[test]
fn solo_and_cobatched_requests_have_identical_bits() {
    let (target, query, anchors, span) = corpus();
    let reqs = requests(&anchors, span, 6, 0.0);
    // No overload (huge queue), chaos on: the per-request fault plan is
    // keyed by request id, so co-scheduling cannot change any bit.
    let mut cfg = overload_cfg(2, HostDispatch::Stealing, FaultPlan::from_seed(77));
    cfg.admission.queue_cap = 1024;
    let service = AlignService::new(&target, &query, cfg.clone());
    let batched = service.run(&reqs);
    assert!(batched.merged_launches > 0, "co-batching actually merged");

    for req in &reqs {
        let solo = service.run(std::slice::from_ref(req));
        let s = &solo.records[0];
        let b = batched
            .records
            .iter()
            .find(|r| r.id == req.id)
            .expect("request served");
        assert_eq!(s.alignments, b.alignments, "request {} alignments", req.id);
        assert_eq!(
            s.modeled_time_s.to_bits(),
            b.modeled_time_s.to_bits(),
            "request {} modeled-GPU-time bits",
            req.id
        );
        let sr = &solo.reports[&req.id];
        let br = &batched.reports[&req.id];
        assert_eq!(sr.bin_counts, br.bin_counts);
        assert_eq!(sr.stats.executor_problems, br.stats.executor_problems);
    }
}

#[test]
fn streaming_front_end_delivers_chunks_then_done() {
    let (target, query, anchors, span) = corpus();
    let reqs = requests(&anchors, span, 4, 0.0);
    let cfg = ServeConfig::new(pipeline_cfg(2, HostDispatch::Stealing));
    let handle = fastz_serve::spawn(target, query, cfg, 3);

    let streams: Vec<_> = reqs.iter().map(|r| handle.submit(r.clone())).collect();
    for (req, rx) in reqs.iter().zip(streams) {
        let mut streamed = Vec::new();
        let mut done = None;
        for delivery in rx {
            match delivery {
                Delivery::Alignments(chunk) => {
                    assert!(chunk.len() <= handle.chunk());
                    streamed.extend(chunk);
                }
                Delivery::Done(record) => done = Some(record),
            }
        }
        let record = done.expect("terminal record always delivered");
        assert!(record.outcome.served(), "quiet service serves everything");
        assert_eq!(
            streamed, record.alignments,
            "streamed chunks reassemble request {}'s alignments",
            req.id
        );
    }
    let total = handle.finish();
    assert_eq!(total.records.len(), 4);
    assert!(total.resilience.accounts_for_all_faults());
}
