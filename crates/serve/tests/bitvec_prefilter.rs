//! Pre-filter soundness: the bitvector cheap-reject rung never changes
//! what the service aligns.
//!
//! The corpus plants garbage anchors (coordinates far off the true
//! diagonal, so seed and flanks are effectively random-vs-random) among
//! a real homologous workload. With the rung on, those anchors are
//! rejected host-side before dispatch; with the rung off, the pipeline
//! extends them and drops the sub-threshold results itself. The
//! soundness contract under test: the served alignment set is
//! *identical* either way — across `sim_threads` and host dispatch
//! modes, under a seeded [`FaultPlan`] — and the reject counts surface
//! through `obs::names` with zero-emission discipline (the series
//! exists, at zero, even when the rung is off).
//!
//! One subtlety the assertions account for: fault sites are keyed by
//! *problem index*, so removing anchors shifts the fault schedule
//! between the rung-on and rung-off runs. The retry ladder absorbs any
//! such fault exactly (warp→scalar fallbacks are bit-identical); only
//! the skip-with-record rung could change results, so both runs assert
//! `skipped_seeds` stayed empty — making alignment-set identity exactly
//! the no-false-reject claim.

use fastz_core::{FastZConfig, HostDispatch, OptFlags, PrefilterConfig};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_obs::{names, Recorder};
use fastz_seed::{Anchor, Workload, WorkloadParams};
use fastz_serve::{AlignRequest, AlignService, Priority, ServeConfig};

/// Homologous workload plus planted garbage anchors. Every other
/// anchor points a real target window at an unrelated query region
/// (diagonal offset in the thousands): under `bench_scaled` scoring the
/// seed is strongly negative and both flank upper bounds hover near
/// zero, so the probe proves the anchor cannot clear
/// `gapped_threshold` — while the homologous anchors trip the
/// bitvector quick-accept tier and are always kept.
fn corpus() -> (Sequence, Sequence, Vec<Anchor>, usize, usize) {
    let pair = generate_pair(&PairParams {
        target_len: 12_000,
        query_len: 12_000,
        segments: 24,
        ..PairParams::small_demo("serve", 11)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 96,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    let mut anchors = Vec::new();
    let mut garbage = 0usize;
    for a in &wl.anchors {
        anchors.push(*a);
        // Same target window, query coordinate shifted far off the
        // homologous diagonal (kept in bounds with seed-span room).
        let q = (a.query_pos as usize + 4_096 + 97 * garbage) % (12_000 - 2 * span);
        anchors.push(Anchor {
            target_pos: a.target_pos,
            query_pos: q as u32,
        });
        garbage += 1;
    }
    (pair.target, pair.query, anchors, span, garbage)
}

fn pipeline_cfg(sim_threads: usize, dispatch: HostDispatch) -> FastZConfig {
    let mut cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = sim_threads;
    cfg.host_dispatch = dispatch;
    // The probe is conclusive only when its rectangle covers the whole
    // flank (`PrefilterConfig` docs): cap extensions at the default
    // probe size so hopeless anchors are provably hopeless.
    cfg.max_extension = 256;
    cfg
}

/// A quiet service (huge queue, no overload shedding) with the seeded
/// chaos plan: soundness must hold with faults firing, not just on the
/// happy path.
fn serve_cfg(sim_threads: usize, dispatch: HostDispatch, prefilter: bool) -> ServeConfig {
    let mut cfg = ServeConfig::new(pipeline_cfg(sim_threads, dispatch))
        .with_chaos(FaultPlan::from_seed(0xB17F));
    cfg.admission.queue_cap = 1024;
    cfg.wave = 3;
    if prefilter {
        cfg = cfg.with_prefilter(PrefilterConfig::default());
    }
    cfg
}

fn requests(anchors: &[Anchor], seed_span: usize, n: usize) -> Vec<AlignRequest> {
    let per = anchors.len().div_ceil(n);
    anchors
        .chunks(per)
        .enumerate()
        .map(|(i, chunk)| {
            AlignRequest::new(i as u64, chunk.to_vec(), seed_span)
                .with_priority(Priority::ALL[i % Priority::ALL.len()])
        })
        .collect()
}

#[test]
fn prefilter_rung_never_changes_the_alignment_set() {
    let (target, query, anchors, span, garbage) = corpus();
    assert!(garbage >= 8, "corpus planted a real garbage population");
    let reqs = requests(&anchors, span, 8);

    // Rung off: the reference alignment set, with the same chaos seed.
    let off =
        AlignService::new(&target, &query, serve_cfg(2, HostDispatch::Stealing, false)).run(&reqs);
    assert_eq!(off.prefilter_probed, 0, "rung off probes nothing");
    assert_eq!(off.prefilter_rejected, 0);
    assert!(
        off.resilience.skipped_seeds.is_empty(),
        "skip rung must stay quiet for set identity to be the soundness claim"
    );
    assert!(off.records.iter().all(|r| r.outcome.served()));
    assert!(off.records.iter().all(|r| r.prefiltered == 0));

    let mut base: Option<fastz_serve::ServeReport> = None;
    for (threads, dispatch) in [
        (1, HostDispatch::Stealing),
        (2, HostDispatch::Stealing),
        (3, HostDispatch::Static),
    ] {
        let on = AlignService::new(&target, &query, serve_cfg(threads, dispatch, true)).run(&reqs);

        // The rung actually fired: every dispatched anchor was probed
        // and the garbage population was rejected.
        assert_eq!(on.prefilter_probed, anchors.len() as u64);
        assert!(
            on.prefilter_rejected >= garbage as u64,
            "rejected {} of {} planted garbage anchors",
            on.prefilter_rejected,
            garbage
        );
        assert!(on.resilience.skipped_seeds.is_empty());
        let recorded: usize = on.records.iter().map(|r| r.prefiltered).sum();
        assert_eq!(
            recorded as u64, on.prefilter_rejected,
            "per-request records sum up"
        );

        // No false rejects: every request's alignments are identical to
        // the rung-off run's.
        assert_eq!(on.records.len(), off.records.len());
        for r in &on.records {
            let o = off
                .records
                .iter()
                .find(|x| x.id == r.id)
                .expect("same request population");
            assert_eq!(r.alignments, o.alignments, "request {} alignment set", r.id);
        }

        // And the rung-on runs are bit-identical among themselves,
        // across sim_threads and dispatch modes.
        match &base {
            None => base = Some(on),
            Some(b) => {
                assert_eq!(on.records.len(), b.records.len());
                for (a, c) in on.records.iter().zip(&b.records) {
                    assert_eq!(a.id, c.id);
                    assert_eq!(a.outcome, c.outcome);
                    assert_eq!(a.alignments, c.alignments);
                    assert_eq!(a.prefiltered, c.prefiltered);
                    assert_eq!(a.modeled_time_s.to_bits(), c.modeled_time_s.to_bits());
                }
                assert_eq!(on.prefilter_rejected, b.prefilter_rejected);
                assert_eq!(on.makespan_s.to_bits(), b.makespan_s.to_bits());
            }
        }
    }

    // The rung is an optimization, not a no-op: rejecting hopeless
    // anchors strictly reduced modeled GPU time.
    let on = base.expect("three rung-on runs completed");
    assert!(
        on.makespan_s < off.makespan_s,
        "prefilter saved modeled time: {} vs {}",
        on.makespan_s,
        off.makespan_s
    );
}

#[test]
fn prefilter_counters_surface_with_zero_emission_discipline() {
    let (target, query, anchors, span, _) = corpus();
    let reqs = requests(&anchors, span, 6);

    // Rung off: both series are still emitted — at zero — so the
    // exported metric set never depends on configuration.
    let mut quiet = Recorder::new();
    AlignService::new(&target, &query, serve_cfg(2, HostDispatch::Stealing, false))
        .run_observed(&reqs, &mut quiet);
    assert_eq!(
        quiet.registry.counter(names::SERVE_PREFILTER_PROBED_TOTAL),
        Some(0)
    );
    assert_eq!(
        quiet
            .registry
            .counter(names::SERVE_PREFILTER_REJECTED_TOTAL),
        Some(0)
    );

    // Rung on: the counters carry the report's exact tallies.
    let mut rec = Recorder::new();
    let report = AlignService::new(&target, &query, serve_cfg(2, HostDispatch::Stealing, true))
        .run_observed(&reqs, &mut rec);
    assert!(report.prefilter_rejected > 0);
    assert_eq!(
        rec.registry.counter(names::SERVE_PREFILTER_PROBED_TOTAL),
        Some(report.prefilter_probed)
    );
    assert_eq!(
        rec.registry.counter(names::SERVE_PREFILTER_REJECTED_TOTAL),
        Some(report.prefilter_rejected)
    );
}
