//! Planted-violation mutation corpus.
//!
//! Each rule gets at least one fixture carrying exactly the bug class
//! it encodes; the suite asserts the rule fires on it (with its id and
//! provenance) and stays silent on a clean twin. This is the lint
//! analog of the conformance oracle: a rule that cannot catch its own
//! planted violation is a dead gate.

use fastz_lint::report::LintReport;
use fastz_lint::{run, Workspace};

fn lint(files: &[(&str, &str)]) -> LintReport {
    run(&Workspace::from_sources(
        files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
    ))
}

/// Asserts the report holds exactly one finding, under `rule`, with a
/// provenance naming the historical bug class (`prov_tag`).
fn assert_single(rep: &LintReport, rule: &str, prov_tag: &str) {
    assert_eq!(
        rep.findings.len(),
        1,
        "expected one {rule} finding, got {:#?}",
        rep.findings
    );
    let f = &rep.findings[0];
    assert_eq!(f.rule, rule);
    assert!(
        f.provenance.contains(prov_tag),
        "provenance {:?} does not name {prov_tag:?}",
        f.provenance
    );
}

// ---------------------------------------------------------------------------
// Clean corpus: one in-scope file per rule, all idiomatic — zero findings.
// ---------------------------------------------------------------------------

#[test]
fn clean_corpus_is_silent() {
    let rep = lint(&[
        (
            "crates/align/src/driver.rs",
            "pub fn splice(score: i32, bonus: i32) -> i32 {\n    \
             score::add_clamped(score, bonus)\n}\n",
        ),
        (
            "crates/core/src/wavefront_step.rs",
            "pub fn probe(v: &[i32], i: usize) -> i32 {\n    \
             // bound: callers hold i + 1 < v.len() (strip invariant)\n    \
             v[i + 1]\n}\n",
        ),
        (
            "crates/obs/src/sink.rs",
            "use std::collections::BTreeMap;\n\
             pub fn series() -> BTreeMap<String, u64> {\n    BTreeMap::new()\n}\n",
        ),
        (
            "crates/core/src/rank.rs",
            "pub fn best(xs: &[f64]) -> f64 {\n    \
             xs.iter().copied().fold(f64::NEG_INFINITY, |a, b| \
             if b.total_cmp(&a).is_gt() { b } else { a })\n}\n",
        ),
        (
            "crates/core/src/cfgid.rs",
            "pub struct Geometry { pub window: usize, pub overlap: usize }\n\
             // fastz-lint: fingerprint(Geometry)\n\
             pub fn identity(g: &Geometry) -> u64 {\n    \
             let Geometry { window, overlap } = g;\n    \
             (*window as u64) ^ ((*overlap as u64) << 32)\n}\n",
        ),
    ]);
    assert!(
        rep.findings.is_empty(),
        "clean corpus produced findings: {:#?}",
        rep.findings
    );
    assert!(rep.suppressions.is_empty());
    assert_eq!(rep.files_scanned, 5);
}

// ---------------------------------------------------------------------------
// One planted violation per rule.
// ---------------------------------------------------------------------------

#[test]
fn catches_partial_cmp_on_floats() {
    let rep = lint(&[(
        "crates/core/src/rank.rs",
        "pub fn best(xs: &[f64]) -> f64 {\n    let mut best = xs[0];\n    \
         for &x in xs {\n        \
         if x.partial_cmp(&best) == Some(std::cmp::Ordering::Greater) { best = x; }\n    \
         }\n    best\n}\n",
    )]);
    assert_single(&rep, "float-total-order", "PR 4");
}

#[test]
fn catches_raw_score_arithmetic_in_scope() {
    let rep = lint(&[(
        "crates/align/src/driver.rs",
        "pub fn splice(score: i32, bonus: i32) -> i32 {\n    score + bonus\n}\n",
    )]);
    assert_single(&rep, "clamped-score-arith", "PR 1");
    assert_eq!(rep.findings[0].line, 2);
}

#[test]
fn score_arithmetic_out_of_scope_is_not_flagged() {
    // Same token stream, but the path opts out of the score-arith scope.
    let rep = lint(&[(
        "crates/genome/src/stats.rs",
        "pub fn splice(score: i32, bonus: i32) -> i32 {\n    score + bonus\n}\n",
    )]);
    assert!(rep.findings.is_empty(), "{:#?}", rep.findings);
}

#[test]
fn catches_rogue_metric_literal() {
    let rep = lint(&[(
        "crates/core/src/emit.rs",
        "pub fn name() -> &'static str {\n    \"fastz_rogue_total\"\n}\n",
    )]);
    assert_single(&rep, "metric-name-registry", "PR 3");
    assert!(rep.findings[0].message.contains("fastz_rogue_total"));
}

#[test]
fn catches_registry_slice_drift() {
    // A declared name missing from ALL (both are emitted elsewhere, so
    // only the registry-slice check should fire).
    let rep = lint(&[
        (
            "crates/obs/src/names.rs",
            "pub const A_TOTAL: &str = \"fastz_a_total\";\n\
             pub const B_TOTAL: &str = \"fastz_b_total\";\n\
             pub const ALL: &[&str] = &[A_TOTAL];\n",
        ),
        (
            "crates/core/src/emit.rs",
            "use crate::names::{A_TOTAL, B_TOTAL};\n\
             pub fn both() -> (&'static str, &'static str) {\n    (A_TOTAL, B_TOTAL)\n}\n",
        ),
    ]);
    assert_single(&rep, "metric-name-registry", "PR 3");
    assert!(
        rep.findings[0].message.contains("B_TOTAL"),
        "{:?}",
        rep.findings[0].message
    );
}

#[test]
fn catches_rest_pattern_in_fingerprint_destructure() {
    let rep = lint(&[(
        "crates/core/src/cfgid.rs",
        "pub struct Geometry { pub window: usize, pub overlap: usize }\n\
         // fastz-lint: fingerprint(Geometry)\n\
         pub fn identity(g: &Geometry) -> u64 {\n    \
         let Geometry { window, .. } = g;\n    *window as u64\n}\n",
    )]);
    assert_single(&rep, "fingerprint-exhaustive", "PR 3/PR 9");
    assert!(rep.findings[0].message.contains(".."));
}

#[test]
fn catches_discard_without_waiver_note() {
    let rep = lint(&[(
        "crates/core/src/cfgid.rs",
        "pub struct Geometry { pub window: usize, pub overlap: usize }\n\
         // fastz-lint: fingerprint(Geometry)\n\
         pub fn identity(g: &Geometry) -> u64 {\n    \
         let Geometry { window, overlap: _ } = g;\n    *window as u64\n}\n",
    )]);
    assert_single(&rep, "fingerprint-exhaustive", "PR 3/PR 9");
    assert!(rep.findings[0].message.contains("overlap"));
}

#[test]
fn catches_required_type_without_witness() {
    let rep = lint(&[(
        "crates/core/src/config.rs",
        "pub struct OptFlags { pub streams: usize }\n",
    )]);
    assert_single(&rep, "fingerprint-exhaustive", "PR 3/PR 9");
    assert!(rep.findings[0].message.contains("OptFlags"));
}

#[test]
fn catches_hashmap_in_determinism_scope() {
    let rep = lint(&[(
        "crates/obs/src/sink.rs",
        "use std::collections::HashMap;\n\
         pub fn series() -> usize {\n    HashMap::<u32, u32>::new().len()\n}\n",
    )]);
    assert_eq!(rep.findings.len(), 2, "{:#?}", rep.findings); // use + call site
    for f in &rep.findings {
        assert_eq!(f.rule, "determinism");
        assert!(f.provenance.contains("bit-identity"));
    }
}

#[test]
fn catches_unwrap_and_unnoted_index_in_kernel() {
    let rep = lint(&[(
        "crates/core/src/wavefront_step.rs",
        "pub fn probe(v: &[i32], i: usize) -> i32 {\n    \
         let x = v[i + 1];\n    \
         x.checked_add(1).unwrap()\n}\n",
    )]);
    assert_eq!(rep.findings.len(), 2, "{:#?}", rep.findings);
    let rules: Vec<_> = rep.findings.iter().map(|f| f.rule.as_str()).collect();
    assert_eq!(rules, ["kernel-no-panic", "kernel-no-panic"]);
    assert!(rep.findings.iter().any(|f| f.message.contains("unwrap")));
    assert!(rep
        .findings
        .iter()
        .all(|f| f.provenance.contains("kernel contract")));
}

// ---------------------------------------------------------------------------
// Suppression accounting.
// ---------------------------------------------------------------------------

#[test]
fn trailing_suppression_absorbs_and_is_accounted() {
    let rep = lint(&[(
        "crates/align/src/driver.rs",
        "pub fn splice(score: i32, bonus: i32) -> i32 {\n    \
         score + bonus // fastz-lint: allow(clamped-score-arith, fixture: operands proven in range)\n}\n",
    )]);
    assert!(rep.findings.is_empty(), "{:#?}", rep.findings);
    assert_eq!(rep.suppressions.len(), 1);
    let s = &rep.suppressions[0];
    assert_eq!(s.rule, "clamped-score-arith");
    assert_eq!(s.reason, "fixture: operands proven in range");
    assert_eq!(s.line, 2);
}

#[test]
fn suppression_without_reason_is_a_hygiene_finding() {
    let rep = lint(&[(
        "crates/align/src/driver.rs",
        "pub fn splice(score: i32, bonus: i32) -> i32 {\n    \
         score + bonus // fastz-lint: allow(clamped-score-arith)\n}\n",
    )]);
    // The violation is absorbed, but the reasonless directive is itself
    // a finding — suppression is accounted, never free.
    assert_single(&rep, "suppression-hygiene", "written reason");
    assert!(rep.findings[0].message.contains("no written reason"));
    assert_eq!(rep.suppressions.len(), 1);
}

#[test]
fn suppression_of_unknown_rule_is_a_hygiene_finding() {
    let rep = lint(&[(
        "crates/core/src/misc.rs",
        "pub fn f() -> i32 {\n    1 // fastz-lint: allow(no-such-rule, because)\n}\n",
    )]);
    assert_single(&rep, "suppression-hygiene", "known rule");
    assert!(rep.findings[0].message.contains("no-such-rule"));
}

#[test]
fn unused_suppression_is_a_hygiene_finding() {
    let rep = lint(&[(
        "crates/core/src/misc.rs",
        "// fastz-lint: allow(float-total-order, nothing here needs this)\n\
         pub fn f() -> i32 {\n    1\n}\n",
    )]);
    assert_single(&rep, "suppression-hygiene", "match a live finding");
    assert!(rep.findings[0].message.contains("matches no finding"));
}

#[test]
fn standalone_suppression_covers_its_paragraph_only() {
    let rep = lint(&[(
        "crates/align/src/driver.rs",
        "pub fn splice(score: i32, bonus: i32) -> i32 {\n    \
         // fastz-lint: allow(clamped-score-arith, fixture: paragraph scope)\n    \
         let a = score + bonus;\n    let b = a + score;\n\n    \
         b + score\n}\n",
    )]);
    // The two adds inside the paragraph are absorbed (one accounted
    // suppression); the add after the blank line is not.
    assert_eq!(rep.suppressions.len(), 1);
    assert_single(&rep, "clamped-score-arith", "PR 1");
    assert_eq!(rep.findings[0].line, 6);
}

// ---------------------------------------------------------------------------
// Determinism of the report itself.
// ---------------------------------------------------------------------------

#[test]
fn report_json_is_byte_identical_across_runs() {
    let corpus: Vec<(&str, &str)> = vec![
        (
            "crates/align/src/driver.rs",
            "pub fn splice(score: i32, bonus: i32) -> i32 {\n    score + bonus\n}\n",
        ),
        (
            "crates/obs/src/sink.rs",
            "use std::collections::HashMap;\npub fn f() -> usize {\n    \
             HashMap::<u32, u32>::new().len()\n}\n",
        ),
        (
            "crates/core/src/rank.rs",
            "pub fn cmp(a: f64, b: f64) -> bool {\n    \
             a.partial_cmp(&b).is_some()\n}\n",
        ),
    ];
    let first = lint(&corpus).to_json();
    let second = lint(&corpus).to_json();
    assert_eq!(first, second);
    assert!(first.contains("\"tool\": \"fastz-lint\""));
}
