//! Structural pass over a lexed file: the handful of shapes the rules
//! need — `#[cfg(test)]` spans, `fn` spans, struct fields, string
//! consts and const slices, `let Type { .. }` destructure patterns —
//! plus the `// fastz-lint:` directive comments (suppressions and
//! fingerprint markers).

use crate::lex::{lex, Comment, Lexed, Tok, TokKind};
use std::collections::BTreeSet;

/// An inline suppression: `// fastz-lint: allow(rule-id, reason)`.
///
/// A trailing suppression covers its own line. A standalone suppression
/// covers the following lines down to the next blank line (paragraph
/// scope), so one comment can cover a short run of related statements
/// without being repeated per line.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub line: u32,
    pub rule: String,
    /// Reason text after the rule id; empty string when the author
    /// omitted it (a `suppression-hygiene` finding).
    pub reason: String,
    pub cover_start: u32,
    pub cover_end: u32,
}

/// `// fastz-lint: fingerprint(TypeName)` — marks the next
/// `let TypeName { .. }` destructure as the exhaustiveness witness for
/// that type's identity function.
#[derive(Clone, Debug)]
pub struct FingerprintMarker {
    pub line: u32,
    pub type_name: String,
}

/// A named function body span (line of `fn` to line of its closing
/// brace, inclusive).
#[derive(Clone, Debug)]
pub struct FnSpan {
    pub name: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// One struct definition's named fields (tuple/unit structs are
/// skipped; the fingerprint rule only cares about named fields).
#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    pub fields: Vec<String>,
}

/// `pub const NAME: &str = "value";`
#[derive(Clone, Debug)]
pub struct StrConst {
    pub name: String,
    pub value: String,
    pub line: u32,
}

/// `pub const NAME: &[&str] = &[A, B, C];` — element identifiers plus
/// the token index range of the initializer (so reference counting can
/// exclude it).
#[derive(Clone, Debug)]
pub struct SliceConst {
    pub name: String,
    pub elems: Vec<String>,
    pub line: u32,
    pub init_tok_range: (usize, usize),
}

/// One field of a `let Type { .. }` destructure pattern.
#[derive(Clone, Debug)]
pub struct PatField {
    pub name: String,
    pub line: u32,
    /// True for `name: _` — the field is acknowledged but discarded.
    pub discarded: bool,
}

/// A `let TypeName { ... } = expr;` destructure.
#[derive(Clone, Debug)]
pub struct Destructure {
    pub type_name: String,
    pub line: u32,
    pub fields: Vec<PatField>,
    /// True when the pattern contains `..` (non-exhaustive).
    pub has_rest: bool,
}

/// A parsed source file plus everything the rules query.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub lexed: Lexed,
    /// Line ranges (inclusive) of `#[cfg(test)] mod` bodies.
    pub test_spans: Vec<(u32, u32)>,
    pub fns: Vec<FnSpan>,
    pub structs: Vec<StructDef>,
    pub str_consts: Vec<StrConst>,
    pub slice_consts: Vec<SliceConst>,
    pub destructures: Vec<Destructure>,
    pub suppressions: Vec<Suppression>,
    pub fingerprint_markers: Vec<FingerprintMarker>,
    blank_lines: BTreeSet<u32>,
    last_line: u32,
}

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let blank_lines: BTreeSet<u32> = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.trim().is_empty())
            .map(|(i, _)| i as u32 + 1)
            .collect();
        let last_line = src.lines().count() as u32;
        let mut f = SourceFile {
            path: path.to_string(),
            lexed,
            test_spans: Vec::new(),
            fns: Vec::new(),
            structs: Vec::new(),
            str_consts: Vec::new(),
            slice_consts: Vec::new(),
            destructures: Vec::new(),
            suppressions: Vec::new(),
            fingerprint_markers: Vec::new(),
            blank_lines,
            last_line,
        };
        f.scan_structure();
        f.scan_directives();
        f
    }

    pub fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    pub fn comments(&self) -> &[Comment] {
        &self.lexed.comments
    }

    /// Is `line` inside a `#[cfg(test)]` module body?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(s, e)| line >= s && line <= e)
    }

    /// The function span containing `line`, if any (innermost wins when
    /// nested, which named fns in this workspace never are).
    pub fn fn_at(&self, line: u32) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| line >= f.start_line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Is there a comment whose trimmed text starts with `prefix` on
    /// `line` itself or within `back` lines before it?
    pub fn note_near(&self, line: u32, back: u32, prefix: &str) -> bool {
        self.comments().iter().any(|c| {
            c.line <= line && c.line + back >= line && c.text.trim_start().starts_with(prefix)
        })
    }

    /// Indexes of tokens on `line` (rules use this for per-line
    /// context like unary-minus disambiguation).
    pub fn line_tokens(&self, line: u32) -> impl Iterator<Item = (usize, &Tok)> {
        self.toks()
            .iter()
            .enumerate()
            .filter(move |(_, t)| t.line == line)
    }

    fn scan_structure(&mut self) {
        let toks: Vec<Tok> = self.lexed.toks.clone();
        let n = toks.len();
        let mut i = 0usize;
        while i < n {
            let t = &toks[i];
            if t.kind == TokKind::Punct && t.text == "#" {
                if let Some(span) = try_cfg_test_mod(&toks, i) {
                    self.test_spans.push(span);
                }
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "fn" => {
                        if let Some(span) = try_fn_span(&toks, i) {
                            self.fns.push(span);
                        }
                    }
                    "struct" => {
                        if let Some(def) = try_struct(&toks, i) {
                            self.structs.push(def);
                        }
                    }
                    "const" => {
                        if let Some(sc) = try_str_const(&toks, i) {
                            self.str_consts.push(sc);
                        } else if let Some(sl) = try_slice_const(&toks, i) {
                            self.slice_consts.push(sl);
                        }
                    }
                    "let" => {
                        if let Some(d) = try_destructure(&toks, i) {
                            self.destructures.push(d);
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }

    fn scan_directives(&mut self) {
        // Merge runs of consecutive standalone `//` lines into blocks so
        // a directive (and its reason) can wrap across comment lines.
        struct Block {
            start: u32,
            end: u32,
            standalone: bool,
            text: String,
        }
        let mut blocks: Vec<Block> = Vec::new();
        for c in &self.lexed.comments {
            if c.standalone {
                if let Some(b) = blocks.last_mut() {
                    if b.standalone && b.end + 1 == c.line {
                        b.end = c.line;
                        b.text.push(' ');
                        b.text.push_str(c.text.trim());
                        continue;
                    }
                }
            }
            blocks.push(Block {
                start: c.line,
                end: c.line,
                standalone: c.standalone,
                text: c.text.trim().to_string(),
            });
        }
        for b in &blocks {
            let Some(pos) = b.text.find("fastz-lint:") else {
                continue;
            };
            let rest = b.text[pos + "fastz-lint:".len()..].trim_start();
            if let Some(body) = directive_body(rest, "allow") {
                let (rule, reason) = match body.split_once(',') {
                    Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                    None => (body.trim().to_string(), String::new()),
                };
                let (cover_start, cover_end) = if b.standalone {
                    // Paragraph scope: down to the next blank line (or
                    // end of file).
                    let end = self
                        .blank_lines
                        .range(b.start..)
                        .next()
                        .map(|&bl| bl.saturating_sub(1))
                        .unwrap_or(self.last_line);
                    (b.start, end)
                } else {
                    (b.start, b.start)
                };
                self.suppressions.push(Suppression {
                    line: b.start,
                    rule,
                    reason,
                    cover_start,
                    cover_end,
                });
            } else if let Some(body) = directive_body(rest, "fingerprint") {
                // Anchor at the block's last line: explanation lines
                // above the marker must not push the destructure out of
                // the marker's reach.
                self.fingerprint_markers.push(FingerprintMarker {
                    line: b.end,
                    type_name: body.trim().to_string(),
                });
            }
        }
    }
}

/// Extracts `name(...)` → inner text (balanced parens, so reasons may
/// themselves contain parentheses) when `rest` starts with `name(`.
fn directive_body<'a>(rest: &'a str, name: &str) -> Option<&'a str> {
    let after = rest.strip_prefix(name)?;
    let after = after.trim_start();
    let after = after.strip_prefix('(')?;
    let mut depth = 1usize;
    for (i, ch) in after.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&after[..i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Matches `# [ cfg ( test ) ] mod name {` and returns the body's line
/// span.
fn try_cfg_test_mod(toks: &[Tok], i: usize) -> Option<(u32, u32)> {
    let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
    for (k, want) in pat.iter().enumerate() {
        if toks.get(i + k)?.text != *want {
            return None;
        }
    }
    let mut j = i + pat.len();
    if toks.get(j)?.text != "mod" {
        return None;
    }
    j += 1; // mod name
    let start_line = toks.get(j)?.line;
    j += 1;
    if toks.get(j)?.text != "{" {
        return None;
    }
    let end = match_brace(toks, j)?;
    Some((start_line, toks[end].line))
}

/// From the `fn` keyword, finds the body braces (first `{` at zero
/// paren/bracket/angle-free depth after the signature) and returns the
/// span. Trait-method declarations (`fn f(...);`) return None.
fn try_fn_span(toks: &[Tok], i: usize) -> Option<FnSpan> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = i + 2;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => {
                let end = match_brace(toks, j)?;
                return Some(FnSpan {
                    name: name_tok.text.clone(),
                    start_line: toks[i].line,
                    end_line: toks[end].line,
                });
            }
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// `struct Name { a: T, pub b: U, ... }` → field names.
fn try_struct(toks: &[Tok], i: usize) -> Option<StructDef> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    let mut j = i + 2;
    // Skip generics.
    if toks.get(j)?.text == "<" {
        let mut angle = 1i32;
        j += 1;
        while j < toks.len() && angle > 0 {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                ";" | "{" => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if toks.get(j)?.text != "{" {
        return None; // tuple or unit struct
    }
    let end = match_brace(toks, j)?;
    let mut fields = Vec::new();
    let mut k = j + 1;
    while k < end {
        // Skip attributes on the field.
        while toks[k].text == "#" {
            if toks.get(k + 1).map(|t| t.text.as_str()) == Some("[") {
                k = match_bracket(toks, k + 1)? + 1;
            } else {
                k += 1;
            }
        }
        // Skip visibility.
        if toks[k].text == "pub" {
            k += 1;
            if k < end && toks[k].text == "(" {
                k = match_paren(toks, k)? + 1;
            }
        }
        if toks[k].kind == TokKind::Ident && toks.get(k + 1).map(|t| t.text.as_str()) == Some(":") {
            fields.push(toks[k].text.clone());
        }
        // Advance to the comma ending this field (at this depth).
        let mut depth = 0i32;
        while k < end {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
    Some(StructDef {
        name: name_tok.text.clone(),
        line: name_tok.line,
        fields,
    })
}

/// `const NAME: &str = "...";`
fn try_str_const(toks: &[Tok], i: usize) -> Option<StrConst> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident || toks.get(i + 2)?.text != ":" {
        return None;
    }
    if toks.get(i + 3)?.text != "&" || toks.get(i + 4)?.text != "str" {
        return None;
    }
    if toks.get(i + 5)?.text != "=" {
        return None;
    }
    let val = toks.get(i + 6)?;
    if val.kind != TokKind::Str {
        return None;
    }
    Some(StrConst {
        name: name_tok.text.clone(),
        value: val.text.clone(),
        line: name_tok.line,
    })
}

/// `const NAME: <type> = &[A, B, ...];` — only ident elements are
/// captured (which is all the registry rule needs).
fn try_slice_const(toks: &[Tok], i: usize) -> Option<SliceConst> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident || toks.get(i + 2)?.text != ":" {
        return None;
    }
    // Find `=` before the next `;`.
    let mut j = i + 3;
    while j < toks.len() && toks[j].text != "=" {
        if toks[j].text == ";" {
            return None;
        }
        j += 1;
    }
    let mut k = j + 1;
    if toks.get(k)?.text == "&" {
        k += 1;
    }
    if toks.get(k)?.text != "[" {
        return None;
    }
    let end = match_bracket(toks, k)?;
    let elems: Vec<String> = toks[k + 1..end]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    Some(SliceConst {
        name: name_tok.text.clone(),
        elems,
        line: name_tok.line,
        init_tok_range: (k, end + 1),
    })
}

/// `let TypeName { a, b: _, .. } = expr` — destructure pattern capture.
/// `TypeName` must start uppercase (distinguishes from `let x = ...`).
fn try_destructure(toks: &[Tok], i: usize) -> Option<Destructure> {
    let ty = toks.get(i + 1)?;
    if ty.kind != TokKind::Ident || !ty.text.starts_with(|c: char| c.is_ascii_uppercase()) {
        return None;
    }
    if toks.get(i + 2)?.text != "{" {
        return None;
    }
    let end = match_brace(toks, i + 2)?;
    let mut fields = Vec::new();
    let mut has_rest = false;
    let mut k = i + 3;
    while k < end {
        if toks[k].text == ".." {
            has_rest = true;
            k += 1;
            continue;
        }
        if toks[k].text == "ref" || toks[k].text == "mut" {
            k += 1;
            continue;
        }
        if toks[k].kind == TokKind::Ident {
            let name = toks[k].text.clone();
            let line = toks[k].line;
            let mut discarded = false;
            if toks.get(k + 1).map(|t| t.text.as_str()) == Some(":") {
                // `name: binding` — binding `_` means discarded.
                if toks.get(k + 2).map(|t| t.text.as_str()) == Some("_") {
                    discarded = true;
                }
                k += 2;
            }
            fields.push(PatField {
                name,
                line,
                discarded,
            });
        }
        // Advance to the comma at this depth.
        let mut depth = 0i32;
        while k < end {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "," if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        k += 1;
    }
    Some(Destructure {
        type_name: ty.text.clone(),
        line: ty.line,
        fields,
        has_rest,
    })
}

fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    match_delims(toks, open, "{", "}")
}

fn match_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    match_delims(toks, open, "[", "]")
}

fn match_paren(toks: &[Tok], open: usize) -> Option<usize> {
    match_delims(toks, open, "(", ")")
}

fn match_delims(toks: &[Tok], open: usize, l: &str, r: &str) -> Option<usize> {
    debug_assert_eq!(toks[open].text, l);
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == l {
                depth += 1;
            } else if t.text == r {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span() {
        let f = SourceFile::parse(
            "x.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert_eq!(f.test_spans.len(), 1);
        assert!(f.in_test(4));
        assert!(!f.in_test(1));
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let f = SourceFile::parse("x.rs", "fn a(x: i32) -> i32 {\n    x\n}\nfn b() {}\n");
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fn_at(2).unwrap().name, "a");
        assert_eq!(f.fn_at(4).unwrap().name, "b");
    }

    #[test]
    fn struct_fields_extracted() {
        let f = SourceFile::parse(
            "x.rs",
            "pub struct C {\n    pub a: i32,\n    #[allow(dead_code)]\n    b: Vec<(u8, u8)>,\n    pub(crate) c: bool,\n}\n",
        );
        assert_eq!(f.structs[0].fields, vec!["a", "b", "c"]);
    }

    #[test]
    fn consts_and_slices() {
        let f = SourceFile::parse(
            "x.rs",
            "pub const A: &str = \"fastz_a\";\npub const ALL: &[&str] = &[A, B];\n",
        );
        assert_eq!(f.str_consts[0].name, "A");
        assert_eq!(f.str_consts[0].value, "fastz_a");
        assert_eq!(f.slice_consts[0].elems, vec!["A", "B"]);
    }

    #[test]
    fn destructure_capture() {
        let f = SourceFile::parse(
            "x.rs",
            "fn g(c: C) {\n    let C { a, b: _, ref c } = c;\n    let _ = (a, c);\n}\n",
        );
        let d = &f.destructures[0];
        assert_eq!(d.type_name, "C");
        assert!(!d.has_rest);
        assert_eq!(d.fields.len(), 3);
        assert!(d.fields[1].discarded);
        assert!(!d.fields[0].discarded);
    }

    #[test]
    fn destructure_rest_detected() {
        let f = SourceFile::parse("x.rs", "fn g(c: C) { let C { a, .. } = c; let _ = a; }\n");
        assert!(f.destructures[0].has_rest);
    }

    #[test]
    fn suppression_scopes() {
        let src = "\
fn f() {
    let a = 1; // fastz-lint: allow(rule-x, trailing reason)
    // fastz-lint: allow(rule-y, paragraph reason)
    let b = 2;
    let c = 3;

    let d = 4;
}
";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        let t = &f.suppressions[0];
        assert_eq!((t.cover_start, t.cover_end), (2, 2));
        assert_eq!(t.rule, "rule-x");
        assert_eq!(t.reason, "trailing reason");
        let p = &f.suppressions[1];
        assert_eq!((p.cover_start, p.cover_end), (3, 5));
    }

    #[test]
    fn multiline_suppression_merges() {
        let src = "\
fn f() {
    // fastz-lint: allow(rule-z, a reason that
    // wraps across lines (with parens))
    let a = 1;
}
";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.rule, "rule-z");
        assert!(s.reason.contains("wraps across lines (with parens)"));
        assert_eq!((s.cover_start, s.cover_end), (2, 5));
    }

    #[test]
    fn fingerprint_marker_parsed() {
        let f = SourceFile::parse(
            "x.rs",
            "// fastz-lint: fingerprint(FastZConfig)\nfn id() {}\n",
        );
        assert_eq!(f.fingerprint_markers[0].type_name, "FastZConfig");
    }
}
