//! Structured findings and the deterministic report.
//!
//! Mirrors the `SanitizeReport` discipline from `fastz-gpu-sim`: every
//! collection is sorted before serialization, the JSON is hand-rolled
//! (no serde in this workspace), and two runs over the same tree are
//! byte-identical.

use std::collections::BTreeMap;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id, e.g. `clamped-score-arith`.
    pub rule: String,
    /// What was seen, specific to the site.
    pub message: String,
    /// The historical bug class this rule encodes (same text for every
    /// finding of the rule).
    pub provenance: String,
}

/// One applied (used) suppression, reported so the gate can see what
/// is being waved through and why.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AppliedSuppression {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub reason: String,
}

/// The full lint run result.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressions: Vec<AppliedSuppression>,
}

impl LintReport {
    /// Sorts every collection; call once before rendering.
    pub fn finalize(&mut self) {
        self.findings.sort();
        self.suppressions.sort();
    }

    /// Per-rule (findings, suppressions) counts, sorted by rule id.
    pub fn rule_counts(&self) -> BTreeMap<String, (usize, usize)> {
        let mut counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            counts.entry(f.rule.clone()).or_default().0 += 1;
        }
        for s in &self.suppressions {
            counts.entry(s.rule.clone()).or_default().1 += 1;
        }
        counts
    }

    /// Deterministic JSON: sorted findings and suppressions, fixed key
    /// order, no timestamps or absolute paths.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"tool\": \"fastz-lint\",\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"findings_total\": {},\n", self.findings.len()));
        out.push_str(&format!(
            "  \"suppressions_total\": {},\n",
            self.suppressions.len()
        ));
        out.push_str("  \"rules\": [");
        let counts = self.rule_counts();
        for (i, (rule, (nf, ns))) in counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"id\": ");
            push_json_str(&mut out, rule);
            out.push_str(&format!(", \"findings\": {nf}, \"suppressions\": {ns}}}"));
        }
        if !counts.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            push_json_str(&mut out, &f.rule);
            out.push_str(", \"file\": ");
            push_json_str(&mut out, &f.file);
            out.push_str(&format!(", \"line\": {}, \"message\": ", f.line));
            push_json_str(&mut out, &f.message);
            out.push_str(", \"provenance\": ");
            push_json_str(&mut out, &f.provenance);
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"suppressions\": [");
        for (i, s) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"rule\": ");
            push_json_str(&mut out, &s.rule);
            out.push_str(", \"file\": ");
            push_json_str(&mut out, &s.file);
            out.push_str(&format!(", \"line\": {}, \"reason\": ", s.line));
            push_json_str(&mut out, &s.reason);
            out.push('}');
        }
        if !self.suppressions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    provenance: {}\n",
                f.file, f.line, f.rule, f.message, f.provenance
            ));
        }
        out.push_str(&format!(
            "fastz-lint: {} file(s), {} finding(s), {} suppression(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.suppressions.len()
        ));
        for (rule, (nf, ns)) in self.rule_counts() {
            out.push_str(&format!("  {rule}: {nf} finding(s), {ns} suppression(s)\n"));
        }
        out
    }
}

/// Appends `s` as a JSON string literal (same escaper as
/// `SanitizeReport`).
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: "m".to_string(),
            provenance: "p".to_string(),
        }
    }

    #[test]
    fn findings_sorted_and_counted() {
        let mut r = LintReport {
            files_scanned: 2,
            findings: vec![
                finding("b.rs", 9, "determinism"),
                finding("a.rs", 3, "determinism"),
                finding("a.rs", 1, "float-total-order"),
            ],
            suppressions: vec![],
        };
        r.finalize();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[0].line, 1);
        let counts = r.rule_counts();
        assert_eq!(counts["determinism"], (2, 0));
        assert_eq!(counts["float-total-order"], (1, 0));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut r = LintReport {
            files_scanned: 1,
            findings: vec![Finding {
                file: "a.rs".to_string(),
                line: 1,
                rule: "r".to_string(),
                message: "saw \"x\"\npath\\y".to_string(),
                provenance: "p".to_string(),
            }],
            suppressions: vec![AppliedSuppression {
                file: "a.rs".to_string(),
                line: 4,
                rule: "r".to_string(),
                reason: "why".to_string(),
            }],
        };
        r.finalize();
        let j1 = r.to_json();
        let j2 = r.to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\\\"x\\\""));
        assert!(j1.contains("path\\\\y"));
        assert!(j1.contains("\"findings_total\": 1"));
        assert!(j1.contains("\"suppressions_total\": 1"));
    }
}
