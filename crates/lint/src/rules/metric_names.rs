//! `metric-name-registry`: both sides of the zero-emission discipline.
//!
//! PR 3 established that every metric series is declared once in
//! `obs::names` and emitted (at least as zero) on every observed run,
//! so exported series sets never depend on configuration. The rule
//! enforces the static half:
//!
//! * every declared `fastz_`-prefixed name const is listed in
//!   `names::ALL` (and `ALL` lists nothing undeclared, no duplicates);
//! * every declared name has at least one non-test reference outside
//!   the registry slices themselves — a name nobody emits is dead
//!   discipline;
//! * no `fastz_`-prefixed string literal appears outside `names.rs` in
//!   non-test code — literals reaching a `MetricsSink` must come from
//!   the registry, not be retyped at the call site.

use super::Rule;
use crate::lex::TokKind;
use crate::report::Finding;
use crate::Workspace;
use std::collections::BTreeSet;

/// The registry module. When absent from the workspace (mutation
/// fixtures), the declaration-side checks are silent and only the
/// rogue-literal check runs.
const NAMES_PATH: &str = "crates/obs/src/names.rs";

/// Metric name literals carry this prefix.
const PREFIX: &str = "fastz_";

pub struct MetricNameRegistry;

impl Rule for MetricNameRegistry {
    fn id(&self) -> &'static str {
        "metric-name-registry"
    }

    fn provenance(&self) -> &'static str {
        "PR 3: metric names drifting from obs::names broke zero-emission discipline \
         (exported series sets depended on configuration); every series is declared once \
         in the registry and emitted somewhere"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Rogue literals: `fastz_...` strings outside the registry.
        for f in ws.files.iter().filter(|f| f.path != NAMES_PATH) {
            for t in f.toks() {
                if t.kind == TokKind::Str && t.text.starts_with(PREFIX) && !f.in_test(t.line) {
                    out.push(self.finding(
                        &f.path,
                        t.line,
                        format!(
                            "metric-name literal \"{}\" bypasses obs::names; \
                             reference the registry const instead",
                            t.text
                        ),
                    ));
                }
            }
        }

        let Some(names) = ws.files.iter().find(|f| f.path == NAMES_PATH) else {
            return;
        };
        let declared: Vec<_> = names
            .str_consts
            .iter()
            .filter(|c| c.value.starts_with(PREFIX))
            .collect();

        // Registry slice: ALL must list exactly the declared consts.
        match names.slice_consts.iter().find(|s| s.name == "ALL") {
            None => out.push(self.finding(
                NAMES_PATH,
                1,
                "obs::names has no `ALL` registry slice".to_string(),
            )),
            Some(all) => {
                let listed: BTreeSet<&str> = all.elems.iter().map(|s| s.as_str()).collect();
                if listed.len() != all.elems.len() {
                    out.push(self.finding(
                        NAMES_PATH,
                        all.line,
                        "`names::ALL` contains duplicate entries".to_string(),
                    ));
                }
                for c in &declared {
                    if !listed.contains(c.name.as_str()) {
                        out.push(self.finding(
                            NAMES_PATH,
                            c.line,
                            format!(
                                "declared metric name `{}` is missing from `names::ALL`",
                                c.name
                            ),
                        ));
                    }
                }
                let names_set: BTreeSet<&str> = declared.iter().map(|c| c.name.as_str()).collect();
                for e in &all.elems {
                    if !names_set.contains(e.as_str()) {
                        out.push(self.finding(
                            NAMES_PATH,
                            all.line,
                            format!(
                                "`names::ALL` lists `{e}`, which is not a declared metric name"
                            ),
                        ));
                    }
                }
            }
        }

        // Emission side: every declared name must be referenced in
        // non-test code somewhere besides its declaration and the
        // registry slices (helper bodies in names.rs count).
        for c in &declared {
            // Format-string interpolation (`format!("{FAULTS_TOTAL}...")`
            // in the labeled-name helpers) is an emission site too.
            let interp = format!("{{{}}}", c.name);
            let mut emitted = false;
            'files: for f in &ws.files {
                for (i, t) in f.toks().iter().enumerate() {
                    if f.in_test(t.line) {
                        continue;
                    }
                    if t.kind == TokKind::Str && t.text.contains(&interp) {
                        emitted = true;
                        break 'files;
                    }
                    if t.kind != TokKind::Ident || t.text != c.name {
                        continue;
                    }
                    if f.path == NAMES_PATH {
                        if t.line == c.line {
                            continue; // the declaration itself
                        }
                        let in_slice = names
                            .slice_consts
                            .iter()
                            .any(|s| i >= s.init_tok_range.0 && i < s.init_tok_range.1);
                        if in_slice {
                            continue; // listing in ALL/partitions is not emission
                        }
                    }
                    emitted = true;
                    break 'files;
                }
            }
            if !emitted {
                out.push(self.finding(
                    NAMES_PATH,
                    c.line,
                    format!(
                        "metric name `{}` is declared but has no emission site",
                        c.name
                    ),
                ));
            }
        }
    }
}
