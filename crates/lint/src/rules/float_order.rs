//! `float-total-order`: forbid `partial_cmp` calls.
//!
//! Floats do not implement `Ord`, so any `sort_by`/`max_by`/`min_by`
//! over float keys must go through either `partial_cmp` or `total_cmp`
//! inside its comparator — which makes the `partial_cmp` call itself
//! the one sound token-level signal for the whole bug class. PR 4's
//! crash was exactly `partial_cmp().unwrap()` meeting a NaN y-drop
//! score mid-ranking; PR 6 swept the orderings to `total_cmp`, and this
//! rule keeps them there. Flagged in test code too: a NaN-partial test
//! comparator hides the same panic behind a green run.

use super::Rule;
use crate::lex::TokKind;
use crate::report::Finding;
use crate::Workspace;

pub struct FloatTotalOrder;

impl Rule for FloatTotalOrder {
    fn id(&self) -> &'static str {
        "float-total-order"
    }

    fn provenance(&self) -> &'static str {
        "PR 4: NaN-poisoned partial_cmp().unwrap() panicked the y-drop ranking mid-run; \
         PR 6 swept float orderings to total_cmp and this rule keeps them there"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in &ws.files {
            let toks = f.toks();
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Ident || t.text != "partial_cmp" {
                    continue;
                }
                // Only call sites: `.partial_cmp(` / `::partial_cmp(`.
                // A `fn partial_cmp` in a PartialOrd impl is the trait
                // being implemented, not an ordering decision.
                let called_on = i > 0 && matches!(toks[i - 1].text.as_str(), "." | "::");
                let invoked = toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false);
                if called_on && invoked {
                    out.push(self.finding(
                        &f.path,
                        t.line,
                        "call to `partial_cmp`; float orderings must use `total_cmp`".to_string(),
                    ));
                }
            }
        }
    }
}
