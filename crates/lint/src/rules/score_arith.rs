//! `clamped-score-arith`: raw `+`/`-` on score-like values in the
//! alignment and kernel hot paths.
//!
//! Scores are i32 with `NEG_INF = i32::MIN / 2` as the unreachable
//! sentinel; a raw add on a sentinel-seeded cell drifts toward
//! `i32::MIN` row over row until it wraps (the PR 1 banded bug, refound
//! in PR 6's sweep). Arithmetic on score values must go through
//! `score::{clamp, add_clamped, gap_chain}` or saturating ops; sites
//! where rawness is the contract (the Gotoh recurrence's tie-break
//! ordering) carry a written suppression instead.

use super::Rule;
use crate::lex::{Tok, TokKind};
use crate::report::Finding;
use crate::Workspace;

/// Files in scope: the alignment kernels and the core step kernels.
/// `score.rs` itself is the implementation of the discipline and is
/// deliberately out of scope.
const SCOPE: &[&str] = &[
    "crates/align/src/banded.rs",
    "crates/align/src/driver.rs",
    "crates/align/src/extend.rs",
    "crates/align/src/ungapped.rs",
    "crates/align/src/ydrop.rs",
    "crates/core/src/bitvec.rs",
    "crates/core/src/warp_engine.rs",
    "crates/core/src/wavefront_step.rs",
];

/// Identifier names treated as score-valued besides anything
/// containing `score`: the sentinel, the gap-cost locals, and the
/// recurrence cell names used across ydrop/banded/wavefront kernels.
const SCOREISH_EXACT: &[&str] = &[
    "NEG_INF", "so_se", "so", "se", "i_val", "d_val", "s_val", "i_left", "s_left", "s_up", "d_up",
    "s_diag", "diag_val",
];

/// Calls whose argument list is an allowed clamping context.
const ALLOWED_CALLS: &[&str] = &[
    "clamp",
    "add_clamped",
    "gap_chain",
    "saturating_add",
    "saturating_sub",
];

fn scoreish(name: &str) -> bool {
    name.contains("score") || SCOREISH_EXACT.contains(&name)
}

pub struct ClampedScoreArith;

impl Rule for ClampedScoreArith {
    fn id(&self) -> &'static str {
        "clamped-score-arith"
    }

    fn provenance(&self) -> &'static str {
        "PR 1/PR 6: raw i32 adds on NEG_INF-seeded scores wrapped toward i32::MIN across rows; \
         score arithmetic must go through score::{clamp, add_clamped, gap_chain}"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in ws.files.iter().filter(|f| SCOPE.contains(&f.path.as_str())) {
            let toks = f.toks();
            for (i, t) in toks.iter().enumerate() {
                if t.kind != TokKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "+=" | "-=") {
                    continue;
                }
                if f.in_test(t.line) {
                    continue;
                }
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                // `+`/`-` are binary only when a value ends to their
                // left; otherwise they are unary / range arithmetic.
                let binary = matches!(prev.kind, TokKind::Ident | TokKind::Num)
                    || matches!(prev.text.as_str(), ")" | "]");
                if !binary {
                    continue;
                }
                let Some(operand) = score_operand(toks, i) else {
                    continue;
                };
                if in_allowed_call(toks, i) {
                    continue;
                }
                out.push(self.finding(
                    &f.path,
                    t.line,
                    format!(
                        "raw `{}` on score-like operand `{}` outside \
                         score::{{clamp, add_clamped, gap_chain}}",
                        t.text, operand
                    ),
                ));
            }
        }
    }
}

/// The score-like identifier adjacent to the operator at `i`, if any.
/// Walks field chains on both sides, so `inp.s_left[l] + inp.so_se`
/// matches on `s_left`/`so_se`, not just the tokens touching the `+`.
fn score_operand(toks: &[Tok], i: usize) -> Option<&str> {
    // Left operand: step back over a trailing index group, then walk
    // the `a.b.c` chain backwards.
    let mut j = i.checked_sub(1)?;
    if toks[j].text == "]" {
        let mut depth = 0i32;
        loop {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    while toks[j].kind == TokKind::Ident {
        if scoreish(&toks[j].text) {
            return Some(&toks[j].text);
        }
        match j.checked_sub(2) {
            Some(p) if toks[j - 1].text == "." && toks[p].kind == TokKind::Ident => j = p,
            _ => break,
        }
    }
    // Right operand: skip one unary minus, then walk the chain forward.
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) == Some("-") {
        j += 1;
    }
    while toks.get(j).map(|t| t.kind) == Some(TokKind::Ident) {
        if scoreish(&toks[j].text) {
            return Some(&toks[j].text);
        }
        if toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
            && toks.get(j + 2).map(|t| t.kind) == Some(TokKind::Ident)
        {
            j += 2;
        } else {
            break;
        }
    }
    None
}

/// Is the operator at `i` lexically inside an argument list of one of
/// `ALLOWED_CALLS`? Scans outward through unmatched `(` until a
/// statement boundary.
fn in_allowed_call(toks: &[Tok], i: usize) -> bool {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" => {
                if depth == 0 {
                    if toks
                        .get(j.wrapping_sub(1))
                        .map(|p| {
                            p.kind == TokKind::Ident && ALLOWED_CALLS.contains(&p.text.as_str())
                        })
                        .unwrap_or(false)
                    {
                        return true;
                    }
                    // Not an allowed call — keep scanning outward.
                } else {
                    depth -= 1;
                }
            }
            "[" if depth > 0 => depth -= 1,
            ";" | "{" | "}" if depth == 0 => return false,
            _ => {}
        }
    }
    false
}
