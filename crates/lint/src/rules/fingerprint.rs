//! `fingerprint-exhaustive`: identity functions must destructure their
//! inputs exhaustively.
//!
//! PR 3's checkpoint fingerprint and PR 9's index fingerprint both
//! grew the same failure mode: a new config/struct field lands, the
//! fingerprint function keeps compiling (it reads fields by name), and
//! resume silently accepts artifacts computed under different
//! semantics. The fix is structural: the identity function opens with
//! a marked destructure
//!
//! ```text
//! // fastz-lint: fingerprint(FastZConfig)
//! let FastZConfig { scoring, flags, .. } = cfg;   // `..` is a finding
//! ```
//!
//! so adding a field without deciding its fingerprint fate is a
//! compile error, and *discarding* a field requires an explicit
//! `// not fingerprinted: <why>` note the rule checks for.

use super::Rule;
use crate::report::Finding;
use crate::source::SourceFile;
use crate::Workspace;

/// Types whose identity feeds checkpoint/artifact reuse. When a
/// workspace defines one of these structs, it must also carry a marked
/// destructure witness; fixtures without the struct stay silent.
const REQUIRED: &[&str] = &[
    "FastZConfig",
    "OptFlags",
    "BitvecConfig",
    "ShardedSeedIndex",
];

/// A marker must be followed by its destructure within this many lines.
const MARKER_REACH: u32 = 4;

pub struct FingerprintExhaustive;

impl Rule for FingerprintExhaustive {
    fn id(&self) -> &'static str {
        "fingerprint-exhaustive"
    }

    fn provenance(&self) -> &'static str {
        "PR 3/PR 9: config fields missing from the checkpoint/index fingerprint resumed \
         stale artifacts under changed semantics; identity functions must destructure \
         exhaustively so new fields fail the build until fingerprinted or waived"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let mut witnessed: Vec<&str> = Vec::new();
        for f in &ws.files {
            for m in &f.fingerprint_markers {
                witnessed.push(&m.type_name);
                self.check_marker(ws, f, m, out);
            }
        }
        // Coverage: each required type that exists in this workspace
        // needs a witness somewhere.
        for req in REQUIRED {
            if witnessed.contains(req) {
                continue;
            }
            for f in &ws.files {
                if let Some(sd) = f.structs.iter().find(|s| s.name == *req) {
                    out.push(self.finding(
                        &f.path,
                        sd.line,
                        format!(
                            "`{req}` feeds config identity but has no \
                             `// fastz-lint: fingerprint({req})` destructure witness"
                        ),
                    ));
                }
            }
        }
    }
}

impl FingerprintExhaustive {
    fn check_marker(
        &self,
        ws: &Workspace,
        f: &SourceFile,
        m: &crate::source::FingerprintMarker,
        out: &mut Vec<Finding>,
    ) {
        let d = f
            .destructures
            .iter()
            .filter(|d| {
                d.type_name == m.type_name && d.line >= m.line && d.line <= m.line + MARKER_REACH
            })
            .min_by_key(|d| d.line);
        let Some(d) = d else {
            out.push(self.finding(
                &f.path,
                m.line,
                format!(
                    "fingerprint marker for `{}` has no `let {} {{ .. }}` destructure \
                     within {} lines",
                    m.type_name, m.type_name, MARKER_REACH
                ),
            ));
            return;
        };
        if d.has_rest {
            out.push(self.finding(
                &f.path,
                d.line,
                format!(
                    "fingerprint destructure of `{}` uses `..`, defeating exhaustiveness",
                    d.type_name
                ),
            ));
        }
        for field in &d.fields {
            if field.discarded && !f.note_near(field.line, 2, "not fingerprinted:") {
                out.push(self.finding(
                    &f.path,
                    field.line,
                    format!(
                        "field `{}` is discarded from the `{}` fingerprint without a \
                         `// not fingerprinted: <why>` note",
                        field.name, d.type_name
                    ),
                ));
            }
        }
        // Cross-check against the struct definition when it is in the
        // scanned set (the compiler enforces this for real builds; the
        // check keeps mutation fixtures honest too).
        let def = ws
            .files
            .iter()
            .flat_map(|sf| sf.structs.iter())
            .find(|s| s.name == m.type_name);
        if let (Some(def), false) = (def, d.has_rest) {
            for sf in &def.fields {
                if !d.fields.iter().any(|pf| &pf.name == sf) {
                    out.push(self.finding(
                        &f.path,
                        d.line,
                        format!(
                            "field `{}` of `{}` is absent from the fingerprint destructure",
                            sf, m.type_name
                        ),
                    ));
                }
            }
        }
    }
}
