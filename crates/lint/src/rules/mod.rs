//! The typed rule registry. Each rule encodes one bug class this repo
//! has already shipped and fixed dynamically; the provenance string
//! names that history and travels with every finding.

pub mod determinism;
pub mod fingerprint;
pub mod float_order;
pub mod kernel_no_panic;
pub mod metric_names;
pub mod score_arith;

use crate::report::Finding;
use crate::Workspace;

/// Rule id reserved for the engine's own suppression accounting
/// (missing reason, unknown rule id, unused suppression). Hygiene
/// findings cannot themselves be suppressed.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

pub trait Rule {
    /// Stable kebab-case id used in findings and `allow(...)` comments.
    fn id(&self) -> &'static str;
    /// The historical bug class this rule encodes.
    fn provenance(&self) -> &'static str;
    /// Scans the workspace and appends findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);

    /// Builds a finding carrying this rule's id and provenance.
    fn finding(&self, file: &str, line: u32, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule: self.id().to_string(),
            message,
            provenance: self.provenance().to_string(),
        }
    }
}

/// Every shipped rule, in registry order (findings are sorted later,
/// so order only affects nothing observable).
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_order::FloatTotalOrder),
        Box::new(score_arith::ClampedScoreArith),
        Box::new(metric_names::MetricNameRegistry),
        Box::new(fingerprint::FingerprintExhaustive),
        Box::new(determinism::Determinism),
        Box::new(kernel_no_panic::KernelNoPanic),
    ]
}

/// All rule ids a suppression may name.
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}
