//! `kernel-no-panic`: the step kernels must not panic on
//! device-shaped inputs.
//!
//! The wavefront and bitvector step kernels are the code a real GPU
//! port would transliterate; a panic there is a device-side abort. The
//! rule forbids `unwrap`/`expect` and panic-family macros outright,
//! and requires every *computed* index (an index expression containing
//! arithmetic) to carry a `// bound: <argument>` note on its line or
//! within the two preceding lines — the CPU-side equivalent of the
//! bounds reasoning a kernel launch can't recover from getting wrong.
//! Plain loop-variable indexing (`row[l]`) needs no note.

use super::Rule;
use crate::lex::TokKind;
use crate::report::Finding;
use crate::source::SourceFile;
use crate::Workspace;

/// Whole-file scope: every fn in the wavefront step interpreter/SIMD
/// module.
const WAVEFRONT: &str = "crates/core/src/wavefront_step.rs";

/// Function-scoped: the bitvector kernel's per-window machinery (the
/// surrounding driver/prefilter code is host-side and may panic on
/// host bugs).
const BITVEC: &str = "crates/core/src/bitvec.rs";
const BITVEC_FNS: &[&str] = &[
    "bitvec_extend_in",
    "scan_column",
    "store_row",
    "tb_row",
    "traceback",
    "window_masks",
];

/// Panic-family macro names (each flagged when followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn in_scope(f: &SourceFile, line: u32) -> bool {
    if f.in_test(line) {
        return false;
    }
    match f.path.as_str() {
        WAVEFRONT => true,
        BITVEC => f
            .fn_at(line)
            .map(|s| BITVEC_FNS.contains(&s.name.as_str()))
            .unwrap_or(false),
        _ => false,
    }
}

pub struct KernelNoPanic;

impl Rule for KernelNoPanic {
    fn id(&self) -> &'static str {
        "kernel-no-panic"
    }

    fn provenance(&self) -> &'static str {
        "kernel contract: the step kernels are the GPU-port surface and a panic there is a \
         device-side abort; no unwrap/expect/panic macros, and computed indices must carry \
         a written `// bound:` argument"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in ws
            .files
            .iter()
            .filter(|f| f.path == WAVEFRONT || f.path == BITVEC)
        {
            let toks = f.toks();
            for (i, t) in toks.iter().enumerate() {
                if !in_scope(f, t.line) {
                    continue;
                }
                if t.kind == TokKind::Ident {
                    let next = toks.get(i + 1).map(|n| n.text.as_str());
                    if matches!(t.text.as_str(), "unwrap" | "expect")
                        && i > 0
                        && toks[i - 1].text == "."
                        && next == Some("(")
                    {
                        out.push(self.finding(
                            &f.path,
                            t.line,
                            format!("`.{}()` in a step kernel", t.text),
                        ));
                    }
                    if PANIC_MACROS.contains(&t.text.as_str()) && next == Some("!") {
                        out.push(self.finding(
                            &f.path,
                            t.line,
                            format!("`{}!` in a step kernel", t.text),
                        ));
                    }
                }
                // Computed indexing: `expr[... arithmetic ...]`.
                if t.kind == TokKind::Punct && t.text == "[" && is_index_site(toks, i) {
                    if let Some(close) = matching_bracket(toks, i) {
                        let computed = toks[i + 1..close].iter().any(|x| {
                            x.kind == TokKind::Punct && matches!(x.text.as_str(), "+" | "-" | "*")
                        });
                        if computed && !f.note_near(t.line, 2, "bound:") {
                            out.push(self.finding(
                                &f.path,
                                t.line,
                                "computed index without a `// bound:` note".to_string(),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Is the `[` at `i` an indexing site (as opposed to an array literal,
/// slice type, or attribute)? True when a value expression ends
/// immediately before it.
fn is_index_site(toks: &[crate::lex::Tok], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
        return false;
    };
    match prev.kind {
        TokKind::Ident => !matches!(
            prev.text.as_str(),
            "in" | "mut" | "return" | "as" | "else" | "if" | "match" | "vec"
        ),
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
        _ => false,
    }
}

fn matching_bracket(toks: &[crate::lex::Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}
