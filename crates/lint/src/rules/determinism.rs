//! `determinism`: no unordered collections, wall clocks, or ambient
//! RNG in modeled-time, report, and export paths.
//!
//! The bit-identity contract (conformance oracle, pool-invariance
//! proptests, the serve chaos soak) requires that every report,
//! export, checkpoint, and modeled-time result be a pure function of
//! its inputs. `HashMap`/`HashSet` iteration order, `Instant`/
//! `SystemTime` reads, and `thread_rng` all smuggle ambient state into
//! those paths. `Duration` stays legal — modeled time is represented,
//! not measured.

use super::Rule;
use crate::lex::TokKind;
use crate::report::Finding;
use crate::Workspace;

/// Directory prefixes in scope (everything under them).
const PREFIXES: &[&str] = &[
    "crates/gpu-sim/src/sanitize/",
    "crates/obs/src/",
    "crates/serve/src/",
];

/// Individual files in scope: persistence, checkpointing, modeled
/// cost/time, and report modules.
const FILES: &[&str] = &[
    "crates/conformance/src/report.rs",
    "crates/core/src/cost.rs",
    "crates/core/src/resilient.rs",
    "crates/gpu-sim/src/counters.rs",
    "crates/gpu-sim/src/model.rs",
    "crates/gpu-sim/src/occupancy.rs",
    "crates/gpu-sim/src/roofline.rs",
    "crates/gpu-sim/src/stream.rs",
    "crates/gpu-sim/src/timeline.rs",
    "crates/seed/src/persist.rs",
];

/// Forbidden identifiers and what each smuggles in.
const FORBIDDEN: &[(&str, &str)] = &[
    ("HashMap", "unordered iteration"),
    ("HashSet", "unordered iteration"),
    ("Instant", "wall-clock read"),
    ("SystemTime", "wall-clock read"),
    ("thread_rng", "ambient RNG"),
];

fn in_scope(path: &str) -> bool {
    PREFIXES.iter().any(|p| path.starts_with(p)) || FILES.contains(&path)
}

pub struct Determinism;

impl Rule for Determinism {
    fn id(&self) -> &'static str {
        "determinism"
    }

    fn provenance(&self) -> &'static str {
        "bit-identity contract: HashMap iteration order, wall-clock reads, and ambient RNG \
         make reports and exports nondeterministic; use BTreeMap/sorted collections and \
         modeled time"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for f in ws.files.iter().filter(|f| in_scope(&f.path)) {
            for t in f.toks() {
                if t.kind != TokKind::Ident || f.in_test(t.line) {
                    continue;
                }
                if let Some((name, why)) = FORBIDDEN.iter().find(|(name, _)| t.text == *name) {
                    out.push(self.finding(
                        &f.path,
                        t.line,
                        format!("`{name}` ({why}) in a determinism-scoped path"),
                    ));
                }
            }
        }
    }
}
