//! fastz-lint: a project-invariant static analyzer.
//!
//! Every rule encodes a bug class this repo has already shipped and
//! fixed once — NaN-panicking float ranking (PR 4), unclamped score
//! arithmetic (PR 1/PR 6), metric-name drift (PR 3), non-exhaustive
//! fingerprints (PR 3/PR 9), nondeterministic collections in report
//! paths, and panicking step kernels. The workspace vendors no
//! dependencies, so parsing is a small in-crate lexer plus a
//! structural pass (`lex`/`source`) rather than `syn` — the same
//! vendor-what-you-need pattern as the `rand`/`proptest`/`criterion`
//! shims.
//!
//! Findings are suppressible inline:
//!
//! ```text
//! // fastz-lint: allow(rule-id, written reason)
//! ```
//!
//! A trailing comment covers its own line; a standalone comment covers
//! the following paragraph (down to the next blank line). Suppressions
//! are accounted, not free: a missing reason, an unknown rule id, or a
//! suppression that matches no finding is itself a
//! `suppression-hygiene` finding, and hygiene findings cannot be
//! suppressed.

pub mod lex;
pub mod report;
pub mod rules;
pub mod source;

use report::{AppliedSuppression, LintReport};
use rules::SUPPRESSION_HYGIENE;
use source::SourceFile;
use std::io;
use std::path::Path;

/// Crate directories excluded from the scan: the vendored shims
/// reproduce external API surface (not this project's invariants), and
/// the lint crate itself — its rule tables and fixtures contain
/// exactly the tokens the rules hunt for.
const EXCLUDED_CRATES: &[&str] = &["criterion", "lint", "proptest", "rand"];

/// The parsed file set a lint run operates on.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from in-memory sources (the mutation-corpus
    /// path): `(repo-relative path, source)` pairs. Paths decide rule
    /// scope, so fixtures choose their path to opt into a rule's scope.
    pub fn from_sources(sources: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Scans a repo checkout: `src/` at the root plus every
    /// `crates/*/src` except [`EXCLUDED_CRATES`]. Paths are stored
    /// repo-relative with forward slashes; the file list is sorted, so
    /// two scans of the same tree are identical.
    pub fn scan_repo(root: &Path) -> io::Result<Workspace> {
        let mut paths: Vec<(String, std::path::PathBuf)> = Vec::new();
        let root_src = root.join("src");
        if root_src.is_dir() {
            collect_rs(&root_src, "src", &mut paths)?;
        }
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&crates)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .collect();
            entries.sort();
            for dir in entries {
                let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if EXCLUDED_CRATES.contains(&name) {
                    continue;
                }
                let src = dir.join("src");
                if src.is_dir() {
                    collect_rs(&src, &format!("crates/{name}/src"), &mut paths)?;
                }
            }
        }
        paths.sort();
        let files = paths
            .into_iter()
            .map(|(rel, abs)| {
                let text = std::fs::read_to_string(&abs)?;
                Ok(SourceFile::parse(&rel, &text))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Workspace { files })
    }
}

fn collect_rs(
    dir: &Path,
    rel: &str,
    out: &mut Vec<(String, std::path::PathBuf)>,
) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if p.is_dir() {
            collect_rs(&p, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            out.push((format!("{rel}/{name}"), p));
        }
    }
    Ok(())
}

/// Runs every rule and applies suppression accounting; the returned
/// report is finalized (sorted) and deterministic.
pub fn run(ws: &Workspace) -> LintReport {
    let rule_set = rules::all_rules();
    let known_ids = rules::rule_ids();
    let mut raw = Vec::new();
    for r in &rule_set {
        r.check(ws, &mut raw);
    }

    let mut rep = LintReport {
        files_scanned: ws.files.len(),
        ..LintReport::default()
    };

    // Per-file suppression usage tracking.
    let mut used: Vec<Vec<bool>> = ws
        .files
        .iter()
        .map(|f| vec![false; f.suppressions.len()])
        .collect();

    for finding in raw {
        let hit = ws.files.iter().enumerate().find_map(|(fi, f)| {
            if f.path != finding.file {
                return None;
            }
            f.suppressions
                .iter()
                .position(|s| {
                    s.rule == finding.rule
                        && finding.line >= s.cover_start
                        && finding.line <= s.cover_end
                })
                .map(|si| (fi, si))
        });
        match hit {
            Some((fi, si)) => {
                used[fi][si] = true;
                let s = &ws.files[fi].suppressions[si];
                rep.suppressions.push(AppliedSuppression {
                    file: finding.file.clone(),
                    line: s.line,
                    rule: s.rule.clone(),
                    reason: s.reason.clone(),
                });
            }
            None => rep.findings.push(finding),
        }
    }
    // The same suppression can absorb several findings (paragraph
    // scope); report it once.
    rep.suppressions.dedup();

    // Hygiene: every suppression must name a known rule, carry a
    // reason, and match at least one finding.
    for (fi, f) in ws.files.iter().enumerate() {
        for (si, s) in f.suppressions.iter().enumerate() {
            let hygiene = |msg: String| report::Finding {
                file: f.path.clone(),
                line: s.line,
                rule: SUPPRESSION_HYGIENE.to_string(),
                message: msg,
                provenance: "suppressions are part of the gate: each must name a known rule, \
                             carry a written reason, and match a live finding"
                    .to_string(),
            };
            if !known_ids.contains(&s.rule.as_str()) {
                rep.findings.push(hygiene(format!(
                    "suppression names unknown rule `{}`",
                    s.rule
                )));
                continue;
            }
            if s.reason.is_empty() {
                rep.findings.push(hygiene(format!(
                    "suppression of `{}` has no written reason",
                    s.rule
                )));
                continue;
            }
            if !used[fi][si] {
                rep.findings.push(hygiene(format!(
                    "suppression of `{}` matches no finding; remove it",
                    s.rule
                )));
            }
        }
    }

    rep.finalize();
    rep
}
