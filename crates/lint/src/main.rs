//! `fastz-lint` CLI.
//!
//! ```text
//! cargo run -p fastz-lint -- --deny-all --json lint.json
//! ```
//!
//! Scans the workspace rooted at `--root` (default: the current
//! directory), prints a human-readable summary, optionally writes the
//! deterministic JSON report, and with `--deny-all` exits non-zero
//! when any finding survives suppression.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut json: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let ws = match fastz_lint::Workspace::scan_repo(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("fastz-lint: scanning {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let rep = fastz_lint::run(&ws);
    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, rep.to_json()) {
            eprintln!("fastz-lint: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", rep.render_text());
    if deny_all && !rep.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("fastz-lint: {err}");
    }
    eprintln!("usage: fastz-lint [--deny-all] [--json PATH] [--root PATH]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
