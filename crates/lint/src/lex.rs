//! A small Rust lexer: enough token fidelity for the rule engine to
//! never match inside strings, comments, or char literals.
//!
//! The workspace has no crates.io access, so there is no `syn` to lean
//! on; this lexer plus the structural pass in [`crate::source`] vendor
//! the fraction of its surface the rules actually consume (the same
//! pattern as the `rand`/`proptest`/`criterion` shims). Fidelity
//! matters: PR 4's `partial_cmp().unwrap()` lives on in a dozen
//! comments that a grep-based checker would re-flag forever.

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (regular, raw, byte); `text` is the inner value
    /// with escapes left verbatim.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation / operator, maximal-munch (`::`, `+=`, `<<`, ...).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One comment (line or block); block comments are attributed to their
/// starting line.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its
    /// line (a standalone comment; suppression scoping keys on this).
    pub standalone: bool,
}

/// Lexer output: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;

    macro_rules! bump_lines {
        ($s:expr) => {
            for &c in $s {
                if c == b'\n' {
                    line += 1;
                    line_has_code = false;
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
                line_has_code = false;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i + 2;
            let mut j = start;
            while j < b.len() && b[j] != b'\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: src[start..j].to_string(),
                standalone: !line_has_code,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start_line = line;
            let standalone = !line_has_code;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            bump_lines!(&b[i..j]);
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: src[start..end].to_string(),
                standalone,
            });
            i = j;
            continue;
        }
        line_has_code = true;
        // Raw / byte string prefixes.
        if (c == b'r' || c == b'b') && is_raw_or_byte_string(b, i) {
            let (tok, next, consumed_newlines) = lex_string_like(src, b, i, line);
            line += consumed_newlines;
            if line_ends_open(b, i, next) {
                line_has_code = false;
            }
            out.toks.push(tok);
            i = next;
            continue;
        }
        // Identifier / keyword.
        if c == b'_' || c.is_ascii_alphabetic() {
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: src[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < b.len() {
                let d = b[j];
                if d == b'_' || d == b'.' || d.is_ascii_alphanumeric() {
                    // Don't eat `..` range operators or method calls on
                    // literals (`1.max(2)` keeps `.max` out).
                    if d == b'.' && (j + 1 >= b.len() || !b[j + 1].is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                } else if (d == b'+' || d == b'-')
                    && matches!(b[j - 1], b'e' | b'E')
                    && j + 1 < b.len()
                    && b[j + 1].is_ascii_digit()
                {
                    j += 1; // exponent sign
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: src[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Regular string.
        if c == b'"' {
            let (tok, next, consumed_newlines) = lex_string_like(src, b, i, line);
            line += consumed_newlines;
            out.toks.push(tok);
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some((tok, next)) = lex_char(src, b, i, line) {
                out.toks.push(tok);
                i = next;
                continue;
            }
            // Lifetime: consume ident after the quote.
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: src[i..j].to_string(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-char operator, maximal munch.
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (*p).to_string(),
                line,
            });
            i += p.len();
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Is the byte at `i` the start of `r"`, `r#"`, `b"`, `br"`, `b'`-like
/// string syntax (as opposed to an identifier starting with r/b)?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
        return j < b.len() && b[j] == b'"';
    }
    // b"..." or b'.'
    b[i] == b'b' && j < b.len() && (b[j] == b'"' || b[j] == b'\'')
}

/// Lexes any string-like literal starting at `i`; returns (token, next
/// index, newlines consumed).
fn lex_string_like(src: &str, b: &[u8], i: usize, line: u32) -> (Tok, usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // b'x' byte char.
        let (tok, next) = lex_char(src, b, j, line).unwrap_or((
            Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
            },
            j + 1,
        ));
        return (tok, next, 0);
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    let content_start = j;
    let mut newlines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
        }
        if !raw && b[j] == b'\\' {
            j += 2;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while raw && seen < hashes && k < b.len() && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if !raw || seen == hashes {
                let tok = Tok {
                    kind: TokKind::Str,
                    text: src[content_start..j].to_string(),
                    line,
                };
                return (tok, k, newlines);
            }
        }
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Str,
            text: src[content_start..j.min(src.len())].to_string(),
            line,
        },
        j,
        newlines,
    )
}

/// Tries to lex a char literal at `i` (which holds `'`). Returns `None`
/// when the quote starts a lifetime instead.
fn lex_char(src: &str, b: &[u8], i: usize, line: u32) -> Option<(Tok, usize)> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // Escapes like \u{1F600} / \x41.
        if j <= b.len() && b[j - 1] == b'u' && j < b.len() && b[j] == b'{' {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        } else if j - 1 < b.len() && b[j - 1] == b'x' {
            j += 2;
        }
        if j < b.len() && b[j] == b'\'' {
            return Some((
                Tok {
                    kind: TokKind::Char,
                    text: src[i + 1..j].to_string(),
                    line,
                },
                j + 1,
            ));
        }
        return None;
    }
    // One scalar (possibly multi-byte) then a closing quote.
    let ch = src[j..].chars().next()?;
    let after = j + ch.len_utf8();
    if after < b.len() && b[after] == b'\'' {
        return Some((
            Tok {
                kind: TokKind::Char,
                text: src[j..after].to_string(),
                line,
            },
            after + 1,
        ));
    }
    None
}

/// True when the span `[i, next)` ends exactly at a newline boundary
/// (used to reset the standalone-comment tracking after multi-line raw
/// strings).
fn line_ends_open(b: &[u8], _i: usize, next: usize) -> bool {
    next < b.len() && b[next] == b'\n'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let l = lex("let x = 1; // partial_cmp lives here\n/* and\nhere */ y");
        assert!(l.toks.iter().all(|t| t.text != "partial_cmp"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.comments[1].text.contains("and\nhere"));
        assert_eq!(l.toks.last().unwrap().line, 3);
    }

    #[test]
    fn strings_and_chars_do_not_leak_idents() {
        let ks = kinds(r#"f("partial_cmp", 'x', b'"', r#inner)"#);
        assert!(ks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "partial_cmp"));
        let l = lex("let s = \"a\\\"b\"; t");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_track_lines() {
        let l = lex("let s = r#\"line\nline\"#; x");
        assert_eq!(l.toks.last().unwrap().line, 2);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) {}");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        assert!(ks.iter().all(|(k, _)| *k != TokKind::Char));
    }

    #[test]
    fn maximal_munch_operators() {
        let ks = kinds("a += b;\nc :: d .. e <<= f");
        let ops: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["+=", ";", "::", "..", "<<="]);
    }

    #[test]
    fn numbers_with_suffixes_and_exponents() {
        let ks = kinds("1_000i64 + 1.5e-3 - 0xff.count_ones()");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000i64", "1.5e-3", "0xff"]);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "count_ones"));
    }

    #[test]
    fn standalone_vs_trailing_comments() {
        let l = lex("  // standalone\nlet x = 1; // trailing\n");
        assert!(l.comments[0].standalone);
        assert!(!l.comments[1].standalone);
    }
}
