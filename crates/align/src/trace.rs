//! Cell-level tracing for the DP engines.
//!
//! The conformance oracle (crate `fastz-conformance`) checks the paper's
//! invariants *cell for cell*: conservative pruning must never value a
//! cell below the exact engine, and the warp engine must agree with the
//! scalar conservative engine wherever both computed a cell. To make
//! that possible without slowing the hot paths, every engine is generic
//! over a [`CellSink`]; the production entry points pass [`NoTrace`],
//! whose empty inline `record` compiles to nothing, while the oracle
//! passes [`DenseTrace`] to capture every live cell.

use std::collections::BTreeMap;

/// The three Gotoh state values of one live DP cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellScores {
    /// Best score ending at this cell in the S (match) state.
    pub s: i32,
    /// Best score ending in the I state (gap in the query).
    pub i: i32,
    /// Best score ending in the D state (gap in the target).
    pub d: i32,
}

/// Receiver for per-cell DP values. `record` is called once per *live*
/// (unpruned) cell with matrix coordinates `(i, j)` — `i` query bases
/// and `j` target bases consumed.
pub trait CellSink {
    /// Records one live cell.
    fn record(&mut self, i: usize, j: usize, cell: CellScores);
}

/// No-op sink for production paths; optimizes away entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoTrace;

impl CellSink for NoTrace {
    #[inline(always)]
    fn record(&mut self, _i: usize, _j: usize, _cell: CellScores) {}
}

/// Records every live cell, ordered row-major by `(i, j)` — the order
/// LASTZ's sequential sweep completes cells in, which is the order the
/// conformance report uses to pick the *first* divergent cell.
#[derive(Clone, Debug, Default)]
pub struct DenseTrace {
    /// Live cells keyed by `(i, j)`.
    pub cells: BTreeMap<(usize, usize), CellScores>,
}

impl DenseTrace {
    /// The S value at `(i, j)`, if the cell was live.
    pub fn s(&self, i: usize, j: usize) -> Option<i32> {
        self.cells.get(&(i, j)).map(|c| c.s)
    }

    /// Number of live cells recorded.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell was recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl CellSink for DenseTrace {
    #[inline]
    fn record(&mut self, i: usize, j: usize, cell: CellScores) {
        // Engines may revisit a cell (the warp engine recomputes strip
        // boundaries never, but the eager window and executor share
        // cells); last write wins, matching the engines' stores.
        self.cells.insert((i, j), cell);
    }
}
