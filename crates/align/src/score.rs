//! Shared NEG_INF-floor score arithmetic.
//!
//! PR 1 added overflow clamps at the ydrop/warp store sites, each
//! hand-rolled in place. This module is the single home for that
//! discipline so the scalar engines and the warp engine's interpreter
//! and SIMD backends clamp *identically* — a one-bit divergence at the
//! lane-31 strip handoff would otherwise desynchronize the backends.
//!
//! Two operations cover every site:
//!
//! * [`clamp`] — floor a computed score at [`NEG_INF`]. Used at store
//!   sites, where a live cell's I/D value may still be sentinel-derived
//!   (`NEG_INF + k·extend`) and must not drift toward `i32::MIN`.
//! * [`add_clamped`] — saturating add floored at [`NEG_INF`]. Used
//!   where a gap chain is *synthesized* arithmetically (row-0 I chains,
//!   strip-entry boundary scores `open + extend·(j−1)`) and the column
//!   index is unbounded, so the raw add could wrap for extreme inputs.
//!
//! The Gotoh recurrence adds themselves stay raw on purpose: both
//! operands are already clamped stored values, so a single add cannot
//! wrap, and clamping *inside* the recurrence could flip the
//! `extend >= open` tie-break (and hence the traceback byte) when both
//! sides sit at the sentinel floor.

use crate::ydrop::NEG_INF;

/// Floors `v` at [`NEG_INF`] — the store-site clamp.
#[inline(always)]
pub fn clamp(v: i32) -> i32 {
    v.max(NEG_INF)
}

/// `a + b`, saturating, floored at [`NEG_INF`].
///
/// For in-range scores this is exactly `a + b`; near `i32::MIN` the
/// saturating add keeps the intermediate defined and the floor restores
/// the engine's sentinel. Both backends use this same scalar form (the
/// SIMD path applies it lane-wise), so clamped results are bit-equal.
#[inline(always)]
pub fn add_clamped(a: i32, b: i32) -> i32 {
    a.saturating_add(b).max(NEG_INF)
}

/// `base + step·k`, saturating, floored at [`NEG_INF`] — the affine
/// gap-chain form (`open_score + extend_score·(j−1)` in row 0 and at
/// strip-entry boundaries).
#[inline(always)]
pub fn gap_chain(base: i32, step: i32, k: i32) -> i32 {
    add_clamped(base, step.saturating_mul(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_adds_are_exact() {
        assert_eq!(add_clamped(100, -15), 85);
        assert_eq!(add_clamped(-30, -5), -35);
        assert_eq!(add_clamped(0, 0), 0);
        assert_eq!(clamp(42), 42);
        assert_eq!(clamp(NEG_INF), NEG_INF);
    }

    #[test]
    fn sentinel_plus_penalty_floors_at_neg_inf() {
        // The dead-gap-chain case the clamps exist for: NEG_INF plus any
        // bounded penalty must come back to the floor, not below it.
        assert_eq!(add_clamped(NEG_INF, -5), NEG_INF);
        assert_eq!(add_clamped(NEG_INF, -1_000_000), NEG_INF);
        assert_eq!(add_clamped(NEG_INF, NEG_INF), NEG_INF);
        // A positive score lifts the sentinel exactly as a raw add would.
        assert_eq!(add_clamped(NEG_INF, 7), NEG_INF + 7);
    }

    #[test]
    fn i32_min_adjacent_operands_do_not_wrap() {
        // Regression (satellite of PR 6): operands adjacent to i32::MIN
        // must saturate, never wrap to positive.
        assert_eq!(add_clamped(i32::MIN, -1), NEG_INF);
        assert_eq!(add_clamped(i32::MIN + 5, -10), NEG_INF);
        assert_eq!(add_clamped(i32::MIN, i32::MIN), NEG_INF);
        assert_eq!(add_clamped(i32::MIN + 1, 0), NEG_INF);
        assert!(add_clamped(i32::MIN, -1) < 0, "no wraparound to positive");
        assert_eq!(clamp(i32::MIN), NEG_INF);
        assert_eq!(clamp(i32::MIN + 1), NEG_INF);
    }

    #[test]
    fn gap_chain_matches_the_raw_form_in_range() {
        let (so_se, se) = (-35, -5);
        for j in 1..2000i32 {
            assert_eq!(gap_chain(so_se, se, j - 1), so_se + se * (j - 1));
        }
    }

    #[test]
    fn gap_chain_saturates_on_astronomical_columns() {
        // A column index large enough to wrap the multiply must floor at
        // NEG_INF instead (the cell is dead either way; the invariant is
        // that it stays a sentinel).
        assert_eq!(gap_chain(-35, -5, i32::MAX), NEG_INF);
        assert_eq!(gap_chain(i32::MIN, -5, 1_000_000), NEG_INF);
    }
}
