//! One-sided gapped y-drop extension (the scalar reference engine).
//!
//! This is the CPU equivalent of LASTZ's `ydrop_one_sided_align`, the
//! function the paper measures at > 99.75 % of gapped LASTZ's runtime.
//! An extension starts at an anchor boundary (matrix origin), explores the
//! DP matrix of the Gotoh affine-gap recurrences (paper Fig. 1), prunes
//! cells whose score trails the best score seen so far by more than
//! `ydrop`, and reports the best-scoring cell plus (optionally) the
//! traceback to it.
//!
//! Two pruning modes are provided:
//!
//! * [`PruneMode::Exact`] — LASTZ's sequential rule: the pruning threshold
//!   tracks the *running* best score, updated cell by cell.
//! * [`PruneMode::Conservative`] — the parallel-safe approximation used by
//!   FastZ and Darwin-WGA (paper §3.4): the threshold uses only scores
//!   from *completed* rows, so pruning decisions never depend on values
//!   still being computed concurrently. This explores a superset of the
//!   exact mode's cells and can only find an equal or higher score.

use crate::alignment::EditOp;
use crate::score;
use crate::trace::{CellScores, CellSink, NoTrace};
use fastz_genome::Scoring;

/// Sentinel for unreachable DP states; low enough that adding any score
/// never overflows, high enough that two adds stay negative.
///
/// Overflow discipline: every value the engine *stores* is clamped to at
/// least `NEG_INF` (see the store sites below), so any single addition of
/// a stored value and a bounded score constant stays far above
/// `i32::MIN`. Without the clamp, a long dead I/D chain accumulates
/// `NEG_INF + k·extend_score` and would wrap after ~3·10⁸ columns.
pub const NEG_INF: i32 = i32::MIN / 4;

/// Pruning rule (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PruneMode {
    /// LASTZ's sequential running-best pruning.
    Exact,
    /// Parallel-safe previous-row-best pruning (FastZ / Darwin-WGA).
    Conservative,
}

/// Work statistics for one extension (feed the cost models and Table 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExtensionStats {
    /// DP cells computed (the search space, not the optimal alignment).
    pub cells: u64,
    /// Rows explored (query extent of the search space).
    pub rows: usize,
    /// Maximum target extent (columns) explored in any row.
    pub max_cols: usize,
}

/// Result of a one-sided extension.
#[derive(Clone, Debug)]
pub struct OneSidedExtension {
    /// Best score found (≥ 0; the origin scores 0).
    pub best_score: i32,
    /// Query bases consumed at the best cell.
    pub best_i: usize,
    /// Target bases consumed at the best cell.
    pub best_j: usize,
    /// Edit script from the origin to the best cell (present when
    /// traceback was requested). Ops are in forward order.
    pub ops: Option<Vec<EditOp>>,
    /// Search-space statistics.
    pub stats: ExtensionStats,
}

impl OneSidedExtension {
    /// The paper's per-extension "alignment length": larger of the two
    /// extents of the *optimal* alignment.
    pub fn extent(&self) -> usize {
        self.best_i.max(self.best_j)
    }
}

/// Packed traceback byte layout (paper §3.1.3: 1+1+2 bits in one byte).
pub mod tb {
    /// Mask for the S-choice field (bits 0-1).
    pub const S_MASK: u8 = 0b0011;
    /// S came from the diagonal (match/substitution).
    pub const S_DIAG: u8 = 0;
    /// S came from the I (horizontal gap) matrix.
    pub const S_FROM_I: u8 = 1;
    /// S came from the D (vertical gap) matrix.
    pub const S_FROM_D: u8 = 2;
    /// Origin / unreachable.
    pub const S_ORIGIN: u8 = 3;
    /// I extended an existing gap (bit 2); otherwise it opened from S.
    pub const I_EXTEND: u8 = 0b0100;
    /// D extended an existing gap (bit 3); otherwise it opened from S.
    pub const D_EXTEND: u8 = 0b1000;
}

/// One row of the ragged traceback matrix.
#[derive(Clone, Debug)]
struct TbRow {
    /// First column stored in this row.
    lo: usize,
    /// Packed bytes for columns `lo .. lo + bytes.len()`.
    bytes: Vec<u8>,
}

/// Ragged traceback matrix for the explored region.
#[derive(Clone, Debug, Default)]
pub struct Traceback {
    rows: Vec<TbRow>,
}

impl Traceback {
    pub(crate) fn push_row(&mut self, lo: usize, bytes: Vec<u8>) {
        self.rows.push(TbRow { lo, bytes });
    }

    /// The packed byte at `(i, j)`; `S_ORIGIN` outside the stored region.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u8 {
        match self.rows.get(i) {
            Some(row) if j >= row.lo && j - row.lo < row.bytes.len() => row.bytes[j - row.lo],
            _ => tb::S_ORIGIN,
        }
    }

    /// Total stored traceback bytes.
    pub fn bytes(&self) -> usize {
        self.rows.iter().map(|r| r.bytes.len()).sum()
    }
}

/// Walks a packed traceback from `(i, j)` back to the origin, returning
/// forward-ordered, run-length-merged edit ops.
pub fn walk_traceback(tbm: &Traceback, i: usize, j: usize) -> Vec<EditOp> {
    walk_traceback_with(|i, j| tbm.get(i, j), i, j)
}

/// [`walk_traceback`] over any packed-byte source (the warp engine's
/// shared-memory eager window and the executor's trimmed matrix use this
/// directly).
pub fn walk_traceback_with(
    get: impl Fn(usize, usize) -> u8,
    mut i: usize,
    mut j: usize,
) -> Vec<EditOp> {
    #[derive(PartialEq)]
    enum State {
        S,
        I,
        D,
    }
    let mut state = State::S;
    let mut rev: Vec<EditOp> = Vec::new();
    let push = |rev: &mut Vec<EditOp>, op: EditOp| match (rev.last_mut(), op) {
        (Some(EditOp::Diag(a)), EditOp::Diag(b)) => *a += b,
        (Some(EditOp::GapQ(a)), EditOp::GapQ(b)) => *a += b,
        (Some(EditOp::GapT(a)), EditOp::GapT(b)) => *a += b,
        _ => rev.push(op),
    };
    while i > 0 || j > 0 {
        let byte = get(i, j);
        match state {
            State::S => match byte & tb::S_MASK {
                tb::S_DIAG => {
                    assert!(i > 0 && j > 0, "diagonal move out of bounds at ({i},{j})");
                    push(&mut rev, EditOp::Diag(1));
                    i -= 1;
                    j -= 1;
                }
                tb::S_FROM_I => state = State::I,
                tb::S_FROM_D => state = State::D,
                _ => panic!("traceback hit an unreachable cell at ({i},{j})"),
            },
            State::I => {
                assert!(j > 0, "I move out of bounds at ({i},{j})");
                push(&mut rev, EditOp::GapQ(1));
                let extend = byte & tb::I_EXTEND != 0;
                j -= 1;
                if !extend {
                    state = State::S;
                }
            }
            State::D => {
                assert!(i > 0, "D move out of bounds at ({i},{j})");
                push(&mut rev, EditOp::GapT(1));
                let extend = byte & tb::D_EXTEND != 0;
                i -= 1;
                if !extend {
                    state = State::S;
                }
            }
        }
    }
    rev.reverse();
    rev
}

/// Scratch buffers reused across extensions (the drivers run millions of
/// extensions; reallocating three score rows per call would dominate).
#[derive(Default)]
pub struct YDropScratch {
    s_prev: Vec<i32>,
    d_prev: Vec<i32>,
    s_cur: Vec<i32>,
    d_cur: Vec<i32>,
}

/// Runs one-sided y-drop extension of `query` against `target` (both are
/// the suffix slices in the extension direction; the caller reverses them
/// for leftward extension).
pub fn ydrop_extend(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    mode: PruneMode,
    want_traceback: bool,
) -> OneSidedExtension {
    ydrop_extend_with(
        target,
        query,
        scoring,
        mode,
        want_traceback,
        &mut YDropScratch::default(),
    )
}

/// [`ydrop_extend`] with caller-provided scratch buffers.
pub fn ydrop_extend_with(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    mode: PruneMode,
    want_traceback: bool,
    scratch: &mut YDropScratch,
) -> OneSidedExtension {
    ydrop_extend_traced(
        target,
        query,
        scoring,
        mode,
        want_traceback,
        scratch,
        &mut NoTrace,
    )
}

/// [`ydrop_extend_with`] that additionally reports every live cell to
/// `sink` (the conformance oracle's cell-for-cell hook; [`NoTrace`]
/// compiles the calls away on the production path).
pub fn ydrop_extend_traced<K: CellSink>(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    mode: PruneMode,
    want_traceback: bool,
    scratch: &mut YDropScratch,
    sink: &mut K,
) -> OneSidedExtension {
    let so_se = scoring.gaps.open_score();
    let se = scoring.gaps.extend_score();
    let ydrop = scoring.ydrop;

    let n = target.len(); // columns (j consumes target)
    let m = query.len(); // rows (i consumes query)

    let mut best_score = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;
    let mut stats = ExtensionStats::default();
    let mut tbm = Traceback::default();

    // ---- Row 0: pure I chain along the target. -------------------------
    // prev-row state: S and D values over [prev_lo, prev_hi).
    let mut s_prev = std::mem::take(&mut scratch.s_prev);
    let mut d_prev = std::mem::take(&mut scratch.d_prev);
    let mut s_cur_buf = std::mem::take(&mut scratch.s_cur);
    let mut d_cur_buf = std::mem::take(&mut scratch.d_cur);
    s_prev.clear();
    d_prev.clear();
    let mut prev_lo = 0usize;

    {
        let mut tb_row: Vec<u8> = Vec::new();
        let mut i_val = NEG_INF;
        let mut s_val;
        let mut j = 0usize;
        loop {
            if j == 0 {
                s_val = 0;
                if want_traceback {
                    tb_row.push(tb::S_ORIGIN);
                }
            } else {
                i_val = if j == 1 {
                    so_se
                } else {
                    score::add_clamped(i_val, se)
                };
                s_val = i_val;
                if want_traceback {
                    let mut byte = tb::S_FROM_I;
                    if j > 1 {
                        byte |= tb::I_EXTEND;
                    }
                    tb_row.push(byte);
                }
            }
            stats.cells += 1;
            sink.record(
                0,
                j,
                CellScores {
                    s: s_val,
                    i: i_val,
                    d: NEG_INF,
                },
            );
            s_prev.push(s_val);
            d_prev.push(NEG_INF);
            j += 1;
            // Row 0's threshold: best score so far is 0 in both modes.
            if j > n || (j >= 1 && score::gap_chain(so_se, se, j as i32 - 1) < -ydrop) {
                break;
            }
        }
        stats.rows = 1;
        stats.max_cols = s_prev.len();
        if want_traceback {
            tbm.push_row(0, tb_row);
        }
    }
    let mut prev_hi = s_prev.len(); // exclusive

    // ---- Rows 1..  ------------------------------------------------------
    let mut i = 1usize;
    while i <= m && prev_lo < prev_hi {
        let best_ref = best_score; // snapshot: Conservative uses this all row
        let mut running_best = best_score;
        let threshold_base = match mode {
            PruneMode::Exact => 0, // recomputed per cell from running_best
            PruneMode::Conservative => best_ref - ydrop,
        };

        let s_cur = &mut s_cur_buf;
        let d_cur = &mut d_cur_buf;
        s_cur.clear();
        d_cur.clear();
        let mut tb_row: Vec<u8> = Vec::new();

        let lo = prev_lo;
        let mut row_first_live: Option<usize> = None;
        let mut row_last_live = 0usize;
        let mut i_left = NEG_INF; // I[i][j-1]
        let mut s_left = NEG_INF; // S[i][j-1]
        let mut j = lo;
        loop {
            // Inputs from the previous row. A column maps into the stored
            // interval iff `prev_lo <= col < prev_hi`; `checked_sub`
            // makes the underflowing cases (`col < prev_lo`, or the
            // diagonal into column 0) explicit instead of relying on
            // wrapped indices being out of range.
            debug_assert!(prev_lo <= prev_hi);
            let prev_idx = |col: usize| col.checked_sub(prev_lo).filter(|&k| k < prev_hi - prev_lo);
            let (s_up, d_up) = match prev_idx(j) {
                Some(k) => (s_prev[k], d_prev[k]),
                None => (NEG_INF, NEG_INF),
            };
            let s_diag = match j.checked_sub(1).and_then(prev_idx) {
                Some(k) => s_prev[k],
                None => NEG_INF, // no diagonal into column 0 / outside interval
            };

            // Gotoh recurrences (paper Fig. 1).
            // fastz-lint: allow(clamped-score-arith, Gotoh recurrence adds
            // stay raw by contract — operands are clamped stored values and
            // clamping here could flip the `ext >= open` tie-break at the
            // sentinel floor; see crate::score module docs)
            let (i_val, i_ext) = {
                let open = s_left + so_se;
                let ext = i_left + se;
                if ext >= open {
                    (ext, true)
                } else {
                    (open, false)
                }
            };
            let (d_val, d_ext) = {
                let open = s_up + so_se;
                let ext = d_up + se;
                if ext >= open {
                    (ext, true)
                } else {
                    (open, false)
                }
            };
            let diag_val = if j >= 1 {
                s_diag + scoring.subst.score(target[j - 1], query[i - 1])
            } else {
                NEG_INF
            };
            let (mut s_val, mut s_src) = (diag_val, tb::S_DIAG);
            if i_val > s_val {
                s_val = i_val;
                s_src = tb::S_FROM_I;
            }
            if d_val > s_val {
                s_val = d_val;
                s_src = tb::S_FROM_D;
            }
            stats.cells += 1;

            // Pruning.
            let threshold = match mode {
                PruneMode::Exact => running_best - ydrop,
                PruneMode::Conservative => threshold_base,
            };
            let dead = s_val < threshold && i_val < threshold && d_val < threshold;
            let (s_store, i_store, d_store) = if dead {
                (NEG_INF, NEG_INF, NEG_INF)
            } else {
                // A live cell's S is a real path score (it is >= the
                // threshold, which is >= -ydrop), but its I/D may still
                // be sentinel-derived garbage; clamp those at the
                // NEG_INF floor so dead gap chains cannot drift toward
                // i32::MIN (see the constant's docs).
                debug_assert!(
                    s_val > NEG_INF / 2,
                    "live cell ({i},{j}) carries a sentinel-derived S value {s_val}"
                );
                (s_val, score::clamp(i_val), score::clamp(d_val))
            };
            if !dead {
                sink.record(
                    i,
                    j,
                    CellScores {
                        s: s_store,
                        i: i_store,
                        d: d_store,
                    },
                );
            }

            s_cur.push(s_store);
            d_cur.push(d_store);
            if want_traceback {
                let mut byte = if dead || s_val <= NEG_INF / 2 {
                    tb::S_ORIGIN
                } else {
                    s_src
                };
                if i_ext {
                    byte |= tb::I_EXTEND;
                }
                if d_ext {
                    byte |= tb::D_EXTEND;
                }
                tb_row.push(byte);
            }

            if !dead {
                if row_first_live.is_none() {
                    row_first_live = Some(j);
                }
                row_last_live = j;
                if s_store > best_score {
                    best_score = s_store;
                    best_i = i;
                    best_j = j;
                }
                if s_store > running_best {
                    running_best = s_store;
                }
            }

            s_left = s_store;
            i_left = i_store;

            j += 1;
            if j > n {
                break;
            }
            // Past the previous row's interval only the I chain feeds new
            // cells; stop once it cannot recover above the threshold.
            if j > prev_hi {
                let threshold = match mode {
                    PruneMode::Exact => running_best - ydrop,
                    PruneMode::Conservative => threshold_base,
                };
                if i_left < threshold && s_left < threshold {
                    break;
                }
            }
        }

        let Some(first_live) = row_first_live else {
            break; // entire row pruned → extension terminates
        };

        if want_traceback {
            tbm.push_row(lo, tb_row);
        }
        stats.rows = i + 1;
        stats.max_cols = stats.max_cols.max(j);

        // Shrink the stored interval to the live cells for the next row.
        let hi = row_last_live + 1;
        let drop_left = first_live - lo;
        std::mem::swap(&mut s_prev, &mut s_cur_buf);
        std::mem::swap(&mut d_prev, &mut d_cur_buf);
        if drop_left > 0 {
            s_prev.drain(..drop_left);
            d_prev.drain(..drop_left);
        }
        s_prev.truncate(hi - first_live);
        d_prev.truncate(hi - first_live);
        prev_lo = first_live;
        prev_hi = hi;
        i += 1;
    }

    scratch.s_prev = s_prev;
    scratch.d_prev = d_prev;
    scratch.s_cur = s_cur_buf;
    scratch.d_cur = d_cur_buf;
    let ops = want_traceback.then(|| walk_traceback(&tbm, best_i, best_j));
    OneSidedExtension {
        best_score,
        best_i,
        best_j,
        ops,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::{Scoring, Sequence, SubstMatrix};

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("x", s).unwrap().codes().to_vec()
    }

    fn simple_scoring() -> Scoring {
        let mut s = Scoring::lastz_default();
        s.subst = SubstMatrix::match_mismatch(10, -15);
        s.gaps = fastz_genome::GapPenalties::new(30, 5);
        s.ydrop = 100;
        s
    }

    #[test]
    fn empty_inputs_yield_origin() {
        let s = simple_scoring();
        for mode in [PruneMode::Exact, PruneMode::Conservative] {
            let r = ydrop_extend(&[], &[], &s, mode, true);
            assert_eq!(r.best_score, 0);
            assert_eq!((r.best_i, r.best_j), (0, 0));
            assert_eq!(r.ops.as_deref(), Some(&[][..]));
        }
    }

    #[test]
    fn perfect_match_extends_fully() {
        let s = simple_scoring();
        let t = codes(b"ACGTACGTAC");
        let r = ydrop_extend(&t, &t, &s, PruneMode::Exact, true);
        assert_eq!(r.best_score, 100);
        assert_eq!((r.best_i, r.best_j), (10, 10));
        assert_eq!(r.ops.unwrap(), vec![EditOp::Diag(10)]);
    }

    #[test]
    fn mismatch_tail_is_not_included() {
        let s = simple_scoring();
        let t = codes(b"ACGTACGTCCCCCCCC");
        let q = codes(b"ACGTACGTGGGGGGGG");
        let r = ydrop_extend(&t, &q, &s, PruneMode::Exact, true);
        assert_eq!(r.best_score, 80);
        assert_eq!((r.best_i, r.best_j), (8, 8));
        assert_eq!(r.ops.unwrap(), vec![EditOp::Diag(8)]);
    }

    #[test]
    fn single_gap_is_bridged() {
        let s = simple_scoring();
        // query lacks 2 bases present in target: 6M 2D 6M.
        let t = codes(b"ACGTACTTACGTAC");
        let q = codes(b"ACGTACACGTAC");
        let r = ydrop_extend(&t, &q, &s, PruneMode::Exact, true);
        // 12 matches − (30 + 2·5) = 120 − 40 = 80.
        assert_eq!(r.best_score, 80);
        assert_eq!((r.best_i, r.best_j), (12, 14));
        assert_eq!(
            r.ops.unwrap(),
            vec![EditOp::Diag(6), EditOp::GapQ(2), EditOp::Diag(6)]
        );
    }

    #[test]
    fn gap_in_other_direction() {
        let s = simple_scoring();
        let t = codes(b"ACGTACACGTAC");
        let q = codes(b"ACGTACTTACGTAC");
        let r = ydrop_extend(&t, &q, &s, PruneMode::Exact, true);
        assert_eq!(r.best_score, 80);
        assert_eq!(
            r.ops.unwrap(),
            vec![EditOp::Diag(6), EditOp::GapT(2), EditOp::Diag(6)]
        );
    }

    #[test]
    fn ydrop_terminates_search_quickly() {
        let s = simple_scoring();
        // After an 8-bp match, pure garbage: exploration must stop well
        // before the end of the 2000-bp tail.
        let mut t = codes(b"ACGTACGT");
        let mut q = t.clone();
        t.extend(codes(&vec![b'C'; 2000]));
        q.extend(codes(&vec![b'G'; 2000]));
        let r = ydrop_extend(&t, &q, &s, PruneMode::Exact, false);
        assert_eq!(r.best_score, 80);
        assert!(r.stats.rows < 100, "explored {} rows", r.stats.rows);
        assert!(r.stats.cells < 20_000, "computed {} cells", r.stats.cells);
    }

    #[test]
    fn conservative_explores_superset() {
        let s = simple_scoring();
        let t = codes(b"ACGTACGTTTACGGACGTACCGTAACGT");
        let q = codes(b"ACGTACGTAAACGGACGTACGGTAACGA");
        let exact = ydrop_extend(&t, &q, &s, PruneMode::Exact, false);
        let cons = ydrop_extend(&t, &q, &s, PruneMode::Conservative, false);
        assert!(cons.stats.cells >= exact.stats.cells);
        assert!(cons.best_score >= exact.best_score);
    }

    #[test]
    fn traceback_rescores_to_reported_score() {
        let s = simple_scoring();
        let t = codes(b"ACGTTACGGACGTACCGTAACGTACGTACGT");
        let q = codes(b"ACGTACGGACGTACGGTAACGTAACGTACGT");
        for mode in [PruneMode::Exact, PruneMode::Conservative] {
            let r = ydrop_extend(&t, &q, &s, mode, true);
            let ops = r.ops.clone().unwrap();
            // Re-score the edit script directly.
            let (mut ti, mut qi, mut score) = (0usize, 0usize, 0i32);
            for op in &ops {
                match *op {
                    EditOp::Diag(k) => {
                        for _ in 0..k {
                            score += s.subst.score(t[ti], q[qi]);
                            ti += 1;
                            qi += 1;
                        }
                    }
                    EditOp::GapQ(k) => {
                        score -= s.gaps.gap_cost(k as usize);
                        ti += k as usize;
                    }
                    EditOp::GapT(k) => {
                        score -= s.gaps.gap_cost(k as usize);
                        qi += k as usize;
                    }
                }
            }
            assert_eq!(ti, r.best_j, "{mode:?}");
            assert_eq!(qi, r.best_i, "{mode:?}");
            assert_eq!(score, r.best_score, "{mode:?}");
        }
    }

    #[test]
    fn extension_is_clipped_at_sequence_ends() {
        let s = simple_scoring();
        let t = codes(b"ACG");
        let q = codes(b"ACGTACGT");
        let r = ydrop_extend(&t, &q, &s, PruneMode::Exact, true);
        assert_eq!(r.best_score, 30);
        assert_eq!((r.best_i, r.best_j), (3, 3));
    }

    #[test]
    fn n_bases_block_extension() {
        let s = Scoring {
            ydrop: 100,
            ..Scoring::lastz_default()
        };
        let t = codes(b"ACGTACGTNNNNACGTACGT");
        let q = codes(b"ACGTACGTNNNNACGTACGT");
        let r = ydrop_extend(&t, &q, &s, PruneMode::Exact, false);
        // N scores −1000 each; y-drop 100 kills the extension at the Ns.
        assert_eq!(r.best_i, 8);
    }

    #[test]
    fn scratch_reuse_is_equivalent() {
        let s = simple_scoring();
        let t = codes(b"ACGTTACGGACGTAC");
        let q = codes(b"ACGTACGGACGTAAC");
        let mut scratch = YDropScratch::default();
        let a = ydrop_extend_with(&t, &q, &s, PruneMode::Exact, true, &mut scratch);
        let b = ydrop_extend_with(&t, &q, &s, PruneMode::Exact, true, &mut scratch);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn stats_are_populated() {
        let s = simple_scoring();
        let t = codes(b"ACGTACGTACGTACGT");
        let r = ydrop_extend(&t, &t, &s, PruneMode::Exact, false);
        assert!(r.stats.cells as usize >= t.len());
        assert_eq!(r.stats.rows, t.len() + 1);
        assert!(r.stats.max_cols >= t.len());
    }
}
