//! Both-strand alignment.
//!
//! LASTZ aligns the query's forward and reverse-complement strands
//! against the target; FastZ inherits that behaviour. This module runs a
//! driver over both strands and maps minus-strand alignments back into
//! original query coordinates.

use crate::alignment::Alignment;
use crate::driver::{sequential_gapped, DriverConfig, DriverReport};
use fastz_genome::Sequence;
use fastz_seed::{SeedIndex, Workload, WorkloadParams};

/// Query strand of an alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strand {
    /// The query as given.
    Forward,
    /// The reverse complement of the query.
    Reverse,
}

/// An alignment plus the query strand it was found on.
///
/// For [`Strand::Reverse`], `alignment` coordinates refer to the
/// reverse-complemented query; [`StrandedAlignment::query_interval_forward`]
/// maps them back to the original query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrandedAlignment {
    /// The underlying alignment.
    pub alignment: Alignment,
    /// Which query strand it aligns.
    pub strand: Strand,
}

impl StrandedAlignment {
    /// The query interval `[start, end)` in original (forward-strand)
    /// coordinates.
    pub fn query_interval_forward(&self, query_len: usize) -> (usize, usize) {
        match self.strand {
            Strand::Forward => (self.alignment.query_start, self.alignment.query_end),
            Strand::Reverse => (
                query_len - self.alignment.query_end,
                query_len - self.alignment.query_start,
            ),
        }
    }

    /// Strand character for output formats (`+` / `-`).
    pub fn strand_char(&self) -> char {
        match self.strand {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }
}

/// Result of a both-strand run.
#[derive(Clone, Debug)]
pub struct BothStrandsReport {
    /// All alignments from both strands.
    pub alignments: Vec<StrandedAlignment>,
    /// The forward-strand driver report.
    pub forward: DriverReport,
    /// The reverse-strand driver report.
    pub reverse: DriverReport,
}

/// Seeds and gapped-extends both query strands with the sequential
/// driver. The same seed index over `target` serves both strands.
pub fn sequential_gapped_both_strands(
    target: &Sequence,
    query: &Sequence,
    workload_params: &WorkloadParams,
    config: &DriverConfig,
) -> BothStrandsReport {
    let index = SeedIndex::build(target, workload_params.shape.clone());
    let span = workload_params.shape.span();
    let _ = &index; // Workload rebuilds its own index; kept for parity.

    let run = |q: &Sequence| -> DriverReport {
        let wl = Workload::build(target, q, workload_params);
        sequential_gapped(target, q, &wl.anchors, span, config)
    };

    let forward = run(query);
    let rc = query.reverse_complement();
    let reverse = run(&rc);

    let mut alignments: Vec<StrandedAlignment> = Vec::new();
    alignments.extend(
        forward
            .alignments
            .iter()
            .cloned()
            .map(|alignment| StrandedAlignment {
                alignment,
                strand: Strand::Forward,
            }),
    );
    alignments.extend(
        reverse
            .alignments
            .iter()
            .cloned()
            .map(|alignment| StrandedAlignment {
                alignment,
                strand: Strand::Reverse,
            }),
    );

    BothStrandsReport {
        alignments,
        forward,
        reverse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::evolve::random_sequence;
    use fastz_genome::Scoring;

    /// Builds a target containing one forward copy and one
    /// reverse-complemented copy of a conserved segment.
    fn inverted_pair() -> (Sequence, Sequence) {
        let core = random_sequence("core", 300, 0.5, 42);
        let spacer = random_sequence("sp", 400, 0.5, 43);
        let spacer2 = random_sequence("sp2", 400, 0.5, 44);
        let mut t_codes = spacer.codes().to_vec();
        t_codes.extend_from_slice(core.codes());
        t_codes.extend_from_slice(spacer2.codes());
        // Query: unrelated flanks around the reverse complement of core.
        let qf1 = random_sequence("qf1", 350, 0.5, 45);
        let qf2 = random_sequence("qf2", 350, 0.5, 46);
        let rc_core = core.reverse_complement();
        let mut q_codes = qf1.codes().to_vec();
        q_codes.extend_from_slice(rc_core.codes());
        q_codes.extend_from_slice(qf2.codes());
        (
            Sequence::from_codes("t", t_codes),
            Sequence::from_codes("q", q_codes),
        )
    }

    #[test]
    fn inverted_homology_is_found_only_on_the_reverse_strand() {
        let (t, q) = inverted_pair();
        let report = sequential_gapped_both_strands(
            &t,
            &q,
            &WorkloadParams::default(),
            &DriverConfig::gapped(Scoring::bench_scaled()),
        );
        assert!(
            report.forward.alignments.is_empty(),
            "no forward homology exists"
        );
        assert!(
            !report.reverse.alignments.is_empty(),
            "the inverted segment must be found on the minus strand"
        );
        let best = report
            .alignments
            .iter()
            .max_by_key(|a| a.alignment.score)
            .unwrap();
        assert_eq!(best.strand, Strand::Reverse);
        assert_eq!(best.strand_char(), '-');
        // The mapped-back query interval must cover the planted rc core
        // (query positions 350..650).
        let (qs, qe) = best.query_interval_forward(q.len());
        assert!(qs >= 330 && qe <= 670, "mapped interval [{qs},{qe})");
        assert!(qe - qs >= 280);
    }

    #[test]
    fn forward_coordinates_are_identity_mapped() {
        let a = StrandedAlignment {
            alignment: Alignment {
                target_start: 0,
                target_end: 10,
                query_start: 5,
                query_end: 15,
                score: 1,
                ops: vec![],
            },
            strand: Strand::Forward,
        };
        assert_eq!(a.query_interval_forward(100), (5, 15));
        assert_eq!(a.strand_char(), '+');
    }

    #[test]
    fn reverse_coordinates_flip() {
        let a = StrandedAlignment {
            alignment: Alignment {
                target_start: 0,
                target_end: 10,
                query_start: 5,
                query_end: 15,
                score: 1,
                ops: vec![],
            },
            strand: Strand::Reverse,
        };
        assert_eq!(a.query_interval_forward(100), (85, 95));
    }
}
