//! Alignment-set statistics: summaries and histograms backing Figure 2's
//! scatter analysis and the harnesses' reporting.

use crate::alignment::Alignment;

/// Summary statistics of an alignment set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AlignmentSummary {
    /// Number of alignments.
    pub count: usize,
    /// Total score.
    pub total_score: i64,
    /// Maximum score (0 for an empty set).
    pub max_score: i32,
    /// Mean alignment length (larger-extent convention).
    pub mean_length: f64,
    /// Median alignment length.
    pub median_length: usize,
    /// Maximum alignment length.
    pub max_length: usize,
    /// Total aligned base pairs (target extents).
    pub aligned_bp: usize,
}

/// Computes summary statistics.
pub fn summarize(alignments: &[Alignment]) -> AlignmentSummary {
    if alignments.is_empty() {
        return AlignmentSummary::default();
    }
    let mut lengths: Vec<usize> = alignments.iter().map(|a| a.length()).collect();
    lengths.sort_unstable();
    AlignmentSummary {
        count: alignments.len(),
        total_score: alignments.iter().map(|a| a.score as i64).sum(),
        max_score: alignments.iter().map(|a| a.score).max().unwrap(),
        mean_length: lengths.iter().sum::<usize>() as f64 / lengths.len() as f64,
        median_length: lengths[lengths.len() / 2],
        max_length: *lengths.last().unwrap(),
        aligned_bp: alignments.iter().map(|a| a.target_len()).sum(),
    }
}

/// Counts alignments with score strictly above each threshold.
pub fn score_exceedance(alignments: &[Alignment], thresholds: &[i32]) -> Vec<usize> {
    thresholds
        .iter()
        .map(|&t| alignments.iter().filter(|a| a.score > t).count())
        .collect()
}

/// A log₂-binned length histogram: bucket `i` counts alignments with
/// `2^i <= length < 2^(i+1)` (bucket 0 also holds lengths 0 and 1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LengthHistogram {
    /// Counts per log₂ bucket.
    pub buckets: Vec<usize>,
}

impl LengthHistogram {
    /// Builds the histogram.
    pub fn build(alignments: &[Alignment]) -> LengthHistogram {
        let mut buckets = Vec::new();
        for a in alignments {
            let b = usize::BITS as usize - 1 - a.length().max(1).leading_zeros() as usize;
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        LengthHistogram { buckets }
    }

    /// Total count.
    pub fn total(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Renders one line per non-empty bucket (`[lo, hi): count`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                out.push_str(&format!(
                    "[{:>7}, {:>7}): {n}\n",
                    1usize << b,
                    1usize << (b + 1)
                ));
            }
        }
        out
    }
}

/// Fraction of `reference`'s target bases covered by any alignment in
/// `candidate` (simple interval-union coverage over the target).
pub fn target_coverage_fraction(reference: &[Alignment], candidate: &[Alignment]) -> f64 {
    let ref_bp: usize = reference.iter().map(|a| a.target_len()).sum();
    if ref_bp == 0 {
        return 1.0;
    }
    // Build candidate's merged target intervals.
    let mut ivs: Vec<(usize, usize)> = candidate
        .iter()
        .map(|a| (a.target_start, a.target_end))
        .collect();
    ivs.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in ivs {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let overlap = |s: usize, e: usize| -> usize {
        merged
            .iter()
            .map(|&(ms, me)| e.min(me).saturating_sub(s.max(ms)))
            .sum()
    };
    let covered: usize = reference
        .iter()
        .map(|a| overlap(a.target_start, a.target_end))
        .sum();
    covered as f64 / ref_bp as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(ts: usize, te: usize, score: i32) -> Alignment {
        Alignment {
            target_start: ts,
            target_end: te,
            query_start: ts,
            query_end: te,
            score,
            ops: vec![],
        }
    }

    #[test]
    fn empty_summary() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_score, 0);
    }

    #[test]
    fn summary_math() {
        let set = [a(0, 10, 100), a(20, 50, 300), a(60, 160, 50)];
        let s = summarize(&set);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_score, 450);
        assert_eq!(s.max_score, 300);
        assert_eq!(s.median_length, 30);
        assert_eq!(s.max_length, 100);
        assert_eq!(s.aligned_bp, 140);
        assert!((s.mean_length - 140.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn exceedance_counts() {
        let set = [a(0, 1, 100), a(0, 1, 5000), a(0, 1, 12_000)];
        assert_eq!(score_exceedance(&set, &[0, 1000, 10_000]), vec![3, 2, 1]);
    }

    #[test]
    fn histogram_buckets() {
        let set = [a(0, 1, 0), a(0, 3, 0), a(0, 100, 0), a(0, 120, 0)];
        let h = LengthHistogram::build(&set);
        assert_eq!(h.total(), 4);
        assert_eq!(h.buckets[0], 1); // length 1
        assert_eq!(h.buckets[1], 1); // length 3
        assert_eq!(h.buckets[6], 2); // lengths 100 and 120
        assert!(h.render().contains("[     64,     128): 2"));
    }

    #[test]
    fn coverage_fraction() {
        let reference = [a(0, 100, 0)];
        let full = [a(0, 100, 0)];
        let half = [a(0, 50, 0)];
        let split = [a(0, 30, 0), a(20, 60, 0)]; // overlapping: union [0,60)
        assert!((target_coverage_fraction(&reference, &full) - 1.0).abs() < 1e-12);
        assert!((target_coverage_fraction(&reference, &half) - 0.5).abs() < 1e-12);
        assert!((target_coverage_fraction(&reference, &split) - 0.6).abs() < 1e-12);
        assert_eq!(target_coverage_fraction(&[], &full), 1.0);
    }
}
