//! Alignment chaining (LASTZ's `--chain` stage).
//!
//! After gapped extension, LASTZ can chain compatible local alignments
//! into a single best-scoring colinear chain (useful for syntenic
//! comparisons). We implement the classic sparse dynamic programming
//! formulation: alignments are nodes; an edge `a → b` exists when `b`
//! starts strictly after `a` ends in both sequences; the chain score is
//! the sum of member scores minus an affine penalty on the inter-block
//! gaps. O(n²) DP over end-sorted alignments — the alignment counts
//! after extension are small (hundreds), so the quadratic cost is
//! irrelevant.

use crate::alignment::Alignment;

/// Inter-block gap penalties for chaining.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChainPenalties {
    /// Cost per skipped target base between chained blocks.
    pub target_gap: f64,
    /// Cost per skipped query base between chained blocks.
    pub query_gap: f64,
    /// Fixed cost per join.
    pub join: f64,
}

impl Default for ChainPenalties {
    fn default() -> Self {
        // LASTZ's chain defaults: diagonal drift is much cheaper than the
        // DP gap costs (these join across unalignable interludes).
        ChainPenalties {
            target_gap: 0.5,
            query_gap: 0.5,
            join: 100.0,
        }
    }
}

/// A chain: indices into the input alignment slice, in colinear order,
/// plus the chain's net score.
#[derive(Clone, Debug, PartialEq)]
pub struct Chain {
    /// Member indices into the input slice, in target order.
    pub members: Vec<usize>,
    /// Total member score minus gap penalties.
    pub score: f64,
}

impl Chain {
    /// Target span `[start, end)` covered by the chain.
    pub fn target_span(&self, alignments: &[Alignment]) -> (usize, usize) {
        let first = &alignments[self.members[0]];
        let last = &alignments[*self.members.last().unwrap()];
        (first.target_start, last.target_end)
    }
}

/// True if `b` can follow `a` in a colinear chain.
#[inline]
fn precedes(a: &Alignment, b: &Alignment) -> bool {
    a.target_end <= b.target_start && a.query_end <= b.query_start
}

/// Penalty for joining `a → b`.
#[inline]
fn join_cost(a: &Alignment, b: &Alignment, p: &ChainPenalties) -> f64 {
    let dt = (b.target_start - a.target_end) as f64;
    let dq = (b.query_start - a.query_end) as f64;
    p.join + p.target_gap * dt + p.query_gap * dq
}

/// Finds the best-scoring colinear chain over `alignments`.
///
/// Returns `None` for an empty input. Alignments with non-positive score
/// still participate (they can bridge two strong blocks).
pub fn best_chain(alignments: &[Alignment], penalties: &ChainPenalties) -> Option<Chain> {
    if alignments.is_empty() {
        return None;
    }
    // Order by target end (ties by query end) for the DP sweep.
    let mut order: Vec<usize> = (0..alignments.len()).collect();
    order.sort_by_key(|&i| (alignments[i].target_end, alignments[i].query_end));

    // dp[k] = best chain score ending at order[k]; back[k] = predecessor.
    let mut dp: Vec<f64> = Vec::with_capacity(order.len());
    let mut back: Vec<Option<usize>> = vec![None; order.len()];
    for (k, &i) in order.iter().enumerate() {
        let mut best = alignments[i].score as f64;
        for (j, &prev_i) in order.iter().enumerate().take(k) {
            let prev = &alignments[prev_i];
            if precedes(prev, &alignments[i]) {
                let cand =
                    dp[j] + alignments[i].score as f64 - join_cost(prev, &alignments[i], penalties);
                if cand > best {
                    best = cand;
                    back[k] = Some(j);
                }
            }
        }
        dp.push(best);
    }

    // Best chain end, then backtrack. `total_cmp` keeps the selection
    // total when a NaN penalty poisons the DP (a panicking
    // `partial_cmp().unwrap()` here used to take the whole run down).
    let (mut k, _) = dp.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
    let score = dp[k];
    let mut members = vec![order[k]];
    while let Some(prev) = back[k] {
        k = prev;
        members.push(order[k]);
    }
    members.reverse();
    Some(Chain { members, score })
}

/// Greedily extracts disjoint chains in decreasing score order until no
/// alignment with positive chain score remains (LASTZ reports the single
/// best chain; multi-chain extraction is useful for duplicated synteny).
pub fn all_chains(alignments: &[Alignment], penalties: &ChainPenalties) -> Vec<Chain> {
    let mut remaining: Vec<usize> = (0..alignments.len()).collect();
    let mut chains = Vec::new();
    while !remaining.is_empty() {
        let subset: Vec<Alignment> = remaining.iter().map(|&i| alignments[i].clone()).collect();
        let Some(chain) = best_chain(&subset, penalties) else {
            break;
        };
        if chain.score <= 0.0 {
            break;
        }
        // Map subset indices back to original indices and remove them.
        let members: Vec<usize> = chain.members.iter().map(|&k| remaining[k]).collect();
        let taken: std::collections::HashSet<usize> = members.iter().copied().collect();
        remaining.retain(|i| !taken.contains(i));
        chains.push(Chain {
            members,
            score: chain.score,
        });
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ts: usize, te: usize, qs: usize, qe: usize, score: i32) -> Alignment {
        Alignment {
            target_start: ts,
            target_end: te,
            query_start: qs,
            query_end: qe,
            score,
            ops: vec![],
        }
    }

    #[test]
    fn empty_input() {
        assert!(best_chain(&[], &ChainPenalties::default()).is_none());
        assert!(all_chains(&[], &ChainPenalties::default()).is_empty());
    }

    #[test]
    fn single_alignment_chains_to_itself() {
        let a = [block(0, 10, 0, 10, 500)];
        let c = best_chain(&a, &ChainPenalties::default()).unwrap();
        assert_eq!(c.members, vec![0]);
        assert_eq!(c.score, 500.0);
        assert_eq!(c.target_span(&a), (0, 10));
    }

    #[test]
    fn colinear_blocks_chain_together() {
        let a = [
            block(0, 100, 0, 100, 1000),
            block(150, 250, 160, 260, 1200),
            block(300, 400, 310, 410, 900),
        ];
        let c = best_chain(&a, &ChainPenalties::default()).unwrap();
        assert_eq!(c.members, vec![0, 1, 2]);
        // 3100 total minus two joins (100 + 0.5·(50+60)) and (100 + 0.5·(50+50)).
        let expected = 3100.0 - (100.0 + 0.5 * 110.0) - (100.0 + 0.5 * 100.0);
        assert!((c.score - expected).abs() < 1e-9, "{}", c.score);
    }

    #[test]
    fn crossing_blocks_do_not_chain() {
        // Second block goes backwards in the query: not colinear.
        let a = [block(0, 100, 200, 300, 1000), block(150, 250, 0, 100, 1000)];
        let c = best_chain(&a, &ChainPenalties::default()).unwrap();
        assert_eq!(c.members.len(), 1);
    }

    #[test]
    fn expensive_join_prefers_the_single_best_block() {
        let a = [
            block(0, 10, 0, 10, 500),
            block(100_000, 100_010, 100_000, 100_010, 400),
        ];
        let c = best_chain(&a, &ChainPenalties::default()).unwrap();
        // Joining costs ~100 + 0.5·2·99,990 ≈ 100,090 — far more than 400.
        assert_eq!(c.members, vec![0]);
        assert_eq!(c.score, 500.0);
    }

    #[test]
    fn chain_skips_a_bad_middle_block() {
        // A weak off-diagonal middle block costs more to include than to
        // bridge over.
        let a = [
            block(0, 100, 0, 100, 2000),
            block(110, 120, 5_000, 5_010, 10), // way off in the query
            block(200, 300, 200, 300, 2000),
        ];
        let c = best_chain(&a, &ChainPenalties::default()).unwrap();
        assert_eq!(c.members, vec![0, 2]);
    }

    #[test]
    fn all_chains_extracts_disjoint_syntenies() {
        // Two parallel syntenic runs (e.g. a duplication): the second-best
        // chain must appear as its own entry.
        let a = [
            block(0, 100, 0, 100, 1000),
            block(200, 300, 200, 300, 1000),
            block(0, 100, 50_000, 50_100, 800),
            block(200, 300, 50_200, 50_300, 800),
        ];
        let chains = all_chains(&a, &ChainPenalties::default());
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].members, vec![0, 1]);
        assert_eq!(chains[1].members, vec![2, 3]);
        assert!(chains[0].score > chains[1].score);
        // Disjoint membership.
        let all: Vec<usize> = chains.iter().flat_map(|c| c.members.clone()).collect();
        let uniq: std::collections::HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), uniq.len());
    }

    #[test]
    fn nan_penalties_do_not_panic_the_chain_dp() {
        // Regression (PR 6 float-ranking sweep): NaN join penalties make
        // every join candidate NaN. The `cand > best` guard rejects those
        // (NaN compares false), so each dp entry degrades to its block's
        // own score — but the final ranking used to go through
        // `partial_cmp().unwrap()`, a panic waiting for any NaN that does
        // reach dp. `total_cmp` keeps the selection total either way.
        let a = [block(0, 100, 0, 100, 1000), block(150, 250, 160, 260, 1200)];
        let nan_penalties = ChainPenalties {
            join: f64::NAN,
            ..ChainPenalties::default()
        };
        let c = best_chain(&a, &nan_penalties).expect("chain still returned");
        assert_eq!(c.members, vec![1], "no join is takeable; best block wins");
        assert_eq!(c.score, 1200.0);
        // And a NaN-ranked surface is ordered, not panicked on: feed the
        // ranking NaN directly through an all-NaN gap penalty on blocks
        // whose only chain is a join.
        let nan_gaps = ChainPenalties {
            target_gap: f64::NAN,
            query_gap: f64::NAN,
            join: f64::NAN,
        };
        let c2 = best_chain(&a, &nan_gaps).expect("chain still returned");
        assert_eq!(c2.members, vec![1]);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let a = [
            block(300, 400, 310, 410, 900),
            block(0, 100, 0, 100, 1000),
            block(150, 250, 160, 260, 1200),
        ];
        let c = best_chain(&a, &ChainPenalties::default()).unwrap();
        assert_eq!(c.members, vec![1, 2, 0]);
    }
}
