//! # fastz-align
//!
//! Scalar alignment engines for the FastZ reproduction: the exact y-drop
//! Gotoh extension LASTZ uses (plus the parallel-safe conservative pruning
//! variant FastZ relies on), ungapped x-drop filtering, a banded
//! Smith-Waterman baseline (Darwin-WGA's heuristic), two-sided seed
//! extension, and the sequential and multicore LASTZ drivers that serve as
//! the paper's CPU baselines.

#![warn(missing_docs)]

pub mod alignment;
pub mod banded;
pub mod chain;
pub mod driver;
pub mod extend;
pub mod format;
pub mod multicore;
pub mod score;
pub mod stats;
pub mod strand;
pub mod trace;
pub mod ungapped;
pub mod ydrop;

pub use alignment::{push_op, Alignment, EditOp};
pub use banded::banded_extend;
pub use chain::{all_chains, best_chain, Chain, ChainPenalties};
pub use driver::{
    dedupe_alignments, sequential_banded, sequential_gapped, sequential_ungapped_filtered,
    DriverConfig, DriverReport, DriverStats, ExtensionRecord,
};
pub use extend::{gapped_extend, ExtendConfig, GappedExtension};
pub use format::{gapped_rows, write_general, write_maf};
pub use multicore::multicore_gapped;
pub use stats::{score_exceedance, summarize, AlignmentSummary, LengthHistogram};
pub use strand::{sequential_gapped_both_strands, BothStrandsReport, Strand, StrandedAlignment};
pub use trace::{CellScores, CellSink, DenseTrace, NoTrace};
pub use ungapped::{xdrop_extend, Hsp};
pub use ydrop::{
    walk_traceback_with, ydrop_extend, ydrop_extend_traced, ExtensionStats, OneSidedExtension,
    PruneMode,
};
