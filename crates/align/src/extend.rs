//! Two-sided gapped seed extension.
//!
//! LASTZ (and FastZ) extend every seed site twice: leftward from the seed
//! start (on reversed sequences) and rightward from the seed end, then
//! splice the two half-alignments around the seed body (paper §3.1.2
//! explains why even a short half cannot be discarded early: the other
//! half may make the combined alignment high-scoring).

use crate::alignment::{push_op, Alignment, EditOp};
use crate::score;
use crate::ydrop::{ydrop_extend_with, ExtensionStats, PruneMode, YDropScratch};
use fastz_genome::{Scoring, Sequence};
use fastz_seed::Anchor;

/// Configuration for gapped extension.
#[derive(Clone, Debug)]
pub struct ExtendConfig {
    /// Pruning mode for the y-drop engine.
    pub mode: PruneMode,
    /// Whether to produce the edit script (the executor needs it; the
    /// inspector does not).
    pub traceback: bool,
    /// Cap on how many bases a one-sided extension may consume in either
    /// sequence (bounds the reversed-prefix copy for left extension; the
    /// paper's largest load-balancing bin is 32,768 — anything longer
    /// would need an additional bin anyway).
    pub max_extension: usize,
}

impl Default for ExtendConfig {
    fn default() -> Self {
        ExtendConfig {
            mode: PruneMode::Exact,
            traceback: true,
            max_extension: 40_000,
        }
    }
}

/// Reusable buffers for one extension worker.
#[derive(Default)]
pub struct ExtendScratch {
    ydrop: YDropScratch,
    rev_t: Vec<u8>,
    rev_q: Vec<u8>,
}

/// A completed two-sided extension.
#[derive(Clone, Debug)]
pub struct GappedExtension {
    /// The spliced alignment (ops present iff traceback was requested).
    pub alignment: Alignment,
    /// Search-space stats of the left half.
    pub left_stats: ExtensionStats,
    /// Search-space stats of the right half.
    pub right_stats: ExtensionStats,
    /// Optimal extents of the left half `(query_bases, target_bases)`.
    pub left_extent: (usize, usize),
    /// Optimal extents of the right half `(query_bases, target_bases)`.
    pub right_extent: (usize, usize),
}

impl GappedExtension {
    /// Total DP cells explored across both halves.
    pub fn cells(&self) -> u64 {
        self.left_stats.cells + self.right_stats.cells
    }

    /// The paper's binning extent: the larger optimal extent over both
    /// halves and both sequences.
    pub fn max_extent(&self) -> usize {
        self.left_extent
            .0
            .max(self.left_extent.1)
            .max(self.right_extent.0)
            .max(self.right_extent.1)
    }
}

/// Extends `anchor` (seed span `seed_span`) in both directions and
/// splices the halves.
pub fn gapped_extend(
    target: &Sequence,
    query: &Sequence,
    anchor: Anchor,
    seed_span: usize,
    scoring: &Scoring,
    config: &ExtendConfig,
) -> GappedExtension {
    gapped_extend_with(
        target,
        query,
        anchor,
        seed_span,
        scoring,
        config,
        &mut ExtendScratch::default(),
    )
}

/// [`gapped_extend`] with caller-provided scratch buffers.
pub fn gapped_extend_with(
    target: &Sequence,
    query: &Sequence,
    anchor: Anchor,
    seed_span: usize,
    scoring: &Scoring,
    config: &ExtendConfig,
    scratch: &mut ExtendScratch,
) -> GappedExtension {
    let tc = target.codes();
    let qc = query.codes();
    let t0 = anchor.target_pos as usize;
    let q0 = anchor.query_pos as usize;
    assert!(t0 + seed_span <= tc.len(), "anchor outside target");
    assert!(q0 + seed_span <= qc.len(), "anchor outside query");

    // Seed body.
    let mut seed_score = 0i32;
    for k in 0..seed_span {
        seed_score = score::add_clamped(seed_score, scoring.subst.score(tc[t0 + k], qc[q0 + k]));
    }

    // Right half: suffixes after the seed.
    let rt_end = tc.len().min(t0 + seed_span + config.max_extension);
    let rq_end = qc.len().min(q0 + seed_span + config.max_extension);
    let right = ydrop_extend_with(
        &tc[t0 + seed_span..rt_end],
        &qc[q0 + seed_span..rq_end],
        scoring,
        config.mode,
        config.traceback,
        &mut scratch.ydrop,
    );

    // Left half: reversed prefixes before the seed.
    let lt_start = t0.saturating_sub(config.max_extension);
    let lq_start = q0.saturating_sub(config.max_extension);
    scratch.rev_t.clear();
    scratch.rev_q.clear();
    scratch.rev_t.extend(tc[lt_start..t0].iter().rev());
    scratch.rev_q.extend(qc[lq_start..q0].iter().rev());
    let left = ydrop_extend_with(
        &scratch.rev_t,
        &scratch.rev_q,
        scoring,
        config.mode,
        config.traceback,
        &mut scratch.ydrop,
    );

    // Splice: reversed left ops, seed body, right ops.
    let ops = config.traceback.then(|| {
        let mut ops: Vec<EditOp> = Vec::new();
        if let Some(left_ops) = &left.ops {
            for &op in left_ops.iter().rev() {
                push_op(&mut ops, op);
            }
        }
        push_op(&mut ops, EditOp::Diag(seed_span as u32));
        if let Some(right_ops) = &right.ops {
            for &op in right_ops {
                push_op(&mut ops, op);
            }
        }
        ops
    });

    let alignment = Alignment {
        target_start: t0 - left.best_j,
        target_end: t0 + seed_span + right.best_j,
        query_start: q0 - left.best_i,
        query_end: q0 + seed_span + right.best_i,
        score: score::add_clamped(
            score::add_clamped(left.best_score, seed_score),
            right.best_score,
        ),
        ops: ops.unwrap_or_default(),
    };

    GappedExtension {
        alignment,
        left_stats: left.stats,
        right_stats: right.stats,
        left_extent: (left.best_i, left.best_j),
        right_extent: (right.best_i, right.best_j),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::{GapPenalties, SubstMatrix};

    fn scoring() -> Scoring {
        Scoring {
            subst: SubstMatrix::match_mismatch(10, -15),
            gaps: GapPenalties::new(30, 5),
            ydrop: 100,
            xdrop: 40,
            hsp_threshold: 50,
            gapped_threshold: 50,
        }
    }

    fn seq(name: &str, s: &[u8]) -> Sequence {
        Sequence::from_ascii(name, s).unwrap()
    }

    #[test]
    fn seed_in_perfect_context_extends_both_ways() {
        let t = seq("t", b"ACGTACGTACGTACGTACGT");
        let a = Anchor {
            target_pos: 8,
            query_pos: 8,
        };
        let ext = gapped_extend(&t, &t, a, 4, &scoring(), &ExtendConfig::default());
        let al = &ext.alignment;
        assert_eq!(al.target_start, 0);
        assert_eq!(al.target_end, 20);
        assert_eq!(al.query_start, 0);
        assert_eq!(al.query_end, 20);
        assert_eq!(al.score, 200);
        assert_eq!(al.ops, vec![EditOp::Diag(20)]);
        assert!(al.is_consistent(&t, &t));
        assert_eq!(al.rescore(&t, &t, &scoring()), al.score);
    }

    #[test]
    fn indels_on_both_sides_are_bridged() {
        //            left indel            seed          right indel
        // t: GGGG ACGTAC--GGCCGG [ACGT] CCGGAACCGGTTGACA TTTT   (-- absent)
        // q: CCCC ACGTACTAGGCCGG [ACGT] CCGGAA--GGTTGACA AAAA
        // Post-gap runs are long enough that bridging each 2-bp indel
        // gains strictly more than the gap cost (no score tie).
        let t = seq("t", b"GGGGACGTACGGCCGGACGTCCGGAACCGGTTGACATTTT");
        let q = seq("q", b"CCCCACGTACTAGGCCGGACGTCCGGAAGGTTGACAAAAA");
        let a = Anchor {
            target_pos: 16,
            query_pos: 18,
        };
        let sc = scoring();
        let ext = gapped_extend(&t, &q, a, 4, &sc, &ExtendConfig::default());
        let al = &ext.alignment;
        assert!(al.is_consistent(&t, &q));
        assert_eq!(al.rescore(&t, &q, &sc), al.score);
        // Both halves bridge their indel: 30 diagonal matches total,
        // one 2-bp gap each side.
        assert_eq!(al.target_start, 4);
        assert_eq!(al.query_start, 4);
        assert_eq!(al.target_end, 36);
        assert_eq!(al.query_end, 36);
        let expected = 30 * 10 - 2 * (30 + 2 * 5);
        assert_eq!(al.score, expected);
    }

    #[test]
    fn anchor_at_origin_has_empty_left_half() {
        let t = seq("t", b"ACGTACGT");
        let a = Anchor {
            target_pos: 0,
            query_pos: 0,
        };
        let ext = gapped_extend(&t, &t, a, 4, &scoring(), &ExtendConfig::default());
        assert_eq!(ext.left_extent, (0, 0));
        assert_eq!(ext.alignment.target_start, 0);
        assert_eq!(ext.alignment.target_end, 8);
    }

    #[test]
    fn max_extension_caps_reach() {
        let body: Vec<u8> = b"ACGT".iter().cycle().take(400).copied().collect();
        let t = seq("t", &body);
        let a = Anchor {
            target_pos: 200,
            query_pos: 200,
        };
        let cfg = ExtendConfig {
            max_extension: 50,
            ..ExtendConfig::default()
        };
        let ext = gapped_extend(&t, &t, a, 4, &scoring(), &cfg);
        assert!(ext.alignment.target_start >= 150);
        assert!(ext.alignment.target_end <= 254);
    }

    #[test]
    fn no_traceback_mode_omits_ops_but_keeps_extents() {
        let t = seq("t", b"ACGTACGTACGTACGT");
        let a = Anchor {
            target_pos: 8,
            query_pos: 8,
        };
        let cfg = ExtendConfig {
            traceback: false,
            ..ExtendConfig::default()
        };
        let ext = gapped_extend(&t, &t, a, 4, &scoring(), &cfg);
        assert!(ext.alignment.ops.is_empty());
        assert_eq!(ext.alignment.score, 160);
        assert_eq!(ext.max_extent(), 8);
    }

    #[test]
    fn stats_accumulate_across_halves() {
        let t = seq("t", b"ACGTACGTACGTACGTACGTACGT");
        let a = Anchor {
            target_pos: 12,
            query_pos: 12,
        };
        let ext = gapped_extend(&t, &t, a, 4, &scoring(), &ExtendConfig::default());
        assert!(ext.cells() > 0);
        assert_eq!(ext.cells(), ext.left_stats.cells + ext.right_stats.cells);
    }
}
