//! Alignment representation: edit operations, gapped alignments, and
//! re-scoring validation.
//!
//! Naming note: the paper's DP matrices `I` and `D` (Fig. 1) are gap
//! states *of the DP*, while the edit ops here follow CIGAR conventions
//! from the query's perspective:
//!
//! * [`EditOp::Diag`] — consume one target and one query base (match or
//!   substitution; DP `S` diagonal move),
//! * [`EditOp::GapQ`] — consume target bases only (gap in the query; the
//!   paper's `I` chain, CIGAR `D`),
//! * [`EditOp::GapT`] — consume query bases only (gap in the target; the
//!   paper's `D` chain, CIGAR `I`).

use fastz_genome::{Scoring, Sequence};
use std::fmt;

/// One run-length-encoded edit operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Diagonal run: `n` aligned base pairs (matches or substitutions).
    Diag(u32),
    /// `n` target bases aligned against a gap in the query.
    GapQ(u32),
    /// `n` query bases aligned against a gap in the target.
    GapT(u32),
}

impl EditOp {
    /// Run length of this op.
    #[inline]
    pub fn len(&self) -> u32 {
        match *self {
            EditOp::Diag(n) | EditOp::GapQ(n) | EditOp::GapT(n) => n,
        }
    }

    /// True if this is a zero-length run.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// CIGAR opcode character (`M`, `D`, `I`).
    pub fn cigar_char(&self) -> char {
        match self {
            EditOp::Diag(_) => 'M',
            EditOp::GapQ(_) => 'D',
            EditOp::GapT(_) => 'I',
        }
    }

    /// Target/query bases consumed by this op.
    #[inline]
    pub fn consumes(&self) -> (u32, u32) {
        match *self {
            EditOp::Diag(n) => (n, n),
            EditOp::GapQ(n) => (n, 0),
            EditOp::GapT(n) => (0, n),
        }
    }
}

/// Appends `op` to `ops`, merging with a trailing op of the same kind.
pub fn push_op(ops: &mut Vec<EditOp>, op: EditOp) {
    if op.is_empty() {
        return;
    }
    if let Some(last) = ops.last_mut() {
        match (last, op) {
            (EditOp::Diag(a), EditOp::Diag(b)) => {
                *a += b;
                return;
            }
            (EditOp::GapQ(a), EditOp::GapQ(b)) => {
                *a += b;
                return;
            }
            (EditOp::GapT(a), EditOp::GapT(b)) => {
                *a += b;
                return;
            }
            _ => {}
        }
    }
    ops.push(op);
}

/// A gapped local alignment between a target and a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alignment {
    /// Target interval `[target_start, target_end)`.
    pub target_start: usize,
    /// End of the target interval (exclusive).
    pub target_end: usize,
    /// Query interval `[query_start, query_end)`.
    pub query_start: usize,
    /// End of the query interval (exclusive).
    pub query_end: usize,
    /// Alignment score under the scoring scheme it was produced with.
    pub score: i32,
    /// Run-length-encoded edit script from the start to the end.
    pub ops: Vec<EditOp>,
}

impl Alignment {
    /// Aligned length in target bases.
    pub fn target_len(&self) -> usize {
        self.target_end - self.target_start
    }

    /// Aligned length in query bases.
    pub fn query_len(&self) -> usize {
        self.query_end - self.query_start
    }

    /// The paper bins alignments by the larger of the two extents; this is
    /// that "alignment length" (number of base pairs including gaps on the
    /// longer side).
    pub fn length(&self) -> usize {
        self.target_len().max(self.query_len())
    }

    /// Total columns in the alignment (diagonal runs + both gap kinds).
    pub fn columns(&self) -> usize {
        self.ops.iter().map(|op| op.len() as usize).sum()
    }

    /// CIGAR string (`"35M2D18M"` style).
    pub fn cigar(&self) -> String {
        let mut s = String::new();
        for op in &self.ops {
            s.push_str(&op.len().to_string());
            s.push(op.cigar_char());
        }
        s
    }

    /// Checks structural validity: ops consume exactly the stated
    /// intervals and intervals lie within the sequences.
    pub fn is_consistent(&self, target: &Sequence, query: &Sequence) -> bool {
        if self.target_end > target.len()
            || self.query_end > query.len()
            || self.target_start > self.target_end
            || self.query_start > self.query_end
        {
            return false;
        }
        let (mut t, mut q) = (0u64, 0u64);
        for op in &self.ops {
            let (dt, dq) = op.consumes();
            t += dt as u64;
            q += dq as u64;
        }
        t == self.target_len() as u64 && q == self.query_len() as u64
    }

    /// Recomputes the alignment score from the edit script and sequences.
    /// Equals `self.score` for any correctly produced alignment.
    pub fn rescore(&self, target: &Sequence, query: &Sequence, scoring: &Scoring) -> i32 {
        let tc = target.codes();
        let qc = query.codes();
        let mut score = 0i32;
        let mut t = self.target_start;
        let mut q = self.query_start;
        for op in &self.ops {
            match *op {
                EditOp::Diag(n) => {
                    for _ in 0..n {
                        score += scoring.subst.score(tc[t], qc[q]);
                        t += 1;
                        q += 1;
                    }
                }
                EditOp::GapQ(n) => {
                    score -= scoring.gaps.gap_cost(n as usize);
                    t += n as usize;
                }
                EditOp::GapT(n) => {
                    score -= scoring.gaps.gap_cost(n as usize);
                    q += n as usize;
                }
            }
        }
        score
    }

    /// Fraction of diagonal columns that are exact matches.
    pub fn identity(&self, target: &Sequence, query: &Sequence) -> f64 {
        let tc = target.codes();
        let qc = query.codes();
        let mut matches = 0usize;
        let mut diag = 0usize;
        let mut t = self.target_start;
        let mut q = self.query_start;
        for op in &self.ops {
            match *op {
                EditOp::Diag(n) => {
                    for _ in 0..n {
                        if tc[t] == qc[q] {
                            matches += 1;
                        }
                        t += 1;
                        q += 1;
                    }
                    diag += n as usize;
                }
                EditOp::GapQ(n) => t += n as usize,
                EditOp::GapT(n) => q += n as usize,
            }
        }
        if diag == 0 {
            0.0
        } else {
            matches as f64 / diag as f64
        }
    }

    /// True if `anchor_t, anchor_q` falls inside this alignment's target
    /// and query intervals (used by LASTZ's sequential work reduction).
    pub fn contains_point(&self, anchor_t: usize, anchor_q: usize) -> bool {
        anchor_t >= self.target_start
            && anchor_t < self.target_end
            && anchor_q >= self.query_start
            && anchor_q < self.query_end
    }
}

impl fmt::Display for Alignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t[{}-{}) q[{}-{}) score={} {}",
            self.target_start,
            self.target_end,
            self.query_start,
            self.query_end,
            self.score,
            self.cigar()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::Sequence;

    fn seqs() -> (Sequence, Sequence) {
        (
            Sequence::from_ascii("t", b"ACGTACGTAC").unwrap(),
            Sequence::from_ascii("q", b"ACGTTACGTA").unwrap(),
        )
    }

    #[test]
    fn push_op_merges_same_kind() {
        let mut ops = vec![];
        push_op(&mut ops, EditOp::Diag(3));
        push_op(&mut ops, EditOp::Diag(2));
        push_op(&mut ops, EditOp::GapQ(1));
        push_op(&mut ops, EditOp::Diag(0)); // ignored
        push_op(&mut ops, EditOp::GapQ(4));
        assert_eq!(ops, vec![EditOp::Diag(5), EditOp::GapQ(5)]);
    }

    #[test]
    fn cigar_rendering() {
        let a = Alignment {
            target_start: 0,
            target_end: 6,
            query_start: 0,
            query_end: 5,
            score: 0,
            ops: vec![EditOp::Diag(4), EditOp::GapQ(2), EditOp::GapT(1)],
        };
        assert_eq!(a.cigar(), "4M2D1I");
        assert_eq!(a.columns(), 7);
        assert_eq!(a.length(), 6);
    }

    #[test]
    fn consistency_checks_consumption() {
        let (t, q) = seqs();
        let good = Alignment {
            target_start: 0,
            target_end: 4,
            query_start: 0,
            query_end: 4,
            score: 0,
            ops: vec![EditOp::Diag(4)],
        };
        assert!(good.is_consistent(&t, &q));
        let bad = Alignment {
            target_end: 5,
            ..good.clone()
        };
        assert!(!bad.is_consistent(&t, &q));
        let overflow = Alignment {
            target_start: 8,
            target_end: 12,
            ..good
        };
        assert!(!overflow.is_consistent(&t, &q));
    }

    #[test]
    fn rescore_matches_hand_computation() {
        let (t, q) = seqs();
        let scoring = Scoring::lastz_default();
        // t: ACGT-ACGTA
        // q: ACGTTACGTA  → 4M 1I(gapT) 5M, all matches
        let a = Alignment {
            target_start: 0,
            target_end: 9,
            query_start: 0,
            query_end: 10,
            score: 0,
            ops: vec![EditOp::Diag(4), EditOp::GapT(1), EditOp::Diag(5)],
        };
        assert!(a.is_consistent(&t, &q));
        let expected: i32 = [91, 100, 100, 91].iter().sum::<i32>() // ACGT
            - 430 // 1-base gap
            + 91 + 100 + 100 + 91 + 91; // ACGTA
        assert_eq!(a.rescore(&t, &q, &scoring), expected);
    }

    #[test]
    fn identity_counts_matches_only() {
        let t = Sequence::from_ascii("t", b"ACGT").unwrap();
        let q = Sequence::from_ascii("q", b"ACGA").unwrap();
        let a = Alignment {
            target_start: 0,
            target_end: 4,
            query_start: 0,
            query_end: 4,
            score: 0,
            ops: vec![EditOp::Diag(4)],
        };
        assert!((a.identity(&t, &q) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn contains_point_boundaries() {
        let a = Alignment {
            target_start: 10,
            target_end: 20,
            query_start: 5,
            query_end: 15,
            score: 0,
            ops: vec![],
        };
        assert!(a.contains_point(10, 5));
        assert!(a.contains_point(19, 14));
        assert!(!a.contains_point(20, 14));
        assert!(!a.contains_point(19, 15));
        assert!(!a.contains_point(9, 5));
    }

    #[test]
    fn display_includes_cigar() {
        let a = Alignment {
            target_start: 1,
            target_end: 3,
            query_start: 2,
            query_end: 4,
            score: 42,
            ops: vec![EditOp::Diag(2)],
        };
        let shown = format!("{a}");
        assert!(shown.contains("score=42"));
        assert!(shown.contains("2M"));
    }
}
