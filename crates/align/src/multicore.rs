//! Multicore LASTZ (paper §3.4, "Multicore Implementation").
//!
//! The paper's multicore baseline partitions the seed set across
//! processes, each running the default sequential DP for its partition.
//! We reproduce that structure with scoped threads: one static partition
//! per worker, each with its own scratch buffers and its own *local* work
//! reduction (the sequential terminate-at-previous-alignment rule cannot
//! see alignments found concurrently by other workers — the same
//! limitation the paper describes for any parallel implementation).

use crate::alignment::Alignment;
use crate::driver::{dedupe_alignments, DriverConfig, DriverReport, DriverStats};
use crate::extend::{gapped_extend_with, ExtendScratch};
use fastz_genome::Sequence;
use fastz_seed::Anchor;
use std::time::Instant;

/// Runs the gapped driver over `workers` static anchor partitions.
pub fn multicore_gapped(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    config: &DriverConfig,
    workers: usize,
) -> DriverReport {
    assert!(workers >= 1, "need at least one worker");
    let start = Instant::now();
    let workers = workers.min(anchors.len().max(1));
    let chunk = anchors.len().div_ceil(workers);

    let partials: Vec<(
        Vec<Alignment>,
        DriverStats,
        Vec<crate::driver::ExtensionRecord>,
    )> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for part in anchors.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut scratch = ExtendScratch::default();
                let mut alignments: Vec<Alignment> = Vec::new();
                let mut records = Vec::new();
                let mut stats = DriverStats {
                    seeds: part.len(),
                    ..DriverStats::default()
                };
                for &anchor in part {
                    if config.work_reduction {
                        let t = anchor.target_pos as usize;
                        let q = anchor.query_pos as usize;
                        if alignments.iter().any(|a| a.contains_point(t, q)) {
                            stats.skipped += 1;
                            continue;
                        }
                    }
                    let ext = gapped_extend_with(
                        target,
                        query,
                        anchor,
                        seed_span,
                        &config.scoring,
                        &config.extend,
                        &mut scratch,
                    );
                    stats.extended += 1;
                    stats.total_cells += ext.cells();
                    if config.record_extensions {
                        records.push(crate::driver::ExtensionRecord {
                            anchor,
                            score: ext.alignment.score,
                            max_extent: ext.max_extent(),
                            cells: ext.cells(),
                            optimal_cells: ((ext.left_extent.0 + 1) * (ext.left_extent.1 + 1)
                                + (ext.right_extent.0 + 1) * (ext.right_extent.1 + 1))
                                as u64,
                            left_stats: ext.left_stats,
                            right_stats: ext.right_stats,
                        });
                    }
                    if ext.alignment.score >= config.scoring.gapped_threshold {
                        alignments.push(ext.alignment);
                    }
                }
                (alignments, stats, records)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut alignments = Vec::new();
    let mut records = Vec::new();
    let mut stats = DriverStats::default();
    for (a, s, r) in partials {
        alignments.extend(a);
        records.extend(r);
        stats.seeds += s.seeds;
        stats.extended += s.extended;
        stats.skipped += s.skipped;
        stats.total_cells += s.total_cells;
    }
    stats.wall_time = start.elapsed();

    DriverReport {
        alignments: dedupe_alignments(alignments),
        stats,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::sequential_gapped;
    use fastz_genome::evolve::{generate_pair, PairParams};
    use fastz_genome::Scoring;
    use fastz_seed::{Workload, WorkloadParams};

    fn demo() -> (Sequence, Sequence, Vec<Anchor>, usize) {
        let pair = generate_pair(&PairParams {
            target_len: 30_000,
            query_len: 30_000,
            segments: 60,
            ..PairParams::small_demo("mc", 77)
        });
        // Dense seeds (fine filter only): the sequential work-reduction
        // rule needs anchors interior to found alignments to exercise.
        let wl = Workload::build(
            &pair.target,
            &pair.query,
            &WorkloadParams {
                filter_window: 32,
                band: 0,
                band_window: 0,
                ..WorkloadParams::default()
            },
        );
        let span = wl.shape.span();
        (pair.target, pair.query, wl.anchors, span)
    }

    #[test]
    fn multicore_matches_sequential_alignments() {
        let (t, q, anchors, span) = demo();
        // Disable work reduction so both paths do identical extensions.
        let cfg = DriverConfig {
            work_reduction: false,
            ..DriverConfig::gapped(Scoring::bench_scaled())
        };
        let seq = sequential_gapped(&t, &q, &anchors, span, &cfg);
        let par = multicore_gapped(&t, &q, &anchors, span, &cfg, 4);
        assert_eq!(seq.alignments, par.alignments);
        assert_eq!(seq.stats.total_cells, par.stats.total_cells);
    }

    #[test]
    fn multicore_with_local_work_reduction_finds_superset() {
        // Per-partition work reduction skips fewer seeds than global, so
        // the parallel run's alignment set must contain the sequential
        // run's (identical coordinates, possibly more entries — the
        // paper's "identical or occasionally longer" guarantee works the
        // same way).
        let (t, q, anchors, span) = demo();
        let cfg = DriverConfig::gapped(Scoring::bench_scaled());
        let seq = sequential_gapped(&t, &q, &anchors, span, &cfg);
        let par = multicore_gapped(&t, &q, &anchors, span, &cfg, 4);
        assert!(par.stats.skipped <= seq.stats.skipped);
        for a in &seq.alignments {
            assert!(
                par.alignments.contains(a),
                "parallel run lost alignment {a}"
            );
        }
    }

    #[test]
    fn single_worker_equals_sequential() {
        let (t, q, anchors, span) = demo();
        let cfg = DriverConfig::gapped(Scoring::bench_scaled());
        let seq = sequential_gapped(&t, &q, &anchors, span, &cfg);
        let par = multicore_gapped(&t, &q, &anchors, span, &cfg, 1);
        assert_eq!(seq.alignments, par.alignments);
        assert_eq!(seq.stats.skipped, par.stats.skipped);
    }

    #[test]
    fn worker_count_larger_than_anchors() {
        let (t, q, anchors, span) = demo();
        let cfg = DriverConfig::gapped(Scoring::bench_scaled());
        let few = &anchors[..3.min(anchors.len())];
        let par = multicore_gapped(&t, &q, few, span, &cfg, 64);
        assert_eq!(par.stats.seeds, few.len());
    }
}
