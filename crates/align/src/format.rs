//! Alignment output formats: MAF blocks and LASTZ's `--format=general`
//! tab-separated table.
//!
//! LASTZ is usually consumed through one of these two formats; providing
//! them makes the drivers' output directly comparable to real-world
//! pipelines.

use crate::alignment::{Alignment, EditOp};
use fastz_genome::Sequence;
use std::io::{self, Write};

/// Renders the two gapped alignment rows (with `-` characters) of `a`.
pub fn gapped_rows(a: &Alignment, target: &Sequence, query: &Sequence) -> (String, String) {
    let tc = target.codes();
    let qc = query.codes();
    let mut trow = String::with_capacity(a.columns());
    let mut qrow = String::with_capacity(a.columns());
    let mut t = a.target_start;
    let mut q = a.query_start;
    for op in &a.ops {
        match *op {
            EditOp::Diag(n) => {
                for _ in 0..n {
                    trow.push(fastz_genome::Base::from_code(tc[t]).to_ascii() as char);
                    qrow.push(fastz_genome::Base::from_code(qc[q]).to_ascii() as char);
                    t += 1;
                    q += 1;
                }
            }
            EditOp::GapQ(n) => {
                for _ in 0..n {
                    trow.push(fastz_genome::Base::from_code(tc[t]).to_ascii() as char);
                    qrow.push('-');
                    t += 1;
                }
            }
            EditOp::GapT(n) => {
                for _ in 0..n {
                    trow.push('-');
                    qrow.push(fastz_genome::Base::from_code(qc[q]).to_ascii() as char);
                    q += 1;
                }
            }
        }
    }
    (trow, qrow)
}

/// Writes alignments as MAF (one `a`/`s`/`s` block each).
pub fn write_maf<W: Write>(
    out: &mut W,
    alignments: &[Alignment],
    target: &Sequence,
    query: &Sequence,
) -> io::Result<()> {
    writeln!(out, "##maf version=1 scoring=fastz")?;
    for a in alignments {
        let (trow, qrow) = gapped_rows(a, target, query);
        writeln!(out, "a score={}", a.score)?;
        writeln!(
            out,
            "s {} {} {} + {} {}",
            target.name(),
            a.target_start,
            a.target_len(),
            target.len(),
            trow
        )?;
        writeln!(
            out,
            "s {} {} {} + {} {}",
            query.name(),
            a.query_start,
            a.query_len(),
            query.len(),
            qrow
        )?;
        writeln!(out)?;
    }
    Ok(())
}

/// Writes LASTZ `--format=general`-style TSV: header then one row per
/// alignment.
pub fn write_general<W: Write>(
    out: &mut W,
    alignments: &[Alignment],
    target: &Sequence,
    query: &Sequence,
) -> io::Result<()> {
    writeln!(
        out,
        "#score\tname1\tstart1\tend1\tname2\tstart2\tend2\tidentity\tcigar"
    )?;
    for a in alignments {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.1}%\t{}",
            a.score,
            target.name(),
            a.target_start,
            a.target_end,
            query.name(),
            a.query_start,
            a.query_end,
            100.0 * a.identity(target, query),
            a.cigar()
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Sequence, Sequence, Alignment) {
        let t = Sequence::from_ascii("chrT", b"AACGTACGTT").unwrap();
        let q = Sequence::from_ascii("chrQ", b"CCGTACGG").unwrap();
        // t[2..8] = CGTACG vs q[1..7] = CGTACG
        let a = Alignment {
            target_start: 2,
            target_end: 8,
            query_start: 1,
            query_end: 7,
            score: 42,
            ops: vec![EditOp::Diag(6)],
        };
        assert!(a.is_consistent(&t, &q));
        (t, q, a)
    }

    #[test]
    fn gapped_rows_align_columns() {
        let (t, q, a) = fixture();
        let (trow, qrow) = gapped_rows(&a, &t, &q);
        assert_eq!(trow, "CGTACG");
        assert_eq!(qrow, "CGTACG");
        assert_eq!(trow.len(), qrow.len());
    }

    #[test]
    fn gapped_rows_show_gaps() {
        let t = Sequence::from_ascii("t", b"ACGTTTACGT").unwrap();
        let q = Sequence::from_ascii("q", b"ACGTACGT").unwrap();
        let a = Alignment {
            target_start: 0,
            target_end: 10,
            query_start: 0,
            query_end: 8,
            score: 0,
            ops: vec![EditOp::Diag(4), EditOp::GapQ(2), EditOp::Diag(4)],
        };
        let (trow, qrow) = gapped_rows(&a, &t, &q);
        assert_eq!(trow, "ACGTTTACGT");
        assert_eq!(qrow, "ACGT--ACGT");
    }

    #[test]
    fn maf_block_structure() {
        let (t, q, a) = fixture();
        let mut buf = Vec::new();
        write_maf(&mut buf, &[a], &t, &q).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("##maf"));
        assert!(text.contains("a score=42"));
        assert!(text.contains("s chrT 2 6 + 10 CGTACG"));
        assert!(text.contains("s chrQ 1 6 + 8 CGTACG"));
    }

    #[test]
    fn general_table_structure() {
        let (t, q, a) = fixture();
        let mut buf = Vec::new();
        write_general(&mut buf, &[a], &t, &q).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("#score"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("42\tchrT\t2\t8\tchrQ\t1\t7\t"));
        assert!(row.ends_with("6M"));
        assert!(row.contains("100.0%"));
    }

    #[test]
    fn empty_alignment_list() {
        let (t, q, _) = fixture();
        let mut buf = Vec::new();
        write_maf(&mut buf, &[], &t, &q).unwrap();
        write_general(&mut buf, &[], &t, &q).unwrap();
        assert!(!buf.is_empty()); // headers only
    }
}
