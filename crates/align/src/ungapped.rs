//! Ungapped x-drop extension (LASTZ's filtering stage).
//!
//! The lower-sensitivity "ungapped LASTZ" variant filters seed sites by
//! extending them *without gaps* along the seed diagonal, abandoning the
//! walk once the running score drops `xdrop` below the best seen, and
//! keeping the site only if the resulting HSP (high-scoring segment pair)
//! reaches `hsp_threshold`. The paper's Figure 2 contrasts the alignments
//! this filter admits against the gapped pipeline's.

use crate::score;
use fastz_genome::Scoring;

/// An ungapped high-scoring segment pair on one diagonal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hsp {
    /// Target start (inclusive).
    pub target_start: usize,
    /// Target end (exclusive).
    pub target_end: usize,
    /// Query start (inclusive).
    pub query_start: usize,
    /// Score of the segment.
    pub score: i32,
}

impl Hsp {
    /// Segment length in base pairs.
    pub fn len(&self) -> usize {
        self.target_end - self.target_start
    }

    /// True for a zero-length segment.
    pub fn is_empty(&self) -> bool {
        self.target_end == self.target_start
    }

    /// Query end (exclusive) — ungapped, so it mirrors the target extent.
    pub fn query_end(&self) -> usize {
        self.query_start + self.len()
    }
}

/// Walks one direction from `(t, q)` (exclusive of the start position for
/// `dir = -1`, inclusive semantics documented at [`xdrop_extend`]),
/// returning `(bases_consumed, score_gained)` of the best prefix.
fn walk(
    target: &[u8],
    query: &[u8],
    mut t: i64,
    mut q: i64,
    dir: i64,
    scoring: &Scoring,
) -> (usize, i32) {
    let mut score = 0i32;
    let mut best = 0i32;
    let mut best_steps = 0usize;
    let mut steps = 0usize;
    loop {
        if t < 0 || q < 0 || t >= target.len() as i64 || q >= query.len() as i64 {
            break;
        }
        score = score::add_clamped(
            score,
            scoring.subst.score(target[t as usize], query[q as usize]),
        );
        steps += 1;
        if score > best {
            best = score;
            best_steps = steps;
        }
        if score < best - scoring.xdrop {
            break;
        }
        t += dir;
        q += dir;
    }
    (best_steps, best)
}

/// Extends an anchor of length `seed_span` at `(target_pos, query_pos)`
/// in both directions without gaps, x-drop terminated.
///
/// The returned HSP covers the best left extension, the seed span itself,
/// and the best right extension.
pub fn xdrop_extend(
    target: &[u8],
    query: &[u8],
    target_pos: usize,
    query_pos: usize,
    seed_span: usize,
    scoring: &Scoring,
) -> Hsp {
    debug_assert!(target_pos + seed_span <= target.len());
    debug_assert!(query_pos + seed_span <= query.len());

    // Seed body score.
    let mut seed_score = 0i32;
    for k in 0..seed_span {
        seed_score = score::add_clamped(
            seed_score,
            scoring
                .subst
                .score(target[target_pos + k], query[query_pos + k]),
        );
    }

    let (left_steps, left_score) = walk(
        target,
        query,
        target_pos as i64 - 1,
        query_pos as i64 - 1,
        -1,
        scoring,
    );
    let (right_steps, right_score) = walk(
        target,
        query,
        (target_pos + seed_span) as i64,
        (query_pos + seed_span) as i64,
        1,
        scoring,
    );

    Hsp {
        target_start: target_pos - left_steps,
        target_end: target_pos + seed_span + right_steps,
        query_start: query_pos - left_steps,
        score: score::add_clamped(score::add_clamped(seed_score, left_score), right_score),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::{GapPenalties, Scoring, Sequence, SubstMatrix};

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("x", s).unwrap().codes().to_vec()
    }

    fn scoring() -> Scoring {
        Scoring {
            subst: SubstMatrix::match_mismatch(10, -15),
            gaps: GapPenalties::new(30, 5),
            ydrop: 100,
            xdrop: 40,
            hsp_threshold: 50,
            gapped_threshold: 50,
        }
    }

    #[test]
    fn perfect_context_extends_to_ends() {
        let t = codes(b"ACGTACGTACGT");
        let hsp = xdrop_extend(&t, &t, 4, 4, 4, &scoring());
        assert_eq!(hsp.target_start, 0);
        assert_eq!(hsp.target_end, 12);
        assert_eq!(hsp.score, 120);
        assert_eq!(hsp.len(), 12);
        assert_eq!(hsp.query_end(), 12);
    }

    #[test]
    fn xdrop_stops_in_garbage() {
        let t = codes(b"CCCCCCCCACGTACGTCCCCCCCC");
        let q = codes(b"GGGGGGGGACGTACGTGGGGGGGG");
        let hsp = xdrop_extend(&t, &q, 8, 8, 8, &scoring());
        assert_eq!(hsp.target_start, 8);
        assert_eq!(hsp.target_end, 16);
        assert_eq!(hsp.score, 80);
    }

    #[test]
    fn extension_crosses_isolated_mismatch() {
        // One mismatch inside otherwise matching context is worth crossing.
        let t = codes(b"ACGTACGTTACGTACG");
        let q = codes(b"ACGTACGTGACGTACG");
        let hsp = xdrop_extend(&t, &q, 0, 0, 4, &scoring());
        assert_eq!(hsp.target_end, 16);
        assert_eq!(hsp.score, 15 * 10 - 15);
    }

    #[test]
    fn anchor_at_sequence_edges() {
        let t = codes(b"ACGT");
        let hsp = xdrop_extend(&t, &t, 0, 0, 4, &scoring());
        assert_eq!(hsp.target_start, 0);
        assert_eq!(hsp.target_end, 4);
        assert_eq!(hsp.score, 40);
    }

    #[test]
    fn asymmetric_anchor_positions() {
        let t = codes(b"TTTTACGTACGT");
        let q = codes(b"ACGTACGTCCCC");
        // Anchor: t[4..8] vs q[0..4] = "ACGT".
        let hsp = xdrop_extend(&t, &q, 4, 0, 4, &scoring());
        assert_eq!(hsp.target_start, 4);
        assert_eq!(hsp.query_start, 0);
        assert_eq!(hsp.target_end, 12);
        assert_eq!(hsp.score, 80);
    }

    #[test]
    fn ungapped_misses_what_gaps_would_bridge() {
        // A 2-bp indel splits the homology; ungapped extension cannot
        // bridge it so the HSP stays on one side.
        let t = codes(b"ACGTACGTACGTTTACGTACGTACGT");
        let q = codes(b"ACGTACGTACGTACGTACGTACGT");
        let hsp = xdrop_extend(&t, &q, 0, 0, 4, &scoring());
        assert!(hsp.target_end <= 14, "HSP ran past the indel: {hsp:?}");
    }
}
