//! Sequential whole-genome-alignment drivers (the LASTZ baselines).
//!
//! * [`sequential_gapped`] — gapped LASTZ: every filtered seed is gapped-
//!   extended, with LASTZ's sequential work reduction (an anchor interior
//!   to a previously found alignment is skipped, paper §2.1).
//! * [`sequential_ungapped_filtered`] — "ungapped LASTZ": seeds pass an
//!   ungapped x-drop HSP filter first; only survivors are gapped-extended.
//!   Faster, lower sensitivity (paper Fig. 2).

use crate::alignment::Alignment;
use crate::extend::{gapped_extend_with, ExtendConfig, ExtendScratch};
use crate::score;
use crate::ungapped::xdrop_extend;
use crate::ydrop::ExtensionStats;
use fastz_genome::{Scoring, Sequence};
use fastz_seed::Anchor;
use std::time::{Duration, Instant};

/// Outcome class of one seed extension (drives Table 2 and the cost
/// models).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtensionRecord {
    /// The anchor that was extended.
    pub anchor: Anchor,
    /// Final combined score.
    pub score: i32,
    /// The paper's binning extent (max optimal extent over both halves).
    pub max_extent: usize,
    /// DP cells explored by both halves (search space).
    pub cells: u64,
    /// DP cells inside the optimal region only (what a trimmed executor
    /// would recompute): `Σ (best_i+1)·(best_j+1)` over both halves.
    pub optimal_cells: u64,
    /// Search-space statistics of the left half.
    pub left_stats: ExtensionStats,
    /// Search-space statistics of the right half.
    pub right_stats: ExtensionStats,
}

/// Aggregate driver statistics.
#[derive(Clone, Debug, Default)]
pub struct DriverStats {
    /// Seeds offered to the driver.
    pub seeds: usize,
    /// Seeds actually extended (not skipped by work reduction).
    pub extended: usize,
    /// Seeds skipped because they fell inside a previous alignment.
    pub skipped: usize,
    /// Total DP cells explored.
    pub total_cells: u64,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
}

/// Result of a driver run.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// Alignments meeting the score threshold, deduplicated.
    pub alignments: Vec<Alignment>,
    /// Aggregate stats.
    pub stats: DriverStats,
    /// Per-extension records (present when requested).
    pub records: Vec<ExtensionRecord>,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Gapped-extension settings.
    pub extend: ExtendConfig,
    /// Apply LASTZ's sequential terminate-at-previous-alignment rule.
    pub work_reduction: bool,
    /// Keep per-extension records (needed by Table 2 / cost models).
    pub record_extensions: bool,
}

impl DriverConfig {
    /// The gapped-LASTZ default for a scoring scheme.
    pub fn gapped(scoring: Scoring) -> DriverConfig {
        DriverConfig {
            scoring,
            extend: ExtendConfig::default(),
            work_reduction: true,
            record_extensions: false,
        }
    }
}

/// Removes duplicate alignments (same coordinates), keeping the first,
/// and sorts by (target_start, query_start).
pub fn dedupe_alignments(mut alignments: Vec<Alignment>) -> Vec<Alignment> {
    alignments.sort_by_key(|a| (a.target_start, a.query_start, a.target_end, a.query_end));
    alignments.dedup_by(|a, b| {
        a.target_start == b.target_start
            && a.query_start == b.query_start
            && a.target_end == b.target_end
            && a.query_end == b.query_end
    });
    alignments
}

fn record_of(anchor: Anchor, ext: &crate::extend::GappedExtension) -> ExtensionRecord {
    let opt = |e: (usize, usize)| ((e.0 + 1) as u64) * ((e.1 + 1) as u64);
    ExtensionRecord {
        anchor,
        score: ext.alignment.score,
        max_extent: ext.max_extent(),
        cells: ext.cells(),
        optimal_cells: opt(ext.left_extent) + opt(ext.right_extent),
        left_stats: ext.left_stats,
        right_stats: ext.right_stats,
    }
}

/// Runs the gapped (high-sensitivity) sequential driver.
pub fn sequential_gapped(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    config: &DriverConfig,
) -> DriverReport {
    let start = Instant::now();
    let mut scratch = ExtendScratch::default();
    let mut alignments: Vec<Alignment> = Vec::new();
    let mut records = Vec::new();
    let mut stats = DriverStats {
        seeds: anchors.len(),
        ..DriverStats::default()
    };

    for &anchor in anchors {
        if config.work_reduction {
            let t = anchor.target_pos as usize;
            let q = anchor.query_pos as usize;
            // LASTZ's sequential rule: a seed interior to an alignment we
            // already produced cannot yield a better, different alignment.
            if alignments.iter().any(|a| a.contains_point(t, q)) {
                stats.skipped += 1;
                continue;
            }
        }
        let ext = gapped_extend_with(
            target,
            query,
            anchor,
            seed_span,
            &config.scoring,
            &config.extend,
            &mut scratch,
        );
        stats.extended += 1;
        stats.total_cells += ext.cells();
        if config.record_extensions {
            records.push(record_of(anchor, &ext));
        }
        if ext.alignment.score >= config.scoring.gapped_threshold {
            alignments.push(ext.alignment);
        }
    }

    stats.wall_time = start.elapsed();
    DriverReport {
        alignments: dedupe_alignments(alignments),
        stats,
        records,
    }
}

/// Runs the ungapped-filtered (lower-sensitivity) sequential driver:
/// x-drop HSP filter, then gapped extension of survivors only.
pub fn sequential_ungapped_filtered(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    config: &DriverConfig,
) -> DriverReport {
    let start = Instant::now();
    let mut scratch = ExtendScratch::default();
    let mut alignments: Vec<Alignment> = Vec::new();
    let mut records = Vec::new();
    let mut stats = DriverStats {
        seeds: anchors.len(),
        ..DriverStats::default()
    };

    for &anchor in anchors {
        let hsp = xdrop_extend(
            target.codes(),
            query.codes(),
            anchor.target_pos as usize,
            anchor.query_pos as usize,
            seed_span,
            &config.scoring,
        );
        if hsp.score < config.scoring.hsp_threshold {
            stats.skipped += 1;
            continue;
        }
        if config.work_reduction {
            let t = anchor.target_pos as usize;
            let q = anchor.query_pos as usize;
            if alignments.iter().any(|a| a.contains_point(t, q)) {
                stats.skipped += 1;
                continue;
            }
        }
        let ext = gapped_extend_with(
            target,
            query,
            anchor,
            seed_span,
            &config.scoring,
            &config.extend,
            &mut scratch,
        );
        stats.extended += 1;
        stats.total_cells += ext.cells();
        if config.record_extensions {
            records.push(record_of(anchor, &ext));
        }
        if ext.alignment.score >= config.scoring.gapped_threshold {
            alignments.push(ext.alignment);
        }
    }

    stats.wall_time = start.elapsed();
    DriverReport {
        alignments: dedupe_alignments(alignments),
        stats,
        records,
    }
}

/// Runs a Darwin-WGA-style banded-filtered driver: seeds are extended
/// with *banded* Smith-Waterman (band ±`band` cells around the seed
/// diagonal, paper §2.1/§2.3) and kept when the banded score reaches the
/// gapped threshold. Faster than the exact search but may miss optimal
/// alignments whose paths stray outside the band — the sensitivity loss
/// FastZ avoids by doing the exact y-drop search instead.
pub fn sequential_banded(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    band: usize,
    config: &DriverConfig,
) -> DriverReport {
    use crate::alignment::{push_op, EditOp};
    use crate::banded::banded_extend;

    let start = Instant::now();
    let mut alignments: Vec<Alignment> = Vec::new();
    let mut stats = DriverStats {
        seeds: anchors.len(),
        ..DriverStats::default()
    };

    let tc = target.codes();
    let qc = query.codes();
    let max_ext = config.extend.max_extension;
    for &anchor in anchors {
        let t0 = anchor.target_pos as usize;
        let q0 = anchor.query_pos as usize;
        if config.work_reduction && alignments.iter().any(|a| a.contains_point(t0, q0)) {
            stats.skipped += 1;
            continue;
        }
        // Seed body.
        let mut seed_score = 0i32;
        for k in 0..seed_span {
            seed_score = score::add_clamped(
                seed_score,
                config.scoring.subst.score(tc[t0 + k], qc[q0 + k]),
            );
        }
        // Right half.
        let rt = &tc[t0 + seed_span..tc.len().min(t0 + seed_span + max_ext)];
        let rq = &qc[q0 + seed_span..qc.len().min(q0 + seed_span + max_ext)];
        let right = banded_extend(rt, rq, band, &config.scoring, config.extend.traceback);
        // Left half on reversed prefixes.
        let lt: Vec<u8> = tc[t0.saturating_sub(max_ext)..t0]
            .iter()
            .rev()
            .copied()
            .collect();
        let lq: Vec<u8> = qc[q0.saturating_sub(max_ext)..q0]
            .iter()
            .rev()
            .copied()
            .collect();
        let left = banded_extend(&lt, &lq, band, &config.scoring, config.extend.traceback);

        stats.extended += 1;
        stats.total_cells += left.stats.cells + right.stats.cells;

        let score = score::add_clamped(
            score::add_clamped(left.best_score, seed_score),
            right.best_score,
        );
        if score >= config.scoring.gapped_threshold {
            let mut ops: Vec<EditOp> = Vec::new();
            if let Some(lops) = &left.ops {
                for &op in lops.iter().rev() {
                    push_op(&mut ops, op);
                }
            }
            push_op(&mut ops, EditOp::Diag(seed_span as u32));
            if let Some(rops) = &right.ops {
                for &op in rops {
                    push_op(&mut ops, op);
                }
            }
            alignments.push(Alignment {
                target_start: t0 - left.best_j,
                target_end: t0 + seed_span + right.best_j,
                query_start: q0 - left.best_i,
                query_end: q0 + seed_span + right.best_i,
                score,
                ops,
            });
        }
    }

    stats.wall_time = start.elapsed();
    DriverReport {
        alignments: dedupe_alignments(alignments),
        stats,
        records: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::evolve::{generate_pair, PairParams};
    use fastz_genome::Scoring;
    use fastz_seed::{Workload, WorkloadParams};

    fn demo() -> (Sequence, Sequence, Vec<Anchor>, usize) {
        let pair = generate_pair(&PairParams {
            target_len: 30_000,
            query_len: 30_000,
            segments: 60,
            ..PairParams::small_demo("drv", 31)
        });
        // Dense seeds (fine filter only): the sequential work-reduction
        // rule needs anchors interior to found alignments to exercise.
        let wl = Workload::build(
            &pair.target,
            &pair.query,
            &WorkloadParams {
                filter_window: 32,
                band: 0,
                band_window: 0,
                ..WorkloadParams::default()
            },
        );
        let span = wl.shape.span();
        (pair.target, pair.query, wl.anchors, span)
    }

    #[test]
    fn gapped_driver_finds_alignments() {
        let (t, q, anchors, span) = demo();
        let cfg = DriverConfig {
            record_extensions: true,
            ..DriverConfig::gapped(Scoring::bench_scaled())
        };
        let report = sequential_gapped(&t, &q, &anchors, span, &cfg);
        assert!(!report.alignments.is_empty());
        assert_eq!(report.stats.seeds, anchors.len());
        assert_eq!(
            report.stats.extended + report.stats.skipped,
            report.stats.seeds
        );
        assert_eq!(report.records.len(), report.stats.extended);
        for a in &report.alignments {
            assert!(a.is_consistent(&t, &q));
            assert_eq!(a.rescore(&t, &q, &cfg.scoring), a.score);
            assert!(a.score >= cfg.scoring.gapped_threshold);
        }
    }

    #[test]
    fn work_reduction_skips_interior_seeds() {
        let (t, q, anchors, span) = demo();
        let with = sequential_gapped(
            &t,
            &q,
            &anchors,
            span,
            &DriverConfig::gapped(Scoring::bench_scaled()),
        );
        let without = sequential_gapped(
            &t,
            &q,
            &anchors,
            span,
            &DriverConfig {
                work_reduction: false,
                ..DriverConfig::gapped(Scoring::bench_scaled())
            },
        );
        assert!(with.stats.skipped > 0, "expected some skips");
        assert_eq!(without.stats.skipped, 0);
        assert!(with.stats.total_cells < without.stats.total_cells);
        // Work reduction is a heuristic (LASTZ §2.1): skipped seeds are
        // assumed to re-find the enclosing alignment, so the reduced run
        // reports a subset of the full run's alignments — and not a much
        // smaller one.
        for a in &with.alignments {
            assert!(without.alignments.contains(a), "reduced run invented {a}");
        }
        assert!(
            with.alignments.len() * 10 >= without.alignments.len() * 9,
            "work reduction lost too many alignments: {} vs {}",
            with.alignments.len(),
            without.alignments.len()
        );
    }

    #[test]
    fn ungapped_filter_is_less_sensitive() {
        let (t, q, anchors, span) = demo();
        let cfg = DriverConfig::gapped(Scoring::bench_scaled());
        let gapped = sequential_gapped(&t, &q, &anchors, span, &cfg);
        let ungapped = sequential_ungapped_filtered(&t, &q, &anchors, span, &cfg);
        assert!(
            ungapped.alignments.len() <= gapped.alignments.len(),
            "ungapped {} vs gapped {}",
            ungapped.alignments.len(),
            gapped.alignments.len()
        );
        // And it does less DP work.
        assert!(ungapped.stats.total_cells <= gapped.stats.total_cells);
    }

    #[test]
    fn dedupe_removes_coordinate_duplicates() {
        let a = Alignment {
            target_start: 0,
            target_end: 10,
            query_start: 0,
            query_end: 10,
            score: 5,
            ops: vec![],
        };
        let out = dedupe_alignments(vec![a.clone(), a.clone()]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_anchor_list() {
        let (t, q, _, span) = demo();
        let report = sequential_gapped(
            &t,
            &q,
            &[],
            span,
            &DriverConfig::gapped(Scoring::bench_scaled()),
        );
        assert!(report.alignments.is_empty());
        assert_eq!(report.stats.seeds, 0);
    }

    #[test]
    fn banded_driver_finds_alignments_but_can_miss_optima() {
        let (t, q, anchors, span) = demo();
        // Work reduction off: band width changes alignment lengths, which
        // changes which seeds get skipped — confounding the comparison.
        let cfg = DriverConfig {
            work_reduction: false,
            ..DriverConfig::gapped(Scoring::bench_scaled())
        };
        let exact = sequential_gapped(&t, &q, &anchors, span, &cfg);
        let banded = sequential_banded(&t, &q, &anchors, span, 16, &cfg);
        assert!(!banded.alignments.is_empty());
        // The band explores (often far) fewer cells per seed.
        assert!(banded.stats.total_cells < exact.stats.total_cells * 2);
        // Sensitivity: per anchor the band explores a subset of the exact
        // search, so the best banded score cannot beat the best exact one.
        let best = |r: &DriverReport| r.alignments.iter().map(|a| a.score).max().unwrap_or(0);
        assert!(
            best(&exact) >= best(&banded),
            "banded best {} beat exact best {}",
            best(&banded),
            best(&exact)
        );
        for a in &banded.alignments {
            assert!(a.is_consistent(&t, &q));
            assert_eq!(a.rescore(&t, &q, &cfg.scoring), a.score);
        }
    }

    #[test]
    fn wider_bands_recover_sensitivity() {
        let (t, q, anchors, span) = demo();
        let cfg = DriverConfig {
            work_reduction: false,
            ..DriverConfig::gapped(Scoring::bench_scaled())
        };
        let narrow = sequential_banded(&t, &q, &anchors, span, 4, &cfg);
        let wide = sequential_banded(&t, &q, &anchors, span, 64, &cfg);
        let best = |r: &DriverReport| r.alignments.iter().map(|a| a.score).max().unwrap_or(0);
        assert!(
            best(&wide) >= best(&narrow),
            "wide best {} < narrow best {}",
            best(&wide),
            best(&narrow)
        );
        assert!(wide.stats.total_cells > narrow.stats.total_cells);
    }
}
