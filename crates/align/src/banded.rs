//! Banded Smith-Waterman extension (the Darwin-WGA heuristic baseline).
//!
//! Darwin-WGA bounds the search space to a fixed-width band around the
//! seed diagonal (paper §2.1/§2.3). The band makes the work per seed
//! O(rows × band) but can miss optimal alignments whose path strays more
//! than `band` cells off-diagonal — the reason FastZ pursues the exact
//! (unbanded) y-drop search instead. We implement it both as a comparison
//! baseline and to demonstrate that miss in tests.

use crate::score;
use crate::ydrop::{tb, walk_traceback, ExtensionStats, OneSidedExtension, Traceback, NEG_INF};
use fastz_genome::Scoring;

/// One-sided banded extension: explores only cells with `|j - i| <= band`,
/// still y-drop terminated row-wise.
pub fn banded_extend(
    target: &[u8],
    query: &[u8],
    band: usize,
    scoring: &Scoring,
    want_traceback: bool,
) -> OneSidedExtension {
    let so_se = scoring.gaps.open_score();
    let se = scoring.gaps.extend_score();
    let n = target.len();
    let m = query.len();

    let mut best_score = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);
    let mut stats = ExtensionStats::default();
    let mut tbm = Traceback::default();

    // Row storage over the band window of the previous row.
    let mut prev_lo = 0usize;
    let mut s_prev: Vec<i32> = Vec::new();
    let mut d_prev: Vec<i32> = Vec::new();

    // Row 0: I chain out to the band edge.
    {
        let hi0 = n.min(band) + 1;
        let mut tb_row = Vec::new();
        for j in 0..hi0 {
            let s_val = if j == 0 {
                if want_traceback {
                    tb_row.push(tb::S_ORIGIN);
                }
                0
            } else {
                let i_val = score::gap_chain(so_se, se, j as i32 - 1);
                if want_traceback {
                    let mut byte = tb::S_FROM_I;
                    if j > 1 {
                        byte |= tb::I_EXTEND;
                    }
                    tb_row.push(byte);
                }
                i_val
            };
            stats.cells += 1;
            s_prev.push(s_val);
            d_prev.push(NEG_INF);
        }
        stats.rows = 1;
        stats.max_cols = hi0;
        if want_traceback {
            tbm.push_row(0, tb_row);
        }
    }

    for i in 1..=m {
        let lo = i.saturating_sub(band);
        let hi = n.min(i + band) + 1;
        if lo >= hi {
            break;
        }
        let threshold = score::add_clamped(best_score, -scoring.ydrop);
        let mut s_cur = Vec::with_capacity(hi - lo);
        let mut d_cur = Vec::with_capacity(hi - lo);
        let mut tb_row = Vec::new();
        let mut any_live = false;
        let mut i_left = NEG_INF;
        let mut s_left = NEG_INF;
        for j in lo..hi {
            let fetch_prev = |col: usize| -> (i32, i32) {
                if col >= prev_lo && col - prev_lo < s_prev.len() {
                    (s_prev[col - prev_lo], d_prev[col - prev_lo])
                } else {
                    (NEG_INF, NEG_INF)
                }
            };
            let (s_up, d_up) = fetch_prev(j);
            let s_diag = if j >= 1 { fetch_prev(j - 1).0 } else { NEG_INF };

            // fastz-lint: allow(clamped-score-arith, Gotoh recurrence adds
            // stay raw by contract — operands are clamped stored values and
            // clamping here could flip the `ext >= open` tie-break at the
            // sentinel floor; see crate::score module docs)
            let (i_val, i_ext) = {
                let open = s_left + so_se;
                let ext = i_left + se;
                if ext >= open {
                    (ext, true)
                } else {
                    (open, false)
                }
            };
            let (d_val, d_ext) = {
                let open = s_up + so_se;
                let ext = d_up + se;
                if ext >= open {
                    (ext, true)
                } else {
                    (open, false)
                }
            };
            let diag_val = if j >= 1 {
                s_diag + scoring.subst.score(target[j - 1], query[i - 1])
            } else {
                NEG_INF
            };
            let (mut s_val, mut s_src) = (diag_val, tb::S_DIAG);
            if i_val > s_val {
                s_val = i_val;
                s_src = tb::S_FROM_I;
            }
            if d_val > s_val {
                s_val = d_val;
                s_src = tb::S_FROM_D;
            }
            stats.cells += 1;

            let dead = s_val < threshold && i_val < threshold && d_val < threshold;
            let (s_store, i_store, d_store) = if dead {
                (NEG_INF, NEG_INF, NEG_INF)
            } else {
                // A live cell's I/D may still be sentinel-derived; clamp
                // at the NEG_INF floor so dead gap chains cannot drift
                // toward i32::MIN across rows (the PR 1 ydrop fix, which
                // this banded baseline had missed).
                (s_val, score::clamp(i_val), score::clamp(d_val))
            };
            if !dead {
                any_live = true;
                if s_store > best_score {
                    best_score = s_store;
                    best_i = i;
                    best_j = j;
                }
            }
            if want_traceback {
                let mut byte = if dead || s_val <= NEG_INF / 2 {
                    tb::S_ORIGIN
                } else {
                    s_src
                };
                if i_ext {
                    byte |= tb::I_EXTEND;
                }
                if d_ext {
                    byte |= tb::D_EXTEND;
                }
                tb_row.push(byte);
            }
            s_cur.push(s_store);
            d_cur.push(d_store);
            s_left = s_store;
            i_left = i_store;
        }
        if !any_live {
            break;
        }
        stats.rows = i + 1;
        stats.max_cols = stats.max_cols.max(hi);
        if want_traceback {
            tbm.push_row(lo, tb_row);
        }
        prev_lo = lo;
        s_prev = s_cur;
        d_prev = d_cur;
    }

    let ops = want_traceback.then(|| walk_traceback(&tbm, best_i, best_j));
    OneSidedExtension {
        best_score,
        best_i,
        best_j,
        ops,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::EditOp;
    use crate::ydrop::{ydrop_extend, PruneMode};
    use fastz_genome::{GapPenalties, Sequence, SubstMatrix};

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("x", s).unwrap().codes().to_vec()
    }

    fn scoring() -> Scoring {
        Scoring {
            subst: SubstMatrix::match_mismatch(10, -15),
            gaps: GapPenalties::new(30, 5),
            ydrop: 150,
            xdrop: 40,
            hsp_threshold: 50,
            gapped_threshold: 50,
        }
    }

    #[test]
    fn matches_unbanded_on_diagonal_homology() {
        let t = codes(b"ACGTACGGTACGTACGATCGAC");
        let q = codes(b"ACGTACGGTACGTACGATCGAC");
        let banded = banded_extend(&t, &q, 8, &scoring(), true);
        let exact = ydrop_extend(&t, &q, &scoring(), PruneMode::Exact, true);
        assert_eq!(banded.best_score, exact.best_score);
        assert_eq!(banded.ops, exact.ops);
    }

    #[test]
    fn band_misses_large_indel() {
        // A 12-bp insertion in the query pushes the optimum 12 cells off
        // the diagonal: a band of 4 cannot reach it, the exact engine can.
        let t = codes(b"ACGTACGTACGTACGTACGTACGT");
        let q = codes(b"ACGTACGTACGTTTTTTTTTTTTTACGTACGTACGT");
        let sc = Scoring {
            ydrop: 400,
            ..scoring()
        };
        let banded = banded_extend(&t, &q, 4, &sc, false);
        let exact = ydrop_extend(&t, &q, &sc, PruneMode::Exact, false);
        assert!(
            exact.best_score > banded.best_score,
            "exact {} vs banded {}",
            exact.best_score,
            banded.best_score
        );
    }

    #[test]
    fn banded_work_is_linear_in_band() {
        let t = codes(&b"ACGT".repeat(100));
        let narrow = banded_extend(&t, &t, 2, &scoring(), false);
        let wide = banded_extend(&t, &t, 32, &scoring(), false);
        assert!(narrow.stats.cells < wide.stats.cells);
        assert!(narrow.stats.cells < 410 * 6);
    }

    #[test]
    fn traceback_consistent() {
        let t = codes(b"ACGTAACGGTACGTAC");
        let q = codes(b"ACGTACGGTACGTTAC");
        let r = banded_extend(&t, &q, 6, &scoring(), true);
        let ops = r.ops.unwrap();
        let (mut ti, mut qi) = (0usize, 0usize);
        for op in &ops {
            match *op {
                EditOp::Diag(k) => {
                    ti += k as usize;
                    qi += k as usize;
                }
                EditOp::GapQ(k) => ti += k as usize,
                EditOp::GapT(k) => qi += k as usize,
            }
        }
        assert_eq!((ti, qi), (r.best_j, r.best_i));
    }

    #[test]
    fn empty_inputs() {
        let r = banded_extend(&[], &[], 8, &scoring(), true);
        assert_eq!(r.best_score, 0);
        assert_eq!(r.ops.unwrap(), vec![]);
    }
}
