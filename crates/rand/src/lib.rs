//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact API surface it consumes: [`rngs::SmallRng`] (here a
//! xoshiro256** generator seeded via SplitMix64), [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen_range` / `gen_bool` / `gen`.
//! Determinism is the contract that matters for the test suites and the
//! conformance oracle: the same seed always yields the same stream.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can draw uniformly (the distribution layer;
/// keeping the `SampleRange` impls generic over one `T: SampleUniform`
/// preserves rand's integer-literal type inference).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[low, high)` when `inclusive` is false, `[low, high]`
    /// otherwise.
    fn sample_uniform<G: RngCore + ?Sized>(
        rng: &mut G,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<G: RngCore + ?Sized>(
                rng: &mut G,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty gen_range");
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<G: RngCore + ?Sized>(
                rng: &mut G,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Types that a range expression can sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Types drawable by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn standard<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// High-level convenience methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draw from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

impl<G: RngCore> Rng for G {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u8..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(10usize..=12);
            assert!((10..=12).contains(&y));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
