//! Stable metric and span names.
//!
//! Exporters, golden fixtures, CI gates, and the conformance drill all
//! key on these strings; treat them as a public wire format and never
//! rename without regenerating the fixtures.

use crate::metrics::labeled;

// ---------------------------------------------------------------------------
// Span names (the phase-scoped timeline)
// ---------------------------------------------------------------------------

/// Inspector phase span.
pub const SPAN_INSPECTOR: &str = "inspector";
/// Eager-traceback sub-span (inside the inspector).
pub const SPAN_EAGER_TRACEBACK: &str = "eager_traceback";
/// Stream launch/dispatch overhead span.
pub const SPAN_STREAM_DISPATCH: &str = "stream_dispatch";
/// Fault-recovery overhead span (absent on fault-free runs).
pub const SPAN_RESILIENT_RETRY: &str = "resilient_retry";
/// Host-side "other" span (copies, sorting, bookkeeping).
pub const SPAN_OTHER: &str = "other";

/// Executor-bin span name for an executor slot's upper bound
/// (`None` = the overflow class beyond the largest bin).
pub fn executor_bin_span(bound: Option<usize>) -> &'static str {
    match bound {
        Some(512) => "executor_bin512",
        Some(2048) => "executor_bin2048",
        Some(8192) => "executor_bin8192",
        Some(32768) => "executor_bin32768",
        None => "executor_bin_overflow",
        Some(other) => panic!("no executor bin with bound {other}"),
    }
}

// ---------------------------------------------------------------------------
// Counter names (semantic — engine- and timing-invariant)
// ---------------------------------------------------------------------------

/// Seed anchors processed.
pub const SEEDS_TOTAL: &str = "fastz_seeds_total";
/// One-sided extension problems (2 per seed).
pub const PROBLEMS_TOTAL: &str = "fastz_problems_total";
/// Problems finished by eager traceback in the inspector.
pub const EAGER_RESOLVED_TOTAL: &str = "fastz_eager_resolved_total";
/// Problems that required the executor.
pub const EXECUTOR_PROBLEMS_TOTAL: &str = "fastz_executor_problems_total";
/// Alignments emitted after dedup and thresholding.
pub const ALIGNMENTS_TOTAL: &str = "fastz_alignments_total";
/// Per-bin seed counts; label `bin` ∈ eager|512|2048|8192|32768|overflow.
pub const BIN_SEEDS_TOTAL: &str = "fastz_bin_seeds_total";

/// Bitvector-backend windows processed (zero under y-drop).
pub const BITVEC_WINDOWS_TOTAL: &str = "fastz_bitvec_windows_total";
/// Scrooge SENE events: columns skipped after an all-dead column plus
/// windows abandoned without a live end-bit candidate.
pub const BITVEC_SENE_SKIPS_TOTAL: &str = "fastz_bitvec_sene_skips_total";
/// Scrooge DENT events: all-dead traceback rows never stored.
pub const BITVEC_DENT_DISCARDS_TOTAL: &str = "fastz_bitvec_dent_discards_total";

/// Per-phase work counters (label `phase` ∈ inspector|executor).
pub const CELLS_TOTAL: &str = "fastz_cells_total";
/// Wavefront steps (see [`CELLS_TOTAL`] for labeling).
pub const STEPS_TOTAL: &str = "fastz_steps_total";
/// Scalar ALU operations.
pub const ALU_OPS_TOTAL: &str = "fastz_alu_ops_total";
/// Steps with at least one divergent branch.
pub const DIVERGENT_STEPS_TOTAL: &str = "fastz_divergent_steps_total";
/// Bytes read from global memory.
pub const GLOBAL_READ_BYTES_TOTAL: &str = "fastz_global_read_bytes_total";
/// Bytes written to global memory.
pub const GLOBAL_WRITTEN_BYTES_TOTAL: &str = "fastz_global_written_bytes_total";
/// Bytes moved through shared memory (elided DRAM traffic).
pub const SHARED_BYTES_TOTAL: &str = "fastz_shared_bytes_total";
/// Warp shuffle operations.
pub const SHUFFLES_TOTAL: &str = "fastz_shuffles_total";
/// Sequential single-lane operations (traceback walks).
pub const SCALAR_OPS_TOTAL: &str = "fastz_scalar_ops_total";
/// Warp tasks priced into the timing model.
pub const WARP_TASKS_TOTAL: &str = "fastz_warp_tasks_total";

/// Fault accounting; labels `class` ∈ injected|detected|tolerated and
/// `kind` (a `FaultKind::name()` string, e.g. `bit-flip`).
pub const FAULTS_TOTAL: &str = "fastz_faults_total";
/// Kernel relaunches plus problem re-runs.
pub const RETRIES_TOTAL: &str = "fastz_retries_total";
/// Problems degraded from the warp engine to the scalar path.
pub const FALLBACKS_TOTAL: &str = "fastz_fallbacks_total";
/// Seeds dropped by the skip-with-record rung.
pub const SKIPPED_SEEDS_TOTAL: &str = "fastz_skipped_seeds_total";
/// Checkpoint files written.
pub const CHECKPOINTS_WRITTEN_TOTAL: &str = "fastz_checkpoints_written_total";
/// Checkpoints found on disk but rejected (torn file, foreign
/// fingerprint) instead of resumed from.
pub const CHECKPOINTS_REJECTED_TOTAL: &str = "fastz_checkpoints_rejected_total";
/// Problems restored from a checkpoint.
pub const RESTORED_PROBLEMS_TOTAL: &str = "fastz_restored_problems_total";
/// Anchors re-dispatched away from lost devices.
pub const REDISPATCHED_ANCHORS_TOTAL: &str = "fastz_redispatched_anchors_total";
/// Devices lost mid-run.
pub const DEVICES_LOST_TOTAL: &str = "fastz_devices_lost_total";

// ---------------------------------------------------------------------------
// Gauge names (timing- and model-derived; engine-variant)
// ---------------------------------------------------------------------------

/// Modeled end-to-end GPU time in seconds.
pub const MODELED_TIME_SECONDS: &str = "fastz_modeled_time_seconds";
/// Per-phase modeled seconds; label `phase` names a Figure 8 phase.
pub const PHASE_SECONDS: &str = "fastz_phase_seconds";
/// Eager-traceback hit rate ∈ [0, 1].
pub const EAGER_HIT_RATIO: &str = "fastz_eager_hit_ratio";
/// Fraction of would-be DRAM traffic elided by cyclic register
/// buffering (shared bytes over shared + global) — the paper's ≥96 %.
pub const GLOBAL_TRAFFIC_ELISION_RATIO: &str = "fastz_global_traffic_elision_ratio";
/// Roofline operational intensity (label `phase`), ops/byte.
pub const ROOFLINE_INTENSITY: &str = "fastz_roofline_intensity";
/// Divergence-derated roofline threshold, ops/byte.
pub const ROOFLINE_DERATED_THRESHOLD: &str = "fastz_roofline_derated_threshold";
/// 1.0 when the phase is compute-bound, 0.0 when memory-bound
/// (label `phase`).
pub const ROOFLINE_COMPUTE_BOUND: &str = "fastz_roofline_compute_bound";
/// Pipeline compute component in seconds (label `phase`).
pub const PIPELINE_COMPUTE_SECONDS: &str = "fastz_pipeline_compute_seconds";
/// Pipeline DRAM component in seconds (label `phase`).
pub const PIPELINE_MEMORY_SECONDS: &str = "fastz_pipeline_memory_seconds";
/// Pipeline launch overhead in seconds (label `phase`).
pub const PIPELINE_LAUNCH_SECONDS: &str = "fastz_pipeline_launch_seconds";
/// Per-device modeled seconds in a multi-GPU run (label `device`).
pub const DEVICE_MODELED_SECONDS: &str = "fastz_device_modeled_seconds";
/// Straggler device ordinal in a multi-GPU run.
pub const STRAGGLER_DEVICE: &str = "fastz_straggler_device";

// ---------------------------------------------------------------------------
// Host execution pool (wall-clock-side telemetry; the modeled GPU time
// is invariant to all of it)
// ---------------------------------------------------------------------------

/// Worker threads in the host execution pool.
pub const POOL_WORKERS: &str = "fastz_pool_workers";
/// Phases dispatched onto the pool.
pub const POOL_PHASES_TOTAL: &str = "fastz_pool_phases_total";
/// Problems executed by the pool.
pub const POOL_TASKS_TOTAL: &str = "fastz_pool_tasks_total";
/// Problem claims outside the claiming worker's home chunk.
pub const POOL_STEALS_TOTAL: &str = "fastz_pool_steals_total";
/// Fraction of worker-phase slots that ran at least one task, in [0, 1].
pub const POOL_OCCUPANCY_RATIO: &str = "fastz_pool_occupancy_ratio";
/// Arena traceback leases served without reallocating.
pub const ARENA_TB_HITS_TOTAL: &str = "fastz_arena_tb_hits_total";
/// Arena traceback leases that grew the buffer.
pub const ARENA_TB_MISSES_TOTAL: &str = "fastz_arena_tb_misses_total";
/// Modeled per-SM shared-memory capacity in bytes (from the device
/// spec — 131072 on the RTX 3080, 98304 on the paper's Pascal/Volta).
pub const SHARED_CAPACITY_BYTES: &str = "fastz_shared_capacity_bytes";

// ---------------------------------------------------------------------------
// Sanitizer (labels: kind = finding class, phase = pipeline phase).
// All series are emitted on every observed run — zeros when the
// sanitizer is off — so the exported series set never depends on
// configuration.
// ---------------------------------------------------------------------------

/// Sanitizer findings by class (label `kind`: `uninit_read`,
/// `oob_read`, `raw_hazard`, `war_hazard`, `bank_conflict`,
/// `ballot_inactive_lane`, `divergence_depth`).
pub const SANITIZE_FINDINGS_TOTAL: &str = "fastz_sanitize_findings_total";
/// Shared-memory reads observed by the sanitizer.
pub const SANITIZE_SHARED_READS_TOTAL: &str = "fastz_sanitize_shared_reads_total";
/// Shared-memory writes observed by the sanitizer.
pub const SANITIZE_SHARED_WRITES_TOTAL: &str = "fastz_sanitize_shared_writes_total";
/// Kernel-stage barriers observed by the sanitizer.
pub const SANITIZE_BARRIERS_TOTAL: &str = "fastz_sanitize_barriers_total";
/// Warp-step access groups with a multi-word bank collision (label
/// `phase`).
pub const BANK_CONFLICTS_TOTAL: &str = "fastz_bank_conflicts_total";
/// Extra serialized shared-memory passes, Σ over banks of (words − 1)
/// (label `phase`).
pub const BANK_SERIALIZED_TOTAL: &str = "fastz_bank_serialized_passes_total";
/// Worst n-way bank conflict observed (label `phase`).
pub const BANK_MAX_WAYS: &str = "fastz_bank_conflict_max_ways";
/// Roofline view of bank pressure: extra serialized passes per access
/// group — 0.0 is conflict-free tiling (label `phase`).
pub const BANK_SERIALIZATION_RATIO: &str = "fastz_roofline_bank_serialization_ratio";

// ---------------------------------------------------------------------------
// Alignment service (`fastz-serve`). All series are emitted on every
// service run — zeros when a class never fired — so the exported set
// never depends on traffic shape (zero-emission discipline).
// ---------------------------------------------------------------------------

/// Requests waiting in the admission queue (gauge, sampled at each
/// scheduler step; the exported value is the final depth).
pub const SERVE_QUEUE_DEPTH: &str = "fastz_serve_queue_depth";
/// Peak queue depth observed over the run.
pub const SERVE_QUEUE_DEPTH_PEAK: &str = "fastz_serve_queue_depth_peak";
/// Requests admitted past admission control (label `priority`).
pub const SERVE_ADMITTED_TOTAL: &str = "fastz_serve_admitted_total";
/// Requests shed — rejected at admission or dropped under overload
/// (labels `priority`, `reason` ∈ queue-full|budget|overload).
pub const SERVE_SHED_TOTAL: &str = "fastz_serve_shed_total";
/// Admitted requests whose deadline expired before completion
/// (label `priority`).
pub const SERVE_DEADLINE_MISSED_TOTAL: &str = "fastz_serve_deadline_missed_total";
/// Admitted requests completed at full fidelity (label `priority`).
pub const SERVE_COMPLETED_TOTAL: &str = "fastz_serve_completed_total";
/// Admitted requests served degraded — scalar path or skip-with-record
/// under overload/faults (label `priority`).
pub const SERVE_DEGRADED_TOTAL: &str = "fastz_serve_degraded_total";
/// Cross-request merged executor launches formed by the bin packer.
pub const SERVE_MERGED_LAUNCHES_TOTAL: &str = "fastz_serve_merged_launches_total";
/// Anchors probed by the bitvector cheap-reject pre-filter rung.
pub const SERVE_PREFILTER_PROBED_TOTAL: &str = "fastz_serve_prefilter_probed_total";
/// Anchors the pre-filter rung rejected (provably below
/// `gapped_threshold`; the served alignment set is unchanged).
pub const SERVE_PREFILTER_REJECTED_TOTAL: &str = "fastz_serve_prefilter_rejected_total";

/// Fill ratio of cross-request merged bin launches (occupied warp slots
/// over batch capacity), one observation per merged launch.
pub const SERVE_BIN_FILL_HIST: &str = "fastz_serve_bin_fill_ratio";
/// Bucket bounds for [`SERVE_BIN_FILL_HIST`] (fractions of a full bin).
pub const SERVE_BIN_FILL_BUCKETS: [f64; 5] = [0.25, 0.5, 0.75, 0.9, 1.0];

// ---------------------------------------------------------------------------
// Persistent seed index cache + shard residency (`fastz-serve`). Same
// zero-emission discipline as the service series: every series appears
// on every observed run, zeros when no cache is attached.
// ---------------------------------------------------------------------------

/// Index acquisitions served by an already-resident in-memory index.
pub const INDEX_CACHE_HITS_TOTAL: &str = "fastz_index_cache_hits_total";
/// Index acquisitions that validated and loaded a persisted artifact.
pub const INDEX_CACHE_DISK_LOADS_TOTAL: &str = "fastz_index_cache_disk_loads_total";
/// Index acquisitions that had to build from the sequence (cold).
pub const INDEX_CACHE_BUILDS_TOTAL: &str = "fastz_index_cache_builds_total";
/// Shard placements kept on the device the shard was already resident
/// on (no migration charge).
pub const INDEX_SHARDS_REUSED_TOTAL: &str = "fastz_index_shards_reused_total";
/// Shard placements that moved a shard onto a new device (cold load or
/// migration, each paying the modeled move cost).
pub const INDEX_SHARDS_MOVED_TOTAL: &str = "fastz_index_shards_moved_total";
/// Shards currently resident across the simulated fleet (gauge).
pub const INDEX_RESIDENT_SHARDS: &str = "fastz_index_resident_shards";
/// Makespan of the most recent shard rebalance in modeled seconds
/// (gauge; straggler device completion time).
pub const INDEX_REBALANCE_MAKESPAN_SECONDS: &str = "fastz_index_rebalance_makespan_seconds";

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Per-seed optimal extent histogram (buckets mirror the executor
/// bins: eager ≤16, then 512/2048/8192/32768, +Inf = overflow).
pub const SEED_EXTENT_HIST: &str = "fastz_seed_extent";
/// Bucket bounds for [`SEED_EXTENT_HIST`].
pub const SEED_EXTENT_BUCKETS: [f64; 5] = [16.0, 512.0, 2048.0, 8192.0, 32768.0];

/// Per-problem modeled task cycles, inspector phase.
pub const TASK_CYCLES_INSPECTOR_HIST: &str = "fastz_task_cycles{phase=\"inspector\"}";
/// Per-problem modeled task cycles, executor phase.
pub const TASK_CYCLES_EXECUTOR_HIST: &str = "fastz_task_cycles{phase=\"executor\"}";
/// Bucket bounds for the task-cycle histograms (decades).
pub const TASK_CYCLES_BUCKETS: [f64; 6] = [1e2, 1e3, 1e4, 1e5, 1e6, 1e7];

// ---------------------------------------------------------------------------
// Registry slices. `fastz-lint` (metric-name-registry) holds `ALL` in
// one-to-one correspondence with the declared consts above; the obs
// registry test holds `PIPELINE` to the golden fixture's base-series
// set and `ALL` to the disjoint union of the partitions. Adding a
// metric means adding it here (and to its partition) or the lint gate
// fails the build.
// ---------------------------------------------------------------------------

/// Every series of one observed pipeline run — the golden fixture's
/// base-series set (`fastz_task_cycles` appears once per phase label).
pub const PIPELINE: &[&str] = &[
    SEEDS_TOTAL,
    PROBLEMS_TOTAL,
    EAGER_RESOLVED_TOTAL,
    EXECUTOR_PROBLEMS_TOTAL,
    ALIGNMENTS_TOTAL,
    BIN_SEEDS_TOTAL,
    BITVEC_WINDOWS_TOTAL,
    BITVEC_SENE_SKIPS_TOTAL,
    BITVEC_DENT_DISCARDS_TOTAL,
    CELLS_TOTAL,
    STEPS_TOTAL,
    ALU_OPS_TOTAL,
    DIVERGENT_STEPS_TOTAL,
    GLOBAL_READ_BYTES_TOTAL,
    GLOBAL_WRITTEN_BYTES_TOTAL,
    SHARED_BYTES_TOTAL,
    SHUFFLES_TOTAL,
    SCALAR_OPS_TOTAL,
    WARP_TASKS_TOTAL,
    FAULTS_TOTAL,
    RETRIES_TOTAL,
    FALLBACKS_TOTAL,
    SKIPPED_SEEDS_TOTAL,
    CHECKPOINTS_WRITTEN_TOTAL,
    CHECKPOINTS_REJECTED_TOTAL,
    RESTORED_PROBLEMS_TOTAL,
    REDISPATCHED_ANCHORS_TOTAL,
    DEVICES_LOST_TOTAL,
    MODELED_TIME_SECONDS,
    PHASE_SECONDS,
    EAGER_HIT_RATIO,
    GLOBAL_TRAFFIC_ELISION_RATIO,
    ROOFLINE_INTENSITY,
    ROOFLINE_DERATED_THRESHOLD,
    ROOFLINE_COMPUTE_BOUND,
    PIPELINE_COMPUTE_SECONDS,
    PIPELINE_MEMORY_SECONDS,
    PIPELINE_LAUNCH_SECONDS,
    POOL_WORKERS,
    POOL_PHASES_TOTAL,
    POOL_TASKS_TOTAL,
    POOL_STEALS_TOTAL,
    POOL_OCCUPANCY_RATIO,
    ARENA_TB_HITS_TOTAL,
    ARENA_TB_MISSES_TOTAL,
    SHARED_CAPACITY_BYTES,
    SANITIZE_FINDINGS_TOTAL,
    SANITIZE_SHARED_READS_TOTAL,
    SANITIZE_SHARED_WRITES_TOTAL,
    SANITIZE_BARRIERS_TOTAL,
    BANK_CONFLICTS_TOTAL,
    BANK_SERIALIZED_TOTAL,
    BANK_MAX_WAYS,
    BANK_SERIALIZATION_RATIO,
    SEED_EXTENT_HIST,
    TASK_CYCLES_INSPECTOR_HIST,
    TASK_CYCLES_EXECUTOR_HIST,
];

/// Series only a multi-GPU run adds (per-device fan-out).
pub const MULTI_GPU: &[&str] = &[DEVICE_MODELED_SECONDS, STRAGGLER_DEVICE];

/// Series the alignment service and its index cache add on service
/// runs (zero-emission discipline: all of them, zeros included, on
/// every service run).
pub const SERVICE: &[&str] = &[
    SERVE_QUEUE_DEPTH,
    SERVE_QUEUE_DEPTH_PEAK,
    SERVE_ADMITTED_TOTAL,
    SERVE_SHED_TOTAL,
    SERVE_DEADLINE_MISSED_TOTAL,
    SERVE_COMPLETED_TOTAL,
    SERVE_DEGRADED_TOTAL,
    SERVE_MERGED_LAUNCHES_TOTAL,
    SERVE_PREFILTER_PROBED_TOTAL,
    SERVE_PREFILTER_REJECTED_TOTAL,
    SERVE_BIN_FILL_HIST,
    INDEX_CACHE_HITS_TOTAL,
    INDEX_CACHE_DISK_LOADS_TOTAL,
    INDEX_CACHE_BUILDS_TOTAL,
    INDEX_SHARDS_REUSED_TOTAL,
    INDEX_SHARDS_MOVED_TOTAL,
    INDEX_RESIDENT_SHARDS,
    INDEX_REBALANCE_MAKESPAN_SECONDS,
];

/// The full registry: every declared `fastz_` name, exactly once.
/// Const slices cannot be concatenated on stable, so the union is
/// written out; the registry test pins `ALL` to the disjoint union of
/// [`PIPELINE`], [`MULTI_GPU`], and [`SERVICE`].
pub const ALL: &[&str] = &[
    SEEDS_TOTAL,
    PROBLEMS_TOTAL,
    EAGER_RESOLVED_TOTAL,
    EXECUTOR_PROBLEMS_TOTAL,
    ALIGNMENTS_TOTAL,
    BIN_SEEDS_TOTAL,
    BITVEC_WINDOWS_TOTAL,
    BITVEC_SENE_SKIPS_TOTAL,
    BITVEC_DENT_DISCARDS_TOTAL,
    CELLS_TOTAL,
    STEPS_TOTAL,
    ALU_OPS_TOTAL,
    DIVERGENT_STEPS_TOTAL,
    GLOBAL_READ_BYTES_TOTAL,
    GLOBAL_WRITTEN_BYTES_TOTAL,
    SHARED_BYTES_TOTAL,
    SHUFFLES_TOTAL,
    SCALAR_OPS_TOTAL,
    WARP_TASKS_TOTAL,
    FAULTS_TOTAL,
    RETRIES_TOTAL,
    FALLBACKS_TOTAL,
    SKIPPED_SEEDS_TOTAL,
    CHECKPOINTS_WRITTEN_TOTAL,
    CHECKPOINTS_REJECTED_TOTAL,
    RESTORED_PROBLEMS_TOTAL,
    REDISPATCHED_ANCHORS_TOTAL,
    DEVICES_LOST_TOTAL,
    MODELED_TIME_SECONDS,
    PHASE_SECONDS,
    EAGER_HIT_RATIO,
    GLOBAL_TRAFFIC_ELISION_RATIO,
    ROOFLINE_INTENSITY,
    ROOFLINE_DERATED_THRESHOLD,
    ROOFLINE_COMPUTE_BOUND,
    PIPELINE_COMPUTE_SECONDS,
    PIPELINE_MEMORY_SECONDS,
    PIPELINE_LAUNCH_SECONDS,
    DEVICE_MODELED_SECONDS,
    STRAGGLER_DEVICE,
    POOL_WORKERS,
    POOL_PHASES_TOTAL,
    POOL_TASKS_TOTAL,
    POOL_STEALS_TOTAL,
    POOL_OCCUPANCY_RATIO,
    ARENA_TB_HITS_TOTAL,
    ARENA_TB_MISSES_TOTAL,
    SHARED_CAPACITY_BYTES,
    SANITIZE_FINDINGS_TOTAL,
    SANITIZE_SHARED_READS_TOTAL,
    SANITIZE_SHARED_WRITES_TOTAL,
    SANITIZE_BARRIERS_TOTAL,
    BANK_CONFLICTS_TOTAL,
    BANK_SERIALIZED_TOTAL,
    BANK_MAX_WAYS,
    BANK_SERIALIZATION_RATIO,
    SERVE_QUEUE_DEPTH,
    SERVE_QUEUE_DEPTH_PEAK,
    SERVE_ADMITTED_TOTAL,
    SERVE_SHED_TOTAL,
    SERVE_DEADLINE_MISSED_TOTAL,
    SERVE_COMPLETED_TOTAL,
    SERVE_DEGRADED_TOTAL,
    SERVE_MERGED_LAUNCHES_TOTAL,
    SERVE_PREFILTER_PROBED_TOTAL,
    SERVE_PREFILTER_REJECTED_TOTAL,
    SERVE_BIN_FILL_HIST,
    INDEX_CACHE_HITS_TOTAL,
    INDEX_CACHE_DISK_LOADS_TOTAL,
    INDEX_CACHE_BUILDS_TOTAL,
    INDEX_SHARDS_REUSED_TOTAL,
    INDEX_SHARDS_MOVED_TOTAL,
    INDEX_RESIDENT_SHARDS,
    INDEX_REBALANCE_MAKESPAN_SECONDS,
    SEED_EXTENT_HIST,
    TASK_CYCLES_INSPECTOR_HIST,
    TASK_CYCLES_EXECUTOR_HIST,
];

/// `base{phase="<phase>"}` convenience.
pub fn phase(base: &str, phase: &str) -> String {
    labeled(base, "phase", phase)
}

/// `fastz_bin_seeds_total{bin="<bin>"}` convenience.
pub fn bin(bin: &str) -> String {
    labeled(BIN_SEEDS_TOTAL, "bin", bin)
}

/// `fastz_faults_total{class="<class>",kind="<kind>"}` convenience.
pub fn fault(class: &str, kind: &str) -> String {
    format!("{FAULTS_TOTAL}{{class=\"{class}\",kind=\"{kind}\"}}")
}

/// `fastz_sanitize_findings_total{kind="<kind>"}` convenience.
pub fn sanitize_kind(kind: &str) -> String {
    labeled(SANITIZE_FINDINGS_TOTAL, "kind", kind)
}

/// `base{priority="<priority>"}` convenience for the service counters.
pub fn priority(base: &str, priority: &str) -> String {
    labeled(base, "priority", priority)
}

/// `fastz_serve_shed_total{priority="<priority>",reason="<reason>"}`
/// convenience.
pub fn shed(priority: &str, reason: &str) -> String {
    format!("{SERVE_SHED_TOTAL}{{priority=\"{priority}\",reason=\"{reason}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_compose_labels() {
        assert_eq!(
            phase(CELLS_TOTAL, "inspector"),
            "fastz_cells_total{phase=\"inspector\"}"
        );
        assert_eq!(bin("512"), "fastz_bin_seeds_total{bin=\"512\"}");
        assert_eq!(
            fault("injected", "bit-flip"),
            "fastz_faults_total{class=\"injected\",kind=\"bit-flip\"}"
        );
        assert_eq!(
            sanitize_kind("uninit_read"),
            "fastz_sanitize_findings_total{kind=\"uninit_read\"}"
        );
        assert_eq!(
            priority(SERVE_ADMITTED_TOTAL, "high"),
            "fastz_serve_admitted_total{priority=\"high\"}"
        );
        assert_eq!(
            shed("low", "queue-full"),
            "fastz_serve_shed_total{priority=\"low\",reason=\"queue-full\"}"
        );
    }

    #[test]
    fn executor_bin_spans_cover_all_bounds() {
        assert_eq!(executor_bin_span(Some(512)), "executor_bin512");
        assert_eq!(executor_bin_span(Some(32768)), "executor_bin32768");
        assert_eq!(executor_bin_span(None), "executor_bin_overflow");
    }

    #[test]
    #[should_panic]
    fn unknown_bin_bound_panics() {
        executor_bin_span(Some(1024));
    }
}
