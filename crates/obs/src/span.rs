//! Phase-scoped spans on a logical (modeled) clock.

/// One completed span on the logical clock.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `"inspector"`, `"executor_bin512"`).
    pub name: String,
    /// Category (`"gpu"`, `"host"`, `"resilience"` …) — becomes the
    /// Chrome-trace `cat` field.
    pub cat: String,
    /// Start on the logical clock, in modeled microseconds.
    pub start_us: f64,
    /// Duration in modeled microseconds.
    pub dur_us: f64,
}

/// An ordered list of recorded spans.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    spans: Vec<SpanRecord>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Records one completed span.
    pub fn push(&mut self, name: &str, cat: &str, start_us: f64, dur_us: f64) {
        assert!(dur_us >= 0.0, "negative span duration");
        assert!(start_us >= 0.0, "negative span start");
        self.spans.push(SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us,
        });
    }

    /// All spans in recording order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The first span named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The logical-clock instant at which the last span ends (0 when
    /// empty).
    pub fn end_us(&self) -> f64 {
        self.spans
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .fold(0.0, f64::max)
    }
}

/// A monotone cursor on the modeled clock. Phases that execute
/// back-to-back advance it; sub-spans (e.g. `eager_traceback` inside
/// `inspector`) are placed with explicit offsets and do not advance it.
///
/// The clock deliberately has no connection to wall time: it is seeded
/// at zero and advanced only by modeled durations, so a fixed-seed run
/// lays out byte-identical timelines everywhere.
#[derive(Clone, Copy, Debug, Default)]
pub struct LogicalClock {
    cursor_us: f64,
}

impl LogicalClock {
    /// A clock at t = 0.
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Current cursor in modeled microseconds.
    pub fn now_us(&self) -> f64 {
        self.cursor_us
    }

    /// Claims the next `dur_us` of the clock; returns the claimed
    /// `(start_us, dur_us)` window.
    pub fn advance(&mut self, dur_us: f64) -> (f64, f64) {
        assert!(dur_us >= 0.0, "cannot advance the clock backwards");
        let start = self.cursor_us;
        self.cursor_us += dur_us;
        (start, dur_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now_us(), 0.0);
        let (s0, d0) = c.advance(5.0);
        let (s1, _) = c.advance(2.5);
        assert_eq!((s0, d0), (0.0, 5.0));
        assert_eq!(s1, 5.0);
        assert_eq!(c.now_us(), 7.5);
    }

    #[test]
    fn timeline_records_and_finds() {
        let mut t = Timeline::new();
        t.push("inspector", "gpu", 0.0, 10.0);
        t.push("executor_bin512", "gpu", 10.0, 4.0);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.find("inspector").unwrap().dur_us, 10.0);
        assert!(t.find("missing").is_none());
        assert_eq!(t.end_us(), 14.0);
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        Timeline::new().push("x", "gpu", 0.0, -1.0);
    }
}
