//! # fastz-obs
//!
//! Zero-cost-when-disabled observability for the FastZ pipeline.
//!
//! FastZ's performance story rests on per-phase behaviour — inspector
//! vs. executor time, the eager-traceback hit rate, bin occupancy, the
//! ≥96 % global-traffic elision from cyclic register buffering — and
//! those numbers must be machine-readable and CI-assertable, not
//! scattered across ad-hoc text dumps. This crate provides:
//!
//! * **[`MetricsSink`]** — the one trait everything records through.
//!   Production paths are generic over it and pass [`NoObs`], whose
//!   inline empty methods monomorphize to nothing (the same pattern as
//!   `fastz-align`'s `CellSink`/`NoTrace` cell hook); observed runs
//!   pass a [`Recorder`].
//! * **[`Registry`]** — a typed metrics store (counters, gauges,
//!   histograms) with deterministic (sorted) iteration order.
//! * **[`Timeline`] + [`LogicalClock`]** — phase-scoped spans placed on
//!   the *modeled* GPU clock, never the wall clock, so a fixed-seed run
//!   exports byte-identical timelines on any machine, thread count, or
//!   build profile.
//! * **[`export`]** — a JSON report, Prometheus text format, and a
//!   `chrome://tracing`-loadable Chrome-trace JSON timeline.
//!
//! Determinism contract: nothing in this crate reads wall-clock time,
//! environment, or randomness; every exported byte is a pure function
//! of what was recorded.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod names;
pub mod recorder;
pub mod span;

pub use metrics::{Histogram, MetricValue, MetricsSink, NoObs, Registry};
pub use recorder::Recorder;
pub use span::{LogicalClock, SpanRecord, Timeline};
