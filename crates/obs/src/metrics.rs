//! The [`MetricsSink`] trait, the zero-cost [`NoObs`] sink, and the
//! typed [`Registry`].

use std::collections::BTreeMap;

/// Receiver for metrics and spans.
///
/// Hot paths are generic over this trait; [`NoObs`]'s inline empty
/// methods compile the calls away entirely, while [`crate::Recorder`]
/// stores everything. `ENABLED` lets callers gate *preparation* work
/// (e.g. per-bin re-timing for span attribution) that would otherwise
/// run even though its result is discarded.
pub trait MetricsSink {
    /// `false` only for sinks that discard everything.
    const ENABLED: bool;

    /// Adds `v` to the counter `name` (creating it at zero).
    fn counter_add(&mut self, name: &str, v: u64);

    /// Sets the gauge `name` to `v` (last write wins).
    fn gauge_set(&mut self, name: &str, v: f64);

    /// Records one observation of `v` into the histogram `name` with
    /// the given bucket upper bounds (`le` semantics; an implicit +Inf
    /// bucket is always present). Every call for one `name` must pass
    /// the same `bounds`.
    fn observe(&mut self, name: &str, bounds: &[f64], v: f64);

    /// Records a completed span `[start_us, start_us + dur_us)` on the
    /// logical (modeled) clock, in microseconds.
    fn span(&mut self, name: &str, cat: &str, start_us: f64, dur_us: f64);
}

/// The production sink: records nothing, costs nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoObs;

impl MetricsSink for NoObs {
    const ENABLED: bool = false;

    #[inline(always)]
    fn counter_add(&mut self, _name: &str, _v: u64) {}

    #[inline(always)]
    fn gauge_set(&mut self, _name: &str, _v: f64) {}

    #[inline(always)]
    fn observe(&mut self, _name: &str, _bounds: &[f64], _v: f64) {}

    #[inline(always)]
    fn span(&mut self, _name: &str, _cat: &str, _start_us: f64, _dur_us: f64) {}
}

/// A histogram with explicit bucket upper bounds (`le` semantics) plus
/// an implicit +Inf bucket; `counts` are per-bucket (not cumulative).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`
    /// (the last slot is the +Inf bucket).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Bucket counts in cumulative (Prometheus `le`) form, ending with
    /// the +Inf bucket, which always equals [`Histogram::count`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// One typed metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Bucketed histogram.
    Histogram(Histogram),
}

/// A typed metrics store keyed by metric name (labels, when present,
/// are embedded Prometheus-style: `name{key="value"}`). Iteration is
/// sorted by name, so exports are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, MetricValue>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `v` to counter `name`; panics if `name` is a gauge or
    /// histogram (type confusion is a programming bug, not data).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Counter(c)) => *c += v,
            Some(_) => panic!("metric {name} is not a counter"),
            None => {
                self.metrics
                    .insert(name.to_string(), MetricValue::Counter(v));
            }
        }
    }

    /// Sets gauge `name`; panics if `name` is a counter or histogram.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Gauge(g)) => *g = v,
            Some(_) => panic!("metric {name} is not a gauge"),
            None => {
                self.metrics.insert(name.to_string(), MetricValue::Gauge(v));
            }
        }
    }

    /// Observes `v` into histogram `name`; panics on type confusion or
    /// a bounds mismatch with the histogram's first observation.
    pub fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        match self.metrics.get_mut(name) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.bounds, bounds, "histogram {name} bounds changed");
                h.observe(v);
            }
            Some(_) => panic!("metric {name} is not a histogram"),
            None => {
                let mut h = Histogram::new(bounds);
                h.observe(v);
                self.metrics
                    .insert(name.to_string(), MetricValue::Histogram(h));
            }
        }
    }

    /// The counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// The gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// All metrics in sorted-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Every counter as `(name, value)`, sorted (the conformance drill
    /// compares these "semantic" metrics across engines).
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.metrics
            .iter()
            .filter_map(|(k, v)| match v {
                MetricValue::Counter(c) => Some((k.clone(), *c)),
                _ => None,
            })
            .collect()
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

/// Embeds one label into a metric name, Prometheus-style:
/// `labeled("fastz_cells_total", "phase", "inspector")` →
/// `fastz_cells_total{phase="inspector"}`.
pub fn labeled(base: &str, key: &str, value: &str) -> String {
    format!("{base}{{{key}=\"{value}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        assert_eq!(r.counter("a"), Some(5));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.counters(), vec![("a".into(), 5), ("b".into(), 1)]);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = Registry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 10.0, 11.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.cumulative(), vec![2, 4, 5, 6]);
        assert_eq!(*h.cumulative().last().unwrap(), h.count);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = Registry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 1);
    }

    #[test]
    fn labeled_names_format() {
        assert_eq!(
            labeled("fastz_cells_total", "phase", "inspector"),
            "fastz_cells_total{phase=\"inspector\"}"
        );
    }

    #[test]
    fn noobs_is_inert() {
        let mut sink = NoObs;
        sink.counter_add("x", 1);
        sink.gauge_set("y", 2.0);
        sink.observe("z", &[1.0], 0.5);
        sink.span("s", "c", 0.0, 1.0);
        const { assert!(!NoObs::ENABLED) };
    }
}
