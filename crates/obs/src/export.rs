//! Exporters: JSON report, Prometheus text format, Chrome-trace JSON.
//!
//! All three are pure functions of the recorded state and emit keys in
//! deterministic order, so a fixed-seed run exports byte-identical
//! output across invocations, machines, and thread counts.

use crate::metrics::{Histogram, MetricValue, Registry};
use crate::recorder::Recorder;
use crate::span::Timeline;
use std::fmt::Write as _;

/// JSON-safe f64: finite values print with Rust's shortest round-trip
/// formatting; non-finite values become `null` (JSON has no Inf/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Prometheus-safe f64 (`+Inf` / `-Inf` / `NaN` are legal there).
fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn json_escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64_list(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", items.join(","))
}

fn json_u64_list(vals: &[u64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Serializes the full observability report (metrics + spans) as JSON.
/// Metric keys are sorted; spans keep recording order.
pub fn json_report(rec: &Recorder) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"fastz-obs\",\n  \"version\": 1,\n  \"metrics\": {\n");
    let metrics: Vec<(&str, &MetricValue)> = rec.registry.iter().collect();
    for (idx, (name, value)) in metrics.iter().enumerate() {
        out.push_str("    ");
        json_escape(&mut out, name);
        out.push_str(": ");
        match value {
            MetricValue::Counter(c) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{c}}}");
            }
            MetricValue::Gauge(g) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_f64(*g));
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\":\"histogram\",\"bounds\":{},\"counts\":{},\"sum\":{},\"count\":{}}}",
                    json_f64_list(&h.bounds),
                    json_u64_list(&h.counts),
                    json_f64(h.sum),
                    h.count
                );
            }
        }
        if idx + 1 < metrics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  },\n  \"spans\": [\n");
    let spans = rec.timeline.spans();
    for (idx, s) in spans.iter().enumerate() {
        out.push_str("    {\"name\": ");
        json_escape(&mut out, &s.name);
        out.push_str(", \"cat\": ");
        json_escape(&mut out, &s.cat);
        let _ = write!(
            out,
            ", \"start_us\": {}, \"dur_us\": {}}}",
            json_f64(s.start_us),
            json_f64(s.dur_us)
        );
        if idx + 1 < spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Splits `fastz_x_total{phase="inspector"}` into the base name and the
/// brace-enclosed label body (`""` when unlabeled).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(at) => (
            &name[..at],
            name[at..].trim_start_matches('{').trim_end_matches('}'),
        ),
        None => (name, ""),
    }
}

fn prom_series(base: &str, labels: &str, extra: Option<(&str, &str)>) -> String {
    let mut all = String::new();
    if !labels.is_empty() {
        all.push_str(labels);
    }
    if let Some((k, v)) = extra {
        if !all.is_empty() {
            all.push(',');
        }
        let _ = write!(all, "{k}=\"{v}\"");
    }
    if all.is_empty() {
        base.to_string()
    } else {
        format!("{base}{{{all}}}")
    }
}

fn prom_histogram(out: &mut String, base: &str, labels: &str, h: &Histogram) {
    let cumulative = h.cumulative();
    for (i, cum) in cumulative.iter().enumerate() {
        let le = if i < h.bounds.len() {
            prom_f64(h.bounds[i])
        } else {
            "+Inf".to_string()
        };
        let series = prom_series(&format!("{base}_bucket"), labels, Some(("le", &le)));
        let _ = writeln!(out, "{series} {cum}");
    }
    let _ = writeln!(
        out,
        "{} {}",
        prom_series(&format!("{base}_sum"), labels, None),
        prom_f64(h.sum)
    );
    let _ = writeln!(
        out,
        "{} {}",
        prom_series(&format!("{base}_count"), labels, None),
        h.count
    );
}

/// Serializes the registry in the Prometheus text exposition format.
/// One `# TYPE` line per metric family, series sorted by name.
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_base = String::new();
    for (name, value) in registry.iter() {
        let (base, labels) = split_labels(name);
        if base != last_base {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {base} {kind}");
            last_base = base.to_string();
        }
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{name} {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{name} {}", prom_f64(*g));
            }
            MetricValue::Histogram(h) => prom_histogram(&mut out, base, labels, h),
        }
    }
    out
}

/// Serializes the timeline as Chrome-trace JSON (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>). All events are
/// complete (`"ph": "X"`) spans on pid 0 / tid 0; timestamps are modeled
/// microseconds on the logical clock.
pub fn chrome_trace(timeline: &Timeline) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let spans = timeline.spans();
    for (idx, s) in spans.iter().enumerate() {
        out.push_str("{\"name\":");
        json_escape(&mut out, &s.name);
        out.push_str(",\"cat\":");
        json_escape(&mut out, &s.cat);
        let _ = write!(
            out,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0}}",
            json_f64(s.start_us),
            json_f64(s.dur_us)
        );
        if idx + 1 < spans.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSink;

    fn demo_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.counter_add("fastz_seeds_total", 10);
        r.counter_add("fastz_cells_total{phase=\"inspector\"}", 100);
        r.counter_add("fastz_cells_total{phase=\"executor\"}", 50);
        r.gauge_set("fastz_modeled_time_seconds", 0.125);
        r.observe("fastz_seed_extent", &[16.0, 512.0], 3.0);
        r.observe("fastz_seed_extent", &[16.0, 512.0], 600.0);
        r.span("inspector", "gpu", 0.0, 100.0);
        r.span("executor_bin512", "gpu", 100.0, 50.0);
        r
    }

    #[test]
    fn json_report_is_deterministic_and_parsable_shape() {
        let r = demo_recorder();
        let a = json_report(&r);
        let b = json_report(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"fastz_seeds_total\": {\"type\":\"counter\",\"value\":10}"));
        assert!(a.contains("\"sum\":603"));
        assert!(a.contains("\"name\": \"inspector\""));
        // Sorted keys: executor label sorts before inspector label.
        let exec = a.find("phase=\\\"executor\\\"").unwrap();
        let insp = a.find("phase=\\\"inspector\\\"").unwrap();
        assert!(exec < insp);
    }

    #[test]
    fn prometheus_emits_type_lines_once_per_family() {
        let r = demo_recorder();
        let text = prometheus(&r.registry);
        assert_eq!(text.matches("# TYPE fastz_cells_total counter").count(), 1);
        assert!(text.contains("fastz_cells_total{phase=\"inspector\"} 100"));
        assert!(text.contains("fastz_modeled_time_seconds 0.125"));
        assert!(text.contains("fastz_seed_extent_bucket{le=\"16\"} 1"));
        assert!(text.contains("fastz_seed_extent_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fastz_seed_extent_count 2"));
    }

    #[test]
    fn labeled_histograms_put_le_last() {
        let mut r = Recorder::new();
        r.observe("fastz_task_cycles{phase=\"inspector\"}", &[10.0], 5.0);
        let text = prometheus(&r.registry);
        assert!(
            text.contains("fastz_task_cycles_bucket{phase=\"inspector\",le=\"10\"} 1"),
            "{text}"
        );
        assert!(text.contains("fastz_task_cycles_sum{phase=\"inspector\"} 5"));
        assert!(text.contains("# TYPE fastz_task_cycles histogram"));
    }

    #[test]
    fn chrome_trace_emits_complete_events() {
        let r = demo_recorder();
        let trace = chrome_trace(&r.timeline);
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains(
            "{\"name\":\"inspector\",\"cat\":\"gpu\",\"ph\":\"X\",\"ts\":0,\"dur\":100,\"pid\":0,\"tid\":0}"
        ));
        assert!(trace.trim_end().ends_with("]}"));
    }

    #[test]
    fn non_finite_values_are_json_null_and_prom_inf() {
        let mut r = Recorder::new();
        r.gauge_set("fastz_roofline_intensity", f64::INFINITY);
        assert!(json_report(&r).contains("{\"type\":\"gauge\",\"value\":null}"));
        assert!(prometheus(&r.registry).contains("fastz_roofline_intensity +Inf"));
    }
}
