//! The recording [`MetricsSink`]: a [`Registry`] plus a [`Timeline`].

use crate::metrics::{MetricsSink, Registry};
use crate::span::Timeline;

/// Records every metric and span it is handed. Thread one `Recorder`
/// through an observed run, then hand it to [`crate::export`].
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    /// The typed metrics store.
    pub registry: Registry,
    /// The phase-scoped span timeline.
    pub timeline: Timeline,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }
}

impl MetricsSink for Recorder {
    const ENABLED: bool = true;

    fn counter_add(&mut self, name: &str, v: u64) {
        self.registry.counter_add(name, v);
    }

    fn gauge_set(&mut self, name: &str, v: f64) {
        self.registry.gauge_set(name, v);
    }

    fn observe(&mut self, name: &str, bounds: &[f64], v: f64) {
        self.registry.observe(name, bounds, v);
    }

    fn span(&mut self, name: &str, cat: &str, start_us: f64, dur_us: f64) {
        self.timeline.push(name, cat, start_us, dur_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_stores_everything() {
        let mut r = Recorder::new();
        r.counter_add("c", 2);
        r.gauge_set("g", 1.25);
        r.observe("h", &[1.0, 2.0], 1.5);
        r.span("inspector", "gpu", 0.0, 10.0);
        assert_eq!(r.registry.counter("c"), Some(2));
        assert_eq!(r.registry.gauge("g"), Some(1.25));
        assert_eq!(r.registry.histogram("h").unwrap().count, 1);
        assert_eq!(r.timeline.spans().len(), 1);
        const { assert!(Recorder::ENABLED) };
    }
}
