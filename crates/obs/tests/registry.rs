//! Registry-slice correspondence tests.
//!
//! `names::ALL` and the partition slices are the static half of the
//! zero-emission discipline: `fastz-lint` holds `ALL` in one-to-one
//! correspondence with the declared consts, and this suite holds the
//! slices to the runtime truth — the golden fixture's base-series set
//! for `PIPELINE`, and the disjoint-union identity for `ALL`.

use fastz_obs::names;
use std::collections::BTreeSet;

/// Base series names (`{label}` fan-out stripped) in the golden
/// metrics fixture. Every `"fastz_...` quoted string in the fixture is
/// a series key, so a raw scan is exact.
fn golden_base_series() -> BTreeSet<String> {
    let raw = include_str!("golden/metrics.json");
    let mut out = BTreeSet::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("\"fastz_") {
        let tail = &rest[pos + 1..];
        let end = tail.find('"').expect("unterminated series name");
        let base = tail[..end].split('{').next().unwrap();
        out.insert(base.to_string());
        rest = &tail[end..];
    }
    out
}

#[test]
fn pipeline_partition_matches_golden_fixture() {
    let fixture = golden_base_series();
    assert!(!fixture.is_empty(), "fixture scan found no series");
    // The two task-cycle consts carry their phase label in the const
    // value, so the partition collapses to base names for comparison.
    let declared: BTreeSet<String> = names::PIPELINE
        .iter()
        .map(|n| n.split('{').next().unwrap().to_string())
        .collect();
    let missing: Vec<_> = fixture.difference(&declared).collect();
    let extra: Vec<_> = declared.difference(&fixture).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "names::PIPELINE and the golden fixture disagree\n  \
         in fixture but not PIPELINE: {missing:?}\n  \
         in PIPELINE but not fixture: {extra:?}"
    );
}

#[test]
fn all_is_the_disjoint_union_of_the_partitions() {
    let mut union: BTreeSet<&str> = BTreeSet::new();
    let mut total = 0usize;
    for part in [names::PIPELINE, names::MULTI_GPU, names::SERVICE] {
        total += part.len();
        union.extend(part.iter().copied());
    }
    assert_eq!(total, union.len(), "partitions overlap");
    let all: BTreeSet<&str> = names::ALL.iter().copied().collect();
    assert_eq!(all.len(), names::ALL.len(), "names::ALL has duplicates");
    assert_eq!(all, union, "ALL != PIPELINE ∪ MULTI_GPU ∪ SERVICE");
}

#[test]
fn every_registered_name_carries_the_prefix() {
    for n in names::ALL {
        assert!(n.starts_with("fastz_"), "unprefixed series name {n:?}");
    }
}
