//! Property tests for the observability layer.
//!
//! Two families: pure registry/histogram algebra under random operation
//! sequences, and whole-pipeline properties checked *through* the
//! registry (eager hit rate, fault accounting) on randomly seeded
//! workloads.

use fastz_core::{run_fastz_observed, FastZConfig, OptFlags, ResilienceConfig};
use fastz_genome::evolve::{default_classes, generate_pair, PairParams};
use fastz_genome::{GapPenalties, Scoring, SubstMatrix};
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_obs::{names, MetricsSink, Recorder, Registry};
use fastz_seed::{Workload, WorkloadParams};
use proptest::prelude::*;

/// One randomized sink operation.
#[derive(Clone, Debug)]
enum Op {
    Counter(u8, u32),
    Gauge(u8, f64),
    Observe(f64),
    Span(u8, u32),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    // The vendored proptest subset has no `prop_oneof`; select the
    // variant from a generated discriminant instead.
    let op = (0u8..4, 0u8..4, any::<u32>(), -1e6f64..1e6).prop_map(|(sel, k, v, f)| match sel {
        0 => Op::Counter(k, v),
        1 => Op::Gauge(k, f),
        2 => Op::Observe(f),
        _ => Op::Span(k, v % 1_000_000),
    });
    proptest::collection::vec(op, 0..200)
}

const HIST_BOUNDS: [f64; 4] = [-10.0, 0.0, 100.0, 10_000.0];

fn counter_name(k: u8) -> String {
    format!("c{k}_total")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every counter is monotone across span boundaries: snapshotting
    /// the registry at each recorded span never shows a counter
    /// decrease, whatever operations were interleaved.
    #[test]
    fn counters_monotone_across_span_boundaries(ops in ops_strategy()) {
        let mut rec = Recorder::new();
        let mut prev: Vec<Option<u64>> = vec![None; 4];
        let mut clock = 0.0;
        for op in &ops {
            match *op {
                Op::Counter(k, v) => rec.counter_add(&counter_name(k), v as u64),
                Op::Gauge(k, v) => rec.gauge_set(&format!("g{k}"), v),
                Op::Observe(v) => rec.observe("h", &HIST_BOUNDS, v),
                Op::Span(k, d) => {
                    rec.span(&format!("s{k}"), "test", clock, d as f64);
                    clock += d as f64;
                    // Span boundary: every counter must be >= its value
                    // at the previous boundary.
                    for (k, prev) in prev.iter_mut().enumerate() {
                        let now = rec.registry.counter(&counter_name(k as u8));
                        if let (Some(p), now) = (*prev, now) {
                            prop_assert!(
                                now.is_some_and(|n| n >= p),
                                "counter c{k} went from {p} to {now:?} across a span boundary"
                            );
                        }
                        if now.is_some() {
                            *prev = now;
                        }
                    }
                }
            }
        }
    }

    /// A histogram's per-bucket counts always sum to its observation
    /// count, its cumulative form ends at that count, and its `sum`
    /// matches the observations.
    #[test]
    fn histogram_buckets_partition_count(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut reg = Registry::new();
        for &v in &values {
            reg.observe("h", &HIST_BOUNDS, v);
        }
        let h = reg.histogram("h").unwrap();
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        let cumulative = h.cumulative();
        prop_assert_eq!(*cumulative.last().unwrap(), h.count);
        let expected_sum: f64 = values.iter().sum();
        prop_assert!((h.sum - expected_sum).abs() <= 1e-6 * expected_sum.abs().max(1.0));
    }
}

// ---------------------------------------------------------------------------
// Whole-pipeline properties, checked through the registry
// ---------------------------------------------------------------------------

fn test_scoring() -> Scoring {
    Scoring {
        subst: SubstMatrix::match_mismatch(10, -15),
        gaps: GapPenalties::new(30, 5),
        ydrop: 120,
        xdrop: 40,
        hsp_threshold: 50,
        gapped_threshold: 50,
    }
}

fn observed_run(seed: u64, rcfg: &ResilienceConfig) -> Recorder {
    let pair = generate_pair(&PairParams {
        label: "obs-prop".to_string(),
        target_len: 10_000,
        query_len: 10_000,
        segments: 20,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: seed,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 100,
            ..WorkloadParams::default()
        },
    );
    let mut cfg = FastZConfig::new(test_scoring(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = 1;
    let mut rec = Recorder::new();
    run_fastz_observed(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
        &rcfg.clone(),
        &mut rec,
    );
    rec
}

const FAULT_KINDS: [&str; 5] = [
    "kernel-hang",
    "bit-flip",
    "stream-stall",
    "shmem-pressure",
    "device-loss",
];

fn fault_class_total(reg: &Registry, class: &str) -> u64 {
    FAULT_KINDS
        .iter()
        .map(|kind| reg.counter(&names::fault(class, kind)).unwrap_or(0))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The exported eager hit rate is always within [0, 1] and agrees
    /// with the exported counters it is derived from.
    #[test]
    fn eager_hit_rate_in_unit_interval(seed in 0u64..1_000_000) {
        let rec = observed_run(seed, &ResilienceConfig::disabled());
        let ratio = rec.registry.gauge(names::EAGER_HIT_RATIO).unwrap();
        prop_assert!((0.0..=1.0).contains(&ratio), "eager hit rate {ratio} outside [0, 1]");
        let eager = rec.registry.counter(names::EAGER_RESOLVED_TOTAL).unwrap_or(0);
        let problems = rec.registry.counter(names::PROBLEMS_TOTAL).unwrap_or(0);
        if problems > 0 {
            let expected = eager as f64 / problems as f64;
            prop_assert!(
                (ratio - expected).abs() < 1e-12,
                "ratio {ratio} != eager {eager} / problems {problems}"
            );
        }
    }

    /// Fault accounting holds through the registry: summed over every
    /// fault kind, `injected == detected + tolerated`.
    #[test]
    fn fault_accounting_balances_in_registry(seed in 0u64..1_000_000, fault_seed in 1u64..1_000_000) {
        let rcfg = ResilienceConfig::with_plan(FaultPlan::from_seed(fault_seed));
        let rec = observed_run(seed, &rcfg);
        let injected = fault_class_total(&rec.registry, "injected");
        let detected = fault_class_total(&rec.registry, "detected");
        let tolerated = fault_class_total(&rec.registry, "tolerated");
        prop_assert_eq!(
            injected,
            detected + tolerated,
            "injected {} != detected {} + tolerated {}",
            injected,
            detected,
            tolerated
        );
    }
}
