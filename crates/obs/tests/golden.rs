//! Golden-snapshot suite for the observability exporters.
//!
//! A fixed-seed pipeline workload is run through `run_fastz_observed`
//! and each exporter's output is compared **byte for byte** against the
//! checked-in fixtures under `tests/golden/`. Every quantity in the
//! exports derives from deterministic work counters on the logical
//! clock — never wall time — so the comparison is exact.
//!
//! Regenerating the fixtures after an intentional wire-format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p fastz-obs --test golden
//! ```
//!
//! then review the fixture diff like any other code change.

use fastz_core::{run_fastz_observed, FastZConfig, OptFlags, ResilienceConfig};
use fastz_genome::evolve::{default_classes, generate_pair, PairParams};
use fastz_genome::{GapPenalties, Scoring, SubstMatrix};
use fastz_gpu_sim::DeviceSpec;
use fastz_obs::{export, Recorder};
use fastz_seed::{Workload, WorkloadParams};

use std::path::PathBuf;

const GOLDEN_SEED: u64 = 7;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// One fixed workload: small enough to stay fast in debug builds, big
/// enough to populate several bins and both pipeline phases.
fn run_golden_workload() -> Recorder {
    let scoring = Scoring {
        subst: SubstMatrix::match_mismatch(10, -15),
        gaps: GapPenalties::new(30, 5),
        ydrop: 120,
        xdrop: 40,
        hsp_threshold: 50,
        gapped_threshold: 50,
    };
    let pair = generate_pair(&PairParams {
        label: "golden".to_string(),
        target_len: 12_000,
        query_len: 12_000,
        segments: 24,
        classes: default_classes(),
        gc: 0.42,
        rng_seed: GOLDEN_SEED,
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 120,
            ..WorkloadParams::default()
        },
    );
    let mut cfg = FastZConfig::new(scoring, DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg.sim_threads = 1;
    let rcfg = ResilienceConfig::disabled();
    let mut rec = Recorder::new();
    run_fastz_observed(
        &pair.target,
        &pair.query,
        &wl.anchors,
        wl.shape.span(),
        &cfg,
        &rcfg,
        &mut rec,
    );
    rec
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        // Find the first divergent line for a readable failure.
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a);
        match mismatch {
            Some((idx, (e, a))) => panic!(
                "{name} diverges from golden fixture at line {}:\n  golden: {e}\n  actual: {a}\n\
                 run with UPDATE_GOLDEN=1 to regenerate after an intentional change",
                idx + 1
            ),
            None => panic!(
                "{name} diverges from golden fixture in length only \
                 (golden {} bytes, actual {} bytes)",
                expected.len(),
                actual.len()
            ),
        }
    }
}

#[test]
fn json_report_matches_golden() {
    let rec = run_golden_workload();
    check_golden("metrics.json", &export::json_report(&rec));
}

#[test]
fn prometheus_matches_golden() {
    let rec = run_golden_workload();
    check_golden("metrics.prom", &export::prometheus(&rec.registry));
}

#[test]
fn chrome_trace_matches_golden() {
    let rec = run_golden_workload();
    check_golden("trace.json", &export::chrome_trace(&rec.timeline));
}

/// Two back-to-back invocations of the same seed must produce
/// byte-identical exports — the acceptance criterion for the
/// logical-clock design (no wall time anywhere in the export path).
#[test]
fn exports_are_byte_identical_across_invocations() {
    let a = run_golden_workload();
    let b = run_golden_workload();
    assert_eq!(
        export::json_report(&a),
        export::json_report(&b),
        "JSON report differs across identical invocations"
    );
    assert_eq!(
        export::prometheus(&a.registry),
        export::prometheus(&b.registry),
        "Prometheus export differs across identical invocations"
    );
    assert_eq!(
        export::chrome_trace(&a.timeline),
        export::chrome_trace(&b.timeline),
        "Chrome trace differs across identical invocations"
    );
}
