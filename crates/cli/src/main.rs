//! `fastz` — gapped whole-genome alignment from the command line.
//!
//! A drop-in-style front end over the FastZ pipeline: seeds two FASTA
//! sequences, gapped-extends every filtered seed, and prints alignments.
//!
//! ```text
//! fastz <target.fa> <query.fa> [options]
//!
//! options:
//!   --engine fastz|lastz|multicore   extension engine (default fastz)
//!   --extend ydrop|bitvector         extension algorithm for the fastz
//!                                    engine: the paper's affine y-drop, or
//!                                    the GenASM/Scrooge-style bitvector
//!                                    edit-distance backend (default ydrop)
//!   --device pascal|volta|ampere     GPU to model (default ampere)
//!   --threads N                      multicore workers (default 16)
//!   --sim-threads N                  host threads for the FastZ functional
//!                                    simulation (default: all cores); wall
//!                                    clock only, never the results or the
//!                                    modeled GPU time
//!   --seed exact19|12of19            seed shape (default 12of19)
//!   --index-dir DIR                  persist the sharded seed index under
//!                                    DIR: the first run builds and saves it,
//!                                    later runs validate (checksum, version,
//!                                    genome identity) and load instead of
//!                                    rebuilding; anchors are bit-identical
//!                                    either way
//!   --index-shards N                 target-interval shards for the seed
//!                                    index (default 4; implies the sharded
//!                                    index path even without --index-dir)
//!   --max-anchors N                  seed budget (default unlimited)
//!   --scoring lastz|bench            scoring preset (default lastz)
//!   --scores FILE                    LASTZ score file (overrides matrix/gaps)
//!   --demo PAIR                      generate a synthetic catalog pair
//!                                    (e.g. C1_1,1) instead of reading files
//!   --both-strands                   also align the reverse complement
//!   --format tsv|general|maf         output format (default tsv)
//!   --emit-fasta PREFIX              write the (demo) inputs to
//!                                    PREFIX.target.fa / PREFIX.query.fa and exit
//!   --serve N                        route the workload through the alignment
//!                                    service: split the seeds into N requests,
//!                                    serve them co-batched through the
//!                                    admission queue, and print the deduped
//!                                    union (fastz engine only; --checkpoint
//!                                    and --both-strands do not apply)
//!   --prefilter                      with --serve: enable the bitvector
//!                                    cheap-reject rung — anchors provably
//!                                    below the gapped threshold are dropped
//!                                    before dispatch (sound: the served
//!                                    alignments are unchanged)
//!   --fault-plan SEED                inject a seeded fault schedule (hangs,
//!                                    bit flips, stalls, shmem pressure) and
//!                                    recover through the resilient dispatcher;
//!                                    with --serve this is the service chaos
//!                                    plan, re-keyed per request
//!   --checkpoint FILE                checkpoint pipeline progress to FILE and
//!                                    resume from it when present
//!   --metrics-out FILE               export pipeline metrics to FILE
//!                                    (Prometheus text when FILE ends in
//!                                    .prom, JSON report otherwise)
//!   --trace-out FILE                 export the phase span timeline to FILE
//!                                    as Chrome-trace JSON (chrome://tracing)
//!   --sanitize                       run the shared-memory shadow sanitizer
//!                                    (initcheck, racecheck, bank conflicts,
//!                                    warp lints); any finding fails the run
//!   --sanitize-out FILE              write the sanitizer report to FILE as
//!                                    JSON (implies --sanitize)
//!   --stats                          print pipeline statistics
//! ```
//!
//! Metric and trace exports are deterministic: a fixed input produces
//! byte-identical files on every invocation (the timeline runs on the
//! modeled clock, never wall time).

use fastz_align::{
    dedupe_alignments, multicore_gapped, sequential_gapped, write_general, write_maf, Alignment,
    DriverConfig,
};
use fastz_core::{
    run_fastz, run_fastz_observed, ExtendBackend, FastZConfig, PrefilterConfig, ResilienceConfig,
};
use fastz_genome::{find_pair, generate_pair, read_fasta_file, Scale, Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_obs::{export, NoObs, Recorder};
use fastz_seed::{
    Anchor, IndexOrigin, PersistError, SeedShape, ShardedSeedIndex, Workload, WorkloadParams,
};
use fastz_serve::{AlignRequest, AlignService, ServeConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    target: Option<String>,
    query: Option<String>,
    engine: String,
    extend: String,
    device: String,
    threads: usize,
    sim_threads: usize,
    seed: String,
    index_dir: Option<String>,
    index_shards: usize,
    max_anchors: usize,
    scoring: String,
    demo: Option<String>,
    scores: Option<String>,
    stats: bool,
    both_strands: bool,
    format: String,
    emit_fasta: Option<String>,
    serve: usize,
    prefilter: bool,
    fault_plan: Option<u64>,
    checkpoint: Option<String>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    sanitize: bool,
    sanitize_out: Option<String>,
}

impl Options {
    fn usage() -> &'static str {
        "usage: fastz <target.fa> <query.fa> [--engine fastz|lastz|multicore] \
         [--extend ydrop|bitvector] \
         [--device pascal|volta|ampere] [--threads N] [--sim-threads N] \
         [--seed exact19|12of19] [--index-dir DIR] [--index-shards N] \
         [--max-anchors N] [--scoring lastz|bench] [--demo PAIR] \
         [--serve N] [--prefilter] [--fault-plan SEED] [--checkpoint FILE] \
         [--metrics-out FILE] \
         [--trace-out FILE] [--sanitize] [--sanitize-out FILE] [--stats]"
    }

    fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options {
            target: None,
            query: None,
            engine: "fastz".into(),
            extend: "ydrop".into(),
            device: "ampere".into(),
            threads: 16,
            sim_threads: 0,
            seed: "12of19".into(),
            index_dir: None,
            index_shards: 0,
            max_anchors: 0,
            scoring: "lastz".into(),
            demo: None,
            scores: None,
            stats: false,
            both_strands: false,
            format: "tsv".into(),
            emit_fasta: None,
            serve: 0,
            prefilter: false,
            fault_plan: None,
            checkpoint: None,
            metrics_out: None,
            trace_out: None,
            sanitize: false,
            sanitize_out: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut grab = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--engine" => opts.engine = grab("--engine")?,
                "--extend" => opts.extend = grab("--extend")?,
                "--device" => opts.device = grab("--device")?,
                "--threads" => {
                    opts.threads = grab("--threads")?
                        .parse()
                        .map_err(|_| "--threads must be a number".to_string())?
                }
                "--sim-threads" => {
                    opts.sim_threads = grab("--sim-threads")?
                        .parse()
                        .map_err(|_| "--sim-threads must be a number".to_string())?
                }
                "--seed" => opts.seed = grab("--seed")?,
                "--index-dir" => opts.index_dir = Some(grab("--index-dir")?),
                "--index-shards" => {
                    let n: usize = grab("--index-shards")?
                        .parse()
                        .map_err(|_| "--index-shards must be a shard count".to_string())?;
                    if n == 0 {
                        return Err("--index-shards must be at least 1".to_string());
                    }
                    opts.index_shards = n;
                }
                "--max-anchors" => {
                    opts.max_anchors = grab("--max-anchors")?
                        .parse()
                        .map_err(|_| "--max-anchors must be a number".to_string())?
                }
                "--scoring" => opts.scoring = grab("--scoring")?,
                "--demo" => opts.demo = Some(grab("--demo")?),
                "--scores" => opts.scores = Some(grab("--scores")?),
                "--stats" => opts.stats = true,
                "--both-strands" => opts.both_strands = true,
                "--format" => opts.format = grab("--format")?,
                "--emit-fasta" => opts.emit_fasta = Some(grab("--emit-fasta")?),
                "--serve" => {
                    opts.serve = grab("--serve")?
                        .parse()
                        .map_err(|_| "--serve must be a request count".to_string())?
                }
                "--fault-plan" => {
                    opts.fault_plan = Some(
                        grab("--fault-plan")?
                            .parse()
                            .map_err(|_| "--fault-plan must be a seed number".to_string())?,
                    )
                }
                "--prefilter" => opts.prefilter = true,
                "--checkpoint" => opts.checkpoint = Some(grab("--checkpoint")?),
                "--metrics-out" => opts.metrics_out = Some(grab("--metrics-out")?),
                "--trace-out" => opts.trace_out = Some(grab("--trace-out")?),
                "--sanitize" => opts.sanitize = true,
                "--sanitize-out" => opts.sanitize_out = Some(grab("--sanitize-out")?),
                "--help" | "-h" => return Err(Options::usage().to_string()),
                other if other.starts_with('-') => {
                    return Err(format!("unknown option {other}\n{}", Options::usage()))
                }
                path => {
                    if opts.target.is_none() {
                        opts.target = Some(path.to_string());
                    } else if opts.query.is_none() {
                        opts.query = Some(path.to_string());
                    } else {
                        return Err(format!("unexpected argument {path}"));
                    }
                }
            }
        }
        Ok(opts)
    }
}

fn load_inputs(opts: &Options) -> Result<(Sequence, Sequence), String> {
    if let Some(label) = &opts.demo {
        let pair = find_pair(label).ok_or_else(|| format!("unknown catalog pair {label}"))?;
        let generated = generate_pair(&pair.pair_params(Scale::BENCH));
        return Ok((generated.target, generated.query));
    }
    let (Some(tp), Some(qp)) = (&opts.target, &opts.query) else {
        return Err(Options::usage().to_string());
    };
    let mut t = read_fasta_file(tp).map_err(|e| format!("{tp}: {e}"))?;
    let mut q = read_fasta_file(qp).map_err(|e| format!("{qp}: {e}"))?;
    let target = t
        .drain(..)
        .next()
        .ok_or_else(|| format!("{tp}: no records"))?;
    let query = q
        .drain(..)
        .next()
        .ok_or_else(|| format!("{qp}: no records"))?;
    Ok((target, query))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let (target, query) = match load_inputs(&opts) {
        Ok(pair) => pair,
        Err(msg) => {
            eprintln!("fastz: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(prefix) = &opts.emit_fasta {
        let tp = format!("{prefix}.target.fa");
        let qp = format!("{prefix}.query.fa");
        if let Err(e) = fastz_genome::write_fasta_file(&tp, std::slice::from_ref(&target))
            .and_then(|_| fastz_genome::write_fasta_file(&qp, std::slice::from_ref(&query)))
        {
            eprintln!("fastz: writing fasta: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fastz: wrote {tp} ({} bp) and {qp} ({} bp)",
            target.len(),
            query.len()
        );
        return ExitCode::SUCCESS;
    }

    let mut scoring = match scoring_preset(&opts.scoring) {
        Some(s) => s,
        None => {
            eprintln!("fastz: unknown scoring preset {}", opts.scoring);
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.scores {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fastz: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        scoring = match fastz_genome::parse_score_file(&text, &scoring) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fastz: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!("fastz: scores loaded from {path}");
    }
    let Some(extend) = extend_preset(&opts.extend) else {
        eprintln!("fastz: unknown extension algorithm {}", opts.extend);
        return ExitCode::FAILURE;
    };
    if extend != ExtendBackend::YDrop && opts.engine != "fastz" {
        eprintln!("fastz: --extend applies to the fastz engine only");
        return ExitCode::FAILURE;
    }
    let shape = match opts.seed.as_str() {
        "exact19" => SeedShape::exact(19),
        "12of19" => SeedShape::lastz_12of19(),
        other => {
            eprintln!("fastz: unknown seed shape {other}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "fastz: target {} ({} bp), query {} ({} bp)",
        target.name(),
        target.len(),
        query.name(),
        query.len()
    );

    let params = WorkloadParams {
        shape: shape.clone(),
        max_anchors: opts.max_anchors,
        ..WorkloadParams::default()
    };
    // Sharded-index path: build (or load) the persistent index once and
    // seed through it. The fingerprint folds into checkpoint identity so
    // a resume can never mix anchors from different index versions.
    let mut index_fingerprint = 0u64;
    let workload = if opts.index_dir.is_some() || opts.index_shards > 0 {
        let shards = if opts.index_shards > 0 {
            opts.index_shards
        } else {
            4
        };
        let loaded = match &opts.index_dir {
            Some(dir) => {
                ShardedSeedIndex::load_or_build(&PathBuf::from(dir), &target, shape, shards)
            }
            None => ShardedSeedIndex::build(&target, shape, shards)
                .map(|i| (i, IndexOrigin::Built))
                .map_err(PersistError::Build),
        };
        let (index, origin) = match loaded {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("fastz: seed index: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "fastz: seed index {} ({} shards, {} entries, fingerprint {:016x})",
            match origin {
                IndexOrigin::LoadedFromDisk => "loaded from disk",
                IndexOrigin::Built => "built",
            },
            index.n_shards(),
            index.len(),
            index.fingerprint(),
        );
        index_fingerprint = index.fingerprint();
        Workload::build_with_index(&index, &query, &params)
    } else {
        Workload::build(&target, &query, &params)
    };
    eprintln!(
        "fastz: {} raw anchors, {} after filtering, {} extended",
        workload.raw_anchors,
        workload.filtered_anchors,
        workload.len()
    );
    let span = workload.shape.span();

    if opts.serve > 0 {
        if opts.engine != "fastz" {
            eprintln!("fastz: --serve requires the fastz engine");
            return ExitCode::FAILURE;
        }
        if opts.both_strands {
            eprintln!("fastz: --serve does not combine with --both-strands");
            return ExitCode::FAILURE;
        }
        let Some(device) = device_preset(&opts.device) else {
            eprintln!("fastz: unknown device {}", opts.device);
            return ExitCode::FAILURE;
        };
        let cfg = FastZConfig {
            sim_threads: opts.sim_threads,
            extend_backend: extend,
            index_fingerprint,
            ..FastZConfig::new(scoring, device)
        };
        let alignments = match serve_front_end(&target, &query, &workload.anchors, span, cfg, &opts)
        {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("fastz: {msg}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = emit(&alignments, &target, &query, '+', &opts) {
            eprintln!("fastz: writing output: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("fastz: {} alignments", alignments.len());
        return ExitCode::SUCCESS;
    }

    let scoring_for_minus = scoring.clone();
    let alignments = match opts.engine.as_str() {
        "lastz" => {
            let report = sequential_gapped(
                &target,
                &query,
                &workload.anchors,
                span,
                &DriverConfig::gapped(scoring),
            );
            eprintln!(
                "fastz: sequential engine, {} cells, {:.3} s",
                report.stats.total_cells,
                report.stats.wall_time.as_secs_f64()
            );
            report.alignments
        }
        "multicore" => {
            let report = multicore_gapped(
                &target,
                &query,
                &workload.anchors,
                span,
                &DriverConfig::gapped(scoring),
                opts.threads,
            );
            eprintln!(
                "fastz: multicore engine ({} workers), {} cells, {:.3} s",
                opts.threads,
                report.stats.total_cells,
                report.stats.wall_time.as_secs_f64()
            );
            report.alignments
        }
        "fastz" => {
            let Some(device) = device_preset(&opts.device) else {
                eprintln!("fastz: unknown device {}", opts.device);
                return ExitCode::FAILURE;
            };
            let cfg = FastZConfig {
                sim_threads: opts.sim_threads,
                sanitize: opts.sanitize || opts.sanitize_out.is_some(),
                extend_backend: extend,
                index_fingerprint,
                ..FastZConfig::new(scoring, device)
            };
            let rcfg = ResilienceConfig {
                checkpoint: opts.checkpoint.as_ref().map(PathBuf::from),
                ..match opts.fault_plan {
                    Some(seed) => ResilienceConfig::with_plan(FaultPlan::from_seed(seed)),
                    None => ResilienceConfig::disabled(),
                }
            };
            let observing = opts.metrics_out.is_some() || opts.trace_out.is_some();
            let mut rec = Recorder::new();
            let report = if observing {
                run_fastz_observed(
                    &target,
                    &query,
                    &workload.anchors,
                    span,
                    &cfg,
                    &rcfg,
                    &mut rec,
                )
            } else {
                run_fastz_observed(
                    &target,
                    &query,
                    &workload.anchors,
                    span,
                    &cfg,
                    &rcfg,
                    &mut NoObs,
                )
            };
            if let Some(path) = &opts.metrics_out {
                let text = if path.ends_with(".prom") {
                    export::prometheus(&rec.registry)
                } else {
                    export::json_report(&rec)
                };
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("fastz: {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("fastz: metrics written to {path}");
            }
            if let Some(path) = &opts.trace_out {
                if let Err(e) = std::fs::write(path, export::chrome_trace(&rec.timeline)) {
                    eprintln!("fastz: {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("fastz: trace written to {path}");
            }
            eprintln!(
                "fastz: GPU pipeline on {} — modeled {:.4} s, simulated in {:.3} s host time",
                cfg.device.name,
                report.modeled_time_s,
                report.host_wall.as_secs_f64()
            );
            if let Some(srep) = &report.sanitize {
                if let Some(path) = &opts.sanitize_out {
                    if let Err(e) = std::fs::write(path, srep.to_json()) {
                        eprintln!("fastz: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("fastz: sanitizer report written to {path}");
                }
                eprintln!(
                    "fastz: sanitizer: {} findings over {} shared reads / {} writes \
                     ({} barriers, {} clears)",
                    srep.total_findings(),
                    srep.shared_reads,
                    srep.shared_writes,
                    srep.barriers,
                    srep.clears,
                );
                if !srep.is_clean() {
                    for f in srep.findings.iter().take(8) {
                        eprintln!(
                            "fastz: sanitizer finding [{}] problem {} phase {} stage {}: {}",
                            f.kind, f.problem, f.phase, f.stage, f.detail
                        );
                    }
                    eprintln!("fastz: sanitizer found problems; failing the run");
                    return ExitCode::FAILURE;
                }
            }
            if opts.fault_plan.is_some() || opts.checkpoint.is_some() || opts.stats {
                eprintln!("fastz: resilience: {}", report.resilience.summary());
                if report.resilience.resumed {
                    eprintln!(
                        "fastz: resumed from checkpoint ({} problems restored)",
                        report.resilience.restored_problems
                    );
                }
            }
            if opts.stats {
                eprintln!(
                    "fastz: {} seeds; eager {}, executor {}; bins {:?} (+{} eager, {} overflow)",
                    report.stats.seeds,
                    report.stats.eager_resolved,
                    report.stats.executor_problems,
                    report.bin_counts.bins,
                    report.bin_counts.eager,
                    report.bin_counts.overflow,
                );
                eprint!("{}", report.timeline);
            }
            report.alignments
        }
        other => {
            eprintln!("fastz: unknown engine {other}");
            return ExitCode::FAILURE;
        }
    };

    if let Err(e) = emit(&alignments, &target, &query, '+', &opts) {
        eprintln!("fastz: writing output: {e}");
        return ExitCode::FAILURE;
    }
    let mut total = alignments.len();

    // Minus strand: re-run the chosen engine against the reverse
    // complement and report coordinates on the rc (strand column `-`).
    if opts.both_strands {
        let rc = query.reverse_complement();
        let wl = Workload::build(
            &target,
            &rc,
            &WorkloadParams {
                max_anchors: opts.max_anchors,
                ..WorkloadParams::default()
            },
        );
        eprintln!("fastz: minus strand, {} anchors", wl.len());
        let minus = match opts.engine.as_str() {
            "lastz" => {
                sequential_gapped(
                    &target,
                    &rc,
                    &wl.anchors,
                    wl.shape.span(),
                    &DriverConfig::gapped(scoring_for_minus.clone()),
                )
                .alignments
            }
            "multicore" => {
                multicore_gapped(
                    &target,
                    &rc,
                    &wl.anchors,
                    wl.shape.span(),
                    &DriverConfig::gapped(scoring_for_minus.clone()),
                    opts.threads,
                )
                .alignments
            }
            _ => {
                let cfg = FastZConfig::new(scoring_for_minus.clone(), DeviceSpec::rtx3080_ampere());
                run_fastz(&target, &rc, &wl.anchors, wl.shape.span(), &cfg).alignments
            }
        };
        if let Err(e) = emit(&minus, &target, &rc, '-', &opts) {
            eprintln!("fastz: writing output: {e}");
            return ExitCode::FAILURE;
        }
        total += minus.len();
    }
    eprintln!("fastz: {total} alignments");
    ExitCode::SUCCESS
}

fn scoring_preset(name: &str) -> Option<Scoring> {
    match name {
        "lastz" => Some(Scoring::lastz_default()),
        "bench" => Some(Scoring::bench_scaled()),
        _ => None,
    }
}

fn extend_preset(name: &str) -> Option<ExtendBackend> {
    match name {
        "ydrop" => Some(ExtendBackend::YDrop),
        "bitvector" => Some(ExtendBackend::Bitvector),
        _ => None,
    }
}

fn device_preset(name: &str) -> Option<DeviceSpec> {
    match name {
        "pascal" => Some(DeviceSpec::titan_x_pascal()),
        "volta" => Some(DeviceSpec::qv100_volta()),
        "ampere" => Some(DeviceSpec::rtx3080_ampere()),
        _ => None,
    }
}

/// `--serve N`: the alignment-as-a-service front end. Splits the seeded
/// workload into N requests, serves them co-batched through the
/// admission queue, and returns the deduped union of every served
/// request's alignments — bit-identical to a direct run (the
/// conformance `--serve` drill holds the service to that). The queue is
/// sized to admit every request; `--fault-plan` becomes the service
/// chaos plan, re-keyed per request.
fn serve_front_end(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    span: usize,
    cfg: FastZConfig,
    opts: &Options,
) -> Result<Vec<Alignment>, String> {
    let per = anchors.len().div_ceil(opts.serve).max(1);
    let requests: Vec<AlignRequest> = anchors
        .chunks(per)
        .enumerate()
        .map(|(i, chunk)| AlignRequest::new(i as u64, chunk.to_vec(), span))
        .collect();
    let mut scfg = ServeConfig::new(cfg);
    scfg.admission.queue_cap = scfg.admission.queue_cap.max(requests.len());
    scfg.admission.work_budget = f64::INFINITY;
    if let Some(seed) = opts.fault_plan {
        scfg = scfg.with_chaos(FaultPlan::from_seed(seed));
    }
    if opts.prefilter {
        scfg = scfg.with_prefilter(PrefilterConfig::default());
    }
    let service = AlignService::new(target, query, scfg);
    let mut rec = Recorder::new();
    let report = if opts.metrics_out.is_some() {
        service.run_observed(&requests, &mut rec)
    } else {
        service.run(&requests)
    };
    if let Some(path) = &opts.metrics_out {
        let text = if path.ends_with(".prom") {
            export::prometheus(&rec.registry)
        } else {
            export::json_report(&rec)
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("fastz: service metrics written to {path}");
    }
    eprintln!(
        "fastz: served {} requests — {} completed, {} degraded, {} deadline-missed, {} shed",
        report.records.len(),
        report.count("completed"),
        report.count("degraded"),
        report.count("deadline-error"),
        report.count("shed-error"),
    );
    eprintln!(
        "fastz: service makespan {:.4} s; executor {:.4} s batched vs {:.4} s per-request \
         ({} merged launches)",
        report.makespan_s, report.batched_exec_s, report.solo_exec_s, report.merged_launches,
    );
    if opts.prefilter {
        eprintln!(
            "fastz: prefilter rejected {} of {} probed anchors",
            report.prefilter_rejected, report.prefilter_probed,
        );
    }
    if opts.fault_plan.is_some() || opts.stats {
        eprintln!("fastz: resilience: {}", report.resilience.summary());
    }
    if !report.resilience.accounts_for_all_faults() {
        return Err("service fault accounting does not balance".to_string());
    }
    let union: Vec<Alignment> = report
        .records
        .iter()
        .flat_map(|r| r.alignments.iter().cloned())
        .collect();
    Ok(dedupe_alignments(union))
}

/// Writes alignments in the selected format; `strand` marks the query
/// strand (coordinates refer to the sequence actually aligned). Errors
/// (closed pipe, full disk) bubble up for a non-zero exit instead of a
/// panic.
fn emit(
    alignments: &[Alignment],
    target: &Sequence,
    query: &Sequence,
    strand: char,
    opts: &Options,
) -> std::io::Result<()> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    use std::io::Write;
    match opts.format.as_str() {
        "maf" => write_maf(&mut out, alignments, target, query)?,
        "general" => write_general(&mut out, alignments, target, query)?,
        _ => {
            writeln!(
                out,
                "#score\ttname\ttstart\ttend\tqname\tqstart\tqend\tstrand\tcigar"
            )?;
            for a in alignments {
                writeln!(
                    out,
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    a.score,
                    target.name(),
                    a.target_start,
                    a.target_end,
                    query.name(),
                    a.query_start,
                    a.query_end,
                    strand,
                    a.cigar()
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(&[]).unwrap();
        assert_eq!(o.engine, "fastz");
        assert_eq!(o.device, "ampere");
        assert_eq!(o.threads, 16);
        assert_eq!(o.format, "tsv");
        assert!(!o.both_strands);
        assert!(o.target.is_none());
    }

    #[test]
    fn positional_and_flags() {
        let o = Options::parse(&sv(&[
            "t.fa",
            "q.fa",
            "--engine",
            "lastz",
            "--threads",
            "8",
            "--both-strands",
            "--format",
            "maf",
            "--max-anchors",
            "500",
        ]))
        .unwrap();
        assert_eq!(o.target.as_deref(), Some("t.fa"));
        assert_eq!(o.query.as_deref(), Some("q.fa"));
        assert_eq!(o.engine, "lastz");
        assert_eq!(o.threads, 8);
        assert!(o.both_strands);
        assert_eq!(o.format, "maf");
        assert_eq!(o.max_anchors, 500);
    }

    #[test]
    fn demo_and_emit() {
        let o = Options::parse(&sv(&["--demo", "C1_1,1", "--emit-fasta", "out"])).unwrap();
        assert_eq!(o.demo.as_deref(), Some("C1_1,1"));
        assert_eq!(o.emit_fasta.as_deref(), Some("out"));
    }

    #[test]
    fn errors() {
        assert!(Options::parse(&sv(&["--engine"])).is_err());
        assert!(Options::parse(&sv(&["--threads", "abc"])).is_err());
        assert!(Options::parse(&sv(&["--bogus"])).is_err());
        assert!(Options::parse(&sv(&["a", "b", "c"])).is_err());
        assert!(Options::parse(&sv(&["--help"])).is_err());
        assert!(Options::parse(&sv(&["--fault-plan", "xyz"])).is_err());
        assert!(Options::parse(&sv(&["--fault-plan"])).is_err());
    }

    #[test]
    fn serve_flag() {
        let o = Options::parse(&sv(&["--serve", "8"])).unwrap();
        assert_eq!(o.serve, 8);
        assert!(Options::parse(&sv(&["--serve"])).is_err());
        assert!(Options::parse(&sv(&["--serve", "many"])).is_err());
        assert_eq!(Options::parse(&[]).unwrap().serve, 0);
    }

    #[test]
    fn index_flags() {
        let o =
            Options::parse(&sv(&["--index-dir", ".fastz-index", "--index-shards", "8"])).unwrap();
        assert_eq!(o.index_dir.as_deref(), Some(".fastz-index"));
        assert_eq!(o.index_shards, 8);
        let none = Options::parse(&[]).unwrap();
        assert_eq!(none.index_dir, None);
        assert_eq!(none.index_shards, 0);
        assert!(Options::parse(&sv(&["--index-dir"])).is_err());
        assert!(Options::parse(&sv(&["--index-shards"])).is_err());
        assert!(Options::parse(&sv(&["--index-shards", "zero"])).is_err());
        assert!(Options::parse(&sv(&["--index-shards", "0"])).is_err());
    }

    #[test]
    fn extend_and_prefilter_flags() {
        let o = Options::parse(&sv(&["--extend", "bitvector", "--prefilter"])).unwrap();
        assert_eq!(o.extend, "bitvector");
        assert!(o.prefilter);
        assert_eq!(extend_preset(&o.extend), Some(ExtendBackend::Bitvector));
        let none = Options::parse(&[]).unwrap();
        assert_eq!(none.extend, "ydrop");
        assert!(!none.prefilter);
        assert_eq!(extend_preset("ydrop"), Some(ExtendBackend::YDrop));
        assert_eq!(extend_preset("banded"), None);
        assert!(Options::parse(&sv(&["--extend"])).is_err());
    }

    #[test]
    fn fault_plan_and_checkpoint_flags() {
        let o = Options::parse(&sv(&["--fault-plan", "42", "--checkpoint", "run.ckpt"])).unwrap();
        assert_eq!(o.fault_plan, Some(42));
        assert_eq!(o.checkpoint.as_deref(), Some("run.ckpt"));
        let none = Options::parse(&[]).unwrap();
        assert_eq!(none.fault_plan, None);
        assert_eq!(none.checkpoint, None);
    }

    #[test]
    fn metrics_and_trace_flags() {
        let o = Options::parse(&sv(&[
            "--metrics-out",
            "m.prom",
            "--trace-out",
            "trace.json",
        ]))
        .unwrap();
        assert_eq!(o.metrics_out.as_deref(), Some("m.prom"));
        assert_eq!(o.trace_out.as_deref(), Some("trace.json"));
        assert!(Options::parse(&sv(&["--metrics-out"])).is_err());
        assert!(Options::parse(&sv(&["--trace-out"])).is_err());
        let none = Options::parse(&[]).unwrap();
        assert_eq!(none.metrics_out, None);
        assert_eq!(none.trace_out, None);
    }

    #[test]
    fn sanitize_flags() {
        let o = Options::parse(&sv(&["--sanitize"])).unwrap();
        assert!(o.sanitize);
        assert_eq!(o.sanitize_out, None);
        let o = Options::parse(&sv(&["--sanitize-out", "san.json"])).unwrap();
        assert!(!o.sanitize);
        assert_eq!(o.sanitize_out.as_deref(), Some("san.json"));
        assert!(Options::parse(&sv(&["--sanitize-out"])).is_err());
        let none = Options::parse(&[]).unwrap();
        assert!(!none.sanitize);
        assert_eq!(none.sanitize_out, None);
    }

    #[test]
    fn scoring_presets() {
        assert!(scoring_preset("lastz").is_some());
        assert!(scoring_preset("bench").is_some());
        assert!(scoring_preset("nope").is_none());
        assert_eq!(scoring_preset("lastz").unwrap().ydrop, 9400);
    }

    #[test]
    fn demo_inputs_load() {
        let o = Options::parse(&sv(&["--demo", "D1_2R,2"])).unwrap();
        let (t, q) = load_inputs(&o).unwrap();
        assert!(t.len() > 100_000);
        assert!(q.len() > 100_000);
        let bad = Options::parse(&sv(&["--demo", "NOPE"])).unwrap();
        assert!(load_inputs(&bad).is_err());
    }
}
