//! Intentional-bug corpus for the sanitizer: toy kernels that plant
//! each violation class and assert it is caught with correct
//! provenance, plus clean toy kernels that must produce zero findings.
//!
//! These are mutation tests for the checker itself — if a future change
//! stops any of these firing, the sanitizer has lost its teeth.

use fastz_gpu_sim::sanitize::{stage, FindingKind, MAX_DIVERGENCE_DEPTH, N_BANKS};
use fastz_gpu_sim::{ShadowSanitizer, SharedMem};

fn sanitized_scratchpad() -> SharedMem {
    let mut sm = SharedMem::new(128 * 1024);
    sm.attach_sanitizer();
    sm
}

/// Planted bug #1: a toy kernel reserves a tile, writes half of it, and
/// reads a byte from the never-written half (initcheck class).
#[test]
fn planted_uninit_read_is_caught_with_provenance() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_context("inspector", 7);
    sm.sanitize_stage(stage::WAVEFRONT);
    sm.reserve(64);
    for off in 0..32 {
        sm.write_u8(off, off as u8);
    }
    let v = sm.read_u8(40); // bug: byte 40 was reserved but never written
    assert_eq!(v, 0, "the model still zero-fills; the sanitizer flags it");

    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert_eq!(report.count(FindingKind::UninitRead), 1);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::UninitRead)
        .expect("uninit finding recorded");
    assert_eq!(f.offset, 40);
    assert_eq!(f.phase, "inspector");
    assert_eq!(f.stage, stage::WAVEFRONT);
    assert_eq!(f.problem, 7);
}

/// Planted bug #2: a phase race — the eager-traceback stage reads a
/// window byte the wavefront stage wrote, with the required barrier
/// deleted (racecheck RAW class); the wavefront then overwrites a byte
/// the walker read (WAR class).
#[test]
fn planted_phase_race_is_caught_both_directions() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_context("inspector", 11);
    sm.sanitize_stage(stage::WAVEFRONT);
    sm.write_u8(5, 0xAA);

    // Bug: stage switch without sm.sanitize_barrier().
    sm.sanitize_stage(stage::EAGER_TRACEBACK);
    let _ = sm.read_u8(5);

    // And the reverse hazard: wavefront scribbles over what the walker
    // just read, still with no barrier.
    sm.sanitize_stage(stage::WAVEFRONT);
    sm.write_u8(5, 0xBB);

    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert_eq!(report.count(FindingKind::RawHazard), 1);
    assert_eq!(report.count(FindingKind::WarHazard), 1);
    let raw = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::RawHazard)
        .expect("RAW finding recorded");
    assert_eq!(raw.offset, 5);
    assert_eq!(raw.stage, stage::EAGER_TRACEBACK);
    assert_eq!(raw.problem, 11);
    assert!(raw.detail.contains("wavefront"), "names the writing stage");
}

/// The same access pattern with the barrier restored must be clean —
/// the racecheck keys on the sync epoch, not on stage changes alone.
#[test]
fn barrier_separated_stages_do_not_race() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_stage(stage::WAVEFRONT);
    sm.write_u8(5, 0xAA);
    sm.sanitize_barrier();
    sm.sanitize_stage(stage::EAGER_TRACEBACK);
    let _ = sm.read_u8(5);
    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert!(report.is_clean(), "findings: {:?}", report.findings);
}

/// `clear()` is as strong as a barrier for hazard purposes: a new
/// generation cannot race with the old one (the Arena-reuse path).
#[test]
fn clear_separates_generations() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_stage(stage::WAVEFRONT);
    sm.write_u8(9, 1);
    sm.clear();
    sm.sanitize_stage(stage::EAGER_TRACEBACK);
    sm.write_u8(9, 2);
    let _ = sm.read_u8(9);
    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert_eq!(report.count(FindingKind::RawHazard), 0);
    assert_eq!(report.count(FindingKind::WarHazard), 0);
    assert_eq!(report.clears, 1);
}

/// Arena reuse without re-initialization: reading the next problem's
/// window before writing it must be flagged, even though the previous
/// problem left bytes at those offsets (stale-data class from PR 4's
/// buffer reuse).
#[test]
fn stale_read_after_clear_is_caught() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_context("inspector", 0);
    for off in 0..16 {
        sm.write_u8(off, 0xFF);
    }
    sm.clear();
    sm.sanitize_context("inspector", 1);
    sm.reserve(16); // next problem reserves but forgets to write
    let v = sm.read_u8(3);
    assert_eq!(v, 0, "reserve zero-fills, stale bytes never resurface");
    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert_eq!(report.count(FindingKind::UninitRead), 1);
    assert_eq!(
        report.findings[0].problem, 1,
        "blamed on the reusing problem"
    );
}

/// Planted bug #3: a 32-way bank conflict — 32 lanes in one warp step
/// each touch a different word that maps to bank 0 (stride of 128
/// bytes), fully serializing the access group.
#[test]
fn planted_32_way_bank_conflict_is_caught() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_context("executor", 21);
    sm.sanitize_stage(stage::WAVEFRONT);
    sm.sanitize_tick();
    for lane in 0..N_BANKS {
        // word index = lane * 32 → bank (lane * 32) % 32 == 0 for all.
        sm.write_u8(lane * 4 * N_BANKS, lane as u8);
    }
    sm.sanitize_tick(); // close the group

    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert_eq!(report.count(FindingKind::BankConflict), 1);
    let f = report
        .findings
        .iter()
        .find(|f| f.kind == FindingKind::BankConflict)
        .expect("bank-conflict finding recorded");
    assert_eq!(f.phase, "executor");
    assert_eq!(f.problem, 21);
    assert!(f.detail.contains("32-way"), "detail: {}", f.detail);

    let banks = report.banks.get("executor").expect("executor bank stats");
    assert_eq!(banks.conflict_events, 1);
    assert_eq!(banks.max_ways, 32);
    assert_eq!(banks.serialized_extra, 31, "31 extra serialized passes");
}

/// The conflict-free contrast: 32 lanes touching 32 consecutive words
/// hit 32 distinct banks — counted as a clean group, no findings.
#[test]
fn stride_one_word_access_is_conflict_free() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_context("executor", 0);
    sm.sanitize_tick();
    for lane in 0..N_BANKS {
        sm.write_u8(lane * 4, 1); // word = lane → bank = lane
    }
    sm.sanitize_tick();
    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert!(report.is_clean());
    let banks = report.banks.get("executor").expect("executor bank stats");
    assert_eq!(banks.conflict_events, 0);
    assert_eq!(banks.max_ways, 1);
}

/// Same-word accesses in one step are a broadcast, never a conflict.
#[test]
fn same_word_access_is_a_broadcast() {
    let mut sm = sanitized_scratchpad();
    sm.sanitize_tick();
    sm.write_u8(0, 1);
    for _ in 0..31 {
        let _ = sm.read_u8(0);
    }
    sm.sanitize_tick();
    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert!(report.is_clean());
    let banks = report.banks.get("").expect("default-phase bank stats");
    assert_eq!(banks.max_ways, 1, "one distinct word = broadcast");
}

/// Ballot lint: a mask asserting a lane outside the active set is a
/// consistency violation.
#[test]
fn ballot_inactive_lane_is_caught() {
    let san = ShadowSanitizer::new();
    san.set_context("inspector", 2);
    san.check_ballot(0b1011, 0b0011); // bit 3 asserted but inactive
    let report = san.take_report();
    assert_eq!(report.count(FindingKind::BallotInactiveLane), 1);
    assert!(report.findings[0].detail.contains("0x00000008"));

    // Consistent masks are clean.
    san.check_ballot(0b0011, 0b0111);
    assert!(san.take_report().is_clean());
}

/// Divergence-depth lint: nesting past the reconvergence bound fires
/// exactly once per crossing; flat divergence never does.
#[test]
fn divergence_depth_lint_fires_past_the_bound() {
    let san = ShadowSanitizer::new();
    for _ in 0..MAX_DIVERGENCE_DEPTH {
        san.divergence_push(2);
    }
    let clean = san.report();
    assert_eq!(clean.count(FindingKind::DivergenceDepth), 0);
    assert_eq!(clean.max_divergence_depth, MAX_DIVERGENCE_DEPTH);

    san.divergence_push(2); // one past the bound
    let report = san.take_report();
    assert_eq!(report.count(FindingKind::DivergenceDepth), 1);

    // Flat engine-style divergent steps never accumulate depth.
    let flat = ShadowSanitizer::new();
    for _ in 0..1000 {
        flat.note_divergent_step();
    }
    let report = flat.take_report();
    assert!(report.is_clean());
    assert_eq!(report.max_divergence_depth, 1);
}

/// A well-behaved toy kernel exercising every hook — reserve, write,
/// barrier, stage switch, read, tick, clear — reports zero findings.
#[test]
fn clean_toy_kernel_has_zero_findings() {
    let mut sm = sanitized_scratchpad();
    for problem in 0..4u64 {
        sm.sanitize_context("inspector", problem);
        sm.sanitize_stage(stage::WAVEFRONT);
        for step in 0..16usize {
            sm.sanitize_tick();
            for lane in 0..16usize {
                sm.write_u8(step * 16 + lane, (step + lane) as u8);
            }
        }
        sm.sanitize_barrier();
        sm.sanitize_stage(stage::EAGER_TRACEBACK);
        for off in (0..256).rev() {
            let _ = sm.read_u8(off);
        }
        sm.clear();
    }
    let report = sm.take_sanitize_report().expect("sanitizer attached");
    assert!(report.is_clean(), "findings: {:?}", report.findings);
    assert_eq!(report.clears, 4);
    assert_eq!(report.barriers, 4);
    assert_eq!(report.shared_writes, 4 * 256);
    assert_eq!(report.shared_reads, 4 * 256);
}
