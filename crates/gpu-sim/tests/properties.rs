//! Property tests for the GPU simulator: warp primitive algebra,
//! occupancy monotonicity, and timing-model laws.

use fastz_gpu_sim::{
    ballot, occupancy, shfl_down, shfl_up, splat, time_kernel, time_stream_pipeline,
    warp_max_with_lane, BlockResources, CpuModel, DeviceSpec, KernelSpec, Lanes, WarpTask,
    WARP_SIZE,
};
use proptest::prelude::*;

fn lanes_strategy() -> impl Strategy<Value = Lanes<i32>> {
    proptest::collection::vec(-1000i32..1000, WARP_SIZE).prop_map(|v| {
        let mut l = splat(0);
        l.copy_from_slice(&v);
        l
    })
}

fn tasks_strategy() -> impl Strategy<Value = Vec<WarpTask>> {
    proptest::collection::vec((1.0f64..1e6, 0.0f64..1e6), 1..100).prop_map(|v| {
        v.into_iter()
            .map(|(cycles, dram_bytes)| WarpTask { cycles, dram_bytes })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// shfl_up then shfl_down restores the middle lanes.
    #[test]
    fn shuffle_round_trip(v in lanes_strategy(), delta in 0usize..8) {
        let up = shfl_up(&v, delta, i32::MIN);
        let back = shfl_down(&up, delta, i32::MIN);
        for l in 0..WARP_SIZE - delta {
            prop_assert_eq!(back[l], v[l]);
        }
    }

    /// Ballot popcount equals the number of true lanes.
    #[test]
    fn ballot_popcount(mask in any::<u32>()) {
        let mut pred = splat(false);
        for (l, p) in pred.iter_mut().enumerate() {
            *p = mask & (1 << l) != 0;
        }
        prop_assert_eq!(ballot(&pred), mask);
        prop_assert_eq!(ballot(&pred).count_ones(), mask.count_ones());
    }

    /// warp_max returns a true maximum and its first occurrence.
    #[test]
    fn warp_max_is_max(v in lanes_strategy()) {
        let (m, lane) = warp_max_with_lane(&v);
        prop_assert_eq!(m, *v.iter().max().unwrap());
        prop_assert_eq!(v[lane], m);
        for &x in &v[..lane] {
            prop_assert!(x < m);
        }
    }

    /// Occupancy never increases when any resource demand grows.
    #[test]
    fn occupancy_is_antitone(
        warps in 1usize..16,
        regs in 8usize..128,
        shared in 0usize..32_768,
    ) {
        let dev = DeviceSpec::rtx3080_ampere();
        let base = BlockResources {
            warps_per_block: warps,
            regs_per_thread: regs,
            shared_bytes_per_block: shared,
        };
        let o0 = occupancy(&dev, &base);
        let more_regs = occupancy(&dev, &BlockResources { regs_per_thread: regs + 16, ..base });
        let more_shared = occupancy(&dev, &BlockResources { shared_bytes_per_block: shared + 4096, ..base });
        prop_assert!(more_regs.warps_per_sm <= o0.warps_per_sm);
        prop_assert!(more_shared.warps_per_sm <= o0.warps_per_sm);
    }

    /// Kernel time dominates both its compute and memory components, and
    /// adding tasks never makes the kernel faster.
    #[test]
    fn kernel_time_laws(tasks in tasks_strategy()) {
        let dev = DeviceSpec::rtx3080_ampere();
        let res = BlockResources::fastz_inspector();
        let t = time_kernel(&dev, &KernelSpec::new("k", tasks.clone(), res));
        prop_assert!(t.time_s >= t.compute_s);
        prop_assert!(t.time_s >= t.memory_s);
        prop_assert!(t.compute_s >= t.longest_task_s - 1e-12);

        let mut more = tasks.clone();
        more.push(WarpTask { cycles: 1e5, dram_bytes: 1e4 });
        let t2 = time_kernel(&dev, &KernelSpec::new("k", more, res));
        prop_assert!(t2.time_s >= t.time_s - 1e-12);
    }

    /// Multi-stream execution of a kernel set is never slower than
    /// single-stream, and both respect the longest-task floor.
    #[test]
    fn streams_never_hurt(tasks in tasks_strategy(), n_kernels in 1usize..6) {
        let dev = DeviceSpec::qv100_volta();
        let res = BlockResources::fastz_inspector();
        let kernels: Vec<KernelSpec> = (0..n_kernels)
            .map(|i| KernelSpec::new(format!("k{i}"), tasks.clone(), res))
            .collect();
        let single = time_stream_pipeline(&dev, &kernels, 1);
        let multi = time_stream_pipeline(&dev, &kernels, 32);
        prop_assert!(multi.time_s <= single.time_s + 1e-12);
        let floor = kernels[0].longest_task_cycles() / (dev.clock_ghz * 1e9);
        prop_assert!(multi.time_s + 1e-12 >= floor);
    }

    /// CPU model: multicore never beats perfect scaling and never loses
    /// to a single worker.
    #[test]
    fn multicore_bounds(cells in 1u64..10_000_000_000, workers in 1usize..32) {
        let m = CpuModel::ryzen_3950x();
        let per = vec![cells / workers as u64 + 1; workers];
        let seq = m.sequential_time(per.iter().sum());
        let par = m.multicore_time(&per);
        prop_assert!(par <= seq + 1e-12);
        prop_assert!(seq / par <= workers as f64 + 1e-9);
    }
}
