//! # fastz-gpu-sim
//!
//! A software GPU execution simulator — the documented substitution for
//! the paper's CUDA hardware (see `DESIGN.md`). Two layers:
//!
//! * **Functional**: warp/lane lockstep primitives (shuffles, ballots,
//!   votes) and a capacity-checked shared-memory scratchpad. FastZ's
//!   kernels execute on these and produce real alignments, verified
//!   against the scalar reference engines.
//! * **Accounting + timing**: work counters recorded during execution,
//!   an occupancy calculator, a per-kernel block-scheduling/roofline
//!   timing engine, a CUDA-stream pipeline model, and an analytic CPU
//!   model for the sequential/multicore LASTZ baselines.

#![warn(missing_docs)]
#![cfg_attr(feature = "nightly-simd", feature(portable_simd))]

pub mod counters;
pub mod device;
pub mod fault;
pub mod isa;
pub mod kernel;
pub mod lanes32;
pub mod model;
pub mod occupancy;
pub mod roofline;
pub mod sanitize;
pub mod shared;
pub mod stream;
pub mod timeline;
pub mod warp;

pub use counters::{FaultCounters, KernelCounters, WarpCounters};
pub use device::{CpuSpec, DeviceSpec};
pub use fault::{
    time_kernel_resilient, FaultKind, FaultPlan, FaultRates, FaultSite, ResilientKernelTiming,
    WatchdogPolicy,
};
pub use isa::{instructions_per_step, step_mix, InstrClass, MixEntry};
pub use kernel::{time_kernel, KernelSpec, KernelTiming, WarpTask};
pub use model::CpuModel;
pub use occupancy::{occupancy, BlockResources, Occupancy, OccupancyLimit};
pub use roofline::{analyze, Bound, RooflineReport};
pub use sanitize::{Finding, FindingKind, NoSanitize, SanitizeReport, Sanitizer, ShadowSanitizer};
pub use shared::SharedMem;
pub use stream::{
    time_stream_pipeline, time_stream_pipeline_capped, time_stream_pipeline_resilient,
    PipelineTiming, ResilientPipelineTiming,
};
pub use timeline::{PhaseEntry, PhaseTimeline};
pub use warp::{
    ballot, branch_paths, lane_max, shfl_down, shfl_up, splat, warp_all, warp_any,
    warp_max_with_lane, Lanes, WARP_SIZE,
};
