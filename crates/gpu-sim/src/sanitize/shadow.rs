//! The recording sanitizer: shadow map, phase-epoch hazard tracking,
//! bank-conflict grouping, and warp lints.
//!
//! State lives behind a `RefCell` because the scratchpad is read
//! through `&self` closures (`walk_traceback_with` takes an `Fn`), so
//! the sanitizer must mutate its shadow through interior mutability.
//! All methods take `&self` and never touch `WarpCounters`, keeping
//! modeled GPU time bit-identical with the sanitizer attached.

use std::cell::RefCell;

use super::report::{Finding, FindingKind, SanitizeReport};
use crate::warp::WARP_SIZE;

/// Shared-memory banks on the modeled device: 32 banks of 4-byte words,
/// `bank = (offset / 4) % 32`, successive words in successive banks.
pub const N_BANKS: usize = 32;

/// Divergence nesting deeper than this is diagnosed: a warp's
/// reconvergence stack cannot usefully nest beyond one level per lane.
pub const MAX_DIVERGENCE_DEPTH: u32 = 32;

/// Canonical kernel-stage names used by the warp engine.
pub mod stage {
    /// Strip-mined anti-diagonal DP sweep (paper §3.1.4).
    pub const WAVEFRONT: &str = "wavefront";
    /// In-shared-memory eager traceback walk (paper §3.1.2).
    pub const EAGER_TRACEBACK: &str = "eager_traceback";
    /// GenASM-style bitvector edit-distance column sweep.
    pub const BITVECTOR: &str = "bitvector";
    /// Bitvector traceback walk over the stored dead-mask rows.
    pub const BITVECTOR_TRACEBACK: &str = "bitvector_traceback";
}

/// Static seam mirroring the `MetricsSink`/`NoObs` pattern: generic
/// kernels can be written against `S: Sanitizer` and instantiated with
/// [`NoSanitize`] for provably zero-cost builds.
pub trait Sanitizer {
    /// Whether this sanitizer records anything at all. `false` lets
    /// call sites compile the instrumentation out entirely.
    const ENABLED: bool;

    /// Observes a shared-memory read of `len` bytes at `offset` with
    /// the current reservation `extent`.
    #[inline(always)]
    fn on_read(&self, offset: usize, len: usize, extent: usize) {
        let _ = (offset, len, extent);
    }

    /// Observes a shared-memory write of `len` bytes at `offset`.
    #[inline(always)]
    fn on_write(&self, offset: usize, len: usize) {
        let _ = (offset, len);
    }

    /// Observes a scratchpad `clear()` (generation bump).
    #[inline(always)]
    fn on_clear(&self) {}

    /// Observes a synchronization barrier between kernel stages.
    #[inline(always)]
    fn barrier(&self) {}

    /// Marks a warp-step boundary for bank-conflict grouping.
    #[inline(always)]
    fn tick(&self) {}
}

/// The zero-cost default: every hook is an empty `#[inline(always)]`
/// body the optimizer deletes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSanitize;

impl Sanitizer for NoSanitize {
    const ENABLED: bool = false;
}

/// Per-byte shadow record. Generation/sync pairs are compared against
/// the current epoch, so `clear()` invalidates the whole map in O(1) by
/// bumping the generation instead of rewriting the shadow.
#[derive(Clone, Copy, Default)]
struct ByteShadow {
    wgen: u32,
    wsync: u32,
    rgen: u32,
    rsync: u32,
    wstage: u8,
    rstage: u8,
}

struct ShadowInner {
    shadow: Vec<ByteShadow>,
    /// Current generation; starts at 1 so a default shadow byte
    /// (gen 0) always reads as never-touched.
    generation: u32,
    /// Barrier counter within the current generation.
    sync: u32,
    phase: &'static str,
    stage: &'static str,
    stage_id: u8,
    stages: Vec<&'static str>,
    problem: u64,
    /// Warp-step counter driving bank-conflict grouping.
    step: u64,
    /// Step the currently open access group belongs to.
    group_step: u64,
    /// Word indices accessed in the open group.
    group: Vec<usize>,
    divergence_depth: u32,
    report: SanitizeReport,
}

/// The recording sanitizer.
///
/// Attach one to a `SharedMem` via `SharedMem::attach_sanitizer`; every
/// subsequent access is checked and accumulated into a
/// [`SanitizeReport`] drained with `SharedMem::take_sanitize_report`.
#[derive(Debug)]
pub struct ShadowSanitizer {
    inner: RefCell<ShadowInner>,
}

impl std::fmt::Debug for ShadowInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowInner")
            .field("generation", &self.generation)
            .field("sync", &self.sync)
            .field("phase", &self.phase)
            .field("stage", &self.stage)
            .field("problem", &self.problem)
            .field("findings", &self.report.total_findings())
            .finish()
    }
}

impl Clone for ShadowSanitizer {
    fn clone(&self) -> ShadowSanitizer {
        // Cloning a scratchpad clones an *empty* sanitizer attachment:
        // shadow state describes one arena's access history and must
        // not leak into a copy.
        ShadowSanitizer::new()
    }
}

impl Default for ShadowSanitizer {
    fn default() -> ShadowSanitizer {
        ShadowSanitizer::new()
    }
}

impl ShadowSanitizer {
    /// Creates a sanitizer with an empty shadow map.
    #[must_use]
    pub fn new() -> ShadowSanitizer {
        ShadowSanitizer {
            inner: RefCell::new(ShadowInner {
                shadow: Vec::new(),
                generation: 1,
                sync: 0,
                phase: "",
                stage: "",
                stage_id: 0,
                stages: vec![""],
                problem: 0,
                step: 0,
                group_step: 0,
                group: Vec::with_capacity(WARP_SIZE),
                divergence_depth: 0,
                report: SanitizeReport::default(),
            }),
        }
    }

    /// Sets pipeline-phase provenance (e.g. `"inspector"`, problem 17).
    pub fn set_context(&self, phase: &'static str, problem: u64) {
        let mut g = self.inner.borrow_mut();
        g.phase = phase;
        g.problem = problem;
    }

    /// Sets the kernel stage used as the racecheck accessor identity.
    pub fn set_stage(&self, name: &'static str) {
        let mut g = self.inner.borrow_mut();
        g.stage = name;
        g.stage_id = match g.stages.iter().position(|s| *s == name) {
            Some(i) => i as u8,
            None => {
                g.stages.push(name);
                (g.stages.len() - 1) as u8
            }
        };
    }

    /// Validates a ballot mask against the active-lane set: any bit
    /// asserted outside `active` is a [`FindingKind::BallotInactiveLane`].
    pub fn check_ballot(&self, mask: u32, active: u32) {
        let stray = mask & !active;
        if stray != 0 {
            let mut g = self.inner.borrow_mut();
            let detail = format!(
                "ballot mask {mask:#010x} asserts inactive lanes {stray:#010x} \
                 (active set {active:#010x})"
            );
            record(&mut g, FindingKind::BallotInactiveLane, 0, detail);
        }
    }

    /// Enters a divergent region with `paths` live branch paths.
    /// Nesting past [`MAX_DIVERGENCE_DEPTH`] is diagnosed once per
    /// crossing.
    pub fn divergence_push(&self, paths: u32) {
        if paths <= 1 {
            return;
        }
        let mut g = self.inner.borrow_mut();
        g.divergence_depth += 1;
        let depth = g.divergence_depth;
        g.report.max_divergence_depth = g.report.max_divergence_depth.max(depth);
        if depth == MAX_DIVERGENCE_DEPTH + 1 {
            let detail = format!(
                "warp divergence nested {depth} deep (limit {MAX_DIVERGENCE_DEPTH}): \
                 reconvergence stack exhausted"
            );
            record(&mut g, FindingKind::DivergenceDepth, 0, detail);
        }
    }

    /// Leaves a divergent region opened with the same `paths` value.
    pub fn divergence_pop(&self, paths: u32) {
        if paths <= 1 {
            return;
        }
        let mut g = self.inner.borrow_mut();
        g.divergence_depth = g.divergence_depth.saturating_sub(1);
    }

    /// Records one flat divergent warp step (the engine's
    /// `branch_paths == 2` signal): push + pop with depth tracking.
    pub fn note_divergent_step(&self) {
        self.divergence_push(2);
        self.divergence_pop(2);
    }

    /// Drains the accumulated report, resetting epoch state so the
    /// sanitizer can keep observing the same scratchpad.
    pub fn take_report(&self) -> SanitizeReport {
        let mut g = self.inner.borrow_mut();
        flush_group(&mut g);
        std::mem::take(&mut g.report)
    }

    /// Read-only snapshot of the accumulated report.
    #[must_use]
    pub fn report(&self) -> SanitizeReport {
        let mut g = self.inner.borrow_mut();
        flush_group(&mut g);
        g.report.clone()
    }
}

impl Sanitizer for ShadowSanitizer {
    const ENABLED: bool = true;

    fn on_read(&self, offset: usize, len: usize, extent: usize) {
        let mut g = self.inner.borrow_mut();
        g.report.shared_reads += 1;
        if offset.saturating_add(len) > extent {
            let detail = format!(
                "read of {len} B at offset {offset} crosses reservation extent {extent} \
                 (bytes past the extent read as zero)"
            );
            record(&mut g, FindingKind::OobRead, offset, detail);
        } else {
            grow_shadow(&mut g, offset + len);
            let (generation, sync, stage_id) = (g.generation, g.sync, g.stage_id);
            for byte in offset..offset + len {
                let b = g.shadow[byte];
                if b.wgen != generation {
                    // The epoch counter is arena-local bookkeeping: in a
                    // pooled run it depends on which worker's arena served
                    // the problem, so it must stay out of the finding text
                    // (merged reports are compared across worker counts).
                    let detail = format!(
                        "read of reserved byte {byte} never written since the last clear()"
                    );
                    record(&mut g, FindingKind::UninitRead, byte, detail);
                } else if b.wsync == sync && b.wstage != stage_id {
                    let writer = g.stages[b.wstage as usize];
                    let detail = format!(
                        "stage `{}` read byte {byte} written by stage `{writer}` with no \
                         intervening barrier (RAW hazard)",
                        g.stage
                    );
                    record(&mut g, FindingKind::RawHazard, byte, detail);
                }
                let s = &mut g.shadow[byte];
                s.rgen = generation;
                s.rsync = sync;
                s.rstage = stage_id;
            }
        }
        note_bank_access(&mut g, offset, len);
    }

    fn on_write(&self, offset: usize, len: usize) {
        let mut g = self.inner.borrow_mut();
        g.report.shared_writes += 1;
        grow_shadow(&mut g, offset + len);
        let (generation, sync, stage_id) = (g.generation, g.sync, g.stage_id);
        for byte in offset..offset + len {
            let b = g.shadow[byte];
            if b.rgen == generation && b.rsync == sync && b.rstage != stage_id {
                let reader = g.stages[b.rstage as usize];
                let detail = format!(
                    "stage `{}` overwrote byte {byte} read by stage `{reader}` with no \
                     intervening barrier (WAR hazard)",
                    g.stage
                );
                record(&mut g, FindingKind::WarHazard, byte, detail);
            }
            let s = &mut g.shadow[byte];
            s.wgen = generation;
            s.wsync = sync;
            s.wstage = stage_id;
        }
        note_bank_access(&mut g, offset, len);
    }

    fn on_clear(&self) {
        let mut g = self.inner.borrow_mut();
        flush_group(&mut g);
        g.generation += 1;
        g.sync = 0;
        g.report.clears += 1;
    }

    fn barrier(&self) {
        let mut g = self.inner.borrow_mut();
        flush_group(&mut g);
        g.sync += 1;
        g.report.barriers += 1;
    }

    fn tick(&self) {
        let mut g = self.inner.borrow_mut();
        g.step += 1;
    }
}

fn grow_shadow(g: &mut ShadowInner, upto: usize) {
    if upto > g.shadow.len() {
        g.shadow.resize(upto, ByteShadow::default());
    }
}

fn record(g: &mut ShadowInner, kind: FindingKind, offset: usize, detail: String) {
    let finding = Finding {
        kind,
        offset,
        phase: g.phase,
        stage: g.stage,
        problem: g.problem,
        detail,
    };
    g.report.record(finding);
}

/// Adds the 4-byte words covered by `[offset, offset + len)` to the
/// current warp-step access group, flushing the previous group first if
/// the step counter has moved on.
fn note_bank_access(g: &mut ShadowInner, offset: usize, len: usize) {
    if g.step != g.group_step {
        flush_group(g);
        g.group_step = g.step;
    }
    let first = offset / 4;
    let last = (offset + len.max(1) - 1) / 4;
    for word in first..=last {
        g.group.push(word);
    }
}

/// Closes the open access group: deduplicates words (same-word access
/// is a broadcast, never a conflict), counts distinct words per bank,
/// and accumulates the phase's [`BankStats`]. A fully serialized
/// 32-way conflict is promoted to a finding.
fn flush_group(g: &mut ShadowInner) {
    if g.group.is_empty() {
        return;
    }
    let mut words = std::mem::take(&mut g.group);
    words.sort_unstable();
    words.dedup();

    let mut per_bank = [0u32; N_BANKS];
    for word in &words {
        per_bank[word % N_BANKS] += 1;
    }
    let max_ways = per_bank.iter().copied().max().unwrap_or(0);
    let extra: u64 = per_bank
        .iter()
        .map(|&n| u64::from(n.saturating_sub(1)))
        .sum();

    let phase = g.phase;
    let stats = g.report.banks.entry(phase).or_default();
    stats.groups += 1;
    if max_ways > 1 {
        stats.conflict_events += 1;
        stats.serialized_extra += extra;
    }
    stats.max_ways = stats.max_ways.max(max_ways);

    if max_ways as usize >= N_BANKS {
        let bank = per_bank.iter().position(|&n| n == max_ways).unwrap_or(0);
        let offset = words
            .iter()
            .find(|w| *w % N_BANKS == bank)
            .copied()
            .unwrap_or(0)
            * 4;
        let detail = format!(
            "{max_ways}-way shared-memory bank conflict on bank {bank}: the access group \
             fully serializes ({} extra passes)",
            max_ways - 1
        );
        record(g, FindingKind::BankConflict, offset, detail);
    }

    words.clear();
    g.group = words;
}
