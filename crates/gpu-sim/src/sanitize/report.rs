//! Findings and the aggregated [`SanitizeReport`].
//!
//! A finding is one diagnosed violation with full provenance: what
//! happened (kind), where in the scratchpad (byte offset), which
//! pipeline phase and kernel stage were executing, and which problem
//! index the worker was processing. Reports merge associatively so
//! per-worker arenas can be drained into one pool-level report in any
//! order and still produce deterministic output after [`SanitizeReport::sort`].

use std::collections::BTreeMap;
use std::fmt;

/// The classes of violation the sanitizer diagnoses.
///
/// The first three mirror NVIDIA `compute-sanitizer` tools: `UninitRead`
/// is the `initcheck` class, `OobRead` the `memcheck` class, and the two
/// hazard kinds the `racecheck` classes. The remaining kinds are
/// warp-model lints with no single-tool analog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FindingKind {
    /// Read of a reserved byte never written since the last `clear()`.
    UninitRead,
    /// Read beyond the current reservation extent.
    OobRead,
    /// Read of data written by a different kernel stage with no
    /// intervening barrier (read-after-write hazard).
    RawHazard,
    /// Write over data read by a different kernel stage with no
    /// intervening barrier (write-after-read hazard).
    WarHazard,
    /// Fully serialized shared-memory access group: 32 distinct words
    /// mapping to one bank in a single warp step.
    BankConflict,
    /// Ballot mask asserting a lane outside the active-lane set.
    BallotInactiveLane,
    /// Warp divergence nesting deeper than the reconvergence-stack bound.
    DivergenceDepth,
}

impl FindingKind {
    /// Every kind, in stable report order.
    pub const ALL: [FindingKind; 7] = [
        FindingKind::UninitRead,
        FindingKind::OobRead,
        FindingKind::RawHazard,
        FindingKind::WarHazard,
        FindingKind::BankConflict,
        FindingKind::BallotInactiveLane,
        FindingKind::DivergenceDepth,
    ];

    /// Stable wire name, used as the `kind` label on exported counters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::UninitRead => "uninit_read",
            FindingKind::OobRead => "oob_read",
            FindingKind::RawHazard => "raw_hazard",
            FindingKind::WarHazard => "war_hazard",
            FindingKind::BankConflict => "bank_conflict",
            FindingKind::BallotInactiveLane => "ballot_inactive_lane",
            FindingKind::DivergenceDepth => "divergence_depth",
        }
    }

    fn index(self) -> usize {
        FindingKind::ALL
            .iter()
            .position(|k| *k == self)
            .unwrap_or(0)
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnosed violation with provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Violation class.
    pub kind: FindingKind,
    /// Byte offset into the scratchpad (0 for non-memory lints).
    pub offset: usize,
    /// Pipeline phase (`inspector` / `executor`) set via
    /// `SharedMem::sanitize_context`.
    pub phase: &'static str,
    /// Kernel stage (`wavefront` / `eager_traceback` / toy-kernel name).
    pub stage: &'static str,
    /// Problem index the worker was processing.
    pub problem: u64,
    /// Human-readable description of the specific violation.
    pub detail: String,
}

/// Per-phase shared-memory bank pressure counters.
///
/// These are performance counters, not findings: real hardware
/// serializes an n-way conflict into n passes without any error, so the
/// sanitizer only promotes the degenerate fully-serialized 32-way case
/// to a [`FindingKind::BankConflict`] finding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Warp-step access groups observed.
    pub groups: u64,
    /// Groups with at least one multi-word bank collision.
    pub conflict_events: u64,
    /// Total extra serialized passes, Σ over banks of (words − 1).
    pub serialized_extra: u64,
    /// Worst n-way conflict seen.
    pub max_ways: u32,
}

impl BankStats {
    fn merge(&mut self, other: &BankStats) {
        self.groups += other.groups;
        self.conflict_events += other.conflict_events;
        self.serialized_extra += other.serialized_extra;
        self.max_ways = self.max_ways.max(other.max_ways);
    }
}

/// Detailed findings kept per kind; beyond this only counts accumulate.
pub const FINDINGS_PER_KIND_CAP: usize = 16;

/// Aggregated sanitizer output for a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SanitizeReport {
    counts: [u64; FindingKind::ALL.len()],
    /// Detailed findings (capped at [`FINDINGS_PER_KIND_CAP`] per kind).
    pub findings: Vec<Finding>,
    /// Findings dropped once the per-kind detail cap was reached
    /// (their counts are still reflected in `count`).
    pub truncated: u64,
    /// Bank pressure keyed by pipeline phase.
    pub banks: BTreeMap<&'static str, BankStats>,
    /// Shared-memory read accesses observed.
    pub shared_reads: u64,
    /// Shared-memory write accesses observed.
    pub shared_writes: u64,
    /// Sanitizer barriers observed.
    pub barriers: u64,
    /// Scratchpad generation bumps (`clear()` calls) observed.
    pub clears: u64,
    /// Deepest warp-divergence nesting observed.
    pub max_divergence_depth: u32,
}

impl SanitizeReport {
    /// Records a finding, enforcing the per-kind detail cap.
    pub fn record(&mut self, finding: Finding) {
        let idx = finding.kind.index();
        self.counts[idx] += 1;
        let kept = self
            .findings
            .iter()
            .filter(|f| f.kind == finding.kind)
            .count();
        if kept < FINDINGS_PER_KIND_CAP {
            self.findings.push(finding);
        } else {
            self.truncated += 1;
        }
    }

    /// Number of violations of `kind` (including truncated ones).
    #[must_use]
    pub fn count(&self, kind: FindingKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total violations across every kind.
    #[must_use]
    pub fn total_findings(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no violations were diagnosed (bank pressure counters
    /// may still be non-zero; they are not findings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_findings() == 0
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative up to finding order; call [`SanitizeReport::sort`]
    /// after the last merge for deterministic output.
    pub fn merge(&mut self, other: &SanitizeReport) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += *src;
        }
        for f in &other.findings {
            let kept = self.findings.iter().filter(|g| g.kind == f.kind).count();
            if kept < FINDINGS_PER_KIND_CAP {
                self.findings.push(f.clone());
            } else {
                self.truncated += 1;
            }
        }
        self.truncated += other.truncated;
        for (phase, stats) in &other.banks {
            self.banks.entry(phase).or_default().merge(stats);
        }
        self.shared_reads += other.shared_reads;
        self.shared_writes += other.shared_writes;
        self.barriers += other.barriers;
        self.clears += other.clears;
        self.max_divergence_depth = self.max_divergence_depth.max(other.max_divergence_depth);
    }

    /// Sorts findings into the canonical order (problem, phase, stage,
    /// kind, offset, detail) so reports merged from workers in arrival
    /// order compare byte-identical across thread counts.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.problem, a.phase, a.stage, a.kind, a.offset, &a.detail)
                .cmp(&(b.problem, b.phase, b.stage, b.kind, b.offset, &b.detail))
        });
    }

    /// Serializes the report as JSON (hand-rolled; the workspace has no
    /// serde dependency). Output is deterministic after
    /// [`SanitizeReport::sort`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counts\": {");
        for (i, kind) in FindingKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", kind.name(), self.count(*kind)));
        }
        out.push_str("\n  },\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"offset\": {}, \"phase\": ",
                f.kind.name(),
                f.offset
            ));
            push_json_str(&mut out, f.phase);
            out.push_str(", \"stage\": ");
            push_json_str(&mut out, f.stage);
            out.push_str(&format!(", \"problem\": {}, \"detail\": ", f.problem));
            push_json_str(&mut out, &f.detail);
            out.push('}');
        }
        out.push_str(&format!(
            "\n  ],\n  \"truncated\": {},\n  \"banks\": {{",
            self.truncated
        ));
        for (i, (phase, b)) in self.banks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{phase}\": {{\"groups\": {}, \"conflict_events\": {}, \
                 \"serialized_extra\": {}, \"max_ways\": {}}}",
                b.groups, b.conflict_events, b.serialized_extra, b.max_ways
            ));
        }
        out.push_str(&format!(
            "\n  }},\n  \"shared_reads\": {},\n  \"shared_writes\": {},\n  \
             \"barriers\": {},\n  \"clears\": {},\n  \"max_divergence_depth\": {}\n}}\n",
            self.shared_reads,
            self.shared_writes,
            self.barriers,
            self.clears,
            self.max_divergence_depth
        ));
        out
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: FindingKind, problem: u64, offset: usize) -> Finding {
        Finding {
            kind,
            offset,
            phase: "inspector",
            stage: "wavefront",
            problem,
            detail: format!("test finding at {offset}"),
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let mut r = SanitizeReport::default();
        assert!(r.is_clean());
        r.record(finding(FindingKind::UninitRead, 0, 4));
        assert_eq!(r.count(FindingKind::UninitRead), 1);
        assert_eq!(r.total_findings(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn detail_cap_truncates_but_keeps_counting() {
        let mut r = SanitizeReport::default();
        for i in 0..(FINDINGS_PER_KIND_CAP + 5) {
            r.record(finding(FindingKind::OobRead, 0, i));
        }
        assert_eq!(
            r.count(FindingKind::OobRead),
            (FINDINGS_PER_KIND_CAP + 5) as u64
        );
        assert_eq!(r.findings.len(), FINDINGS_PER_KIND_CAP);
        assert_eq!(r.truncated, 5);
    }

    #[test]
    fn merge_is_order_insensitive_after_sort() {
        let mut a = SanitizeReport::default();
        a.record(finding(FindingKind::RawHazard, 2, 8));
        a.shared_reads = 10;
        let mut b = SanitizeReport::default();
        b.record(finding(FindingKind::UninitRead, 1, 0));
        b.shared_writes = 3;

        let mut ab = a.clone();
        ab.merge(&b);
        ab.sort();
        let mut ba = b.clone();
        ba.merge(&a);
        ba.sort();
        assert_eq!(ab, ba);
        assert_eq!(ab.total_findings(), 2);
        assert_eq!(ab.shared_reads, 10);
        assert_eq!(ab.shared_writes, 3);
    }

    #[test]
    fn json_export_round_trips_key_fields() {
        let mut r = SanitizeReport::default();
        r.record(finding(FindingKind::BankConflict, 9, 128));
        r.banks.insert(
            "inspector",
            BankStats {
                groups: 7,
                conflict_events: 1,
                serialized_extra: 31,
                max_ways: 32,
            },
        );
        let json = r.to_json();
        assert!(json.contains("\"bank_conflict\": 1"));
        assert!(json.contains("\"problem\": 9"));
        assert!(json.contains("\"serialized_extra\": 31"));
        assert!(json.contains("\"max_ways\": 32"));
    }
}
