//! Sanitizer subsystem: the `compute-sanitizer` analog for the modeled
//! device.
//!
//! Real CUDA punishes the bug classes FastZ's choreography depends on
//! (paper §3.1.2–§3.1.4): reads of uninitialized or out-of-bounds
//! shared memory, cross-stage hazards without a `__syncthreads()`,
//! shuffle deltas past the warp width, and bank-conflict serialization.
//! The simulator used to forgive all of them silently. This module adds
//! the checking layer:
//!
//! - **initcheck** — a per-byte shadow map over `SharedMem` flags reads
//!   of reserved-but-never-written bytes (CUDA `initcheck`).
//! - **memcheck** — reads past the reservation extent are diagnosed
//!   instead of silently returning zero (CUDA `memcheck`).
//! - **racecheck** — generation/sync epochs track which kernel stage
//!   last touched every byte; cross-stage RAW/WAR access without an
//!   intervening barrier or `clear()` is a hazard (CUDA `racecheck`).
//! - **bank-conflict analysis** — each access group maps to the 32-bank
//!   model; n-way conflicts are counted per pipeline phase and exported
//!   through the `MetricsSink` seam.
//! - **warp lints** — shuffle-delta validation, ballot-mask /
//!   active-lane consistency, and a divergence-depth bound.
//!
//! The layer follows the `NoObs` pattern: [`NoSanitize`] is the
//! zero-cost default (`SharedMem` carries an unattached `Option`, one
//! branch per access), and [`ShadowSanitizer`] is the recording
//! implementation whose [`SanitizeReport`] exports JSON. The sanitizer
//! never touches `WarpCounters`, so modeled GPU time is bit-identical
//! whether or not it is attached.

#![warn(clippy::must_use_candidate, clippy::missing_panics_doc)]

mod report;
mod shadow;

pub use report::{BankStats, Finding, FindingKind, SanitizeReport, FINDINGS_PER_KIND_CAP};
pub use shadow::{stage, NoSanitize, Sanitizer, ShadowSanitizer, MAX_DIVERGENCE_DEPTH, N_BANKS};
