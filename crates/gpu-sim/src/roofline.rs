//! Roofline analysis (paper §6, "Remaining bottlenecks").
//!
//! Classifies a kernel as compute- or memory-bound from its measured
//! operational intensity against the device's divergence-derated
//! threshold, reproducing the paper's §6 numbers: inspector ≈24 ops/byte
//! (slightly compute-bound), executor ≈6.5 ops/byte (slightly
//! memory-bound) against the RTX 3080's derated threshold of ≈15.2.

use crate::device::DeviceSpec;
use crate::model::DIVERGENCE_DERATE;
use fastz_obs::{names, MetricsSink};

/// Which roof a kernel sits under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Limited by (derated) compute throughput.
    Compute,
    /// Limited by DRAM bandwidth.
    Memory,
}

/// A §6-style roofline report for one phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflineReport {
    /// Measured operational intensity in ops/byte.
    pub intensity: f64,
    /// Nominal threshold intensity (peak ops ÷ bandwidth), FMA-counted.
    pub nominal_threshold: f64,
    /// Divergence-derated threshold (the paper's 15.2 for the RTX 3080).
    pub derated_threshold: f64,
    /// The binding roof.
    pub bound: Bound,
}

impl RooflineReport {
    /// Emits the roofline position as `{phase="…"}`-labeled gauges.
    /// (An infinite intensity exports as JSON `null` / Prometheus
    /// `+Inf`; the derated threshold and boundedness stay meaningful.)
    pub fn record_into<S: MetricsSink>(&self, sink: &mut S, phase: &str) {
        sink.gauge_set(
            &names::phase(names::ROOFLINE_INTENSITY, phase),
            self.intensity,
        );
        sink.gauge_set(
            &names::phase(names::ROOFLINE_DERATED_THRESHOLD, phase),
            self.derated_threshold,
        );
        sink.gauge_set(
            &names::phase(names::ROOFLINE_COMPUTE_BOUND, phase),
            if self.bound == Bound::Compute {
                1.0
            } else {
                0.0
            },
        );
    }
}

/// Adds the sanitizer's shared-memory bank pressure for a phase to the
/// roofline view: the serialization ratio (extra passes per access
/// group) is the factor by which bank conflicts would stretch the
/// shared-memory term on real hardware. The report stays advisory —
/// modeled time never derates on it, keeping timing bit-identical with
/// and without the sanitizer.
pub fn record_bank_pressure<S: MetricsSink>(
    sink: &mut S,
    phase: &str,
    groups: u64,
    serialized_extra: u64,
) {
    let ratio = if groups == 0 {
        0.0
    } else {
        serialized_extra as f64 / groups as f64
    };
    sink.gauge_set(&names::phase(names::BANK_SERIALIZATION_RATIO, phase), ratio);
}

/// Builds the report for a phase with measured `ops` and `dram_bytes`.
pub fn analyze(device: &DeviceSpec, ops: u64, dram_bytes: u64) -> RooflineReport {
    // The paper quotes the RTX 3080's peak as 29.77 TFlop/s, an
    // FMA-counted number (2 flops per lane-cycle).
    let nominal = 2.0 * device.peak_ops_per_s() / (device.dram_bw_gbps * 1e9);
    let derated = nominal / DIVERGENCE_DERATE;
    let intensity = if dram_bytes == 0 {
        f64::INFINITY
    } else {
        ops as f64 / dram_bytes as f64
    };
    RooflineReport {
        intensity,
        nominal_threshold: nominal,
        derated_threshold: derated,
        bound: if intensity >= derated {
            Bound::Compute
        } else {
            Bound::Memory
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ampere_thresholds_match_paper() {
        let dev = DeviceSpec::rtx3080_ampere();
        let r = analyze(&dev, 1, 1);
        assert!(
            (r.nominal_threshold - 39.0).abs() < 4.0,
            "nominal {}",
            r.nominal_threshold
        );
        assert!(
            (r.derated_threshold - 15.2).abs() < 2.0,
            "derated {}",
            r.derated_threshold
        );
    }

    #[test]
    fn inspector_intensity_is_compute_bound() {
        // §6: inspector = 32×9 ops per 12 bytes = 24 ops/byte.
        let dev = DeviceSpec::rtx3080_ampere();
        let r = analyze(&dev, 32 * 9, 12);
        assert!((r.intensity - 24.0).abs() < 1e-9);
        assert_eq!(r.bound, Bound::Compute);
    }

    #[test]
    fn executor_intensity_is_memory_bound() {
        // §6: executor = 288 ops per 44 bytes ≈ 6.5 ops/byte.
        let dev = DeviceSpec::rtx3080_ampere();
        let r = analyze(&dev, 288, 44);
        assert!((r.intensity - 6.545).abs() < 0.01);
        assert_eq!(r.bound, Bound::Memory);
    }

    #[test]
    fn unoptimized_intensity_is_deeply_memory_bound() {
        // §6: without FastZ's optimizations, ≈0.75 ops/byte.
        let dev = DeviceSpec::rtx3080_ampere();
        let r = analyze(&dev, 9, 12);
        assert_eq!(r.bound, Bound::Memory);
        assert!(r.intensity < 1.0);
    }

    #[test]
    fn zero_traffic_is_compute_bound() {
        let dev = DeviceSpec::rtx3080_ampere();
        let r = analyze(&dev, 100, 0);
        assert_eq!(r.bound, Bound::Compute);
        assert!(r.intensity.is_infinite());
    }
}
