//! Work accounting: what a kernel *did*, measured during functional
//! execution and consumed by the timing model.

use fastz_obs::{names, MetricsSink};

/// Counters for one warp task (one seed-extension side in FastZ).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarpCounters {
    /// Wavefront steps executed (warp-synchronous iterations).
    pub steps: u64,
    /// DP cells computed across all lanes.
    pub cells: u64,
    /// Scalar ALU operations (pre-derating; the recurrences cost 9/cell).
    pub alu_ops: u64,
    /// Steps on which at least one branch diverged.
    pub divergent_steps: u64,
    /// Bytes read from global memory.
    pub global_read: u64,
    /// Bytes written to global memory.
    pub global_written: u64,
    /// Bytes moved through shared memory (no DRAM traffic).
    pub shared_bytes: u64,
    /// Warp-level shuffle operations.
    pub shuffles: u64,
    /// Sequential (single-lane) operations, e.g. the traceback walk.
    pub scalar_ops: u64,
}

impl WarpCounters {
    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &WarpCounters) {
        self.steps += other.steps;
        self.cells += other.cells;
        self.alu_ops += other.alu_ops;
        self.divergent_steps += other.divergent_steps;
        self.global_read += other.global_read;
        self.global_written += other.global_written;
        self.shared_bytes += other.shared_bytes;
        self.shuffles += other.shuffles;
        self.scalar_ops += other.scalar_ops;
    }

    /// Total global-memory traffic in bytes.
    pub fn global_bytes(&self) -> u64 {
        self.global_read + self.global_written
    }

    /// Operational intensity: ALU ops per global byte (∞ if no traffic).
    pub fn operational_intensity(&self) -> f64 {
        let bytes = self.global_bytes();
        if bytes == 0 {
            f64::INFINITY
        } else {
            self.alu_ops as f64 / bytes as f64
        }
    }

    /// Emits every field as a `{phase="…"}`-labeled counter into `sink`.
    pub fn record_into<S: MetricsSink>(&self, sink: &mut S, phase: &str) {
        sink.counter_add(&names::phase(names::STEPS_TOTAL, phase), self.steps);
        sink.counter_add(&names::phase(names::CELLS_TOTAL, phase), self.cells);
        sink.counter_add(&names::phase(names::ALU_OPS_TOTAL, phase), self.alu_ops);
        sink.counter_add(
            &names::phase(names::DIVERGENT_STEPS_TOTAL, phase),
            self.divergent_steps,
        );
        sink.counter_add(
            &names::phase(names::GLOBAL_READ_BYTES_TOTAL, phase),
            self.global_read,
        );
        sink.counter_add(
            &names::phase(names::GLOBAL_WRITTEN_BYTES_TOTAL, phase),
            self.global_written,
        );
        sink.counter_add(
            &names::phase(names::SHARED_BYTES_TOTAL, phase),
            self.shared_bytes,
        );
        sink.counter_add(&names::phase(names::SHUFFLES_TOTAL, phase), self.shuffles);
        sink.counter_add(
            &names::phase(names::SCALAR_OPS_TOTAL, phase),
            self.scalar_ops,
        );
    }
}

/// Aggregated counters for a whole kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Sum over all warp tasks.
    pub total: WarpCounters,
    /// Number of warp tasks.
    pub tasks: u64,
}

impl KernelCounters {
    /// Adds one task's counters.
    pub fn add_task(&mut self, c: &WarpCounters) {
        self.total.merge(c);
        self.tasks += 1;
    }

    /// Merges a whole kernel's counters (e.g. across bins).
    pub fn merge(&mut self, other: &KernelCounters) {
        self.total.merge(&other.total);
        self.tasks += other.tasks;
    }

    /// Emits the aggregated work counters plus the task count.
    pub fn record_into<S: MetricsSink>(&self, sink: &mut S, phase: &str) {
        self.total.record_into(sink, phase);
        sink.counter_add(&names::phase(names::WARP_TASKS_TOTAL, phase), self.tasks);
    }
}

/// Per-kind fault accounting (see [`crate::fault`]). One counter per
/// injectable failure mode; the resilient dispatcher keeps separate
/// injected / detected / tolerated instances and the conformance drill
/// asserts `injected == detected + tolerated`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Kernel hangs (watchdog deadline expiries).
    pub hangs: u64,
    /// Transient score-cell bit flips (ECC-detected).
    pub bit_flips: u64,
    /// Stream stalls.
    pub stalls: u64,
    /// Shared-memory capacity pressure events.
    pub shmem_pressure: u64,
    /// Whole-device losses.
    pub device_losses: u64,
}

impl FaultCounters {
    /// Records one fault of `kind`.
    pub fn record(&mut self, kind: crate::fault::FaultKind) {
        use crate::fault::FaultKind::*;
        match kind {
            KernelHang => self.hangs += 1,
            BitFlip => self.bit_flips += 1,
            StreamStall => self.stalls += 1,
            SharedMemPressure => self.shmem_pressure += 1,
            DeviceLoss => self.device_losses += 1,
        }
    }

    /// Accumulates another counter set.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.hangs += other.hangs;
        self.bit_flips += other.bit_flips;
        self.stalls += other.stalls;
        self.shmem_pressure += other.shmem_pressure;
        self.device_losses += other.device_losses;
    }

    /// Total faults across all kinds.
    pub fn total(&self) -> u64 {
        self.hangs + self.bit_flips + self.stalls + self.shmem_pressure + self.device_losses
    }

    /// The sum of two counter sets.
    pub fn plus(&self, other: &FaultCounters) -> FaultCounters {
        let mut out = *self;
        out.merge(other);
        out
    }

    /// The count for one fault kind.
    pub fn count(&self, kind: crate::fault::FaultKind) -> u64 {
        use crate::fault::FaultKind::*;
        match kind {
            KernelHang => self.hangs,
            BitFlip => self.bit_flips,
            StreamStall => self.stalls,
            SharedMemPressure => self.shmem_pressure,
            DeviceLoss => self.device_losses,
        }
    }

    /// Emits one `fastz_faults_total{class="…",kind="…"}` counter per
    /// fault kind (zero-count kinds included, so the exported series set
    /// is stable across runs).
    pub fn record_into<S: MetricsSink>(&self, sink: &mut S, class: &str) {
        for kind in crate::fault::FaultKind::ALL {
            sink.counter_add(&names::fault(class, kind.name()), self.count(kind));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let a = WarpCounters {
            steps: 1,
            cells: 2,
            alu_ops: 3,
            divergent_steps: 4,
            global_read: 5,
            global_written: 6,
            shared_bytes: 7,
            shuffles: 8,
            scalar_ops: 9,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.steps, 2);
        assert_eq!(b.cells, 4);
        assert_eq!(b.global_bytes(), 22);
        assert_eq!(b.scalar_ops, 18);
    }

    #[test]
    fn operational_intensity() {
        let c = WarpCounters {
            alu_ops: 288,
            global_read: 12,
            global_written: 32,
            ..WarpCounters::default()
        };
        // §6's executor example: 288 ops per 44 bytes ≈ 6.5 ops/byte.
        assert!((c.operational_intensity() - 6.545).abs() < 0.01);
        let no_traffic = WarpCounters::default();
        assert!(no_traffic.operational_intensity().is_infinite());
    }

    #[test]
    fn fault_counters_record_and_merge() {
        use crate::fault::FaultKind;
        let mut f = FaultCounters::default();
        for kind in FaultKind::ALL {
            f.record(kind);
        }
        f.record(FaultKind::BitFlip);
        assert_eq!(f.bit_flips, 2);
        assert_eq!(f.total(), 6);
        let sum = f.plus(&f);
        assert_eq!(sum.total(), 12);
        assert_eq!(sum.device_losses, 2);
        let mut g = FaultCounters::default();
        g.merge(&f);
        assert_eq!(g, f);
    }

    #[test]
    fn kernel_counters_track_tasks() {
        let mut k = KernelCounters::default();
        k.add_task(&WarpCounters {
            cells: 10,
            ..Default::default()
        });
        k.add_task(&WarpCounters {
            cells: 20,
            ..Default::default()
        });
        assert_eq!(k.tasks, 2);
        assert_eq!(k.total.cells, 30);
        let mut k2 = KernelCounters::default();
        k2.merge(&k);
        assert_eq!(k2.tasks, 2);
    }
}
