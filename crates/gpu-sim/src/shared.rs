//! Shared-memory model: a capacity-checked per-block scratchpad.
//!
//! FastZ keeps two things in shared memory (paper §3.1.2-§3.1.3): the
//! 16×16 eager-traceback window, and cache-block-sized tiles that
//! aggregate executor traceback bytes before one coalesced global write.
//! The model enforces the capacity a real SM would and tracks the
//! high-water mark so occupancy can be computed from actual usage.

use crate::device::DeviceSpec;

/// A per-block shared-memory scratchpad.
#[derive(Clone, Debug)]
pub struct SharedMem {
    data: Vec<u8>,
    high_water: usize,
    capacity: usize,
}

impl SharedMem {
    /// Creates a scratchpad with `capacity` bytes.
    pub fn new(capacity: usize) -> SharedMem {
        SharedMem {
            data: Vec::new(),
            high_water: 0,
            capacity,
        }
    }

    /// Creates a scratchpad with the device's per-SM shared capacity.
    ///
    /// This is the only correct way to size block scratch for a modeled
    /// kernel: hardcoding a byte count silently under-reports the RTX
    /// 3080's 128 KiB and silently over-allocates on a smaller part.
    pub fn for_device(device: &DeviceSpec) -> SharedMem {
        SharedMem::new(device.shared_kib_per_sm * 1024)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest extent ever allocated.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Ensures at least `bytes` are addressable, zero-filling new space.
    ///
    /// # Panics
    /// Panics if the request exceeds capacity — the same failure mode as
    /// launching a CUDA kernel whose static shared allocation is too big.
    pub fn reserve(&mut self, bytes: usize) {
        assert!(
            bytes <= self.capacity,
            "shared memory request {bytes} B exceeds capacity {} B",
            self.capacity
        );
        if bytes > self.data.len() {
            self.data.resize(bytes, 0);
        }
        self.high_water = self.high_water.max(bytes);
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, offset: usize, value: u8) {
        self.reserve(offset + 1);
        self.data[offset] = value;
    }

    /// Reads one byte (0 if never written).
    #[inline]
    pub fn read_u8(&self, offset: usize) -> u8 {
        self.data.get(offset).copied().unwrap_or(0)
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        self.reserve(offset + 4);
        self.data[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&self, offset: usize) -> u32 {
        let mut b = [0u8; 4];
        for (k, slot) in b.iter_mut().enumerate() {
            *slot = self.read_u8(offset + k);
        }
        u32::from_le_bytes(b)
    }

    /// Clears contents (keeps capacity and the high-water mark).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut sm = SharedMem::new(1024);
        sm.write_u8(0, 0xAB);
        sm.write_u8(100, 7);
        assert_eq!(sm.read_u8(0), 0xAB);
        assert_eq!(sm.read_u8(100), 7);
        assert_eq!(sm.read_u8(500), 0);
        sm.write_u32(200, 0xDEADBEEF);
        assert_eq!(sm.read_u32(200), 0xDEADBEEF);
    }

    #[test]
    fn high_water_tracks_max_extent() {
        let mut sm = SharedMem::new(1024);
        sm.write_u8(511, 1);
        sm.write_u8(3, 1);
        assert_eq!(sm.high_water(), 512);
        sm.clear();
        assert_eq!(sm.high_water(), 512);
        assert_eq!(sm.read_u8(511), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn over_capacity_panics() {
        let mut sm = SharedMem::new(256);
        sm.write_u8(256, 1);
    }

    #[test]
    fn capacity_follows_the_device_spec() {
        // Regression: the pipeline used to hardcode 96 KiB; the modeled
        // RTX 3080 actually has 128 KiB per SM.
        let ampere = SharedMem::for_device(&DeviceSpec::rtx3080_ampere());
        assert_eq!(ampere.capacity(), 128 * 1024);
        let pascal = SharedMem::for_device(&DeviceSpec::titan_x_pascal());
        assert_eq!(pascal.capacity(), 96 * 1024);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn small_device_rejects_legacy_96kib_assumption() {
        // A hypothetical 48 KiB part must reject a reservation sized to
        // the old hardcoded 96 KiB assumption instead of silently
        // succeeding.
        let small = DeviceSpec {
            shared_kib_per_sm: 48,
            ..DeviceSpec::rtx3080_ampere()
        };
        let mut sm = SharedMem::for_device(&small);
        assert_eq!(sm.capacity(), 48 * 1024);
        sm.reserve(96 * 1024);
    }

    #[test]
    fn eager_traceback_window_fits() {
        // The paper's 16×16 eager-traceback window: 256 bytes, far under
        // any SM's shared capacity.
        let mut sm = SharedMem::new(96 * 1024);
        for i in 0..256 {
            sm.write_u8(i, i as u8);
        }
        assert_eq!(sm.high_water(), 256);
    }
}
