//! Shared-memory model: a capacity-checked per-block scratchpad.
//!
//! FastZ keeps two things in shared memory (paper §3.1.2-§3.1.3): the
//! 16×16 eager-traceback window, and cache-block-sized tiles that
//! aggregate executor traceback bytes before one coalesced global write.
//! The model enforces the capacity a real SM would and tracks the
//! high-water mark so occupancy can be computed from actual usage.

use crate::device::DeviceSpec;
use crate::sanitize::{SanitizeReport, Sanitizer, ShadowSanitizer};

/// A per-block shared-memory scratchpad.
///
/// An optional [`ShadowSanitizer`] can be attached; when absent (the
/// default), every access pays exactly one null check and nothing else,
/// and modeled GPU time is bit-identical either way — the sanitizer
/// never touches `WarpCounters`.
#[derive(Clone, Debug)]
pub struct SharedMem {
    data: Vec<u8>,
    high_water: usize,
    capacity: usize,
    sanitize: Option<Box<ShadowSanitizer>>,
}

impl SharedMem {
    /// Creates a scratchpad with `capacity` bytes.
    pub fn new(capacity: usize) -> SharedMem {
        SharedMem {
            data: Vec::new(),
            high_water: 0,
            capacity,
            sanitize: None,
        }
    }

    /// Creates a scratchpad with the device's per-SM shared capacity.
    ///
    /// This is the only correct way to size block scratch for a modeled
    /// kernel: hardcoding a byte count silently under-reports the RTX
    /// 3080's 128 KiB and silently over-allocates on a smaller part.
    pub fn for_device(device: &DeviceSpec) -> SharedMem {
        SharedMem::new(device.shared_kib_per_sm * 1024)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest extent ever allocated.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Ensures at least `bytes` are addressable, zero-filling new space.
    ///
    /// # Panics
    /// Panics if the request exceeds capacity — the same failure mode as
    /// launching a CUDA kernel whose static shared allocation is too big.
    pub fn reserve(&mut self, bytes: usize) {
        assert!(
            bytes <= self.capacity,
            "shared memory request {bytes} B exceeds capacity {} B",
            self.capacity
        );
        if bytes > self.data.len() {
            self.data.resize(bytes, 0);
        }
        self.high_water = self.high_water.max(bytes);
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, offset: usize, value: u8) {
        if let Some(s) = &self.sanitize {
            s.on_write(offset, 1);
        }
        self.reserve(offset + 1);
        self.data[offset] = value;
    }

    /// Reads one byte (0 if never written).
    #[inline]
    pub fn read_u8(&self, offset: usize) -> u8 {
        if let Some(s) = &self.sanitize {
            s.on_read(offset, 1, self.data.len());
        }
        self.data.get(offset).copied().unwrap_or(0)
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, offset: usize, value: u32) {
        if let Some(s) = &self.sanitize {
            s.on_write(offset, 4);
        }
        self.reserve(offset + 4);
        self.data[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a little-endian u32.
    ///
    /// Extent handling is explicit: a read fully inside the current
    /// reservation decodes the four stored bytes in one slice access; a
    /// read straddling or past the extent zero-extends the missing
    /// bytes. The zero-extension is the documented device model (shared
    /// memory is zero-filled at reservation), but it usually indicates
    /// a kernel bug — an attached sanitizer flags it as an
    /// out-of-reservation read.
    pub fn read_u32(&self, offset: usize) -> u32 {
        if let Some(s) = &self.sanitize {
            s.on_read(offset, 4, self.data.len());
        }
        match offset.checked_add(4) {
            Some(end) if end <= self.data.len() => {
                let mut b = [0u8; 4];
                b.copy_from_slice(&self.data[offset..end]);
                u32::from_le_bytes(b)
            }
            _ => {
                // Straddling / out-of-extent: decode what exists,
                // zero-extend the rest byte-by-byte.
                let mut b = [0u8; 4];
                for (k, slot) in b.iter_mut().enumerate() {
                    if let Some(&v) = offset.checked_add(k).and_then(|i| self.data.get(i)) {
                        *slot = v;
                    }
                }
                u32::from_le_bytes(b)
            }
        }
    }

    /// Clears contents (keeps capacity and the high-water mark).
    pub fn clear(&mut self) {
        if let Some(s) = &self.sanitize {
            s.on_clear();
        }
        self.data.clear();
    }

    /// Attaches a fresh [`ShadowSanitizer`]; subsequent accesses are
    /// checked. Replaces any previously attached sanitizer.
    pub fn attach_sanitizer(&mut self) {
        self.sanitize = Some(Box::new(ShadowSanitizer::new()));
    }

    /// The attached sanitizer, if any.
    #[must_use]
    pub fn sanitizer(&self) -> Option<&ShadowSanitizer> {
        self.sanitize.as_deref()
    }

    /// Sets pipeline-phase / problem provenance on the attached
    /// sanitizer (no-op when none is attached).
    pub fn sanitize_context(&self, phase: &'static str, problem: u64) {
        if let Some(s) = &self.sanitize {
            s.set_context(phase, problem);
        }
    }

    /// Sets the kernel stage used as the racecheck accessor identity
    /// (no-op when no sanitizer is attached).
    pub fn sanitize_stage(&self, stage: &'static str) {
        if let Some(s) = &self.sanitize {
            s.set_stage(stage);
        }
    }

    /// Records a synchronization barrier between kernel stages: accesses
    /// on opposite sides of a barrier never race (no-op when no
    /// sanitizer is attached).
    pub fn sanitize_barrier(&self) {
        if let Some(s) = &self.sanitize {
            s.barrier();
        }
    }

    /// Marks a warp-step boundary so the bank-conflict model groups the
    /// accesses of one step together (no-op when no sanitizer is
    /// attached).
    #[inline]
    pub fn sanitize_tick(&self) {
        if let Some(s) = &self.sanitize {
            s.tick();
        }
    }

    /// Drains the attached sanitizer's accumulated report, or `None`
    /// when no sanitizer is attached.
    pub fn take_sanitize_report(&mut self) -> Option<SanitizeReport> {
        self.sanitize.as_ref().map(|s| s.take_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut sm = SharedMem::new(1024);
        sm.write_u8(0, 0xAB);
        sm.write_u8(100, 7);
        assert_eq!(sm.read_u8(0), 0xAB);
        assert_eq!(sm.read_u8(100), 7);
        assert_eq!(sm.read_u8(500), 0);
        sm.write_u32(200, 0xDEADBEEF);
        assert_eq!(sm.read_u32(200), 0xDEADBEEF);
    }

    #[test]
    fn high_water_tracks_max_extent() {
        let mut sm = SharedMem::new(1024);
        sm.write_u8(511, 1);
        sm.write_u8(3, 1);
        assert_eq!(sm.high_water(), 512);
        sm.clear();
        assert_eq!(sm.high_water(), 512);
        assert_eq!(sm.read_u8(511), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn over_capacity_panics() {
        let mut sm = SharedMem::new(256);
        sm.write_u8(256, 1);
    }

    #[test]
    fn capacity_follows_the_device_spec() {
        // Regression: the pipeline used to hardcode 96 KiB; the modeled
        // RTX 3080 actually has 128 KiB per SM.
        let ampere = SharedMem::for_device(&DeviceSpec::rtx3080_ampere());
        assert_eq!(ampere.capacity(), 128 * 1024);
        let pascal = SharedMem::for_device(&DeviceSpec::titan_x_pascal());
        assert_eq!(pascal.capacity(), 96 * 1024);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn small_device_rejects_legacy_96kib_assumption() {
        // A hypothetical 48 KiB part must reject a reservation sized to
        // the old hardcoded 96 KiB assumption instead of silently
        // succeeding.
        let small = DeviceSpec {
            shared_kib_per_sm: 48,
            ..DeviceSpec::rtx3080_ampere()
        };
        let mut sm = SharedMem::for_device(&small);
        assert_eq!(sm.capacity(), 48 * 1024);
        sm.reserve(96 * 1024);
    }

    #[test]
    fn read_u32_extent_handling_is_explicit() {
        // Regression: read_u32 used to compose bytes via the
        // OOB-tolerant read_u8, silently zero-extending straddles with
        // no way to tell a partial read from stored zeros.
        let mut sm = SharedMem::new(1024);
        sm.write_u8(0, 0x11);
        sm.write_u8(1, 0x22);
        // Extent is 2: bytes 2..4 zero-extend.
        assert_eq!(sm.read_u32(0), 0x0000_2211);
        // Fully out-of-extent read is all zeros.
        assert_eq!(sm.read_u32(512), 0);
        // Fully in-extent read takes the slice fast path.
        sm.write_u32(4, 0xDEAD_BEEF);
        assert_eq!(sm.read_u32(4), 0xDEAD_BEEF);
        // Near-usize::MAX offsets must not overflow the extent check.
        assert_eq!(sm.read_u32(usize::MAX - 2), 0);
    }

    #[test]
    fn sanitizer_flags_straddling_u32_read() {
        use crate::sanitize::FindingKind;
        let mut sm = SharedMem::new(1024);
        sm.attach_sanitizer();
        sm.sanitize_context("inspector", 3);
        sm.write_u8(0, 0x11);
        sm.write_u8(1, 0x22);
        assert_eq!(sm.read_u32(0), 0x0000_2211);
        let report = sm.take_sanitize_report().expect("sanitizer attached");
        assert_eq!(report.count(FindingKind::OobRead), 1);
        let f = &report.findings[0];
        assert_eq!(f.offset, 0);
        assert_eq!(f.phase, "inspector");
        assert_eq!(f.problem, 3);
    }

    #[test]
    fn unattached_scratchpad_reports_nothing() {
        let mut sm = SharedMem::new(1024);
        sm.write_u8(0, 1);
        let _ = sm.read_u8(500);
        assert!(sm.take_sanitize_report().is_none());
        assert!(sm.sanitizer().is_none());
    }

    #[test]
    fn cloned_scratchpad_starts_with_a_fresh_sanitizer() {
        let mut sm = SharedMem::new(1024);
        sm.attach_sanitizer();
        let _ = sm.read_u8(7); // uninit read recorded on the original
        let mut copy = sm.clone();
        let report = copy.take_sanitize_report().expect("attachment is cloned");
        assert!(
            report.is_clean(),
            "shadow history must not leak into clones"
        );
    }

    #[test]
    fn eager_traceback_window_fits() {
        // The paper's 16×16 eager-traceback window: 256 bytes, far under
        // any SM's shared capacity.
        let mut sm = SharedMem::new(96 * 1024);
        for i in 0..256 {
            sm.write_u8(i, i as u8);
        }
        assert_eq!(sm.high_water(), 256);
    }
}
