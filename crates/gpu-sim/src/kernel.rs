//! Kernel timing: block scheduling, per-SM issue throughput, and the
//! device-wide bandwidth ceiling.
//!
//! A kernel is a bag of warp tasks (FastZ: one seed-extension side per
//! warp). The timing engine list-schedules tasks onto SMs in submission
//! order (modeling the hardware block scheduler's work-conserving FIFO),
//! clocks each SM at its warp-issue rate, floors every SM at its longest
//! single task (a warp cannot run faster than one instruction per cycle),
//! and finally takes the maximum of compute and DRAM time (roofline).
//! The kernel completes only when the slowest SM finishes — the
//! bulk-synchronous barrier whose load-imbalance consequences motivate
//! FastZ's length binning (paper §3.3).

use crate::device::DeviceSpec;
use crate::occupancy::{occupancy, BlockResources};

/// One warp's worth of work, in device-neutral units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarpTask {
    /// Warp-cycles of issue work (already divergence-derated).
    pub cycles: f64,
    /// DRAM bytes moved (reads + writes that miss on-chip storage).
    pub dram_bytes: f64,
}

impl WarpTask {
    /// A task with no work (useful as a unit element).
    pub const EMPTY: WarpTask = WarpTask {
        cycles: 0.0,
        dram_bytes: 0.0,
    };
}

/// A kernel: named bag of warp tasks plus its per-block resources.
#[derive(Clone, Debug)]
pub struct KernelSpec {
    /// Display name (phase attribution).
    pub name: String,
    /// Warp tasks in submission order.
    pub tasks: Vec<WarpTask>,
    /// Per-block resource demands (occupancy input).
    pub resources: BlockResources,
}

impl KernelSpec {
    /// Creates a kernel from tasks with the given resources.
    pub fn new(name: impl Into<String>, tasks: Vec<WarpTask>, resources: BlockResources) -> Self {
        KernelSpec {
            name: name.into(),
            tasks,
            resources,
        }
    }

    /// Total warp-cycles over all tasks.
    pub fn total_cycles(&self) -> f64 {
        self.tasks.iter().map(|t| t.cycles).sum()
    }

    /// Total DRAM bytes over all tasks.
    pub fn total_dram_bytes(&self) -> f64 {
        self.tasks.iter().map(|t| t.dram_bytes).sum()
    }

    /// The longest single task's cycles.
    pub fn longest_task_cycles(&self) -> f64 {
        self.tasks.iter().map(|t| t.cycles).fold(0.0, f64::max)
    }
}

/// Timing breakdown of one kernel execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelTiming {
    /// Compute time of the slowest SM in seconds.
    pub compute_s: f64,
    /// Device DRAM time in seconds.
    pub memory_s: f64,
    /// Launch overhead in seconds.
    pub launch_s: f64,
    /// End-to-end kernel time (max(compute, memory) + launch).
    pub time_s: f64,
    /// The single longest warp task's serial time in seconds.
    pub longest_task_s: f64,
    /// Load-imbalance factor: slowest-SM compute ÷ mean-SM compute
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Per-SM load accumulator used by the list scheduler.
#[derive(Clone, Copy, Default)]
struct SmLoad {
    cycles: f64,
    longest: f64,
}

/// Times one kernel on `device`.
pub fn time_kernel(device: &DeviceSpec, spec: &KernelSpec) -> KernelTiming {
    let occ = occupancy(device, &spec.resources);
    assert!(
        occ.warps_per_sm > 0,
        "kernel {} cannot be scheduled: zero occupancy",
        spec.name
    );
    let clock_hz = device.clock_ghz * 1e9;
    if spec.tasks.is_empty() {
        return KernelTiming {
            launch_s: device.launch_overhead_s,
            time_s: device.launch_overhead_s,
            imbalance: 1.0,
            ..KernelTiming::default()
        };
    }

    // List-schedule tasks to the least-loaded SM in submission order.
    // `total_cmp` keeps the least-loaded selection total even if a NaN
    // task cost poisons an SM's accumulator (`partial_cmp().unwrap()`
    // used to panic mid-schedule on the first comparison against it).
    let mut sms = vec![SmLoad::default(); device.sm_count];
    for task in &spec.tasks {
        let (idx, _) = sms
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cycles.total_cmp(&b.1.cycles))
            .unwrap();
        sms[idx].cycles += task.cycles;
        sms[idx].longest = sms[idx].longest.max(task.cycles);
    }

    // An SM drains its queue at `warp_issue_per_sm` warp-instructions per
    // cycle (given enough resident warps to hide latency) but can never
    // finish before its longest single warp: a warp issues at most one
    // instruction per cycle.
    let issue = device.warp_issue_per_sm().min(occ.warps_per_sm as f64);
    let sm_time = |sm: &SmLoad| (sm.cycles / issue).max(sm.longest) / clock_hz;
    let compute_s = sms.iter().map(sm_time).fold(0.0, f64::max);
    let mean_s = sms.iter().map(sm_time).sum::<f64>() / device.sm_count as f64;

    let memory_s = spec.total_dram_bytes() / (device.dram_bw_gbps * 1e9);
    let longest_task_s = spec.longest_task_cycles() / clock_hz;
    let launch_s = device.launch_overhead_s;

    KernelTiming {
        compute_s,
        memory_s,
        launch_s,
        time_s: compute_s.max(memory_s) + launch_s,
        longest_task_s,
        imbalance: if mean_s > 0.0 {
            compute_s / mean_s
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3080_ampere()
    }

    fn res() -> BlockResources {
        BlockResources::fastz_inspector()
    }

    fn uniform(n: usize, cycles: f64, bytes: f64) -> Vec<WarpTask> {
        vec![
            WarpTask {
                cycles,
                dram_bytes: bytes
            };
            n
        ]
    }

    #[test]
    fn empty_kernel_costs_only_launch() {
        let t = time_kernel(&dev(), &KernelSpec::new("k", vec![], res()));
        assert_eq!(t.time_s, dev().launch_overhead_s);
        assert_eq!(t.compute_s, 0.0);
    }

    #[test]
    fn uniform_tasks_balance_perfectly() {
        let tasks = uniform(68 * 64, 10_000.0, 0.0);
        let t = time_kernel(&dev(), &KernelSpec::new("k", tasks, res()));
        assert!(
            (t.imbalance - 1.0).abs() < 0.05,
            "imbalance {}",
            t.imbalance
        );
        assert!(t.compute_s > 0.0);
        assert_eq!(t.memory_s, 0.0);
    }

    #[test]
    fn one_giant_task_dominates_kernel_time() {
        // The unbinned-executor pathology: one 8K×8K task among thousands
        // of tiny ones holds the whole (bulk-synchronous) kernel hostage.
        let mut tasks = uniform(10_000, 1_000.0, 0.0);
        tasks.push(WarpTask {
            cycles: 5e8,
            dram_bytes: 0.0,
        });
        let t = time_kernel(&dev(), &KernelSpec::new("k", tasks, res()));
        assert!(t.compute_s >= t.longest_task_s);
        assert!(
            t.longest_task_s / t.compute_s > 0.95,
            "giant task should dominate: {} vs {}",
            t.longest_task_s,
            t.compute_s
        );
        assert!(t.imbalance > 5.0);
    }

    #[test]
    fn memory_bound_kernel_is_limited_by_bandwidth() {
        // Huge DRAM traffic, trivial compute.
        let tasks = uniform(1000, 100.0, 1e7);
        let t = time_kernel(&dev(), &KernelSpec::new("k", tasks, res()));
        assert!(t.memory_s > t.compute_s);
        assert!((t.time_s - t.launch_s - t.memory_s).abs() < 1e-12);
        // 1e10 bytes at 760 GB/s ≈ 13.2 ms.
        assert!((t.memory_s - 1e10 / 760e9).abs() < 1e-6);
    }

    #[test]
    fn more_sms_run_faster() {
        let tasks = uniform(10_000, 50_000.0, 0.0);
        let big = time_kernel(&dev(), &KernelSpec::new("k", tasks.clone(), res()));
        let small_dev = DeviceSpec {
            sm_count: 4,
            ..dev()
        };
        let small = time_kernel(&small_dev, &KernelSpec::new("k", tasks, res()));
        assert!(small.compute_s > big.compute_s * 10.0);
    }

    #[test]
    fn nan_task_cost_does_not_panic_the_scheduler() {
        // Regression (PR 6 float-ranking sweep): one NaN-cycle task (a
        // poisoned derating upstream) lands on some SM and turns its
        // accumulator NaN; every later least-loaded selection then
        // compared NaN and panicked through partial_cmp().unwrap().
        // total_cmp orders NaN above all real loads, so the remaining
        // tasks route to the healthy SMs and timing completes.
        let mut tasks = uniform(100, 1_000.0, 0.0);
        tasks[3] = WarpTask {
            cycles: f64::NAN,
            dram_bytes: 0.0,
        };
        let t = time_kernel(&dev(), &KernelSpec::new("k", tasks, res()));
        // The poisoned SM propagates NaN into the slowest-SM fold; the
        // invariant under test is completion, not a meaningful time.
        assert!(t.time_s.is_nan() || t.time_s > 0.0);
    }

    #[test]
    fn totals_and_longest_helpers() {
        let spec = KernelSpec::new(
            "k",
            vec![
                WarpTask {
                    cycles: 5.0,
                    dram_bytes: 3.0,
                },
                WarpTask {
                    cycles: 7.0,
                    dram_bytes: 1.0,
                },
            ],
            res(),
        );
        assert_eq!(spec.total_cycles(), 12.0);
        assert_eq!(spec.total_dram_bytes(), 4.0);
        assert_eq!(spec.longest_task_cycles(), 7.0);
    }
}
