//! Phase timeline: attribution of pipeline time to phases (Figure 8).

use fastz_obs::{names, MetricsSink};
use std::fmt;

/// One named phase and its duration.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseEntry {
    /// Phase name (e.g. `"inspector"`).
    pub name: String,
    /// Duration in seconds.
    pub seconds: f64,
}

/// An ordered list of phases with durations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseTimeline {
    entries: Vec<PhaseEntry>,
}

impl PhaseTimeline {
    /// Creates an empty timeline.
    pub fn new() -> PhaseTimeline {
        PhaseTimeline::default()
    }

    /// Adds (or extends) a phase. Repeated names accumulate.
    pub fn add(&mut self, name: &str, seconds: f64) {
        assert!(seconds >= 0.0, "negative phase duration");
        if let Some(e) = self.entries.iter_mut().find(|e| e.name == name) {
            e.seconds += seconds;
        } else {
            self.entries.push(PhaseEntry {
                name: name.to_string(),
                seconds,
            });
        }
    }

    /// All phases in insertion order.
    pub fn entries(&self) -> &[PhaseEntry] {
        &self.entries
    }

    /// Total time across phases.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|e| e.seconds).sum()
    }

    /// Fraction of total attributed to `name` (0.0 if absent or empty).
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map_or(0.0, |e| e.seconds / total)
    }

    /// Duration of `name` (0.0 if absent).
    pub fn seconds(&self, name: &str) -> f64 {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map_or(0.0, |e| e.seconds)
    }

    /// Emits one `fastz_phase_seconds{phase="…"}` gauge per entry.
    pub fn record_into<S: MetricsSink>(&self, sink: &mut S) {
        for e in &self.entries {
            sink.gauge_set(&names::phase(names::PHASE_SECONDS, &e.name), e.seconds);
        }
    }
}

impl fmt::Display for PhaseTimeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for e in &self.entries {
            let pct = if total > 0.0 {
                100.0 * e.seconds / total
            } else {
                0.0
            };
            writeln!(f, "{:<12} {:>12.6e} s  {:>5.1}%", e.name, e.seconds, pct)?;
        }
        writeln!(f, "{:<12} {:>12.6e} s", "total", total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate() {
        let mut t = PhaseTimeline::new();
        t.add("inspector", 1.0);
        t.add("executor", 0.5);
        t.add("inspector", 0.5);
        assert_eq!(t.seconds("inspector"), 1.5);
        assert_eq!(t.total(), 2.0);
        assert_eq!(t.fraction("inspector"), 0.75);
        assert_eq!(t.fraction("other"), 0.0);
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn empty_timeline_fractions_are_zero() {
        let t = PhaseTimeline::new();
        assert_eq!(t.total(), 0.0);
        assert_eq!(t.fraction("x"), 0.0);
    }

    #[test]
    fn display_renders_percentages() {
        let mut t = PhaseTimeline::new();
        t.add("a", 3.0);
        t.add("b", 1.0);
        let s = format!("{t}");
        assert!(s.contains("75.0%"));
        assert!(s.contains("25.0%"));
        assert!(s.contains("total"));
    }

    #[test]
    #[should_panic]
    fn negative_duration_rejected() {
        PhaseTimeline::new().add("x", -1.0);
    }
}
