//! Instruction-mix accounting for the wavefront DP step.
//!
//! The paper's §6 analysis prices a DP cell at 9 ALU operations, derated
//! ×2.56 for SIMD divergence (≈23 instructions). A real kernel issues
//! more than the recurrence arithmetic; this module makes the full mix
//! explicit, and the derived per-step instruction count is what
//! `fastz_core::cost` multiplies (via
//! [`crate::model::CYCLES_PER_STEP`] × `STEP_OVERHEAD_FACTOR`). Keeping
//! the breakdown in code (with tests tying it to the model constants)
//! documents where the calibration lives.

use crate::model::{DIVERGENCE_DERATE, OPS_PER_CELL};

/// Instruction classes of the inner wavefront step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer add/max of the Gotoh recurrences.
    RecurrenceAlu,
    /// Warp register exchange (`__shfl_up_sync`).
    Shuffle,
    /// Address arithmetic for spill/traceback/sequence accesses.
    Address,
    /// Predicate evaluation and selects for the y-drop test and lane
    /// masking.
    Predicate,
    /// Traceback byte packing (shifts/ors).
    Pack,
    /// Loop control (counter, compare, branch).
    Control,
}

/// One entry of the per-step instruction mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixEntry {
    /// Instruction class.
    pub class: InstrClass,
    /// Instructions of this class issued per wavefront step (post-
    /// divergence-derating for the recurrence arithmetic).
    pub per_step: f64,
}

/// The modeled per-step instruction mix of the FastZ inspector/executor
/// inner loop.
///
/// * recurrences: the paper's 9 ops expand to ≈23 under divergence;
/// * 3 shuffles feed the left-neighbour dependencies;
/// * the remainder covers addressing, predicates, packing and loop
///   control — in total ×4 the recurrence cost, the calibrated
///   `STEP_OVERHEAD_FACTOR` in `fastz_core::cost`.
pub fn step_mix() -> Vec<MixEntry> {
    vec![
        MixEntry {
            class: InstrClass::RecurrenceAlu,
            per_step: OPS_PER_CELL as f64 * DIVERGENCE_DERATE, // ≈23
        },
        MixEntry {
            class: InstrClass::Shuffle,
            per_step: 9.0, // 3 shuffles ≈ 3 instr each (setup + exec)
        },
        MixEntry {
            class: InstrClass::Address,
            per_step: 22.0,
        },
        MixEntry {
            class: InstrClass::Predicate,
            per_step: 18.0,
        },
        MixEntry {
            class: InstrClass::Pack,
            per_step: 8.0,
        },
        MixEntry {
            class: InstrClass::Control,
            per_step: 12.0,
        },
    ]
}

/// Total issued instructions per wavefront step under the mix.
pub fn instructions_per_step() -> f64 {
    step_mix().iter().map(|e| e.per_step).sum()
}

/// The overhead factor the mix implies relative to the recurrence-only
/// count (matches `fastz_core::cost::STEP_OVERHEAD_FACTOR` = 4).
pub fn overhead_factor() -> f64 {
    instructions_per_step() / (OPS_PER_CELL as f64 * DIVERGENCE_DERATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recurrence_entry_matches_paper_derivation() {
        let rec = step_mix()
            .into_iter()
            .find(|e| e.class == InstrClass::RecurrenceAlu)
            .unwrap();
        assert!((rec.per_step - 23.04).abs() < 0.1);
        assert!((rec.per_step - crate::model::CYCLES_PER_STEP).abs() < 0.1);
    }

    #[test]
    fn mix_implies_the_calibrated_overhead_factor() {
        // fastz_core::cost::STEP_OVERHEAD_FACTOR = 4.0; the explicit mix
        // must stay consistent with it.
        assert!(
            (overhead_factor() - 4.0).abs() < 0.01,
            "{}",
            overhead_factor()
        );
    }

    #[test]
    fn total_instructions_per_step() {
        assert!((instructions_per_step() - 92.0).abs() < 0.2);
    }

    #[test]
    fn classes_are_distinct() {
        let mix = step_mix();
        let mut classes: Vec<_> = mix.iter().map(|e| e.class).collect();
        classes.sort_by_key(|c| format!("{c:?}"));
        classes.dedup();
        assert_eq!(classes.len(), mix.len());
    }
}
