//! Deterministic fault injection for the GPU simulator.
//!
//! A production whole-genome-alignment service runs millions of seed
//! extensions across multi-GPU fleets and must survive the failures the
//! paper's evaluation hardware quietly assumes away: hung kernels,
//! transient memory corruption, stream stalls, shared-memory capacity
//! pressure, and whole-device loss. The simulator is the ideal place to
//! inject those failures *deterministically*: a [`FaultPlan`] is a pure
//! function of `(seed, kind, site, attempt)`, so a fault schedule is
//! reproducible across runs, host thread counts, and machines — and the
//! conformance oracle can assert that the resilient dispatcher's final
//! alignments are bit-identical to a fault-free run under any schedule.
//!
//! Two injection levels:
//!
//! * **Timing-level** ([`time_kernel_resilient`], and
//!   `stream::time_stream_pipeline_resilient`): hangs, stream stalls, and
//!   shared-memory pressure perturb *modeled time only* — a hung kernel
//!   costs its watchdog deadline plus a backoff before the relaunch
//!   succeeds; a stall adds a fixed latency; capacity pressure reruns the
//!   kernel at degraded occupancy.
//! * **Functional-level** (consumed by `fastz-core`'s resilient
//!   dispatcher): transient score-cell bit-flips corrupt one extension
//!   attempt's result, which ECC detects and the dispatcher discards and
//!   retries; device loss removes a device mid-run and its unfinished
//!   anchor partition is re-dispatched to survivors.
//!
//! Convergence guarantee: a plan never fires the same fault kind at the
//! same site more than [`FaultPlan::max_consecutive`] attempts in a row,
//! so any dispatcher with a retry budget above that bound terminates with
//! the fault-free result.

use crate::counters::FaultCounters;
use crate::device::DeviceSpec;
use crate::kernel::{time_kernel, KernelSpec, KernelTiming};

/// The failure modes the simulator can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The kernel never completes; the watchdog fires at its deadline and
    /// the kernel is relaunched after a backoff.
    KernelHang,
    /// A transient single-bit flip in a score cell (ECC-detectable). The
    /// attempt's result is corrupt and must be discarded and retried.
    BitFlip,
    /// The stream stops making progress for a bounded interval (driver
    /// hiccup, contention); absorbed as added latency.
    StreamStall,
    /// Shared-memory capacity pressure: the kernel runs at degraded
    /// occupancy (modeled as a slowed rerun); absorbed without retry.
    SharedMemPressure,
    /// The whole device is lost (falls off the bus). Its unfinished work
    /// must be re-dispatched to surviving devices.
    DeviceLoss,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::KernelHang,
        FaultKind::BitFlip,
        FaultKind::StreamStall,
        FaultKind::SharedMemPressure,
        FaultKind::DeviceLoss,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::KernelHang => "kernel-hang",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::StreamStall => "stream-stall",
            FaultKind::SharedMemPressure => "shmem-pressure",
            FaultKind::DeviceLoss => "device-loss",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultKind::KernelHang => 0x9e37_79b9_7f4a_7c15,
            FaultKind::BitFlip => 0xbf58_476d_1ce4_e5b9,
            FaultKind::StreamStall => 0x94d0_49bb_1331_11eb,
            FaultKind::SharedMemPressure => 0x2545_f491_4f6c_dd1d,
            FaultKind::DeviceLoss => 0xd6e8_feb8_6659_fd93,
        }
    }
}

/// Where a fault may strike: a (device, scope, unit) coordinate. The
/// scope distinguishes injection domains (inspector kernels, executor
/// kernels, functional problems, device lifecycle); the unit is the
/// kernel or problem index within the scope. Sites are position-keyed —
/// never call-order-keyed — so injection decisions are independent of
/// host thread interleaving.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// Device ordinal (0 for single-GPU runs).
    pub device: u32,
    /// Injection domain (see [`scope`]).
    pub scope: u32,
    /// Kernel / problem / chunk index within the scope.
    pub unit: u64,
}

/// Well-known [`FaultSite::scope`] values used by the dispatcher.
pub mod scope {
    /// Inspector kernel timing.
    pub const INSPECTOR_KERNEL: u32 = 0;
    /// Executor kernel timing.
    pub const EXECUTOR_KERNEL: u32 = 1;
    /// One functional extension problem (unit = problem index).
    pub const PROBLEM: u32 = 2;
    /// Device lifecycle (unit = dispatch chunk index).
    pub const DEVICE: u32 = 3;
    /// Service-level events in `fastz-serve` (unit = request id):
    /// device loss during a request's dispatch, merged-launch hangs.
    pub const SERVICE: u32 = 4;
}

impl FaultSite {
    /// A site on `device` in `scope` at `unit`.
    pub fn new(device: u32, scope: u32, unit: u64) -> FaultSite {
        FaultSite {
            device,
            scope,
            unit,
        }
    }
}

/// Per-kind injection probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Kernel hang probability per kernel launch.
    pub hang: f64,
    /// Bit-flip probability per extension attempt.
    pub bit_flip: f64,
    /// Stream-stall probability per kernel.
    pub stall: f64,
    /// Shared-memory pressure probability per kernel.
    pub shmem_pressure: f64,
    /// Device-loss probability per dispatch chunk.
    pub device_loss: f64,
}

impl FaultRates {
    /// No faults.
    pub const NONE: FaultRates = FaultRates {
        hang: 0.0,
        bit_flip: 0.0,
        stall: 0.0,
        shmem_pressure: 0.0,
        device_loss: 0.0,
    };

    /// A drill exercising every fault class aggressively (the
    /// conformance `--fault-seed` schedule).
    pub const DRILL: FaultRates = FaultRates {
        hang: 0.10,
        bit_flip: 0.05,
        stall: 0.10,
        shmem_pressure: 0.10,
        device_loss: 0.25,
    };

    fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::KernelHang => self.hang,
            FaultKind::BitFlip => self.bit_flip,
            FaultKind::StreamStall => self.stall,
            FaultKind::SharedMemPressure => self.shmem_pressure,
            FaultKind::DeviceLoss => self.device_loss,
        }
    }
}

/// A seeded, deterministic fault schedule.
///
/// `fires(kind, site, attempt)` is a pure function of the plan's seed
/// and its arguments: the same plan injects the same faults at the same
/// sites on every run, regardless of thread count or call order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every decision hashes it with the site coordinates.
    pub seed: u64,
    /// Per-kind injection probabilities.
    pub rates: FaultRates,
    /// Upper bound on consecutive faults of one kind at one site: from
    /// this attempt number on, `fires` always returns `false`, so any
    /// retry budget `> max_consecutive` converges. (Device loss is
    /// permanent and ignores this bound — survivors absorb the work.)
    pub max_consecutive: u32,
}

impl FaultPlan {
    /// The empty plan: never fires. The dispatcher's fault-free fast
    /// path.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            rates: FaultRates::NONE,
            max_consecutive: 0,
        }
    }

    /// The standard drill plan for `seed`: every fault class enabled at
    /// [`FaultRates::DRILL`] rates, at most 2 consecutive faults per
    /// site.
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates::DRILL,
            max_consecutive: 2,
        }
    }

    /// This plan with different rates.
    pub fn with_rates(self, rates: FaultRates) -> FaultPlan {
        FaultPlan { rates, ..self }
    }

    /// This plan with a different consecutive-fault bound (adversarial
    /// plans raise it above the dispatcher's retry budget to force the
    /// fallback and skip rungs).
    pub fn with_max_consecutive(self, max_consecutive: u32) -> FaultPlan {
        FaultPlan {
            max_consecutive,
            ..self
        }
    }

    /// True when no fault kind can ever fire.
    pub fn is_none(&self) -> bool {
        self.rates == FaultRates::NONE
    }

    /// A per-request sub-plan for the alignment service: the same rates
    /// and convergence bound, reseeded deterministically from the
    /// request id. Each request's fault schedule is then a pure function
    /// of `(service seed, request id)` — independent of which other
    /// requests it was co-batched with, how full the queue was, or which
    /// worker ran it — which is what lets the chaos-soak test demand
    /// bit-identical per-request outcomes across `sim_threads` and
    /// dispatch modes.
    pub fn for_request(&self, request: u64) -> FaultPlan {
        FaultPlan {
            seed: mix(
                self.seed,
                0x7365_7276_655f_7265,
                request,
                request.rotate_left(29),
            ),
            ..*self
        }
    }

    /// Does `kind` strike `site` on its `attempt`-th try? Deterministic;
    /// attempts at or beyond `max_consecutive` never fault (except
    /// permanent device loss, which is attempt-independent).
    pub fn fires(&self, kind: FaultKind, site: FaultSite, attempt: u32) -> bool {
        let rate = self.rates.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let permanent = kind == FaultKind::DeviceLoss;
        if !permanent && attempt >= self.max_consecutive {
            return false;
        }
        // Device loss is decided once per site; retrying cannot revive
        // the device.
        let attempt = if permanent { 0 } else { attempt };
        let h = mix(
            self.seed ^ kind.salt(),
            ((site.device as u64) << 32) | site.scope as u64,
            site.unit,
            attempt as u64,
        );
        (h as f64 / u64::MAX as f64) < rate
    }

    /// Deterministic auxiliary value for a fault at `site` (e.g. which
    /// bit a [`FaultKind::BitFlip`] flips, or where in a dispatch chunk
    /// a device dies), uniform in `0..bound`.
    pub fn aux(&self, kind: FaultKind, site: FaultSite, bound: u64) -> u64 {
        let h = mix(
            self.seed ^ kind.salt().rotate_left(17),
            ((site.device as u64) << 32) | site.scope as u64,
            site.unit,
            0xa5a5,
        );
        if bound == 0 {
            0
        } else {
            h % bound
        }
    }
}

/// SplitMix64-style avalanche over the site coordinates.
fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.rotate_left(21))
        .wrapping_add(c.wrapping_mul(0xff51_afd7_ed55_8ccd))
        .wrapping_add(d.rotate_left(43));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Watchdog and retry policy: how the dispatcher detects and prices
/// fault recovery in modeled time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogPolicy {
    /// Deadline = `deadline_factor` × the kernel's expected time +
    /// `deadline_floor_s`. Expected time grows with the kernel's bin
    /// size (longer bins ⇒ longer tasks ⇒ longer deadline), so small
    /// bins detect hangs fast while 8K-extent bins are not killed
    /// spuriously.
    pub deadline_factor: f64,
    /// Deadline floor (launch latency noise).
    pub deadline_floor_s: f64,
    /// First relaunch backoff; doubles every consecutive fault.
    pub backoff_base_s: f64,
    /// Backoff ceiling: [`WatchdogPolicy::backoff_s`] clamps the
    /// exponential here, so total backoff grows linearly (never
    /// exponentially) in the attempt count and a single wait is bounded
    /// regardless of how adversarial the fault plan is.
    pub backoff_cap_s: f64,
    /// Latency absorbed per stream stall.
    pub stall_penalty_s: f64,
}

impl Default for WatchdogPolicy {
    fn default() -> WatchdogPolicy {
        WatchdogPolicy {
            deadline_factor: 4.0,
            deadline_floor_s: 1e-3,
            backoff_base_s: 1e-3,
            backoff_cap_s: 0.25,
            stall_penalty_s: 2e-3,
        }
    }
}

impl WatchdogPolicy {
    /// The watchdog deadline for a kernel whose fault-free expected time
    /// is `expected_s`.
    pub fn deadline_s(&self, expected_s: f64) -> f64 {
        self.deadline_factor * expected_s + self.deadline_floor_s
    }

    /// Exponential backoff before relaunch `attempt` (0-based), clamped
    /// to [`WatchdogPolicy::backoff_cap_s`]. The exponent itself is
    /// clamped at 2³¹ first, so overflow-adjacent attempt counts
    /// (`u32::MAX`) cannot overflow the multiplier into `inf`/`NaN`
    /// before the cap applies.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        (self.backoff_base_s * 2f64.powi(attempt.min(31) as i32)).min(self.backoff_cap_s)
    }
}

/// Outcome of timing one kernel under a fault plan.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilientKernelTiming {
    /// Fault-free timing of the successful launch.
    pub base: KernelTiming,
    /// Modeled time added by fault handling (hang deadlines, backoffs,
    /// stall latency, degraded-occupancy reruns).
    pub overhead_s: f64,
    /// Backoff component of the overhead.
    pub backoff_s: f64,
    /// Faults injected at this kernel's site.
    pub faults: FaultCounters,
    /// Relaunches forced by hangs.
    pub retries: u64,
}

/// Times `spec` on `device` under `plan`: the kernel is launched until a
/// launch completes without hanging (each hang costs the watchdog
/// deadline plus an exponential backoff), then stream stalls and
/// shared-memory pressure are absorbed as latency.
pub fn time_kernel_resilient(
    device: &DeviceSpec,
    spec: &KernelSpec,
    plan: &FaultPlan,
    site: FaultSite,
    watchdog: &WatchdogPolicy,
) -> ResilientKernelTiming {
    let base = time_kernel(device, spec);
    let mut out = ResilientKernelTiming {
        base,
        ..ResilientKernelTiming::default()
    };
    if plan.is_none() {
        return out;
    }
    let deadline = watchdog.deadline_s(base.time_s);
    let mut attempt = 0u32;
    // `max_consecutive` bounds the loop; the explicit cap is a backstop
    // against adversarial plans.
    while attempt < plan.max_consecutive.min(64) && plan.fires(FaultKind::KernelHang, site, attempt)
    {
        out.faults.record(FaultKind::KernelHang);
        out.retries += 1;
        let backoff = watchdog.backoff_s(attempt);
        out.backoff_s += backoff;
        out.overhead_s += deadline + backoff;
        attempt += 1;
    }
    if plan.fires(FaultKind::StreamStall, site, 0) {
        out.faults.record(FaultKind::StreamStall);
        out.overhead_s += watchdog.stall_penalty_s;
    }
    if plan.fires(FaultKind::SharedMemPressure, site, 0) {
        out.faults.record(FaultKind::SharedMemPressure);
        // Degraded occupancy: the launch limps through at roughly half
        // throughput, i.e. one extra base compute time.
        out.overhead_s += base.time_s - base.launch_s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::BlockResources;
    use crate::WarpTask;

    fn site(unit: u64) -> FaultSite {
        FaultSite::new(0, scope::INSPECTOR_KERNEL, unit)
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        let c = FaultPlan::from_seed(8);
        let mut diverged = false;
        for unit in 0..512 {
            for kind in FaultKind::ALL {
                assert_eq!(
                    a.fires(kind, site(unit), 0),
                    b.fires(kind, site(unit), 0),
                    "same seed must agree"
                );
                if a.fires(kind, site(unit), 0) != c.fires(kind, site(unit), 0) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds never diverged in 512 sites");
    }

    #[test]
    fn rates_bound_injection_frequency() {
        let plan = FaultPlan::from_seed(42);
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&u| plan.fires(FaultKind::BitFlip, site(u), 0))
            .count() as f64;
        let freq = hits / n as f64;
        assert!(
            (freq - plan.rates.bit_flip).abs() < 0.01,
            "empirical bit-flip rate {freq} far from {}",
            plan.rates.bit_flip
        );
        let none = FaultPlan::none();
        assert!((0..n).all(|u| FaultKind::ALL.iter().all(|&k| !none.fires(k, site(u), 0))));
    }

    #[test]
    fn max_consecutive_guarantees_convergence() {
        let plan = FaultPlan {
            rates: FaultRates {
                hang: 1.0,
                bit_flip: 1.0,
                ..FaultRates::NONE
            },
            ..FaultPlan::from_seed(3)
        };
        for unit in 0..64 {
            assert!(plan.fires(FaultKind::KernelHang, site(unit), 0));
            assert!(plan.fires(FaultKind::KernelHang, site(unit), 1));
            assert!(
                !plan.fires(FaultKind::KernelHang, site(unit), 2),
                "attempt at max_consecutive must succeed"
            );
        }
    }

    #[test]
    fn device_loss_is_permanent() {
        let plan = FaultPlan {
            rates: FaultRates {
                device_loss: 1.0,
                ..FaultRates::NONE
            },
            ..FaultPlan::from_seed(5)
        };
        let s = FaultSite::new(1, scope::DEVICE, 0);
        for attempt in 0..8 {
            assert!(
                plan.fires(FaultKind::DeviceLoss, s, attempt),
                "a lost device must stay lost across attempts"
            );
        }
    }

    #[test]
    fn watchdog_deadline_scales_with_kernel_size() {
        let w = WatchdogPolicy::default();
        assert!(w.deadline_s(1.0) > w.deadline_s(0.001));
        assert!(w.deadline_s(0.0) >= w.deadline_floor_s);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let w = WatchdogPolicy::default();
        assert_eq!(w.backoff_s(1), 2.0 * w.backoff_s(0));
        assert_eq!(w.backoff_s(2), 4.0 * w.backoff_s(0));
        assert!(w.backoff_s(30) <= w.backoff_cap_s);
        assert!(w.backoff_s(31) <= w.backoff_cap_s);
    }

    #[test]
    fn backoff_overflow_adjacent_attempts_stay_bounded() {
        let w = WatchdogPolicy::default();
        for attempt in [32, 64, 1 << 20, u32::MAX - 1, u32::MAX] {
            let b = w.backoff_s(attempt);
            assert!(b.is_finite(), "attempt {attempt} produced {b}");
            assert_eq!(b, w.backoff_cap_s, "huge attempts clamp to the ceiling");
        }
        // Attempt 0 with a zero base waits nothing, never NaN.
        let zero = WatchdogPolicy {
            backoff_base_s: 0.0,
            ..WatchdogPolicy::default()
        };
        assert_eq!(zero.backoff_s(0), 0.0);
        assert_eq!(zero.backoff_s(u32::MAX), 0.0);
    }

    #[test]
    fn per_request_plans_are_deterministic_and_independent() {
        let service = FaultPlan::from_seed(99);
        let a = service.for_request(3);
        assert_eq!(a, service.for_request(3), "same request ⇒ same plan");
        assert_ne!(a.seed, service.for_request(4).seed);
        assert_ne!(a.seed, service.seed);
        assert_eq!(a.rates, service.rates, "rates carry over");
        assert_eq!(a.max_consecutive, service.max_consecutive);
        // Schedules diverge across requests at shared sites.
        let diverged = (0..256).any(|u| {
            FaultKind::ALL.iter().any(|&k| {
                service.for_request(1).fires(k, site(u), 0)
                    != service.for_request(2).fires(k, site(u), 0)
            })
        });
        assert!(diverged, "request reseeding never diverged in 256 sites");
        // The empty plan stays empty for every request.
        assert!(FaultPlan::none().for_request(7).is_none());
    }

    #[test]
    fn resilient_kernel_charges_hang_overhead() {
        let dev = DeviceSpec::rtx3080_ampere();
        let spec = KernelSpec::new(
            "k",
            vec![
                WarpTask {
                    cycles: 10_000.0,
                    dram_bytes: 0.0
                };
                256
            ],
            BlockResources::fastz_inspector(),
        );
        let watchdog = WatchdogPolicy::default();
        // Force hangs everywhere.
        let plan = FaultPlan {
            rates: FaultRates {
                hang: 1.0,
                ..FaultRates::NONE
            },
            ..FaultPlan::from_seed(1)
        };
        let t = time_kernel_resilient(&dev, &spec, &plan, site(0), &watchdog);
        assert_eq!(t.retries, 2, "max_consecutive bounds hang retries");
        assert_eq!(t.faults.hangs, 2);
        let deadline = watchdog.deadline_s(t.base.time_s);
        let expect = 2.0 * deadline + watchdog.backoff_s(0) + watchdog.backoff_s(1);
        assert!((t.overhead_s - expect).abs() < 1e-12);
        // The empty plan is free.
        let free = time_kernel_resilient(&dev, &spec, &FaultPlan::none(), site(0), &watchdog);
        assert_eq!(free.overhead_s, 0.0);
        assert_eq!(free.faults.total(), 0);
        assert_eq!(free.base, t.base);
    }
}
