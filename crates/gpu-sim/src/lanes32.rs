//! 32-wide i32 vector operations: the host-SIMD realization of one
//! warp's lane-parallel arithmetic.
//!
//! The warp engine's interpreter executes the 32 lanes of a wavefront
//! step one at a time; this module provides the same step as whole-warp
//! vector operations so the engine's SIMD backend can keep the S/I/D
//! register files in 32-wide vectors. The mapping to the CUDA warp
//! primitives the kernels are written against:
//!
//! | CUDA / [`crate::warp`]        | lanes32                                |
//! |-------------------------------|----------------------------------------|
//! | `__shfl_up_sync(…, 1)`        | [`shift_up1`] — vector shift, edge-lane injection |
//! | `__ballot_sync(pred)`         | [`movemask`] over a comparison mask    |
//! | per-lane `max` / `select`     | [`max`], [`select`] on lane masks      |
//! | cyclic 3-row register buffer  | whole-vector assignment of `Lanes<i32>` |
//!
//! Two implementations sit behind one API:
//!
//! * the **portable fallback** (default): fixed-width `[i32; 32]` loops
//!   that LLVM autovectorizes on stable Rust — no nightly, no new
//!   dependencies;
//! * the **`nightly-simd` feature**: the same operations expressed with
//!   `std::simd` (`portable_simd`), for toolchains that have it.
//!
//! Both are bit-identical by construction (wrapping lane adds, `-1/0`
//! comparison masks, sign-bit movemask), which the unit tests pin
//! against the scalar [`crate::warp`] primitives. Comparison masks are
//! plain `Lanes<i32>` holding `-1` (true) or `0` (false) per lane, so
//! they compose with [`select`]/[`and`]/[`or`] as bitwise operations.

use crate::warp::{Lanes, WARP_SIZE};

/// Broadcasts one value to all 32 lanes (re-exported for symmetry with
/// the scalar warp module).
pub use crate::warp::splat;

#[cfg(feature = "nightly-simd")]
mod imp {
    use super::{Lanes, WARP_SIZE};
    use std::simd::cmp::{SimdOrd, SimdPartialOrd};
    use std::simd::{Select, Simd};

    type V = Simd<i32, WARP_SIZE>;

    /// A `-1`/`0` lane mask from a `std::simd` boolean mask.
    #[inline(always)]
    fn to_lanes(m: std::simd::Mask<i32, WARP_SIZE>) -> Lanes<i32> {
        m.select(V::splat(-1), V::splat(0)).to_array()
    }

    #[inline(always)]
    pub fn add(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        // `std::simd` lane addition wraps, matching the portable path.
        (V::from_array(*a) + V::from_array(*b)).to_array()
    }

    #[inline(always)]
    pub fn max(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        V::from_array(*a).simd_max(V::from_array(*b)).to_array()
    }

    #[inline(always)]
    pub fn ge(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        to_lanes(V::from_array(*a).simd_ge(V::from_array(*b)))
    }

    #[inline(always)]
    pub fn gt(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        to_lanes(V::from_array(*a).simd_gt(V::from_array(*b)))
    }

    #[inline(always)]
    pub fn lt(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        to_lanes(V::from_array(*a).simd_lt(V::from_array(*b)))
    }

    #[inline(always)]
    pub fn and(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        (V::from_array(*a) & V::from_array(*b)).to_array()
    }

    #[inline(always)]
    pub fn or(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        (V::from_array(*a) | V::from_array(*b)).to_array()
    }

    #[inline(always)]
    pub fn select(m: &Lanes<i32>, a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let m = V::from_array(*m);
        ((V::from_array(*a) & m) | (V::from_array(*b) & !m)).to_array()
    }
}

#[cfg(not(feature = "nightly-simd"))]
mod imp {
    use super::{Lanes, WARP_SIZE};

    #[inline(always)]
    pub fn add(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = a[l].wrapping_add(b[l]);
        }
        out
    }

    #[inline(always)]
    pub fn max(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = a[l].max(b[l]);
        }
        out
    }

    #[inline(always)]
    pub fn ge(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = -((a[l] >= b[l]) as i32);
        }
        out
    }

    #[inline(always)]
    pub fn gt(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = -((a[l] > b[l]) as i32);
        }
        out
    }

    #[inline(always)]
    pub fn lt(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = -((a[l] < b[l]) as i32);
        }
        out
    }

    #[inline(always)]
    pub fn and(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = a[l] & b[l];
        }
        out
    }

    #[inline(always)]
    pub fn or(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = a[l] | b[l];
        }
        out
    }

    #[inline(always)]
    pub fn select(m: &Lanes<i32>, a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
        let mut out = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            out[l] = (a[l] & m[l]) | (b[l] & !m[l]);
        }
        out
    }
}

/// Lane-wise wrapping addition.
#[inline(always)]
pub fn add(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::add(a, b)
}

/// Lane-wise maximum (the SIMT `max` instruction, whole warp at once).
#[inline(always)]
pub fn max(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::max(a, b)
}

/// Lane-wise `a >= b` as a `-1`/`0` mask.
#[inline(always)]
pub fn ge(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::ge(a, b)
}

/// Lane-wise `a > b` as a `-1`/`0` mask.
#[inline(always)]
pub fn gt(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::gt(a, b)
}

/// Lane-wise `a < b` as a `-1`/`0` mask.
#[inline(always)]
pub fn lt(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::lt(a, b)
}

/// Lane-wise bitwise AND (mask conjunction).
#[inline(always)]
pub fn and(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::and(a, b)
}

/// Lane-wise bitwise OR (mask disjunction / flag merge).
#[inline(always)]
pub fn or(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::or(a, b)
}

/// Lane-wise `m ? a : b` for a `-1`/`0` mask `m` (predicated move).
#[inline(always)]
pub fn select(m: &Lanes<i32>, a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    imp::select(m, a, b)
}

/// `__ballot_sync` over a comparison mask: bit `l` set iff lane `l`'s
/// mask is non-zero (the mask's sign bit, since masks are `-1`/`0`).
#[inline(always)]
pub fn movemask(m: &Lanes<i32>) -> u32 {
    let mut bits = 0u32;
    for (l, &v) in m.iter().enumerate() {
        bits |= ((v as u32) >> 31) << l;
    }
    bits
}

/// The `-1`/`0` mask of the contiguous lane range `lo..=hi` (empty when
/// `lo > hi`) — the active-lane predicate of one wavefront step.
#[inline(always)]
pub fn range_mask(lo: usize, hi: usize) -> Lanes<i32> {
    let mut out = [0i32; WARP_SIZE];
    if lo <= hi {
        for v in out.iter_mut().take(hi.min(WARP_SIZE - 1) + 1).skip(lo) {
            *v = -1;
        }
    }
    out
}

/// The lane-range mask as ballot bits: bits `lo..=hi` set, 0 when empty.
#[inline(always)]
pub fn range_bits(lo: usize, hi: usize) -> u32 {
    if lo > hi {
        return 0;
    }
    let hi = hi.min(WARP_SIZE - 1);
    let span = (hi - lo + 1) as u32;
    (u32::MAX >> (32 - span)) << lo
}

/// `__shfl_up_sync(…, delta = 1)` as one whole-vector shift with
/// edge-lane injection: lane `l` receives lane `l − 1`'s value and lane
/// 0 receives `fill`. Bit-identical to
/// [`crate::warp::shfl_up`]`(v, 1, fill)` — the warp engine's SIMD
/// backend uses this form, the interpreter uses the scalar model, and
/// the unit tests pin the two together.
#[inline(always)]
pub fn shift_up1(v: &Lanes<i32>, fill: i32) -> Lanes<i32> {
    let mut out = [fill; WARP_SIZE];
    out[1..].copy_from_slice(&v[..WARP_SIZE - 1]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::{ballot, lane_max, shfl_up};

    fn iota(k: i32) -> Lanes<i32> {
        let mut v = [0i32; WARP_SIZE];
        for (l, x) in v.iter_mut().enumerate() {
            *x = k.wrapping_add(l as i32);
        }
        v
    }

    #[test]
    fn add_wraps_like_scalar_wrapping_add() {
        let a = iota(i32::MAX - 16);
        let b = splat(10);
        let s = add(&a, &b);
        for l in 0..WARP_SIZE {
            assert_eq!(s[l], a[l].wrapping_add(10), "lane {l}");
        }
    }

    #[test]
    fn max_matches_the_warp_primitive() {
        let a = iota(-5);
        let mut b = splat(7);
        b[31] = -100;
        assert_eq!(max(&a, &b), lane_max(&a, &b));
    }

    #[test]
    fn comparison_masks_are_minus_one_or_zero() {
        let a = iota(0);
        let b = splat(10);
        let m = lt(&a, &b);
        for (l, &bit) in m.iter().enumerate() {
            assert_eq!(bit, if (l as i32) < 10 { -1 } else { 0 }, "lane {l}");
        }
        let m = ge(&a, &b);
        for (l, &bit) in m.iter().enumerate() {
            assert_eq!(bit, if l as i32 >= 10 { -1 } else { 0 }, "lane {l}");
        }
        let e = gt(&a, &a);
        assert_eq!(e, splat(0), "gt is strict");
        assert_eq!(ge(&a, &a), splat(-1), "ge accepts equality");
    }

    #[test]
    fn select_is_a_predicated_move() {
        let a = splat(111);
        let b = splat(-7);
        let mut m = splat(0);
        m[3] = -1;
        m[17] = -1;
        let s = select(&m, &a, &b);
        for (l, &got) in s.iter().enumerate() {
            let want = if l == 3 || l == 17 { 111 } else { -7 };
            assert_eq!(got, want, "lane {l}");
        }
    }

    #[test]
    fn movemask_matches_ballot_on_the_same_predicate() {
        let a = iota(0);
        let b = splat(20);
        let m = lt(&a, &b);
        let pred: Lanes<bool> = {
            let mut p = [false; WARP_SIZE];
            for l in 0..WARP_SIZE {
                p[l] = a[l] < b[l];
            }
            p
        };
        assert_eq!(movemask(&m), ballot(&pred));
        assert_eq!(movemask(&splat(0)), 0);
        assert_eq!(movemask(&splat(-1)), u32::MAX);
    }

    #[test]
    fn shift_up1_matches_shfl_up_delta_one() {
        let v = iota(100);
        assert_eq!(shift_up1(&v, -9), shfl_up(&v, 1, -9));
        assert_eq!(shift_up1(&splat(0), 5)[0], 5);
    }

    #[test]
    fn range_helpers_agree() {
        for (lo, hi) in [(0, 31), (0, 0), (5, 11), (31, 31), (3, 2)] {
            let m = range_mask(lo, hi);
            assert_eq!(movemask(&m), range_bits(lo, hi), "range {lo}..={hi}");
        }
        assert_eq!(range_bits(0, 31), u32::MAX);
        assert_eq!(range_bits(1, 0), 0);
    }
}
