//! Functional warp model: 32-lane lockstep values, shuffles, ballots.
//!
//! FastZ's kernels are written against these primitives exactly as the
//! CUDA implementation uses `__shfl_up_sync` / `__ballot_sync`; executing
//! them on the simulator produces bit-identical results to a lockstep
//! SIMT machine while the accounting layer (see [`crate::counters`])
//! records the work.

/// Lanes per warp (fixed at 32 on every NVIDIA architecture).
pub const WARP_SIZE: usize = 32;

/// A per-lane value vector.
pub type Lanes<T> = [T; WARP_SIZE];

/// Broadcasts one value to all lanes.
#[inline]
pub fn splat<T: Copy>(v: T) -> Lanes<T> {
    [v; WARP_SIZE]
}

/// `__shfl_up_sync`: lane `l` receives lane `l - delta`'s value; the low
/// `delta` lanes receive `fill` (CUDA leaves them unchanged; FastZ always
/// feeds a boundary value there, which `fill` models directly).
///
/// `delta == WARP_SIZE` is legal and yields all-`fill` (every lane's
/// source is below lane 0), matching the hardware, where a delta of
/// exactly `warpSize` shifts every source out of range.
///
/// # Panics
/// Panics with a shuffle-specific diagnostic if `delta > WARP_SIZE` —
/// on real hardware `__shfl_up_sync` silently produces undefined lane
/// values there, a bug class the simulator refuses to model quietly.
#[inline]
pub fn shfl_up<T: Copy>(v: &Lanes<T>, delta: usize, fill: T) -> Lanes<T> {
    assert!(
        delta <= WARP_SIZE,
        "shfl_up delta {delta} exceeds WARP_SIZE ({WARP_SIZE}): \
         __shfl_up_sync requires delta <= warpSize"
    );
    let mut out = splat(fill);
    out[delta..].copy_from_slice(&v[..WARP_SIZE - delta]);
    out
}

/// `__shfl_down_sync`: lane `l` receives lane `l + delta`'s value; the
/// high `delta` lanes receive `fill`.
///
/// `delta == WARP_SIZE` is legal and yields all-`fill`, matching the
/// hardware boundary case.
///
/// # Panics
/// Panics with a shuffle-specific diagnostic if `delta > WARP_SIZE` —
/// on real hardware `__shfl_down_sync` silently produces undefined lane
/// values there, a bug class the simulator refuses to model quietly.
#[inline]
pub fn shfl_down<T: Copy>(v: &Lanes<T>, delta: usize, fill: T) -> Lanes<T> {
    assert!(
        delta <= WARP_SIZE,
        "shfl_down delta {delta} exceeds WARP_SIZE ({WARP_SIZE}): \
         __shfl_down_sync requires delta <= warpSize"
    );
    let mut out = splat(fill);
    out[..WARP_SIZE - delta].copy_from_slice(&v[delta..]);
    out
}

/// `__ballot_sync`: bitmask of lanes whose predicate holds.
#[inline]
pub fn ballot(pred: &Lanes<bool>) -> u32 {
    let mut mask = 0u32;
    for (l, &p) in pred.iter().enumerate() {
        if p {
            mask |= 1 << l;
        }
    }
    mask
}

/// `__all_sync`: true if every lane's predicate holds.
#[inline]
pub fn warp_all(pred: &Lanes<bool>) -> bool {
    pred.iter().all(|&p| p)
}

/// `__any_sync`: true if any lane's predicate holds.
#[inline]
pub fn warp_any(pred: &Lanes<bool>) -> bool {
    pred.iter().any(|&p| p)
}

/// Warp-wide maximum reduction with its lane index (first lane wins
/// ties, matching a butterfly reduction with `>=` on the lower lane).
#[inline]
pub fn warp_max_with_lane(v: &Lanes<i32>) -> (i32, usize) {
    let mut best = v[0];
    let mut lane = 0usize;
    for (l, &x) in v.iter().enumerate().skip(1) {
        if x > best {
            best = x;
            lane = l;
        }
    }
    (best, lane)
}

/// Per-lane binary max (what the SIMT `max` instruction does).
#[inline]
pub fn lane_max(a: &Lanes<i32>, b: &Lanes<i32>) -> Lanes<i32> {
    let mut out = *a;
    for l in 0..WARP_SIZE {
        if b[l] > out[l] {
            out[l] = b[l];
        }
    }
    out
}

/// Number of distinct control paths a divergent branch forces the warp to
/// execute: 1 if all lanes agree, 2 otherwise (used by the accounting
/// layer to apply the paper's §6 derating empirically).
#[inline]
pub fn branch_paths(pred: &Lanes<bool>) -> u32 {
    let mask = ballot(pred);
    if mask == 0 || mask == u32::MAX {
        1
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota() -> Lanes<i32> {
        let mut v = splat(0);
        for (l, x) in v.iter_mut().enumerate() {
            *x = l as i32;
        }
        v
    }

    #[test]
    fn shfl_up_shifts_and_fills() {
        let v = iota();
        let s = shfl_up(&v, 1, -7);
        assert_eq!(s[0], -7);
        assert_eq!(s[1], 0);
        assert_eq!(s[31], 30);
        let s2 = shfl_up(&v, 2, 0);
        assert_eq!(s2[1], 0);
        assert_eq!(s2[2], 0);
        assert_eq!(s2[31], 29);
    }

    #[test]
    fn shfl_down_shifts_and_fills() {
        let v = iota();
        let s = shfl_down(&v, 3, 99);
        assert_eq!(s[0], 3);
        assert_eq!(s[28], 31);
        assert_eq!(s[29], 99);
        assert_eq!(s[31], 99);
    }

    #[test]
    fn shfl_full_warp_delta_is_legal_and_all_fill() {
        // delta == WARP_SIZE is the hardware boundary case: every
        // source lane is out of range, so every lane gets the fill.
        let v = iota();
        assert_eq!(shfl_up(&v, WARP_SIZE, -7), splat(-7));
        assert_eq!(shfl_down(&v, WARP_SIZE, 9), splat(9));
    }

    #[test]
    #[should_panic(expected = "shfl_up delta 33 exceeds WARP_SIZE (32)")]
    fn shfl_up_past_warp_size_is_diagnosed() {
        let v = iota();
        let _ = shfl_up(&v, WARP_SIZE + 1, 0);
    }

    #[test]
    #[should_panic(expected = "shfl_down delta 33 exceeds WARP_SIZE (32)")]
    fn shfl_down_past_warp_size_is_diagnosed() {
        let v = iota();
        let _ = shfl_down(&v, WARP_SIZE + 1, 0);
    }

    #[test]
    fn shfl_zero_delta_is_identity() {
        let v = iota();
        assert_eq!(shfl_up(&v, 0, 0), v);
        assert_eq!(shfl_down(&v, 0, 0), v);
    }

    #[test]
    fn ballot_and_votes() {
        let mut p = splat(false);
        assert_eq!(ballot(&p), 0);
        assert!(!warp_any(&p));
        p[0] = true;
        p[31] = true;
        assert_eq!(ballot(&p), 1 | (1 << 31));
        assert!(warp_any(&p));
        assert!(!warp_all(&p));
        let t = splat(true);
        assert_eq!(ballot(&t), u32::MAX);
        assert!(warp_all(&t));
    }

    #[test]
    fn warp_max_first_lane_wins_ties() {
        let mut v = splat(5);
        assert_eq!(warp_max_with_lane(&v), (5, 0));
        v[7] = 9;
        v[20] = 9;
        assert_eq!(warp_max_with_lane(&v), (9, 7));
    }

    #[test]
    fn lane_max_elementwise() {
        let a = iota();
        let mut b = splat(15);
        b[31] = 100;
        let m = lane_max(&a, &b);
        assert_eq!(m[0], 15);
        assert_eq!(m[20], 20);
        assert_eq!(m[31], 100);
    }

    #[test]
    fn branch_paths_counts_divergence() {
        let t = splat(true);
        let f = splat(false);
        let mut mixed = splat(false);
        mixed[3] = true;
        assert_eq!(branch_paths(&t), 1);
        assert_eq!(branch_paths(&f), 1);
        assert_eq!(branch_paths(&mixed), 2);
    }
}
