//! CUDA-stream pipeline timing (paper §3.4, "Streams").
//!
//! Kernels launched on one stream serialize: every kernel's
//! bulk-synchronous tail (its slowest SM/task) blocks the next launch.
//! Kernels on different streams overlap: the device block scheduler
//! back-fills idle SMs with blocks from other streams' kernels, so the
//! pipeline behaves like one pooled bag of tasks whose only hard floors
//! are total throughput (compute and bandwidth) and the single longest
//! task.

use crate::counters::FaultCounters;
use crate::device::DeviceSpec;
use crate::fault::{time_kernel_resilient, FaultPlan, FaultSite, WatchdogPolicy};
use crate::kernel::{time_kernel, KernelSpec, WarpTask};
use crate::occupancy::occupancy;
use fastz_obs::{names, MetricsSink};

/// Timing of a multi-kernel pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PipelineTiming {
    /// End-to-end time in seconds.
    pub time_s: f64,
    /// Aggregate compute component.
    pub compute_s: f64,
    /// Aggregate DRAM component.
    pub memory_s: f64,
    /// Aggregate launch overhead.
    pub launch_s: f64,
    /// The single longest task's serial time.
    pub longest_task_s: f64,
}

impl PipelineTiming {
    /// Emits the timing components as `{phase="…"}`-labeled gauges.
    pub fn record_into<S: MetricsSink>(&self, sink: &mut S, phase: &str) {
        sink.gauge_set(
            &names::phase(names::PIPELINE_COMPUTE_SECONDS, phase),
            self.compute_s,
        );
        sink.gauge_set(
            &names::phase(names::PIPELINE_MEMORY_SECONDS, phase),
            self.memory_s,
        );
        sink.gauge_set(
            &names::phase(names::PIPELINE_LAUNCH_SECONDS, phase),
            self.launch_s,
        );
    }
}

/// Times `kernels` executed over `streams` CUDA streams.
pub fn time_stream_pipeline(
    device: &DeviceSpec,
    kernels: &[KernelSpec],
    streams: usize,
) -> PipelineTiming {
    time_stream_pipeline_capped(device, kernels, streams, None)
}

/// [`time_stream_pipeline`] with an optional cap on concurrently
/// resident warp tasks.
///
/// The cap models device-memory capacity limits: when each task must
/// hold a large per-problem allocation (e.g. the un-optimized
/// inspector's worst-case score matrices, paper §3: "allocating memory
/// for the worst case alignment lengths reduces parallelism"), fewer
/// tasks fit on the device than the SMs could schedule, and throughput
/// degrades proportionally.
pub fn time_stream_pipeline_capped(
    device: &DeviceSpec,
    kernels: &[KernelSpec],
    streams: usize,
    max_concurrent_tasks: Option<usize>,
) -> PipelineTiming {
    // Zero streams is a caller configuration bug, not a reason to bring
    // the whole run down: clamp to one stream (strict serialization).
    let streams = streams.max(1);
    if kernels.is_empty() {
        return PipelineTiming::default();
    }

    // Resource-resident warp slots vs the memory-capacity cap.
    let min_warps = kernels
        .iter()
        .map(|k| occupancy(device, &k.resources).warps_per_sm)
        .min()
        .unwrap()
        .max(1);
    let resident_slots = min_warps * device.sm_count;
    let utilization = match max_concurrent_tasks {
        Some(cap) => (cap.max(1) as f64 / resident_slots as f64).min(1.0),
        None => 1.0,
    };

    if streams == 1 {
        // Strict serialization: sum of bulk-synchronous kernel times,
        // each degraded by the capacity utilization.
        let mut total = PipelineTiming::default();
        for k in kernels {
            let t = time_kernel(device, k);
            let compute = t.compute_s / utilization;
            let time = compute.max(t.memory_s).max(t.longest_task_s) + t.launch_s;
            total.time_s += time;
            total.compute_s += compute;
            total.memory_s += t.memory_s;
            total.launch_s += t.launch_s;
            total.longest_task_s = total.longest_task_s.max(t.longest_task_s);
        }
        return total;
    }

    // Multi-stream: pool every task (the scheduler back-fills across
    // kernel boundaries). Use the most restrictive resource footprint
    // among the kernels for the occupancy check.
    let clock_hz = device.clock_ghz * 1e9;
    let issue = device.warp_issue_per_sm().min(min_warps as f64) * utilization;

    let all_tasks: Vec<&WarpTask> = kernels.iter().flat_map(|k| k.tasks.iter()).collect();
    let total_cycles: f64 = all_tasks.iter().map(|t| t.cycles).sum();
    let total_bytes: f64 = all_tasks.iter().map(|t| t.dram_bytes).sum();
    let longest_cycles = all_tasks.iter().map(|t| t.cycles).fold(0.0, f64::max);

    let device_issue = issue * device.sm_count as f64;
    let compute_s = (total_cycles / device_issue).max(longest_cycles) / clock_hz;
    let memory_s = total_bytes / (device.dram_bw_gbps * 1e9);
    // Launches on distinct streams overlap; each stream still serializes
    // its own launches.
    let per_stream_kernels = kernels.len().div_ceil(streams);
    let launch_s = per_stream_kernels as f64 * device.launch_overhead_s;

    PipelineTiming {
        time_s: compute_s.max(memory_s) + launch_s,
        compute_s,
        memory_s,
        launch_s,
        longest_task_s: longest_cycles / clock_hz,
    }
}

/// Timing of a pipeline run under a fault plan.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResilientPipelineTiming {
    /// Fault-free timing of the successful work.
    pub base: PipelineTiming,
    /// Modeled time added by fault handling.
    pub overhead_s: f64,
    /// Backoff component of the overhead.
    pub backoff_s: f64,
    /// Faults injected across all kernels.
    pub faults: FaultCounters,
    /// Kernel relaunches forced by hangs.
    pub retries: u64,
}

impl ResilientPipelineTiming {
    /// End-to-end time including fault overhead.
    pub fn time_s(&self) -> f64 {
        self.base.time_s + self.overhead_s
    }
}

/// [`time_stream_pipeline_capped`] under a [`FaultPlan`]: each kernel is
/// probed for hangs (watchdog deadline + exponential backoff per
/// relaunch), stream stalls, and shared-memory pressure at the site
/// `(device_ord, scope, kernel_index)`; the recovery cost is summed into
/// `overhead_s` on top of the fault-free pipeline time. Deadlines derive
/// from each kernel's expected time, which scales with its bin size.
#[allow(clippy::too_many_arguments)]
pub fn time_stream_pipeline_resilient(
    device: &DeviceSpec,
    kernels: &[KernelSpec],
    streams: usize,
    max_concurrent_tasks: Option<usize>,
    plan: &FaultPlan,
    device_ord: u32,
    scope: u32,
    watchdog: &WatchdogPolicy,
) -> ResilientPipelineTiming {
    let base = time_stream_pipeline_capped(device, kernels, streams, max_concurrent_tasks);
    let mut out = ResilientPipelineTiming {
        base,
        ..ResilientPipelineTiming::default()
    };
    if plan.is_none() {
        return out;
    }
    for (idx, spec) in kernels.iter().enumerate() {
        let site = FaultSite::new(device_ord, scope, idx as u64);
        let t = time_kernel_resilient(device, spec, plan, site, watchdog);
        out.overhead_s += t.overhead_s;
        out.backoff_s += t.backoff_s;
        out.faults.merge(&t.faults);
        out.retries += t.retries;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultRates;
    use crate::occupancy::BlockResources;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3080_ampere()
    }

    fn kernel(n_tasks: usize, cycles: f64) -> KernelSpec {
        KernelSpec::new(
            "k",
            vec![
                WarpTask {
                    cycles,
                    dram_bytes: 0.0
                };
                n_tasks
            ],
            BlockResources::fastz_inspector(),
        )
    }

    #[test]
    fn empty_pipeline_is_free() {
        assert_eq!(
            time_stream_pipeline(&dev(), &[], 32),
            PipelineTiming::default()
        );
    }

    #[test]
    fn multi_stream_beats_single_stream_with_skewed_kernels() {
        // 16 kernels, each with one long task and many short ones: with a
        // single stream each kernel's long tail serializes; with 32
        // streams the tails overlap. The paper measures 1.7-2.4×.
        let mut kernels = Vec::new();
        for _ in 0..16 {
            let mut k = kernel(2_000, 2_000.0);
            k.tasks.push(WarpTask {
                cycles: 3e6,
                dram_bytes: 0.0,
            });
            kernels.push(k);
        }
        let single = time_stream_pipeline(&dev(), &kernels, 1);
        let multi = time_stream_pipeline(&dev(), &kernels, 32);
        let gain = single.time_s / multi.time_s;
        assert!(gain > 1.3, "stream gain only {gain:.2}");
    }

    #[test]
    fn single_stream_time_is_sum_of_kernels() {
        let kernels = vec![kernel(100, 1_000.0), kernel(100, 1_000.0)];
        let both = time_stream_pipeline(&dev(), &kernels, 1);
        let one = time_stream_pipeline(&dev(), &kernels[..1], 1);
        assert!((both.time_s - 2.0 * one.time_s).abs() < 1e-9);
    }

    #[test]
    fn pooled_time_floors_at_longest_task() {
        let mut k = kernel(10, 100.0);
        k.tasks.push(WarpTask {
            cycles: 1e9,
            dram_bytes: 0.0,
        });
        let t = time_stream_pipeline(&dev(), &[k], 8);
        let clock_hz = dev().clock_ghz * 1e9;
        assert!(t.compute_s >= 1e9 / clock_hz);
        assert!((t.longest_task_s - 1e9 / clock_hz).abs() < 1e-12);
    }

    #[test]
    fn zero_streams_clamps_to_serial_instead_of_panicking() {
        let kernels = vec![kernel(100, 1_000.0), kernel(100, 1_000.0)];
        let zero = time_stream_pipeline(&dev(), &kernels, 0);
        let one = time_stream_pipeline(&dev(), &kernels, 1);
        assert_eq!(zero, one);
    }

    #[test]
    fn resilient_pipeline_charges_faults_on_top_of_base() {
        let kernels: Vec<KernelSpec> = (0..32).map(|_| kernel(500, 2_000.0)).collect();
        let watchdog = WatchdogPolicy::default();
        let plan = FaultPlan::from_seed(11);
        let free = time_stream_pipeline_resilient(
            &dev(),
            &kernels,
            32,
            None,
            &FaultPlan::none(),
            0,
            0,
            &watchdog,
        );
        assert_eq!(free.overhead_s, 0.0);
        assert_eq!(free.faults.total(), 0);
        let faulty =
            time_stream_pipeline_resilient(&dev(), &kernels, 32, None, &plan, 0, 0, &watchdog);
        assert_eq!(
            faulty.base.time_s, free.base.time_s,
            "base timing unchanged"
        );
        assert!(
            faulty.faults.total() > 0,
            "drill rates over 32 kernels should fire"
        );
        assert!(faulty.overhead_s > 0.0);
        assert!((faulty.time_s() - (faulty.base.time_s + faulty.overhead_s)).abs() < 1e-15);
        // Deterministic across calls.
        let again =
            time_stream_pipeline_resilient(&dev(), &kernels, 32, None, &plan, 0, 0, &watchdog);
        assert_eq!(again.faults, faulty.faults);
        assert_eq!(again.overhead_s, faulty.overhead_s);
        // Hang rate 1.0: every kernel retries max_consecutive times.
        let all_hang = plan.with_rates(FaultRates {
            hang: 1.0,
            ..FaultRates::NONE
        });
        let hung =
            time_stream_pipeline_resilient(&dev(), &kernels, 32, None, &all_hang, 0, 0, &watchdog);
        assert_eq!(hung.retries, 2 * kernels.len() as u64);
        assert_eq!(hung.faults.hangs, hung.retries);
    }

    #[test]
    fn launch_overhead_amortizes_across_streams() {
        let kernels: Vec<KernelSpec> = (0..64).map(|_| kernel(1, 10.0)).collect();
        let s1 = time_stream_pipeline(&dev(), &kernels, 1);
        let s32 = time_stream_pipeline(&dev(), &kernels, 32);
        assert!(s32.launch_s < s1.launch_s / 10.0);
    }
}
