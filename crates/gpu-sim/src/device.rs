//! Device specifications: the paper's three GPUs and the CPU baseline.
//!
//! These numbers parameterize the timing model only; the *functional*
//! behaviour of kernels (which cells get computed, what gets spilled) is
//! identical on every device.

/// A GPU specification.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Architecture generation label used in the paper's figures.
    pub arch: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// SIMT lanes (CUDA cores) per SM.
    pub lanes_per_sm: usize,
    /// Warp schedulers per SM (warp-instruction issue slots per cycle).
    /// 4 on Pascal GP102, Volta GV100, and Ampere GA102 alike.
    pub schedulers_per_sm: usize,
    /// Fraction of nominal issue slots the wavefront DP loop achieves.
    /// Calibration constant: encapsulates effects outside the analytic
    /// model — read-after-write stalls on the recurrence's serial
    /// add/max chain, shuffle latency, and (on Volta's 16-wide
    /// processing blocks) the two-cycle execution of each warp
    /// instruction. Calibrated once against the paper's per-benchmark
    /// Figure 7 envelope; all relative results emerge from measured
    /// workload statistics.
    pub issue_efficiency: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Shared memory per SM in KiB.
    pub shared_kib_per_sm: usize,
    /// 32-bit registers per SM.
    pub regs_per_sm: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// L2 cache in MiB.
    pub l2_mib: usize,
    /// Device memory in GiB.
    pub mem_gib: usize,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Device-wide (grid) synchronization latency in seconds — the cost
    /// the Feng-et-al baseline pays per anti-diagonal.
    pub grid_sync_s: f64,
}

impl DeviceSpec {
    /// Nvidia Titan X (Pascal): 28 SMs, 12 GB (paper §4).
    pub fn titan_x_pascal() -> DeviceSpec {
        DeviceSpec {
            name: "Titan X",
            arch: "Pascal",
            sm_count: 28,
            lanes_per_sm: 128,
            schedulers_per_sm: 4,
            issue_efficiency: 0.43,
            clock_ghz: 1.0, // the paper quotes 3584 1-wide lanes at 1 GHz
            dram_bw_gbps: 480.0,
            shared_kib_per_sm: 96,
            regs_per_sm: 65_536,
            max_warps_per_sm: 64,
            l2_mib: 3,
            mem_gib: 12,
            launch_overhead_s: 6e-6,
            grid_sync_s: 2.5e-6,
        }
    }

    /// Nvidia QV100 (Volta): 80 SMs, 32 GB (paper §4).
    pub fn qv100_volta() -> DeviceSpec {
        DeviceSpec {
            name: "QV100",
            arch: "Volta",
            sm_count: 80,
            lanes_per_sm: 64,
            schedulers_per_sm: 4,
            issue_efficiency: 0.265,
            clock_ghz: 1.38,
            dram_bw_gbps: 900.0,
            shared_kib_per_sm: 96,
            regs_per_sm: 65_536,
            max_warps_per_sm: 64,
            l2_mib: 6,
            mem_gib: 32,
            launch_overhead_s: 5e-6,
            grid_sync_s: 2.0e-6,
        }
    }

    /// Nvidia RTX 3080 (Ampere): 68 SMs, 10 GB (paper §4 and §6: nominal
    /// 29.77 TFlop/s and 760 GB/s).
    pub fn rtx3080_ampere() -> DeviceSpec {
        DeviceSpec {
            name: "RTX 3080",
            arch: "Ampere",
            sm_count: 68,
            lanes_per_sm: 128,
            schedulers_per_sm: 4,
            issue_efficiency: 0.294,
            clock_ghz: 1.71,
            dram_bw_gbps: 760.0,
            shared_kib_per_sm: 128,
            regs_per_sm: 65_536,
            max_warps_per_sm: 48,
            l2_mib: 5,
            mem_gib: 10,
            launch_overhead_s: 4e-6,
            grid_sync_s: 1.5e-6,
        }
    }

    /// The paper's three evaluation GPUs, oldest generation first.
    pub fn paper_gpus() -> Vec<DeviceSpec> {
        vec![
            DeviceSpec::titan_x_pascal(),
            DeviceSpec::qv100_volta(),
            DeviceSpec::rtx3080_ampere(),
        ]
    }

    /// Total SIMT lanes on the device.
    pub fn total_lanes(&self) -> usize {
        self.sm_count * self.lanes_per_sm
    }

    /// Achievable warp-instruction issue slots per SM per cycle.
    pub fn warp_issue_per_sm(&self) -> f64 {
        self.schedulers_per_sm as f64 * self.issue_efficiency
    }

    /// Peak warp-instructions per second for the whole device.
    pub fn peak_warp_instr_per_s(&self) -> f64 {
        self.sm_count as f64 * self.warp_issue_per_sm() * self.clock_ghz * 1e9
    }

    /// Peak scalar operations per second (lanes × clock).
    pub fn peak_ops_per_s(&self) -> f64 {
        self.total_lanes() as f64 * self.clock_ghz * 1e9
    }

    /// Threshold operational intensity (ops/byte) at which the device
    /// moves from memory- to compute-bound (paper §6: 39 ops/byte nominal
    /// for the RTX 3080).
    pub fn roofline_threshold(&self) -> f64 {
        self.peak_ops_per_s() / (self.dram_bw_gbps * 1e9)
    }
}

/// A CPU specification (the paper's AMD Ryzen 3950X testbed).
#[derive(Clone, Debug, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (SMT).
    pub threads: usize,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// L3 cache in MiB.
    pub l3_mib: usize,
}

impl CpuSpec {
    /// AMD Ryzen 3950X: 16 cores / 32 threads, 3.5 GHz, 64 MB L3 (paper §4).
    pub fn ryzen_3950x() -> CpuSpec {
        CpuSpec {
            name: "Ryzen 3950X",
            cores: 16,
            threads: 32,
            clock_ghz: 3.5,
            dram_bw_gbps: 47.0,
            l3_mib: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gpu_parameters() {
        let pascal = DeviceSpec::titan_x_pascal();
        assert_eq!(pascal.sm_count, 28);
        assert_eq!(pascal.total_lanes(), 3584); // the paper's 3584 lanes
        let volta = DeviceSpec::qv100_volta();
        assert_eq!(volta.sm_count, 80);
        let ampere = DeviceSpec::rtx3080_ampere();
        assert_eq!(ampere.sm_count, 68);
        assert_eq!(ampere.mem_gib, 10);
    }

    #[test]
    fn ampere_roofline_threshold_matches_paper() {
        // §6: 29.77 TFlop/s ÷ 760 GB/s ≈ 39 ops/byte. Our lane-based peak
        // is half the (FMA-counted) TFlop number, so the threshold is ~19.6
        // before FMA accounting; verify within the right ballpark using
        // FMA×2.
        let a = DeviceSpec::rtx3080_ampere();
        let fma_peak = 2.0 * a.peak_ops_per_s();
        let threshold = fma_peak / (a.dram_bw_gbps * 1e9);
        assert!((threshold - 39.0).abs() < 4.0, "threshold {threshold}");
    }

    #[test]
    fn generations_increase_in_throughput() {
        let gpus = DeviceSpec::paper_gpus();
        assert!(gpus[0].peak_ops_per_s() < gpus[1].peak_ops_per_s());
        assert!(gpus[1].peak_ops_per_s() < gpus[2].peak_ops_per_s());
    }

    #[test]
    fn warp_issue_rates() {
        assert!((DeviceSpec::titan_x_pascal().warp_issue_per_sm() - 1.72).abs() < 1e-9);
        assert!((DeviceSpec::qv100_volta().warp_issue_per_sm() - 1.06).abs() < 1e-9);
    }

    #[test]
    fn cpu_spec() {
        let cpu = CpuSpec::ryzen_3950x();
        assert_eq!(cpu.cores, 16);
        assert_eq!(cpu.threads, 32);
        assert_eq!(cpu.l3_mib, 64);
    }
}
