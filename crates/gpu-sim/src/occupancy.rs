//! Occupancy: how many blocks/warps of a kernel fit on one SM.
//!
//! FastZ's register-resident cyclic buffers trade register pressure for
//! memory traffic (paper §3.2: 36 B of live diagonal state per thread);
//! the occupancy calculator shows that trade is affordable — the paper's
//! example of 2 blocks × 64 warps × 36 B would blow out Shared Memory
//! (144 KB) but fits easily in the register file.

use crate::device::DeviceSpec;

/// Per-block resource demands of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockResources {
    /// Warps per threadblock.
    pub warps_per_block: usize,
    /// 32-bit registers per thread.
    pub regs_per_thread: usize,
    /// Shared-memory bytes per block.
    pub shared_bytes_per_block: usize,
}

impl BlockResources {
    /// FastZ's inspector: one warp per block-slot unit of 8 warps,
    /// cyclic buffers in registers (3 diagonals × 3 matrices = 9 values
    /// plus ~23 bookkeeping registers), eager-traceback window in shared.
    pub fn fastz_inspector() -> BlockResources {
        BlockResources {
            warps_per_block: 8,
            regs_per_thread: 40,
            shared_bytes_per_block: 8 * 256, // one 16×16 window per warp
        }
    }

    /// FastZ's executor: adds the shared-memory traceback staging tiles
    /// (one 128-byte cache block per warp).
    pub fn fastz_executor() -> BlockResources {
        BlockResources {
            warps_per_block: 8,
            regs_per_thread: 48,
            shared_bytes_per_block: 8 * (256 + 128),
        }
    }
}

/// What bound the occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccupancyLimit {
    /// The SM's resident-warp ceiling.
    Warps,
    /// The register file.
    Registers,
    /// Shared-memory capacity.
    SharedMem,
}

/// Occupancy result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// Resident warps per SM.
    pub warps_per_sm: usize,
    /// The binding resource.
    pub limit: OccupancyLimit,
}

/// Computes occupancy of `res` on `device`.
pub fn occupancy(device: &DeviceSpec, res: &BlockResources) -> Occupancy {
    assert!(res.warps_per_block > 0, "empty block");
    let by_warps = device.max_warps_per_sm / res.warps_per_block;
    let regs_per_block = res.regs_per_thread.max(1) * res.warps_per_block * 32;
    let by_regs = device.regs_per_sm / regs_per_block;
    let by_shared = (device.shared_kib_per_sm * 1024)
        .checked_div(res.shared_bytes_per_block)
        .unwrap_or(usize::MAX);

    let blocks = by_warps.min(by_regs).min(by_shared);
    let limit = if blocks == by_warps {
        OccupancyLimit::Warps
    } else if blocks == by_regs {
        OccupancyLimit::Registers
    } else {
        OccupancyLimit::SharedMem
    };
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: blocks * res.warps_per_block,
        limit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspector_occupancy_is_warp_limited_on_ampere() {
        let dev = DeviceSpec::rtx3080_ampere();
        let occ = occupancy(&dev, &BlockResources::fastz_inspector());
        assert!(occ.warps_per_sm >= 32, "warps {:?}", occ);
        assert_eq!(occ.warps_per_sm, occ.blocks_per_sm * 8);
    }

    #[test]
    fn register_pressure_limits_occupancy() {
        let dev = DeviceSpec::rtx3080_ampere();
        let res = BlockResources {
            warps_per_block: 8,
            regs_per_thread: 255,
            shared_bytes_per_block: 0,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.limit, OccupancyLimit::Registers);
        assert!(occ.warps_per_sm <= 8);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let dev = DeviceSpec::qv100_volta();
        let res = BlockResources {
            warps_per_block: 2,
            regs_per_thread: 16,
            shared_bytes_per_block: 48 * 1024,
        };
        let occ = occupancy(&dev, &res);
        assert_eq!(occ.limit, OccupancyLimit::SharedMem);
        assert_eq!(occ.blocks_per_sm, 2);
    }

    #[test]
    fn papers_shared_memory_example_does_not_fit_but_registers_do() {
        // §3.2: 2 blocks × 64 warps × 32 threads × 36 B = 144 KB exceeds
        // Shared Memory; as registers, 36 B is 9 registers per thread —
        // trivially resident.
        let dev = DeviceSpec::rtx3080_ampere();
        let state_bytes = 2 * 64 * 32 * 36;
        assert!(state_bytes > dev.shared_kib_per_sm * 1024);
        let regs_needed = 9; // 36 B / 4
        assert!(regs_needed * 32 * 64 < dev.regs_per_sm);
    }

    #[test]
    fn zero_shared_block_is_unbounded_by_shared() {
        let dev = DeviceSpec::titan_x_pascal();
        let res = BlockResources {
            warps_per_block: 4,
            regs_per_thread: 32,
            shared_bytes_per_block: 0,
        };
        let occ = occupancy(&dev, &res);
        assert_ne!(occ.limit, OccupancyLimit::SharedMem);
    }
}
