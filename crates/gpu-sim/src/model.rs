//! The analytic cost model and its calibration constants.
//!
//! Everything the timing engine multiplies by lives here, with the paper
//! citation for each value. The *work quantities* (steps, cells, bytes)
//! are measured from functional execution; only the conversion to seconds
//! is modeled. `CPU_CYCLES_PER_CELL` anchors the absolute scale (it was
//! calibrated once so that FastZ-on-Ampere lands near the paper's 111×);
//! every *relative* effect — ablation staircase, GPU generations,
//! per-benchmark ordering — emerges from measured statistics.

use crate::device::CpuSpec;

/// ALU operations per DP cell: 5 additions + 4 comparisons (paper §2.2).
pub const OPS_PER_CELL: u64 = 9;

/// SIMD divergence derating: the 9 operations expand to 23 under
/// divergent `max` branches (paper §6: derating factor 2.56).
pub const DIVERGENCE_DERATE: f64 = 2.56;

/// Warp-cycles per wavefront step: the 9 ops × 2.56 derate ≈ 23
/// instructions, each issued once warp-wide.
pub const CYCLES_PER_STEP: f64 = 23.0;

/// Bytes of score state per cell: 3 matrices (S, I, D) × 4 B (paper §2.2
/// and §6: 12 B output per warp step once cyclic buffering keeps the rest
/// in registers).
pub const SCORE_STATE_BYTES: f64 = 12.0;

/// Traceback bytes per cell (paper §3.1.3: the three choices packed into
/// a single byte).
pub const TB_BYTES_PER_CELL: f64 = 1.0;

/// Fixed per-warp-task setup cost in cycles (argument fetch, sequence
/// pointer setup, result write).
pub const TASK_SETUP_CYCLES: f64 = 400.0;

/// CPU cycles per DP cell for the sequential LASTZ inner loop
/// (calibration anchor). LASTZ's C implementation — bounds checks,
/// traceback writes, y-drop interval maintenance, unpredictable `max`
/// branches — sustains roughly 20 cycles per cell on a modern x86 core,
/// consistent with our own Rust engine's measured throughput.
pub const CPU_CYCLES_PER_CELL: f64 = 20.0;

/// Effective DRAM bytes per cell for the CPU engines: the 12 B of S/I/D
/// score state plus the 1 B packed traceback stream through memory on
/// large scans (the row working set exceeds L2 for long extensions).
/// This puts the 32-worker chip-wide ceiling at ≈20.7× — the paper's
/// stated reason multicore scaling stops at ≈20× (§5.1).
pub const CPU_DRAM_BYTES_PER_CELL: f64 = 13.0;

/// SMT yield: each hardware thread beyond the physical core count adds
/// this fraction of a core's throughput (memory-latency-bound DP loops
/// benefit substantially from a second hardware thread).
pub const SMT_YIELD: f64 = 0.45;

/// Analytic CPU timing for the sequential and multicore LASTZ baselines.
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// The CPU being modeled.
    pub spec: CpuSpec,
}

impl CpuModel {
    /// Model for the paper's Ryzen 3950X.
    pub fn ryzen_3950x() -> CpuModel {
        CpuModel {
            spec: CpuSpec::ryzen_3950x(),
        }
    }

    /// Single-thread DP throughput in cells/second.
    pub fn cells_per_second_single(&self) -> f64 {
        self.spec.clock_ghz * 1e9 / CPU_CYCLES_PER_CELL
    }

    /// Modeled sequential LASTZ time for `cells` DP cells.
    pub fn sequential_time(&self, cells: u64) -> f64 {
        cells as f64 / self.cells_per_second_single()
    }

    /// Effective core count for `workers` threads (SMT beyond the
    /// physical cores yields [`SMT_YIELD`] each).
    pub fn effective_cores(&self, workers: usize) -> f64 {
        let workers = workers.min(self.spec.threads);
        if workers <= self.spec.cores {
            workers as f64
        } else {
            self.spec.cores as f64 + (workers - self.spec.cores) as f64 * SMT_YIELD
        }
    }

    /// Modeled multicore time given each worker's cell count: the slowest
    /// partition bounds compute; chip-wide DRAM bandwidth bounds the
    /// whole run (the reason the paper's 32 processes reach only ≈20×).
    pub fn multicore_time(&self, per_worker_cells: &[u64]) -> f64 {
        if per_worker_cells.is_empty() {
            return 0.0;
        }
        let workers = per_worker_cells.len();
        let per_worker_rate =
            self.cells_per_second_single() * self.effective_cores(workers) / workers as f64;
        let slowest = *per_worker_cells.iter().max().unwrap() as f64;
        let compute = slowest / per_worker_rate;
        let total: u64 = per_worker_cells.iter().sum();
        let bandwidth = total as f64 * CPU_DRAM_BYTES_PER_CELL / (self.spec.dram_bw_gbps * 1e9);
        compute.max(bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_time_scales_linearly() {
        let m = CpuModel::ryzen_3950x();
        let t1 = m.sequential_time(1_000_000);
        let t2 = m.sequential_time(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn effective_cores_saturate() {
        let m = CpuModel::ryzen_3950x();
        assert_eq!(m.effective_cores(1), 1.0);
        assert_eq!(m.effective_cores(16), 16.0);
        let e32 = m.effective_cores(32);
        assert!(e32 > 16.0 && e32 < 32.0);
        // Beyond the hardware thread count nothing more is gained.
        assert_eq!(m.effective_cores(64), e32);
    }

    #[test]
    fn multicore_32_lands_near_papers_20x() {
        // Balanced partitions of a large workload: the paper's 32-process
        // configuration achieves ≈20× over sequential (§5.1).
        let m = CpuModel::ryzen_3950x();
        let total: u64 = 64_000_000_000;
        let per_worker = vec![total / 32; 32];
        let speedup = m.sequential_time(total) / m.multicore_time(&per_worker);
        assert!(
            (17.0..23.0).contains(&speedup),
            "multicore speedup {speedup:.1}"
        );
    }

    #[test]
    fn imbalanced_partitions_are_slower() {
        let m = CpuModel::ryzen_3950x();
        let balanced = vec![1_000_000u64; 8];
        let mut imbalanced = vec![500_000u64; 8];
        imbalanced[0] = 4_500_000;
        assert!(m.multicore_time(&imbalanced) > m.multicore_time(&balanced));
    }

    #[test]
    fn empty_multicore_is_zero() {
        assert_eq!(CpuModel::ryzen_3950x().multicore_time(&[]), 0.0);
    }

    #[test]
    fn derate_matches_papers_instruction_expansion() {
        // §6: 9 operations expand to ≈23 under SIMD divergence.
        assert!((OPS_PER_CELL as f64 * DIVERGENCE_DERATE - CYCLES_PER_STEP).abs() < 0.1);
    }
}
